"""DecisionServer: asyncio batching end-to-end, admission, graceful drain."""

import asyncio

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.nn.network import mlp
from repro.serve import Decision, DecisionServer, PolicyStore, ShedDecision


def store_of(policies=2):
    return PolicyStore([mlp(6, (8,), 5, seed=i) for i in range(policies)])


def run(coro):
    return asyncio.run(coro)


class TestBatchingEndToEnd:
    def test_concurrent_clients_share_one_batch(self):
        store = store_of()
        observations = [
            np.random.default_rng(i).random(store.observation_size)
            for i in range(8)
        ]

        async def main():
            server = DecisionServer(
                store, max_batch=8, deadline_ms=1000, queue_limit=64
            )
            results = await asyncio.gather(
                *(
                    server.decide(i, i % 2, observations[i])
                    for i in range(8)
                )
            )
            await server.stop()
            return results

        results = run(main())
        assert all(isinstance(r, Decision) for r in results)
        # all eight coalesced into one stacked forward
        assert {r.batch_size for r in results} == {8}
        serial = [
            store.decide_serial(i % 2, observations[i]) for i in range(8)
        ]
        assert [r.action for r in results] == serial

    def test_deadline_flushes_partial_batch(self):
        store = store_of()

        async def main():
            server = DecisionServer(
                store, max_batch=64, deadline_ms=5, queue_limit=64
            )
            result = await server.decide(
                0, 0, np.zeros(store.observation_size)
            )
            await server.stop()
            return result

        result = run(main())
        assert isinstance(result, Decision)
        assert result.batch_size == 1
        # the deadline timer, not a full batch, released this decision
        assert result.latency_s >= 0.004

    def test_stop_drains_pending(self):
        store = store_of()

        async def main():
            server = DecisionServer(
                store, max_batch=64, deadline_ms=10_000, queue_limit=64
            )
            task = asyncio.create_task(
                server.decide(0, 0, np.zeros(store.observation_size))
            )
            await asyncio.sleep(0)  # let the request enqueue
            assert server.pending_depth == 1
            await server.stop()
            result = await task
            with pytest.raises(ExecutionError, match="draining"):
                await server.decide(1, 0, np.zeros(store.observation_size))
            return result

        result = run(main())
        assert isinstance(result, Decision)


class TestAdmission:
    def _fill(self, server, store, n):
        return [
            asyncio.create_task(
                server.decide(i, 0, np.zeros(store.observation_size))
            )
            for i in range(n)
        ]

    def test_shed_when_queue_full(self):
        store = store_of()

        async def main():
            server = DecisionServer(
                store,
                max_batch=64,
                deadline_ms=10_000,
                queue_limit=2,
                admission="shed",
            )
            tasks = self._fill(server, store, 2)
            await asyncio.sleep(0)
            shed = await server.decide(
                9, 0, np.zeros(store.observation_size)
            )
            await server.stop()
            await asyncio.gather(*tasks)
            return shed

        shed = run(main())
        assert isinstance(shed, ShedDecision)
        assert shed.network_id == 9

    def test_degrade_when_queue_full(self):
        store = store_of()
        obs = np.random.default_rng(3).random(store.observation_size)

        async def main():
            server = DecisionServer(
                store,
                max_batch=64,
                deadline_ms=10_000,
                queue_limit=2,
                admission="degrade",
            )
            tasks = self._fill(server, store, 2)
            await asyncio.sleep(0)
            result = await server.decide(9, 1, obs)
            await server.stop()
            await asyncio.gather(*tasks)
            return result

        result = run(main())
        assert isinstance(result, Decision)
        assert result.degraded
        assert result.batch_size == 1
        assert result.action == store.decide_serial(1, obs)

    def test_queue_mode_waits_for_space(self):
        store = store_of()

        async def main():
            server = DecisionServer(
                store,
                max_batch=64,
                deadline_ms=5,
                queue_limit=2,
                admission="queue",
            )
            tasks = self._fill(server, store, 2)
            await asyncio.sleep(0)
            # queue full; this waits for the deadline flush to free space
            late = await server.decide(
                9, 0, np.zeros(store.observation_size)
            )
            await server.stop()
            early = await asyncio.gather(*tasks)
            return early, late

        early, late = run(main())
        assert all(isinstance(r, Decision) for r in early)
        assert isinstance(late, Decision)
