"""PolicyStore: batched decisions bit-identical to serial greedy actions."""

import numpy as np
import pytest

from repro.core.dqn import DQNAgent, DQNConfig
from repro.errors import ConfigurationError
from repro.nn.network import mlp
from repro.nn.serialize import save_parameters
from repro.serve import PolicyStore


def small_cfg(**kw):
    defaults = dict(
        observation_size=15, num_actions=160, hidden_sizes=(24, 24)
    )
    defaults.update(kw)
    return DQNConfig(**defaults)


def store_of(policies=4):
    return PolicyStore([mlp(15, (24, 24), 160, seed=i) for i in range(policies)])


class TestBitIdentity:
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_mixed_policies_match_serial(self, batch):
        store = store_of(4)
        rng = np.random.default_rng(batch)
        obs = rng.random((batch, store.observation_size))
        policies = rng.integers(0, store.num_policies, size=batch)
        batched = store.decide_batch(policies, obs)
        serial = np.array(
            [store.decide_serial(int(p), o) for p, o in zip(policies, obs)]
        )
        np.testing.assert_array_equal(batched, serial)

    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_single_policy_broadcast_matches_serial(self, batch):
        store = store_of(1)
        rng = np.random.default_rng(batch + 100)
        obs = rng.random((batch, store.observation_size))
        batched = store.decide_batch(np.zeros(batch, dtype=int), obs)
        serial = np.array([store.decide_serial(0, o) for o in obs])
        np.testing.assert_array_equal(batched, serial)

    def test_matches_agent_greedy_act(self):
        agents = [DQNAgent(small_cfg(), seed=i) for i in range(3)]
        store = PolicyStore.from_agents(agents)
        rng = np.random.default_rng(5)
        obs = rng.random((9, store.observation_size))
        policies = rng.integers(0, 3, size=9)
        batched = store.decide_batch(policies, obs)
        serial = np.array(
            [
                agents[int(p)].act(o, greedy=True)
                for p, o in zip(policies, obs)
            ]
        )
        np.testing.assert_array_equal(batched, serial)

    def test_reflects_parameter_mutation(self):
        store = store_of(3)
        obs = np.tile(np.linspace(0, 1, store.observation_size), (3, 1))
        store.decide_batch(np.arange(3), obs)  # build + warm the stack
        donor = mlp(15, (24, 24), 160, seed=77)
        store.networks[1].set_weights(donor.get_weights())
        batched = store.decide_batch(np.arange(3), obs)
        serial = np.array(
            [store.decide_serial(i, obs[i]) for i in range(3)]
        )
        np.testing.assert_array_equal(batched, serial)


class TestValidation:
    def test_empty_store_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            PolicyStore([])

    def test_mismatched_geometry_names_policy(self):
        nets = [mlp(15, (24,), 160, seed=0), mlp(15, (32,), 160, seed=1)]
        with pytest.raises(ConfigurationError, match=r"policy\[1\]"):
            PolicyStore(nets)

    def test_bad_policy_index(self):
        store = store_of(2)
        with pytest.raises(ConfigurationError, match="policy index"):
            store.decide_serial(5, np.zeros(store.observation_size))
        with pytest.raises(ConfigurationError, match="policy indices"):
            store.decide_batch(
                np.array([0, 3]), np.zeros((2, store.observation_size))
            )

    def test_bad_observation_shape(self):
        store = store_of(2)
        with pytest.raises(ConfigurationError, match="observation"):
            store.decide_serial(0, np.zeros(4))
        with pytest.raises(ConfigurationError, match="observations"):
            store.decide_batch(np.array([0, 1]), np.zeros((2, 4)))


class TestArtifacts:
    def test_from_artifacts_roundtrip(self, tmp_path):
        nets = [mlp(15, (24, 24), 160, seed=i) for i in range(3)]
        paths = []
        for i, net in enumerate(nets):
            path = tmp_path / f"policy{i}.npz"
            save_parameters(net, path)
            paths.append(path)
        store = PolicyStore.from_artifacts(paths)
        assert store.num_policies == 3
        assert store.observation_size == 15
        assert store.num_actions == 160
        rng = np.random.default_rng(0)
        obs = rng.random((6, 15))
        policies = rng.integers(0, 3, size=6)
        batched = store.decide_batch(policies, obs)
        serial = np.array(
            [store.decide_serial(int(p), o) for p, o in zip(policies, obs)]
        )
        np.testing.assert_array_equal(batched, serial)

    def test_from_artifacts_mismatch_names_path(self, tmp_path):
        ok = tmp_path / "ok.npz"
        save_parameters(mlp(15, (24,), 160, seed=0), ok)
        bad = tmp_path / "wrong-geometry.npz"
        save_parameters(mlp(15, (32,), 160, seed=0), bad)
        with pytest.raises(ConfigurationError, match="wrong-geometry"):
            PolicyStore.from_artifacts([ok, bad])

    def test_from_artifacts_non_mlp_rejected(self, tmp_path):
        # a single Dense layer has no hidden layers: not the paper MLP
        from repro.nn.layers import Dense
        from repro.nn.network import Network

        path = tmp_path / "flat.npz"
        save_parameters(Network([Dense(4, 2, seed=0)]), path)
        with pytest.raises(ConfigurationError, match="MLP"):
            PolicyStore.from_artifacts([path])
