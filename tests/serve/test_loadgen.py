"""Load generator: seeded determinism and closed-loop accounting."""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.network import mlp
from repro.serve import (
    DecisionServer,
    LoadGenConfig,
    MicroBatcher,
    PolicyStore,
    VirtualClock,
    run_closed_loop,
    run_server_load,
)


def store_of(policies=2):
    # paper geometry: 3*5 observation features, 16 channels x 10 powers
    return PolicyStore([mlp(15, (24, 24), 160, seed=i) for i in range(policies)])


def fresh_batcher(store, **kw):
    defaults = dict(
        max_batch=16, deadline_ms=2.0, queue_limit=64, admission="queue"
    )
    defaults.update(kw)
    return MicroBatcher(store, clock=VirtualClock(), **defaults)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        store = store_of()
        config = LoadGenConfig(networks=24, requests_per_network=6, seed=11)
        first = run_closed_loop(fresh_batcher(store), config)
        second = run_closed_loop(fresh_batcher(store), config)
        assert first.trace == second.trace
        assert first.duration_s == second.duration_s
        assert first.decisions == second.decisions

    def test_different_seed_different_trace(self):
        store = store_of()
        first = run_closed_loop(
            fresh_batcher(store),
            LoadGenConfig(networks=24, requests_per_network=6, seed=11),
        )
        second = run_closed_loop(
            fresh_batcher(store),
            LoadGenConfig(networks=24, requests_per_network=6, seed=12),
        )
        assert first.trace != second.trace

    def test_network_streams_stable_under_fleet_growth(self):
        # network i draws from derive(seed, "loadgen-net[i]"): its first
        # arrival instant must not depend on how many peers exist.
        store = store_of()
        small = run_closed_loop(
            fresh_batcher(store),
            LoadGenConfig(networks=4, requests_per_network=1, seed=3),
        )
        big = run_closed_loop(
            fresh_batcher(store),
            LoadGenConfig(networks=8, requests_per_network=1, seed=3),
        )
        first_small = {n: t for t, n, _ in reversed(sorted(small.trace))}
        first_big = {n: t for t, n, _ in reversed(sorted(big.trace))}
        # shared networks 0..3 decided within the same virtual run; their
        # arrival draws are identical, so decisions happen in the same
        # batch windows
        assert set(first_small) <= set(first_big)


class TestAccounting:
    def test_every_request_answered(self):
        store = store_of(3)
        config = LoadGenConfig(networks=16, requests_per_network=5, seed=0)
        report = run_closed_loop(fresh_batcher(store), config)
        assert report.decisions + report.shed == 16 * 5
        assert report.shed == 0
        assert len(report.trace) == 16 * 5
        assert report.duration_s > 0

    def test_shed_admission_counts_sheds(self):
        store = store_of()
        batcher = fresh_batcher(
            store,
            max_batch=64,
            deadline_ms=50.0,
            queue_limit=4,
            admission="shed",
        )
        config = LoadGenConfig(
            networks=32,
            requests_per_network=4,
            mean_think_time_s=0.0001,
            seed=1,
        )
        report = run_closed_loop(batcher, config)
        assert report.shed > 0
        assert report.decisions + report.shed == 32 * 4
        assert any(action == -1 for _, _, action in report.trace)

    def test_degrade_admission_counts_degraded(self):
        store = store_of()
        batcher = fresh_batcher(
            store,
            max_batch=64,
            deadline_ms=50.0,
            queue_limit=4,
            admission="degrade",
        )
        report = run_closed_loop(
            batcher,
            LoadGenConfig(
                networks=32,
                requests_per_network=4,
                mean_think_time_s=0.0001,
                seed=1,
            ),
        )
        assert report.degraded > 0
        assert report.decisions == 32 * 4
        assert report.shed == 0

    def test_rejects_unfactorable_store(self):
        store = PolicyStore([mlp(15, (8,), 7, seed=0)])  # 7 actions
        with pytest.raises(ConfigurationError, match="power levels"):
            run_closed_loop(
                fresh_batcher(store), LoadGenConfig(networks=2)
            )


class TestServerLoad:
    def test_async_run_answers_everything(self):
        store = store_of()
        config = LoadGenConfig(
            networks=12,
            requests_per_network=4,
            mean_think_time_s=0.0,
            seed=2,
        )

        async def main():
            server = DecisionServer(
                store, max_batch=16, deadline_ms=1.0, queue_limit=64
            )
            report = await run_server_load(server, config)
            await server.stop()
            return report

        report = asyncio.run(main())
        assert report.decisions == 12 * 4
        assert report.shed == 0
        # actions per network are pure functions of the seeded history, so
        # the async run decides exactly what the virtual-time run decides
        sync = run_closed_loop(fresh_batcher(store), config)
        for network in range(config.networks):
            async_actions = [
                a for _, n, a in report.trace if n == network
            ]
            sync_actions = [a for _, n, a in sync.trace if n == network]
            assert async_actions == sync_actions


class TestConfigValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            LoadGenConfig(networks=0)
        with pytest.raises(ConfigurationError):
            LoadGenConfig(requests_per_network=0)
        with pytest.raises(ConfigurationError):
            LoadGenConfig(mean_think_time_s=-1.0)
        with pytest.raises(ConfigurationError):
            LoadGenConfig(num_power_levels=0)


def test_store_observation_multiple_of_three_enforced():
    store = PolicyStore([mlp(16, (8,), 160, seed=0)])
    with pytest.raises(ConfigurationError, match="history"):
        run_closed_loop(fresh_batcher(store), LoadGenConfig(networks=2))


def test_trace_rows_are_time_ordered():
    store = store_of()
    report = run_closed_loop(
        fresh_batcher(store),
        LoadGenConfig(networks=8, requests_per_network=3, seed=5),
    )
    times = [t for t, _, _ in report.trace]
    assert times == sorted(times)
    assert np.all(np.array(times) >= 0)
