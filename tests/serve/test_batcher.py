"""MicroBatcher: size/deadline triggers and admission control, all on a
seeded virtual clock so every flush instant is exactly reproducible."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.network import mlp
from repro.serve import (
    ADMISSION_MODES,
    DEFAULT_SERVE_BATCH,
    SERVE_ADMISSION_ENV,
    SERVE_BATCH_ENV,
    SERVE_DEADLINE_ENV,
    Decision,
    MicroBatcher,
    PolicyStore,
    ShedDecision,
    VirtualClock,
    resolve_serve_admission,
    resolve_serve_batch,
    resolve_serve_deadline_ms,
)


def store_of(policies=2):
    return PolicyStore([mlp(6, (8,), 5, seed=i) for i in range(policies)])


def obs_for(store, seed=0):
    return np.random.default_rng(seed).random(store.observation_size)


class TestResolvers:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(SERVE_BATCH_ENV, raising=False)
        monkeypatch.delenv(SERVE_DEADLINE_ENV, raising=False)
        monkeypatch.delenv(SERVE_ADMISSION_ENV, raising=False)
        assert resolve_serve_batch() == DEFAULT_SERVE_BATCH
        assert resolve_serve_deadline_ms() == 2.0
        assert resolve_serve_admission() == "queue"

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(SERVE_BATCH_ENV, "16")
        monkeypatch.setenv(SERVE_DEADLINE_ENV, "0.5")
        monkeypatch.setenv(SERVE_ADMISSION_ENV, "shed")
        assert resolve_serve_batch() == 16
        assert resolve_serve_deadline_ms() == 0.5
        assert resolve_serve_admission() == "shed"

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(SERVE_BATCH_ENV, "many")
        with pytest.raises(ConfigurationError, match=SERVE_BATCH_ENV):
            resolve_serve_batch()
        with pytest.raises(ConfigurationError, match=SERVE_DEADLINE_ENV):
            resolve_serve_deadline_ms("soon")
        with pytest.raises(ConfigurationError, match=str(ADMISSION_MODES)):
            resolve_serve_admission("panic")
        with pytest.raises(ConfigurationError, match=">= 1"):
            resolve_serve_batch(0)


class TestSizeTrigger:
    def test_batch_fills_then_flushes(self):
        store = store_of()
        clock = VirtualClock()
        batcher = MicroBatcher(
            store, max_batch=4, deadline_ms=10, queue_limit=64, clock=clock
        )
        outs = []
        for i in range(3):
            outs += batcher.submit(i, i % 2, obs_for(store, i))
        assert outs == []
        assert batcher.pending_depth == 3
        outs = batcher.submit(3, 1, obs_for(store, 3))
        assert len(outs) == 4
        assert batcher.pending_depth == 0
        assert all(isinstance(o, Decision) for o in outs)
        assert all(o.batch_size == 4 for o in outs)
        assert [o.network_id for o in outs] == [0, 1, 2, 3]

    def test_flushed_actions_match_serial(self):
        store = store_of(3)
        batcher = MicroBatcher(
            store, max_batch=6, deadline_ms=10, clock=VirtualClock()
        )
        observations = [obs_for(store, i) for i in range(6)]
        outs = []
        for i, obs in enumerate(observations):
            outs += batcher.submit(i, i % 3, obs)
        serial = [
            store.decide_serial(i % 3, obs)
            for i, obs in enumerate(observations)
        ]
        assert [o.action for o in outs] == serial


class TestDeadlineTrigger:
    def test_partial_batch_flushes_at_deadline(self):
        store = store_of()
        clock = VirtualClock()
        batcher = MicroBatcher(
            store, max_batch=64, deadline_ms=2.0, clock=clock
        )
        batcher.submit(0, 0, obs_for(store, 0))
        clock.advance(0.001)
        batcher.submit(1, 1, obs_for(store, 1))
        assert batcher.next_deadline() == pytest.approx(0.002)
        # before the oldest request's deadline: nothing happens
        assert batcher.poll(clock.advance(0.0005)) == []
        outs = batcher.poll(clock.advance(0.0006))
        assert len(outs) == 2
        assert outs[0].batch_size == 2
        # latency measured from each request's own submit time
        assert outs[0].latency_s == pytest.approx(0.0021)
        assert outs[1].latency_s == pytest.approx(0.0011)
        assert batcher.next_deadline() is None

    def test_drain_flushes_leftovers(self):
        store = store_of()
        batcher = MicroBatcher(
            store, max_batch=64, deadline_ms=50, clock=VirtualClock()
        )
        for i in range(5):
            batcher.submit(i, 0, obs_for(store, i))
        outs = batcher.drain()
        assert len(outs) == 5
        assert batcher.pending_depth == 0
        assert batcher.drain() == []


class TestAdmission:
    def _full_batcher(self, admission):
        store = store_of()
        clock = VirtualClock()
        batcher = MicroBatcher(
            store,
            max_batch=64,
            deadline_ms=50,
            queue_limit=2,
            admission=admission,
            clock=clock,
        )
        batcher.submit(0, 0, obs_for(store, 0))
        batcher.submit(1, 1, obs_for(store, 1))
        return store, batcher

    def test_shed_returns_typed_sentinel(self):
        store, batcher = self._full_batcher("shed")
        outs = batcher.submit(2, 0, obs_for(store, 2))
        assert len(outs) == 1
        assert isinstance(outs[0], ShedDecision)
        assert outs[0].network_id == 2
        assert outs[0].queue_depth == 2
        assert outs[0].reason == "queue-full"
        # the queued requests were not disturbed
        assert batcher.pending_depth == 2

    def test_degrade_answers_serially(self):
        store, batcher = self._full_batcher("degrade")
        obs = obs_for(store, 2)
        outs = batcher.submit(2, 1, obs)
        assert len(outs) == 1
        assert isinstance(outs[0], Decision)
        assert outs[0].degraded
        assert outs[0].batch_size == 1
        assert outs[0].action == store.decide_serial(1, obs)
        assert batcher.pending_depth == 2

    def test_queue_mode_flushes_to_make_room(self):
        store, batcher = self._full_batcher("queue")
        outs = batcher.submit(2, 0, obs_for(store, 2))
        # the two queued requests were served; the new one is pending
        assert [o.network_id for o in outs] == [0, 1]
        assert batcher.pending_depth == 1

    def test_admission_deterministic_under_virtual_clock(self):
        def run():
            store = store_of()
            clock = VirtualClock()
            batcher = MicroBatcher(
                store,
                max_batch=8,
                deadline_ms=1.0,
                queue_limit=4,
                admission="shed",
                clock=clock,
            )
            rng = np.random.default_rng(42)
            log = []
            for i in range(40):
                clock.advance(float(rng.exponential(0.0002)))
                log += [
                    (type(o).__name__, o.network_id, clock.now())
                    for o in batcher.poll()
                ]
                log += [
                    (type(o).__name__, o.network_id, clock.now())
                    for o in batcher.submit(
                        i, i % 2, rng.random(store.observation_size)
                    )
                ]
            log += [
                (type(o).__name__, o.network_id, clock.now())
                for o in batcher.drain()
            ]
            return log

        assert run() == run()
