"""Tests for the hardware timing model (Fig. 9 calibration)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.timing import TimingModel


class TestLatencies:
    def setup_method(self):
        self.t = TimingModel()
        self.rng = np.random.default_rng(0)

    def test_means_match_paper(self):
        # Paper Fig. 9(a): DQN 9 ms, ACK RTT 0.9 ms, processing 0.6 ms,
        # polling 13.1 ms per node.
        n = 4000
        assert self.t.dqn_inference(self.rng, n).mean() == pytest.approx(9e-3, rel=0.05)
        assert self.t.round_trip(self.rng, n).mean() == pytest.approx(0.9e-3, rel=0.05)
        assert self.t.processing(self.rng, n).mean() == pytest.approx(0.6e-3, rel=0.05)
        assert self.t.polling(self.rng, n).mean() == pytest.approx(13.1e-3, rel=0.05)

    def test_all_samples_positive(self):
        for fn in (self.t.dqn_inference, self.t.round_trip, self.t.processing, self.t.polling):
            assert (fn(self.rng, 500) > 0).all()

    def test_jitter_present(self):
        samples = self.t.dqn_inference(self.rng, 200)
        assert samples.std() > 0

    def test_packet_service_time_calibration(self):
        # ~6.1 ms/packet yields the paper's 148..806 pkts/slot (Fig. 10).
        samples = [self.t.packet_service_time(self.rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(6.1e-3, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimingModel(dqn_inference_mean_s=0.0)
        with pytest.raises(ConfigurationError):
            TimingModel(jitter_cv=0.0)
        with pytest.raises(ConfigurationError):
            TimingModel(off_channel_probability=1.5)


class TestNegotiation:
    def test_grows_with_network_size(self):
        t = TimingModel()
        rng = np.random.default_rng(1)
        small = np.mean([t.negotiation_time(1, rng) for _ in range(300)])
        large = np.mean([t.negotiation_time(10, rng) for _ in range(300)])
        assert large > small * 3

    def test_no_recovery_is_fast(self):
        # Typical per-slot announcement: DQN + polling only, ~0.05 s for a
        # 3-node network.
        t = TimingModel()
        rng = np.random.default_rng(2)
        samples = [
            t.negotiation_time(3, rng, include_recovery=False) for _ in range(300)
        ]
        assert np.mean(samples) == pytest.approx(9e-3 + 3 * 13.1e-3, rel=0.1)

    def test_recovery_tail_reaches_seconds(self):
        t = TimingModel()
        rng = np.random.default_rng(3)
        samples = [t.negotiation_time(10, rng) for _ in range(300)]
        assert max(samples) > 2.0

    def test_needs_a_node(self):
        with pytest.raises(ConfigurationError):
            TimingModel().negotiation_time(0)


class TestFixedDrawKernels:
    """The uniform-budget kernels behind aggregate (batched) sampling."""

    def setup_method(self):
        self.t = TimingModel()

    def test_uniform_count(self):
        assert self.t.negotiation_uniform_count(1) == 4
        assert self.t.negotiation_uniform_count(3) == 10
        with pytest.raises(ConfigurationError):
            self.t.negotiation_uniform_count(0)

    def test_wrong_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            self.t.negotiation_time_from_uniforms(3, np.zeros(9))

    def test_batch_rows_match_solo(self):
        # Elementwise contract: row i of a batch equals the same uniforms
        # evaluated alone — the property grid batching rests on.
        rng = np.random.default_rng(0)
        u = rng.random((6, self.t.negotiation_uniform_count(3)))
        batch = self.t.negotiation_time_from_uniforms(3, u)
        for i in range(6):
            assert batch[i] == self.t.negotiation_time_from_uniforms(3, u[i])

    def test_matches_sequential_sampler_statistics(self):
        rng = np.random.default_rng(1)
        u = rng.random((4000, self.t.negotiation_uniform_count(3)))
        fixed = self.t.negotiation_time_from_uniforms(3, u).mean()
        exact = np.mean(
            [self.t.negotiation_time(3, rng) for _ in range(4000)]
        )
        assert fixed == pytest.approx(exact, rel=0.05)

    def test_no_recovery_drops_tail(self):
        rng = np.random.default_rng(2)
        u = rng.random((1000, self.t.negotiation_uniform_count(3)))
        with_tail = self.t.negotiation_time_from_uniforms(3, u)
        without = self.t.negotiation_time_from_uniforms(
            3, u, include_recovery=False
        )
        assert np.all(without <= with_tail)
        assert without.mean() < 0.2 < with_tail.mean()

    def test_quantile_helpers(self):
        from repro.net.timing import gamma_from_uniform, normal_from_uniform

        assert normal_from_uniform(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_from_uniform(0.9772) == pytest.approx(2.0, abs=1e-2)
        u = np.linspace(0.01, 0.99, 99)
        g = gamma_from_uniform(u, 2.0, 0.6)
        assert np.all(np.diff(g) > 0)  # quantile functions are monotone
        assert np.all(g > 0)
        # Mean recovered from the quantile grid (trapezoid ~ E[X]).
        assert g.mean() == pytest.approx(2.0, rel=0.05)
