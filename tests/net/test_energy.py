"""Tests for the energy model (paper §IV-C-2)."""

import pytest

from repro.core.baselines import MaxPowerPolicy, NoDefensePolicy
from repro.core.envs import StepInfo, SweepJammingEnv
from repro.core.mdp import MDPConfig
from repro.core.metrics import SlotLog
from repro.errors import ConfigurationError
from repro.net.energy import (
    DEFAULT_LEVEL_POWERS_MW,
    EnergyModel,
    energy_of_run,
)


def info(power_index=0, hopped=False, success=True):
    return StepInfo(
        state=1,
        success=success,
        hopped=hopped,
        power_index=power_index,
        power_raised=power_index > 0,
        jam_attempted=False,
        jam_defeated=False,
        avoided_jam=False,
        reward=-6.0,
    )


class TestModel:
    def test_defaults_span_1_to_10_mw(self):
        assert DEFAULT_LEVEL_POWERS_MW[0] == pytest.approx(1.0)
        assert DEFAULT_LEVEL_POWERS_MW[-1] == pytest.approx(10.0)

    def test_higher_level_costs_more(self):
        m = EnergyModel()
        assert m.slot_energy_mj(9, False) > m.slot_energy_mj(0, False)

    def test_hop_adds_overhead(self):
        m = EnergyModel()
        assert m.slot_energy_mj(0, True) > m.slot_energy_mj(0, False)

    def test_known_value(self):
        m = EnergyModel(
            level_powers_mw=(2.0,),
            tx_duty_cycle=0.5,
            idle_power_mw=4.0,
            hop_overhead_s=0.0,
            slot_duration_s=2.0,
        )
        # 2 mW * 1 s + 4 mW * 2 s = 10 mJ.
        assert m.slot_energy_mj(0, False) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(level_powers_mw=())
        with pytest.raises(ConfigurationError):
            EnergyModel(level_powers_mw=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            EnergyModel(tx_duty_cycle=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(slot_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel().slot_energy_mj(10, False)


class TestReport:
    def test_run_accounting(self):
        history = [info(0), info(9), info(0, hopped=True)]
        report = energy_of_run(history)
        assert report.slots == 3
        assert report.total_mj > 0
        assert report.mean_mj_per_slot == pytest.approx(report.total_mj / 3)

    def test_efficiency_metric(self):
        history = [info(0, success=True), info(0, success=False)]
        report = energy_of_run(history)
        assert report.mj_per_successful_slot == pytest.approx(report.total_mj)

    def test_all_failures_infinite_cost(self):
        report = energy_of_run([info(0, success=False)])
        assert report.mj_per_successful_slot == float("inf")

    def test_lifetime_decreases_with_burn(self):
        lazy = energy_of_run([info(0)] * 10)
        greedy = energy_of_run([info(9, hopped=True)] * 10)
        assert lazy.lifetime_days() > greedy.lifetime_days()

    def test_lifetime_validation(self):
        report = energy_of_run([info(0)])
        with pytest.raises(ConfigurationError):
            report.lifetime_days(battery_mah=0.0)

    def test_empty_history(self):
        with pytest.raises(ConfigurationError):
            energy_of_run([])


class TestPolicyEnergy:
    """§IV-C-2: power-control behaviour drives consumption."""

    def run_policy(self, policy, mode, slots=3000):
        cfg = MDPConfig(jammer_mode=mode)
        env = SweepJammingEnv(cfg, seed=0)
        log = SlotLog(keep_history=True)
        for _ in range(slots):
            _, _, step = env.step_action(policy.action(env.state))
            log.record(step)
        return energy_of_run(log.history)

    def test_max_power_burns_most(self):
        cfg = MDPConfig(jammer_mode="random")
        frugal = self.run_policy(NoDefensePolicy(), "random")
        greedy = self.run_policy(MaxPowerPolicy(cfg), "random")
        assert greedy.mean_mj_per_slot > frugal.mean_mj_per_slot * 1.3

    def test_efficiency_favours_effective_defence(self):
        # Max power against the random jammer wastes energy but delivers
        # slots; doing nothing is cheap but delivers (nearly) none — the
        # per-successful-slot metric must prefer the defence.
        cfg = MDPConfig(jammer_mode="random")
        greedy = self.run_policy(MaxPowerPolicy(cfg), "random")
        frugal = self.run_policy(NoDefensePolicy(), "random")
        assert greedy.mj_per_successful_slot < frugal.mj_per_successful_slot
