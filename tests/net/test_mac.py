"""Tests for the CSMA/CA MAC."""

import pytest

from repro.errors import ConfigurationError
from repro.net.mac import BACKOFF_UNIT_S, CsmaConfig, CsmaMac


def always_idle():
    return False


def always_busy():
    return True


class TestConfig:
    def test_defaults_valid(self):
        cfg = CsmaConfig()
        assert cfg.min_backoff_exponent <= cfg.max_backoff_exponent

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CsmaConfig(min_backoff_exponent=6, max_backoff_exponent=5)
        with pytest.raises(ConfigurationError):
            CsmaConfig(max_backoffs=-1)
        with pytest.raises(ConfigurationError):
            CsmaConfig(ack_timeout_s=0.0)


class TestSend:
    def test_clean_delivery(self):
        mac = CsmaMac(seed=0)
        ok, elapsed = mac.send(always_idle, lambda: True, frame_airtime_s=1e-3)
        assert ok
        assert elapsed >= 1e-3
        assert mac.stats.delivered == 1
        assert mac.stats.delivery_ratio == 1.0

    def test_busy_channel_fails_access(self):
        mac = CsmaMac(seed=1)
        ok, elapsed = mac.send(always_busy, lambda: True, frame_airtime_s=1e-3)
        assert not ok
        assert mac.stats.channel_access_failures == 1
        # All backoffs were spent waiting.
        assert elapsed > 0

    def test_failed_acks_exhaust_retries(self):
        mac = CsmaMac(CsmaConfig(max_retries=2), seed=2)
        ok, elapsed = mac.send(always_idle, lambda: False, frame_airtime_s=1e-3)
        assert not ok
        assert mac.stats.retry_exhaustions == 1
        # 3 attempts: each transmits and waits the full ACK timeout.
        assert elapsed >= 3 * (1e-3 + CsmaConfig().ack_timeout_s)

    def test_recovery_after_transient_failure(self):
        mac = CsmaMac(seed=3)
        outcomes = iter([False, True])
        ok, _ = mac.send(always_idle, lambda: next(outcomes), frame_airtime_s=1e-3)
        assert ok

    def test_backoff_grows_with_contention(self):
        # With a channel busy for the first n checks, elapsed time grows.
        def run(busy_checks):
            mac = CsmaMac(seed=4)
            state = {"n": busy_checks}

            def channel_busy():
                if state["n"] > 0:
                    state["n"] -= 1
                    return True
                return False

            ok, elapsed = mac.send(channel_busy, lambda: True, frame_airtime_s=1e-3)
            return ok, elapsed

        ok0, t0 = run(0)
        ok3, t3 = run(3)
        assert ok0 and ok3
        assert t3 >= t0

    def test_airtime_validation(self):
        with pytest.raises(ConfigurationError):
            CsmaMac().send(always_idle, lambda: True, frame_airtime_s=0.0)

    def test_busy_time_accumulates(self):
        mac = CsmaMac(seed=5)
        for _ in range(5):
            mac.send(always_idle, lambda: True, frame_airtime_s=1e-3)
        assert mac.stats.busy_time_s >= 5e-3
        assert mac.stats.attempts == 5

    def test_backoff_unit_is_802154(self):
        assert BACKOFF_UNIT_S == pytest.approx(320e-6)
