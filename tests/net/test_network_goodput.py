"""Tests for nodes, the star network and goodput accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.net.goodput import GoodputModel
from repro.net.network import StarNetwork
from repro.net.node import Hub, Peripheral


class TestNodes:
    def test_announcement_updates_peripheral(self):
        p = Peripheral(node_id="n1")
        p.miss_announcement()
        assert p.on_control_channel
        p.apply_announcement(channel=7, power_index=3)
        assert p.channel == 7 and p.power_index == 3
        assert not p.on_control_channel

    def test_delivery_ratio(self):
        p = Peripheral(node_id="n1")
        assert p.delivery_ratio == 0.0
        p.record_transmission(True)
        p.record_transmission(False)
        assert p.delivery_ratio == 0.5

    def test_hub_announce_reaches_all(self):
        hub = Hub()
        for i in range(3):
            hub.add_peripheral(Peripheral(node_id=f"n{i}"))
        hub.announce(channel=4, power_index=2)
        assert all(p.channel == 4 for p in hub.peripherals)

    def test_duplicate_node_rejected(self):
        hub = Hub()
        hub.add_peripheral(Peripheral(node_id="n1"))
        with pytest.raises(ProtocolError):
            hub.add_peripheral(Peripheral(node_id="n1"))

    def test_hub_counters(self):
        hub = Hub()
        hub.add_peripheral(Peripheral(node_id="n1"))
        hub.peripherals[0].record_transmission(True)
        assert hub.total_delivered() == 1
        assert hub.total_sent() == 1


class TestStarNetwork:
    def test_size(self):
        net = StarNetwork(4, seed=0)
        assert net.size == 4

    def test_needs_peripherals(self):
        with pytest.raises(ConfigurationError):
            StarNetwork(0)

    def test_negotiate_announces(self):
        net = StarNetwork(3, seed=1)
        report = net.negotiate(channel=9, power_index=5)
        assert report.polled_nodes == 3
        assert all(p.channel == 9 for p in net.peripherals)
        assert net.hub.channel == 9

    def test_negotiation_time_scales_with_size(self):
        means = []
        for n in (1, 10):
            samples = [
                StarNetwork(n, seed=s).negotiate(0, 0).duration_s
                for s in range(60)
            ]
            means.append(np.mean(samples))
        assert means[1] > means[0] * 3

    def test_stranded_nodes_slow_negotiation(self):
        fast, slow = [], []
        for s in range(40):
            net = StarNetwork(5, seed=s)
            fast.append(net.negotiate(0, 0).duration_s)
            net2 = StarNetwork(5, seed=s)
            net2.strand_nodes(5)
            slow.append(net2.negotiate(0, 0).duration_s)
        assert np.mean(slow) > np.mean(fast)

    def test_strand_validation(self):
        net = StarNetwork(2, seed=0)
        with pytest.raises(ConfigurationError):
            net.strand_nodes(3)

    def test_recovered_nodes_reported(self):
        net = StarNetwork(4, seed=2)
        net.strand_nodes(4)
        report = net.negotiate(0, 0)
        assert report.recovered_nodes >= 4


class TestGoodput:
    def test_fig10_calibration(self):
        # Paper Fig. 10(a): ~148 pkts at 1 s slots, ~806 at 5 s.
        model = GoodputModel()
        g1, u1 = model.average_goodput(1.0, slots=40, rng=0)
        g5, u5 = model.average_goodput(5.0, slots=40, rng=1)
        assert g1 == pytest.approx(148, rel=0.1)
        assert g5 == pytest.approx(806, rel=0.06)
        # Fig. 10(b): utilisation rises from ~92 % to ~99 %.
        assert 0.89 < u1 < 0.95
        assert 0.97 < u5 < 1.0
        assert u5 > u1

    def test_goodput_increases_with_duration(self):
        model = GoodputModel()
        gs = [
            model.average_goodput(d, slots=15, rng=int(d * 10))[0]
            for d in (1.0, 2.0, 3.0, 4.0, 5.0)
        ]
        assert gs == sorted(gs)

    def test_jamming_scales_goodput(self):
        model = GoodputModel()
        clean, _ = model.average_goodput(3.0, slots=20, rng=2)
        jammed, _ = model.average_goodput(
            3.0, slots=20, success_probability=0.5, rng=2
        )
        assert jammed == pytest.approx(clean * 0.5, rel=0.1)

    def test_zero_success_probability(self):
        report = GoodputModel().run_slot(2.0, success_probability=0.0, rng=3)
        assert report.packets_delivered == 0
        assert report.packets_attempted > 0

    def test_slot_shorter_than_negotiation(self):
        report = GoodputModel().run_slot(0.01, rng=4)
        assert report.packets_delivered == 0
        assert report.utilization == 0.0

    def test_negotiation_override(self):
        report = GoodputModel().run_slot(2.0, negotiation_s=0.5, rng=5)
        assert report.negotiation_s == 0.5
        assert report.effective_tx_s == pytest.approx(1.5)

    def test_validation(self):
        model = GoodputModel()
        with pytest.raises(ConfigurationError):
            model.run_slot(0.0)
        with pytest.raises(ConfigurationError):
            model.run_slot(1.0, success_probability=2.0)
        with pytest.raises(ConfigurationError):
            model.run_slot(1.0, negotiation_s=-1.0)
        with pytest.raises(ConfigurationError):
            model.average_goodput(1.0, slots=0)
        with pytest.raises(ConfigurationError):
            GoodputModel(num_nodes=0)


class TestAggregateSlot:
    """run_slot_aggregate: the fixed-draw twin of run_slot."""

    def setup_method(self):
        self.model = GoodputModel()
        self.rng = np.random.default_rng(0)

    def _uniforms(self, shape=()):
        return self.rng.random(shape + (2,))

    def test_certain_success_delivers_everything(self):
        neg, tx, attempted, delivered = self.model.run_slot_aggregate(
            3.0,
            success_probability=1.0,
            negotiation_s=0.07,
            uniforms=self._uniforms(),
        )
        assert attempted > 0
        assert delivered == attempted
        assert float(neg) == 0.07

    def test_certain_failure_delivers_nothing(self):
        _, _, attempted, delivered = self.model.run_slot_aggregate(
            3.0,
            success_probability=0.0,
            negotiation_s=0.07,
            uniforms=self._uniforms(),
        )
        assert attempted > 0
        assert delivered == 0

    def test_negotiation_consuming_slot(self):
        neg, tx, attempted, delivered = self.model.run_slot_aggregate(
            3.0,
            success_probability=1.0,
            negotiation_s=5.0,
            uniforms=self._uniforms(),
        )
        # Mirrors the exact path: the whole slot burns on negotiation.
        assert float(neg) == 3.0
        assert float(tx) == 0.0
        assert attempted == 0 and delivered == 0

    def test_batch_rows_match_solo(self):
        u = self._uniforms((8,))
        p = np.linspace(0.1, 1.0, 8)
        neg = np.full(8, 0.07)
        batch = self.model.run_slot_aggregate(
            3.0, success_probability=p, negotiation_s=neg, uniforms=u
        )
        for i in range(8):
            solo = self.model.run_slot_aggregate(
                3.0,
                success_probability=p[i],
                negotiation_s=0.07,
                uniforms=u[i],
            )
            for b, s in zip(batch, solo):
                assert b[i] == s

    def test_tracks_exact_sampler_statistics(self):
        u = self._uniforms((3000,))
        _, _, _, delivered = self.model.run_slot_aggregate(
            3.0,
            success_probability=0.8,
            negotiation_s=0.07,
            uniforms=u,
        )
        exact = [
            self.model.run_slot(
                3.0,
                success_probability=0.8,
                rng=self.rng,
                negotiation_s=0.07,
            ).packets_delivered
            for _ in range(300)
        ]
        assert delivered.mean() == pytest.approx(np.mean(exact), rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.model.run_slot_aggregate(
                3.0,
                success_probability=1.5,
                negotiation_s=0.07,
                uniforms=self._uniforms(),
            )
        with pytest.raises(ConfigurationError):
            self.model.run_slot_aggregate(
                3.0,
                success_probability=0.5,
                negotiation_s=-0.1,
                uniforms=self._uniforms(),
            )
        with pytest.raises(ConfigurationError):
            self.model.run_slot_aggregate(
                3.0,
                success_probability=0.5,
                negotiation_s=0.07,
                uniforms=np.zeros(3),
            )
