"""Tests for the K=7 convolutional code and Viterbi decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.phy import convolutional as C

bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=120)


class TestEncoder:
    def test_rate_is_half(self):
        assert C.conv_encode([1, 0, 1, 1]).size == 8

    def test_zero_input_gives_zero_output(self):
        assert C.conv_encode(np.zeros(20, dtype=np.uint8)).sum() == 0

    def test_known_impulse_response(self):
        # A single 1 followed by zeros emits the generator taps.
        coded = C.conv_encode([1, 0, 0, 0, 0, 0, 0])
        # g0 = 133 octal = 1011011, g1 = 171 octal = 1111001 (MSB = newest bit)
        a_stream = coded[0::2].tolist()
        b_stream = coded[1::2].tolist()
        assert a_stream == [1, 0, 1, 1, 0, 1, 1]
        assert b_stream == [1, 1, 1, 1, 0, 0, 1]

    def test_linearity(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 2, 40).astype(np.uint8)
        y = rng.integers(0, 2, 40).astype(np.uint8)
        assert np.array_equal(
            C.conv_encode(x ^ y), C.conv_encode(x) ^ C.conv_encode(y)
        )


class TestPuncturing:
    def test_rate_23_length(self):
        coded = C.conv_encode(np.zeros(12, dtype=np.uint8))
        assert C.puncture(coded, "2/3").size == 18  # 24 bits -> 3/4 kept

    def test_rate_34_length(self):
        coded = C.conv_encode(np.zeros(12, dtype=np.uint8))
        assert C.puncture(coded, "3/4").size == 16  # 24 bits -> 2/3 kept

    def test_unknown_rate(self):
        with pytest.raises(EncodingError):
            C.puncture([0, 0], "5/6")

    def test_odd_length_rejected(self):
        with pytest.raises(EncodingError):
            C.puncture([0, 0, 0], "2/3")

    @pytest.mark.parametrize("rate", ["2/3", "3/4"])
    def test_depuncture_inverts_positions(self, rate):
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, 36).astype(np.uint8)
        coded = C.conv_encode(msg)
        punct = C.puncture(coded, rate)
        full, mask = C.depuncture(punct, rate)
        assert full.size == coded.size
        assert np.array_equal(full[mask], coded[mask])

    def test_depuncture_bad_length(self):
        with pytest.raises(DecodingError):
            C.depuncture([0, 0, 0, 0, 0], "3/4")


class TestViterbi:
    @given(bit_lists)
    @settings(max_examples=40, deadline=None)
    def test_noiseless_roundtrip(self, msg):
        coded = C.conv_encode(msg)
        decoded = C.viterbi_decode(coded)
        assert decoded.tolist() == msg

    @pytest.mark.parametrize("rate", ["1/2", "2/3", "3/4"])
    def test_noiseless_roundtrip_all_rates(self, rate):
        rng = np.random.default_rng(3)
        msg = rng.integers(0, 2, 120).astype(np.uint8)
        coded = C.encode_with_rate(msg, rate)
        decoded = C.decode_with_rate(coded, rate)
        assert np.array_equal(decoded, msg)

    def test_corrects_scattered_errors(self):
        rng = np.random.default_rng(4)
        msg = rng.integers(0, 2, 200).astype(np.uint8)
        # Terminate the trellis with six tail zeros.
        coded = C.conv_encode(np.concatenate([msg, np.zeros(6, np.uint8)]))
        corrupted = coded.copy()
        # Flip well-separated bits (beyond the traceback correlation length).
        for pos in range(0, coded.size, 40):
            corrupted[pos] ^= 1
        decoded = C.viterbi_decode(corrupted, terminated=True)
        assert np.array_equal(decoded[:200], msg)

    def test_free_distance_burst_not_necessarily_corrected(self):
        # Ten adjacent flips exceed d_free/2; decoding may differ — but the
        # decoder must still return a valid-length answer without raising.
        msg = np.zeros(50, dtype=np.uint8)
        coded = C.conv_encode(msg)
        coded[10:20] ^= 1
        decoded = C.viterbi_decode(coded)
        assert decoded.size == 50

    def test_odd_length_rejected(self):
        with pytest.raises(DecodingError):
            C.viterbi_decode([0, 1, 0])

    def test_mask_length_mismatch(self):
        with pytest.raises(DecodingError):
            C.viterbi_decode([0, 1], known_mask=np.ones(4, dtype=bool))

    def test_terminated_decoding_prefers_zero_state(self):
        msg = np.concatenate(
            [np.ones(20, np.uint8), np.zeros(6, np.uint8)]  # tail
        )
        coded = C.conv_encode(msg)
        decoded = C.viterbi_decode(coded, terminated=True)
        assert np.array_equal(decoded, msg)

    def test_decoded_output_is_binary(self):
        rng = np.random.default_rng(5)
        noisy = rng.integers(0, 2, 100).astype(np.uint8)
        decoded = C.viterbi_decode(noisy)
        assert set(np.unique(decoded)).issubset({0, 1})


class TestCodeRate:
    def test_ratio(self):
        assert C.CodeRate.from_name("3/4").ratio == 0.75

    def test_bad_name(self):
        with pytest.raises(EncodingError):
            C.CodeRate.from_name("7/8")
