"""Vectorized O-QPSK paths are sample-exact against the scalar reference.

The shipped ``oqpsk_modulate``/``oqpsk_demodulate`` are stride/reshape
NumPy implementations; these property tests pin them against the original
per-chip-pair Python loops (reproduced here verbatim as references) over
random chip streams and ``samples_per_chip`` values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import zigbee as Z
from repro.phy.bits import as_bits


def scalar_oqpsk_modulate(chips, samples_per_chip):
    """The pre-vectorization per-pair loop, kept as ground truth."""
    arr = as_bits(chips)
    levels = 1.0 - 2.0 * arr.astype(np.float64)
    pulse = np.array(Z.half_sine_pulse(samples_per_chip))
    pulse_len = pulse.size
    n_pairs = arr.size // 2
    total = (2 * n_pairs + 1) * samples_per_chip + samples_per_chip
    i_branch = np.zeros(total, dtype=np.float64)
    q_branch = np.zeros(total, dtype=np.float64)
    for p in range(n_pairs):
        start = 2 * p * samples_per_chip
        i_branch[start : start + pulse_len] += levels[2 * p] * pulse
        q_start = start + samples_per_chip
        q_branch[q_start : q_start + pulse_len] += levels[2 * p + 1] * pulse
    waveform = i_branch + 1j * q_branch
    waveform = waveform[: 2 * n_pairs * samples_per_chip + samples_per_chip]
    rms = np.sqrt(np.mean(np.abs(waveform) ** 2))
    if rms > 0:
        waveform = waveform / rms
    return waveform


def scalar_oqpsk_demodulate(waveform, samples_per_chip):
    """The pre-vectorization matched-filter loop, kept as ground truth."""
    wf = np.asarray(waveform, dtype=np.complex128).ravel()
    pulse = np.array(Z.half_sine_pulse(samples_per_chip))
    pulse_len = pulse.size
    n_pairs = (wf.size - samples_per_chip) // (2 * samples_per_chip)
    chips = np.empty(2 * n_pairs, dtype=np.uint8)
    for p in range(n_pairs):
        start = 2 * p * samples_per_chip
        seg_i = wf.real[start : start + pulse_len]
        corr_i = float(seg_i @ pulse[: seg_i.size])
        q_start = start + samples_per_chip
        seg_q = wf.imag[q_start : q_start + pulse_len]
        corr_q = float(seg_q @ pulse[: seg_q.size])
        chips[2 * p] = 0 if corr_i >= 0 else 1
        chips[2 * p + 1] = 0 if corr_q >= 0 else 1
    return chips


chip_streams = st.lists(st.integers(0, 1), min_size=2, max_size=160).map(
    lambda bits: np.array(bits[: len(bits) - len(bits) % 2], dtype=np.uint8)
)
spc_values = st.integers(min_value=1, max_value=12)


class TestModulateExactness:
    @given(chips=chip_streams, spc=spc_values)
    @settings(max_examples=60, deadline=None)
    def test_sample_exact(self, chips, spc):
        vec = Z.oqpsk_modulate(chips, spc)
        ref = scalar_oqpsk_modulate(chips, spc)
        assert vec.shape == ref.shape
        assert np.array_equal(vec, ref)  # bit-identical, not just close

    def test_default_samples_per_chip(self):
        chips = Z.spread(Z.bytes_to_symbols(b"\xa5\x0f\x33"))
        assert np.array_equal(
            Z.oqpsk_modulate(chips),
            scalar_oqpsk_modulate(chips, Z.DEFAULT_SAMPLES_PER_CHIP),
        )


class TestDemodulateExactness:
    @given(
        chips=chip_streams,
        spc=spc_values,
        noise_seed=st.integers(0, 2**31 - 1),
        snr=st.sampled_from([0.0, 0.1, 0.5, 1.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_hard_decisions_match(self, chips, spc, noise_seed, snr):
        wf = Z.oqpsk_modulate(chips, spc)
        rng = np.random.default_rng(noise_seed)
        noisy = wf + snr * (
            rng.standard_normal(wf.size) + 1j * rng.standard_normal(wf.size)
        )
        assert np.array_equal(
            Z.oqpsk_demodulate(noisy, spc), scalar_oqpsk_demodulate(noisy, spc)
        )

    @given(chips=chip_streams, spc=spc_values)
    @settings(max_examples=40, deadline=None)
    def test_clean_roundtrip(self, chips, spc):
        wf = Z.oqpsk_modulate(chips, spc)
        out = Z.oqpsk_demodulate(wf, spc)
        assert np.array_equal(out[: chips.size], chips)

    def test_trailing_padding_tolerated(self):
        chips = Z.spread([3, 9, 12])
        wf = Z.oqpsk_modulate(chips, 4)
        padded = np.concatenate([wf, np.zeros(17, dtype=np.complex128)])
        assert np.array_equal(
            Z.oqpsk_demodulate(padded, 4), scalar_oqpsk_demodulate(padded, 4)
        )


class TestPulseCache:
    def test_memoized_identity(self):
        assert Z.half_sine_pulse(10) is Z.half_sine_pulse(10)

    def test_cached_pulse_is_readonly(self):
        pulse = Z.half_sine_pulse(10)
        with pytest.raises(ValueError):
            pulse[0] = 0.0

    def test_validation_still_raised(self):
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            Z.half_sine_pulse(0)
