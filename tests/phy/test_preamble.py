"""Tests for the 802.11 preamble, SIGNAL field and full-frame assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.phy import preamble as P


class TestTrainingFields:
    def test_stf_length_and_periodicity(self):
        stf = P.short_training_field()
        assert stf.size == 160
        # Ten repetitions of a 16-sample period.
        for k in range(1, 10):
            np.testing.assert_allclose(stf[:16], stf[16 * k : 16 * (k + 1)], atol=1e-12)

    def test_ltf_length_and_structure(self):
        ltf = P.long_training_field()
        assert ltf.size == 160
        # CP is a copy of the symbol tail; the two symbols are identical.
        np.testing.assert_allclose(ltf[:32], ltf[128:160], atol=1e-12)
        np.testing.assert_allclose(ltf[32:96], ltf[96:160], atol=1e-12)

    def test_ltf_reference_has_52_active_carriers(self):
        ref = P.ltf_reference_symbol()
        assert ref.size == 53
        assert np.count_nonzero(ref) == 52
        assert set(np.unique(ref)) == {-1.0, 0.0, 1.0}

    def test_fields_have_energy(self):
        for field in (P.short_training_field(), P.long_training_field()):
            assert np.mean(np.abs(field) ** 2) > 0.1


class TestSignalField:
    @pytest.mark.parametrize("rate", sorted(P.RATE_BITS))
    def test_bits_roundtrip_all_rates(self, rate):
        field = P.SignalField(rate_mbps=rate, length=100)
        decoded = P.decode_signal_bits(P.encode_signal_bits(field))
        assert decoded == field

    @given(st.integers(1, P.MAX_LENGTH))
    @settings(max_examples=30)
    def test_length_roundtrip(self, length):
        field = P.SignalField(rate_mbps=24, length=length)
        assert P.decode_signal_bits(P.encode_signal_bits(field)).length == length

    def test_tail_bits_zero(self):
        bits = P.encode_signal_bits(P.SignalField(rate_mbps=6, length=1))
        assert bits[18:].sum() == 0

    def test_parity_detects_corruption(self):
        bits = P.encode_signal_bits(P.SignalField(rate_mbps=6, length=77))
        bits[7] ^= 1
        with pytest.raises(DecodingError, match="parity"):
            P.decode_signal_bits(bits)

    def test_invalid_rate_bits(self):
        bits = P.encode_signal_bits(P.SignalField(rate_mbps=6, length=77))
        # 0000 is not a valid RATE pattern; fix parity accordingly.
        bits[0:4] = [0, 0, 0, 0]
        bits[17] = int(bits[0:17].sum()) & 1
        with pytest.raises(DecodingError, match="RATE"):
            P.decode_signal_bits(bits)

    def test_field_validation(self):
        with pytest.raises(EncodingError):
            P.SignalField(rate_mbps=11, length=10)
        with pytest.raises(EncodingError):
            P.SignalField(rate_mbps=6, length=0)
        with pytest.raises(EncodingError):
            P.SignalField(rate_mbps=6, length=5000)

    def test_wrong_bit_count(self):
        with pytest.raises(DecodingError):
            P.decode_signal_bits(np.zeros(23, np.uint8))

    def test_symbol_roundtrip(self):
        field = P.SignalField(rate_mbps=36, length=1234)
        assert P.demodulate_signal(P.modulate_signal(field)) == field

    def test_symbol_roundtrip_with_noise(self):
        rng = np.random.default_rng(0)
        sym = P.modulate_signal(P.SignalField(rate_mbps=54, length=60))
        noisy = sym + 0.05 * (
            rng.standard_normal(sym.size) + 1j * rng.standard_normal(sym.size)
        )
        assert P.demodulate_signal(noisy).rate_mbps == 54


class TestFullFrame:
    @pytest.mark.parametrize("rate", [6, 24, 54])
    def test_ppdu_roundtrip(self, rate):
        payload = bytes(range(50))
        frame = P.build_ppdu(payload, rate_mbps=rate)
        parsed = P.parse_ppdu(frame)
        assert parsed.payload == payload
        assert parsed.signal.rate_mbps == rate
        assert parsed.signal.length == 50
        assert parsed.start_index == 0

    def test_frame_layout(self):
        frame = P.build_ppdu(b"x" * 10, rate_mbps=54)
        # 160 STF + 160 LTF + 80 SIGNAL + one 80-sample DATA symbol.
        assert frame.size == 160 + 160 + 80 + 80

    def test_locate_preamble_with_offset(self):
        rng = np.random.default_rng(1)
        frame = P.build_ppdu(b"offset test", rate_mbps=24)
        noise = 0.01 * (rng.standard_normal(137) + 1j * rng.standard_normal(137))
        capture = np.concatenate([noise, frame])
        parsed = P.parse_ppdu(capture, locate=True)
        assert parsed.start_index == 137
        assert parsed.payload == b"offset test"

    def test_locate_rejects_pure_noise(self):
        rng = np.random.default_rng(2)
        noise = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        with pytest.raises(DecodingError, match="no preamble"):
            P.locate_preamble(noise)

    def test_truncated_frame_rejected(self):
        frame = P.build_ppdu(b"truncate me", rate_mbps=6)
        with pytest.raises(DecodingError, match="truncated"):
            P.parse_ppdu(frame[:-40])

    def test_too_short_capture(self):
        with pytest.raises(DecodingError):
            P.parse_ppdu(np.zeros(100, complex))

    def test_empty_payload_rejected(self):
        with pytest.raises(EncodingError):
            P.build_ppdu(b"")

    def test_receiver_learns_rate_from_signal(self):
        # The parser must decode DATA at whatever rate SIGNAL declares.
        for rate in (12, 48):
            frame = P.build_ppdu(b"rate agility", rate_mbps=rate)
            assert P.parse_ppdu(frame).payload == b"rate agility"
