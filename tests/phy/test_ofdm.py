"""Tests for the 64-point OFDM modem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.phy import ofdm


def random_grid(rng, n):
    re = rng.standard_normal((n, len(ofdm.DATA_INDICES)))
    im = rng.standard_normal((n, len(ofdm.DATA_INDICES)))
    return (re + 1j * im) / np.sqrt(2)


class TestGridGeometry:
    def test_counts(self):
        assert len(ofdm.DATA_INDICES) == 48
        assert len(ofdm.PILOT_INDICES) == 4
        assert ofdm.SYMBOL_LENGTH == 80

    def test_dc_not_used(self):
        assert 0 not in ofdm.DATA_INDICES

    def test_pilots_not_data(self):
        assert not set(ofdm.PILOT_INDICES) & set(ofdm.DATA_INDICES)

    def test_occupied_band(self):
        assert min(ofdm.DATA_INDICES) == -26
        assert max(ofdm.DATA_INDICES) == 26

    def test_grid_dataclass(self):
        assert ofdm.GRID.data_per_symbol == 48
        assert ofdm.GRID.symbol_length == 80

    def test_subcarrier_frequency(self):
        assert ofdm.subcarrier_frequency(1) == pytest.approx(312.5e3)
        assert ofdm.subcarrier_frequency(-26) == pytest.approx(-8.125e6)
        with pytest.raises(EncodingError):
            ofdm.subcarrier_frequency(64)


class TestPilots:
    def test_polarity_values(self):
        assert ofdm.pilot_polarity(0) == 1.0
        assert ofdm.pilot_polarity(4) == -1.0

    def test_polarity_period(self):
        assert ofdm.pilot_polarity(3) == ofdm.pilot_polarity(3 + 127)

    def test_pilots_present_in_spectrum(self):
        sym = ofdm.modulate_symbol(np.zeros(48), symbol_index=0)
        spec = ofdm.spectrum_of(sym)
        for k, val in zip(ofdm.PILOT_INDICES, ofdm.PILOT_VALUES):
            assert spec[k % 64] == pytest.approx(val, abs=1e-9)


class TestRoundtrip:
    def test_single_symbol(self):
        rng = np.random.default_rng(0)
        data = random_grid(rng, 1)[0]
        sym = ofdm.modulate_symbol(data, symbol_index=3)
        assert sym.size == 80
        out = ofdm.demodulate_symbol(sym)
        np.testing.assert_allclose(out, data, atol=1e-10)

    def test_no_cp_variant(self):
        rng = np.random.default_rng(1)
        data = random_grid(rng, 1)[0]
        sym = ofdm.modulate_symbol(data, include_cp=False)
        assert sym.size == 64
        out = ofdm.demodulate_symbol(sym, has_cp=False)
        np.testing.assert_allclose(out, data, atol=1e-10)

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_stream(self, n):
        rng = np.random.default_rng(n)
        grid = random_grid(rng, n)
        samples = ofdm.modulate_stream(grid)
        assert samples.size == n * 80
        out = ofdm.demodulate_stream(samples)
        np.testing.assert_allclose(out, grid, atol=1e-10)

    def test_cyclic_prefix_is_copy_of_tail(self):
        rng = np.random.default_rng(2)
        sym = ofdm.modulate_symbol(random_grid(rng, 1)[0])
        np.testing.assert_allclose(sym[:16], sym[-16:], atol=1e-12)

    def test_wrong_data_count(self):
        with pytest.raises(EncodingError):
            ofdm.modulate_symbol(np.zeros(47))

    def test_wrong_sample_count(self):
        with pytest.raises(EncodingError):
            ofdm.demodulate_symbol(np.zeros(81, dtype=complex))

    def test_stream_length_validation(self):
        with pytest.raises(EncodingError):
            ofdm.demodulate_stream(np.zeros(100, dtype=complex))

    def test_bad_grid_shape(self):
        with pytest.raises(EncodingError):
            ofdm.modulate_stream(np.zeros((2, 47), dtype=complex))


class TestEnergy:
    def test_parseval_scaling(self):
        # The sqrt(N) IFFT scaling preserves total energy between the
        # spectrum and the symbol body.
        rng = np.random.default_rng(3)
        data = random_grid(rng, 1)[0]
        sym = ofdm.modulate_symbol(data, include_cp=False, symbol_index=1)
        spec_energy = np.sum(np.abs(data) ** 2) + np.sum(ofdm.PILOT_VALUES**2)
        time_energy = np.sum(np.abs(sym) ** 2)
        assert time_energy == pytest.approx(spec_energy)
