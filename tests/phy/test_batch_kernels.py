"""Vectorised PHY kernels are bit-identical to their retained references.

PR 5 turned four hot loops into tensor ops — DSSS despreading (±1 GEMM
against ``CHIP_TABLE_PM``), batched O-QPSK modulation/demodulation, the
symbol-aligned preamble search, and the STF sliding correlation. Each
shipped implementation keeps its original loop as ``*_reference``; these
property tests pin them equal over random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.phy import preamble as P
from repro.phy import sync as S
from repro.phy import zigbee as Z
from repro.rng import make_rng

# ---------------------------------------------------------------------------
# despread: one ±1 GEMM vs the broadcast Hamming scan
# ---------------------------------------------------------------------------

chip_blocks = st.integers(0, 2**31 - 1).map(
    lambda seed: (
        lambda r: r.integers(
            0, 2, 32 * int(r.integers(1, 12)), dtype=np.uint8
        )
    )(np.random.default_rng(seed))
)


class TestDespreadGemm:
    @given(chips=chip_blocks)
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_reference(self, chips):
        sym_gemm, err_gemm = Z.despread(chips)
        sym_ref, err_ref = Z.despread_reference(chips)
        assert np.array_equal(sym_gemm, sym_ref)
        assert np.array_equal(err_gemm, err_ref)
        assert sym_gemm.dtype == sym_ref.dtype
        assert err_gemm.dtype == err_ref.dtype

    def test_clean_roundtrip(self):
        symbols = np.arange(16, dtype=np.uint8)
        decoded, errors = Z.despread(Z.spread(symbols))
        assert np.array_equal(decoded, symbols)
        assert not errors.any()

    def test_tie_break_pinned_to_lowest_symbol(self):
        # Flip chips until two table rows are equidistant: argmin must
        # pick the lowest symbol index, exactly like the reference.
        chips = Z.CHIP_TABLE[3].copy()
        for flips in range(1, 17):
            trial = chips.copy()
            trial[:flips] ^= 1
            assert np.array_equal(
                Z.despread(trial)[0], Z.despread_reference(trial)[0]
            )

    def test_rejects_partial_symbols(self):
        with pytest.raises(DecodingError):
            Z.despread(np.zeros(33, dtype=np.uint8))


# ---------------------------------------------------------------------------
# batched O-QPSK: (N, samples) paths vs the serial per-row pipeline
# ---------------------------------------------------------------------------


class TestBatchedOqpsk:
    @pytest.mark.parametrize("spc", [1, 4, 10])
    def test_modulate_rows_match_serial(self, spc):
        r = make_rng(5)
        chips = r.integers(0, 2, (6, 64), dtype=np.uint8)
        batch = Z.oqpsk_modulate_batch(chips, spc)
        for i in range(chips.shape[0]):
            assert np.array_equal(batch[i], Z.oqpsk_modulate(chips[i], spc))

    @pytest.mark.parametrize("spc", [1, 4, 10])
    def test_demodulate_rows_match_serial(self, spc):
        r = make_rng(6)
        chips = r.integers(0, 2, (5, 64), dtype=np.uint8)
        wf = Z.oqpsk_modulate_batch(chips, spc)
        noisy = wf + 0.3 * (
            r.standard_normal(wf.shape) + 1j * r.standard_normal(wf.shape)
        )
        batch = Z.oqpsk_demodulate_batch(noisy, spc)
        for i in range(chips.shape[0]):
            assert np.array_equal(batch[i], Z.oqpsk_demodulate(noisy[i], spc))

    def test_batch_roundtrip(self):
        r = make_rng(7)
        chips = r.integers(0, 2, (4, 96), dtype=np.uint8)
        out = Z.oqpsk_demodulate_batch(Z.oqpsk_modulate_batch(chips, 10), 10)
        assert np.array_equal(out[:, : chips.shape[1]], chips)

    def test_validation(self):
        with pytest.raises(EncodingError):
            Z.oqpsk_modulate_batch(np.zeros(8, dtype=np.uint8), 10)  # 1-D
        with pytest.raises(EncodingError):
            Z.oqpsk_modulate_batch(np.zeros((2, 3), dtype=np.uint8), 10)
        with pytest.raises(EncodingError):
            Z.oqpsk_modulate_batch(np.full((2, 4), 2, dtype=np.uint8), 10)


# ---------------------------------------------------------------------------
# symbol-aligned preamble search: windowed compare vs per-offset scan
# ---------------------------------------------------------------------------


def _chip_stream(seed, *, plant_preamble):
    r = np.random.default_rng(seed)
    n = int(r.integers(100, 400))
    arr = r.integers(0, 2, n, dtype=np.uint8)
    if plant_preamble:
        offset = int(r.integers(0, max(n - 4 * 32, 1)))
        run = np.tile(Z.CHIP_TABLE[0], 4)
        end = min(offset + run.size, n)
        arr[offset:end] = run[: end - offset]
        # Sprinkle a few chip errors inside the tolerance budget.
        flips = r.integers(0, n, size=3)
        arr[flips] ^= 1
    return arr


class TestFindPreamble:
    @given(seed=st.integers(0, 2**31 - 1), plant=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_reference(self, seed, plant):
        arr = _chip_stream(seed, plant_preamble=plant)
        assert S.find_preamble(arr) == S.find_preamble_reference(arr)

    @given(
        seed=st.integers(0, 2**31 - 1),
        start=st.integers(0, 64),
        tolerance=st.integers(0, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_start_and_tolerance_respected(self, seed, start, tolerance):
        arr = _chip_stream(seed, plant_preamble=True)
        assert S.find_preamble(
            arr, start=start, tolerance=tolerance
        ) == S.find_preamble_reference(arr, start=start, tolerance=tolerance)

    def test_short_stream(self):
        arr = np.zeros(4 * 32 - 1, dtype=np.uint8)
        assert S.find_preamble(arr) is None
        assert S.find_preamble_reference(arr) is None

    def test_exact_preamble_found_at_zero(self):
        arr = np.tile(Z.CHIP_TABLE[0], 8)
        assert S.find_preamble(arr) == 0


# ---------------------------------------------------------------------------
# Wi-Fi STF sliding correlation: np.correlate vs the per-window vdot
# ---------------------------------------------------------------------------


class TestLocatePreamble:
    @given(
        seed=st.integers(0, 2**31 - 1),
        pad=st.integers(0, 300),
        scale=st.sampled_from([0.5, 1.0, 2.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_to_reference(self, seed, pad, scale):
        r = np.random.default_rng(seed)
        stf = P.short_training_field()
        noise = 0.05 * (
            r.standard_normal(pad + 4 * stf.size)
            + 1j * r.standard_normal(pad + 4 * stf.size)
        )
        wf = noise.copy()
        wf[pad : pad + stf.size] += scale * stf
        assert P.locate_preamble(wf) == P.locate_preamble_reference(wf)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_pure_noise_agrees(self, seed):
        r = np.random.default_rng(seed)
        wf = r.standard_normal(600) + 1j * r.standard_normal(600)
        try:
            got = P.locate_preamble(wf)
        except DecodingError:
            with pytest.raises(DecodingError):
                P.locate_preamble_reference(wf)
        else:
            assert got == P.locate_preamble_reference(wf)

    def test_capture_too_short(self):
        with pytest.raises(DecodingError):
            P.locate_preamble(np.zeros(3, dtype=np.complex128))
