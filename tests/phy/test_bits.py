"""Unit and property tests for repro.phy.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.phy import bits as B


class TestAsBits:
    def test_accepts_list(self):
        out = B.as_bits([0, 1, 1, 0])
        assert out.dtype == np.uint8
        assert out.tolist() == [0, 1, 1, 0]

    def test_rejects_non_binary(self):
        with pytest.raises(EncodingError):
            B.as_bits([0, 2])

    def test_empty(self):
        assert B.as_bits([]).size == 0

    def test_flattens(self):
        assert B.as_bits([[0, 1], [1, 0]]).shape == (4,)


class TestBytesBits:
    def test_known_value_lsb(self):
        # 0x01 -> LSB first: 1 0 0 0 0 0 0 0
        assert B.bytes_to_bits(b"\x01").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_known_value_msb(self):
        assert B.bytes_to_bits(b"\x80", lsb_first=False).tolist() == [
            1, 0, 0, 0, 0, 0, 0, 0,
        ]

    def test_empty(self):
        assert B.bytes_to_bits(b"").size == 0
        assert B.bits_to_bytes([]) == b""

    def test_non_octet_length_rejected(self):
        with pytest.raises(EncodingError):
            B.bits_to_bytes([1, 0, 1])

    @given(st.binary(max_size=64))
    def test_roundtrip_lsb(self, data):
        assert B.bits_to_bytes(B.bytes_to_bits(data)) == data

    @given(st.binary(max_size=64))
    def test_roundtrip_msb(self, data):
        bits = B.bytes_to_bits(data, lsb_first=False)
        assert B.bits_to_bytes(bits, lsb_first=False) == data


class TestIntBits:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        bits = B.int_to_bits(value, 16)
        assert bits.size == 16
        assert B.bits_to_int(bits) == value

    def test_msb_order(self):
        assert B.int_to_bits(1, 4, lsb_first=False).tolist() == [0, 0, 0, 1]
        assert B.bits_to_int([0, 0, 0, 1], lsb_first=False) == 1

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            B.int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            B.int_to_bits(-1, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(EncodingError):
            B.int_to_bits(0, 0)


class TestHamming:
    def test_distance(self):
        assert B.hamming_distance([0, 1, 1], [1, 1, 0]) == 2

    def test_ber(self):
        assert B.bit_error_rate([0, 0, 0, 0], [0, 1, 0, 1]) == 0.5

    def test_ber_empty(self):
        assert B.bit_error_rate([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(EncodingError):
            B.hamming_distance([0], [0, 1])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
    def test_self_distance_zero(self, bits):
        assert B.hamming_distance(bits, bits) == 0


class TestCrc:
    def test_known_vector(self):
        # CRC-16/X25-family reflected CRC with init 0: '123456789' -> 0x2189
        # is the CRC-16/KERMIT check value, which is this polynomial/config.
        assert B.crc16_itut(b"123456789") == 0x2189

    def test_empty(self):
        assert B.crc16_itut(b"") == 0

    @given(st.binary(min_size=1, max_size=64))
    def test_append_check_roundtrip(self, data):
        assert B.check_crc(B.append_crc(data))

    @given(st.binary(min_size=1, max_size=32), st.integers(0, 255))
    def test_corruption_detected(self, data, flip):
        framed = bytearray(B.append_crc(data))
        pos = flip % len(framed)
        bit = 1 << (flip % 8)
        framed[pos] ^= bit
        assert not B.check_crc(bytes(framed))

    def test_too_short(self):
        assert not B.check_crc(b"\x00")


class TestFlipBits:
    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(0)
        bits = B.bytes_to_bits(b"\xaa\x55")
        assert np.array_equal(B.flip_bits(bits, 0.0, rng), bits)

    def test_full_rate_flips_all(self):
        rng = np.random.default_rng(0)
        bits = np.zeros(64, dtype=np.uint8)
        assert B.flip_bits(bits, 1.0, rng).sum() == 64

    def test_invalid_rate(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            B.flip_bits([0, 1], 1.5, rng)

    def test_does_not_mutate_input(self):
        rng = np.random.default_rng(0)
        bits = np.zeros(32, dtype=np.uint8)
        B.flip_bits(bits, 1.0, rng)
        assert bits.sum() == 0


class TestVectorizedAgainstReferences:
    """The unpackbits/packbits/table paths equal the retained loops."""

    @given(
        value=st.integers(min_value=0, max_value=2**80 - 1),
        extra=st.integers(0, 20),
        lsb_first=st.booleans(),
    )
    def test_int_to_bits_matches_reference(self, value, extra, lsb_first):
        width = max(value.bit_length(), 1) + extra
        assert np.array_equal(
            B.int_to_bits(value, width, lsb_first=lsb_first),
            B.int_to_bits_reference(value, width, lsb_first=lsb_first),
        )

    @given(
        bits=st.lists(st.integers(0, 1), min_size=0, max_size=90),
        lsb_first=st.booleans(),
    )
    def test_bits_to_int_matches_reference(self, bits, lsb_first):
        arr = np.array(bits, dtype=np.uint8)
        assert B.bits_to_int(arr, lsb_first=lsb_first) == (
            B.bits_to_int_reference(arr, lsb_first=lsb_first)
        )

    @given(value=st.integers(min_value=0, max_value=2**64 - 1))
    def test_int_bits_roundtrip(self, value):
        width = max(value.bit_length(), 1)
        assert B.bits_to_int(B.int_to_bits(value, width)) == value

    @given(data=st.binary(min_size=0, max_size=200),
           initial=st.integers(0, 0xFFFF))
    def test_crc16_table_matches_bit_serial(self, data, initial):
        assert B.crc16_itut(data, initial=initial) == (
            B.crc16_itut_reference(data, initial=initial)
        )

    def test_crc16_known_vector(self):
        # CRC-16/KERMIT check value for "123456789".
        assert B.crc16_itut(b"123456789") == 0x2189
        assert B.crc16_itut_reference(b"123456789") == 0x2189

    def test_int_to_bits_validation_preserved(self):
        for fn in (B.int_to_bits, B.int_to_bits_reference):
            with pytest.raises(EncodingError):
                fn(-1, 4)
            with pytest.raises(EncodingError):
                fn(1, 0)
            with pytest.raises(EncodingError):
                fn(16, 4)
