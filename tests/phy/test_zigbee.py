"""Tests for the IEEE 802.15.4 O-QPSK/DSSS PHY."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.phy import zigbee as Z


class TestChipTable:
    def test_shape(self):
        assert Z.CHIP_TABLE.shape == (16, 32)

    def test_symbol_zero_matches_standard(self):
        expected = [1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
                    0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0]
        assert Z.CHIP_TABLE[0].tolist() == expected

    def test_symbol_one_is_rotation(self):
        assert np.array_equal(Z.CHIP_TABLE[1], np.roll(Z.CHIP_TABLE[0], 4))

    def test_symbol_eight_matches_standard(self):
        expected = [1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 1, 0,
                    0, 0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1]
        assert Z.CHIP_TABLE[8].tolist() == expected

    def test_rows_distinct(self):
        rows = {tuple(r) for r in Z.CHIP_TABLE.tolist()}
        assert len(rows) == 16

    def test_good_cross_correlation(self):
        # Distinct PN sequences keep a healthy Hamming separation — the
        # source of DSSS robustness. The 802.15.4 set guarantees >= 12.
        for i in range(16):
            for j in range(i + 1, 16):
                d = int(np.sum(Z.CHIP_TABLE[i] != Z.CHIP_TABLE[j]))
                assert d >= 12, (i, j, d)

    def test_antipodal_table(self):
        assert set(np.unique(Z.CHIP_TABLE_PM)) == {-1.0, 1.0}


class TestSymbolPacking:
    @given(st.binary(max_size=64))
    def test_roundtrip(self, data):
        assert Z.symbols_to_bytes(Z.bytes_to_symbols(data)) == data

    def test_nibble_order(self):
        # 0xA3 -> low nibble 0x3 first.
        assert Z.bytes_to_symbols(b"\xa3").tolist() == [0x3, 0xA]

    def test_odd_symbol_count_rejected(self):
        with pytest.raises(DecodingError):
            Z.symbols_to_bytes([1, 2, 3])

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(DecodingError):
            Z.symbols_to_bytes([16, 0])


class TestSpreading:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=40))
    def test_despread_inverts_spread(self, symbols):
        chips = Z.spread(symbols)
        out, errors = Z.despread(chips)
        assert out.tolist() == symbols
        assert errors.sum() == 0

    def test_spread_length(self):
        assert Z.spread([0, 5, 9]).size == 96

    def test_bad_symbol(self):
        with pytest.raises(EncodingError):
            Z.spread([16])

    def test_partial_window_rejected(self):
        with pytest.raises(DecodingError):
            Z.despread(np.zeros(33, np.uint8))

    def test_despread_tolerates_chip_errors(self):
        rng = np.random.default_rng(0)
        symbols = list(rng.integers(0, 16, 50))
        chips = Z.spread(symbols).copy()
        # Flip 5 of every 32 chips: below half the minimum distance (12).
        for w in range(50):
            flip = rng.choice(32, size=5, replace=False) + 32 * w
            chips[flip] ^= 1
        out, errors = Z.despread(chips)
        assert out.tolist() == symbols
        assert errors.max() == 5


class TestOqpskWaveform:
    def test_unit_power(self):
        wf = Z.oqpsk_modulate(Z.spread([3, 7]))
        assert np.mean(np.abs(wf) ** 2) == pytest.approx(1.0)

    def test_odd_chip_count_rejected(self):
        with pytest.raises(EncodingError):
            Z.oqpsk_modulate([0])

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_waveform_roundtrip(self, symbols):
        chips = Z.spread(symbols)
        wf = Z.oqpsk_modulate(chips)
        out = Z.oqpsk_demodulate(wf)
        assert np.array_equal(out[: chips.size], chips)

    def test_roundtrip_with_awgn(self):
        rng = np.random.default_rng(1)
        chips = Z.spread(list(rng.integers(0, 16, 20)))
        wf = Z.oqpsk_modulate(chips)
        noisy = wf + 0.2 * (
            rng.standard_normal(wf.size) + 1j * rng.standard_normal(wf.size)
        )
        out = Z.oqpsk_demodulate(noisy)
        ber = np.mean(out[: chips.size] != chips)
        assert ber < 0.02

    def test_demod_too_short(self):
        with pytest.raises(DecodingError):
            Z.oqpsk_demodulate(np.zeros(5, dtype=complex))

    def test_samples_per_chip_variants(self):
        for spc in (2, 4, 8, 10):
            chips = Z.spread([1, 14])
            wf = Z.oqpsk_modulate(chips, samples_per_chip=spc)
            out = Z.oqpsk_demodulate(wf, samples_per_chip=spc)
            assert np.array_equal(out[: chips.size], chips)

    def test_half_sine_pulse_shape(self):
        pulse = Z.half_sine_pulse(10)
        assert pulse.size == 20
        assert pulse.max() <= 1.0
        assert pulse.min() > 0.0
        # Symmetric about the centre.
        np.testing.assert_allclose(pulse, pulse[::-1], atol=1e-12)


class TestPhyClass:
    def test_rates(self):
        assert Z.BIT_RATE == pytest.approx(250e3)
        assert Z.SYMBOL_RATE == pytest.approx(62.5e3)

    @given(st.binary(min_size=1, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_byte_roundtrip(self, data):
        phy = Z.ZigBeePhy()
        res = phy.receive(phy.transmit(data), num_bytes=len(data))
        assert res.data == data
        assert res.chip_error_rate == 0.0

    def test_empty_payload_rejected(self):
        with pytest.raises(EncodingError):
            Z.ZigBeePhy().transmit(b"")

    def test_receive_insufficient_waveform(self):
        phy = Z.ZigBeePhy()
        wf = phy.transmit(b"\x01")
        with pytest.raises(DecodingError):
            phy.receive(wf, num_bytes=5)

    def test_duration(self):
        # One byte = 2 symbols = 64 chips at 2 Mchip/s = 32 µs.
        assert Z.ZigBeePhy().duration_for(1) == pytest.approx(32e-6)

    def test_config_validation(self):
        with pytest.raises(EncodingError):
            Z.ZigBeePhyConfig(samples_per_chip=0)

    def test_sample_rate(self):
        assert Z.ZigBeePhyConfig(samples_per_chip=10).sample_rate == pytest.approx(20e6)
