"""Golden equivalence: vectorised encoder/decoder vs the reference loops.

The vectorised fast paths must be *bit-identical* to the straightforward
per-step implementations they replaced (kept as ``*_reference``). These
tests pin that contract over random messages, every supported code rate,
channel noise, puncturing erasures, and terminated trellises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import convolutional as C
from repro.phy import interleaver as I

RATES = sorted(C.PUNCTURE_PATTERNS)  # ["1/2", "2/3", "3/4"]


def _rng(seed):
    return np.random.default_rng(seed)


class TestEncoderEquivalence:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_random_messages(self, bits):
        np.testing.assert_array_equal(
            C.conv_encode(bits), C.conv_encode_reference(bits)
        )

    def test_many_lengths(self):
        rng = _rng(0)
        for n in range(1, 129):
            bits = rng.integers(0, 2, size=n)
            np.testing.assert_array_equal(
                C.conv_encode(bits), C.conv_encode_reference(bits)
            )

    def test_empty_input(self):
        np.testing.assert_array_equal(
            C.conv_encode([]), C.conv_encode_reference([])
        )


class TestPunctureMasks:
    @pytest.mark.parametrize("rate", RATES)
    def test_mask_follows_pattern(self, rate):
        pat_a, pat_b = C.PUNCTURE_PATTERNS[rate]
        period = len(pat_a)
        half_len = 3 * period + 1  # a non-multiple exercises the tiling tail
        mask = C._keep_mask(rate, half_len)
        for i in range(half_len):
            assert mask[2 * i] == bool(pat_a[i % period])
            assert mask[2 * i + 1] == bool(pat_b[i % period])

    def test_mask_is_cached_and_frozen(self):
        a = C._keep_mask("3/4", 18)
        assert a is C._keep_mask("3/4", 18)
        with pytest.raises(ValueError):
            a[0] = False

    @pytest.mark.parametrize("rate", RATES)
    def test_puncture_depuncture_roundtrip(self, rate):
        rng = _rng(1)
        pat_a, _ = C.PUNCTURE_PATTERNS[rate]
        coded = rng.integers(0, 2, size=2 * len(pat_a) * 5).astype(np.uint8)
        thin = C.puncture(coded, rate)
        full, mask = C.depuncture(thin, rate)
        assert full.size == coded.size and mask.size == coded.size
        np.testing.assert_array_equal(full[mask], coded[mask])
        assert not full[~mask].any()


class TestViterbiEquivalence:
    @pytest.mark.parametrize("terminated", [False, True])
    def test_clean_streams(self, terminated):
        rng = _rng(2)
        for n in (1, 7, 24, 96):
            msg = rng.integers(0, 2, size=n)
            if terminated:
                msg = np.concatenate([msg, np.zeros(6, dtype=np.int64)])
            coded = C.conv_encode(msg)
            np.testing.assert_array_equal(
                C.viterbi_decode(coded, terminated=terminated),
                C.viterbi_decode_reference(coded, terminated=terminated),
            )

    @pytest.mark.parametrize("flips", [1, 4, 12])
    @pytest.mark.parametrize("terminated", [False, True])
    def test_noisy_streams(self, flips, terminated):
        rng = _rng(3)
        for trial in range(5):
            msg = rng.integers(0, 2, size=60)
            coded = C.conv_encode(np.concatenate([msg, np.zeros(6, dtype=np.int64)]))
            noisy = coded.copy()
            idx = rng.choice(coded.size, size=flips, replace=False)
            noisy[idx] ^= 1
            np.testing.assert_array_equal(
                C.viterbi_decode(noisy, terminated=terminated),
                C.viterbi_decode_reference(noisy, terminated=terminated),
            )

    def test_random_garbage_streams(self):
        # Pure noise maximises metric ties — the sharpest test of the
        # tie-breaking equivalence between argmin and stable argsort.
        rng = _rng(4)
        for trial in range(10):
            junk = rng.integers(0, 2, size=2 * rng.integers(1, 80))
            np.testing.assert_array_equal(
                C.viterbi_decode(junk), C.viterbi_decode_reference(junk)
            )

    @pytest.mark.parametrize("rate", RATES)
    @pytest.mark.parametrize("terminated", [False, True])
    def test_punctured_rates(self, rate, terminated):
        rng = _rng(5)
        pat_a, _ = C.PUNCTURE_PATTERNS[rate]
        for trial in range(4):
            # Message length stays a pattern-period multiple and leaves
            # room for the 6 tail bits in the terminated variant.
            n = len(pat_a) * int(rng.integers(7, 16))
            msg = rng.integers(0, 2, size=n - (6 if terminated else 0))
            if terminated:
                msg = np.concatenate([msg, np.zeros(6, dtype=np.int64)])
            thin = C.encode_with_rate(msg, rate)
            if trial:
                noisy = thin.copy()
                noisy[rng.choice(thin.size, size=2, replace=False)] ^= 1
                thin = noisy
            full, mask = C.depuncture(thin, rate)
            np.testing.assert_array_equal(
                C.viterbi_decode(full, known_mask=mask, terminated=terminated),
                C.viterbi_decode_reference(
                    full, known_mask=mask, terminated=terminated
                ),
            )

    @pytest.mark.parametrize("rate", RATES)
    def test_decode_with_rate_corrects_noise(self, rate):
        rng = _rng(6)
        pat_a, _ = C.PUNCTURE_PATTERNS[rate]
        msg = np.concatenate(
            [rng.integers(0, 2, size=len(pat_a) * 10 - 6), np.zeros(6, dtype=np.int64)]
        )
        thin = C.encode_with_rate(msg, rate)
        noisy = thin.copy()
        noisy[3] ^= 1
        np.testing.assert_array_equal(
            C.decode_with_rate(noisy, rate, terminated=True), msg
        )


class TestInterleaverCache:
    def test_permutation_cache_shares_and_protects(self):
        a = I._permutation_cached(48, 1)
        assert a is I._permutation_cached(48, 1)
        with pytest.raises(ValueError):
            a[0] = 0
        # The public accessor hands out a private, writable copy.
        pub = I.interleave_permutation(48, 1)
        assert pub is not a
        pub[0] = 0  # must not poison the cache
        np.testing.assert_array_equal(I.interleave_permutation(48, 1), a)

    @pytest.mark.parametrize("n_cbps,n_bpsc", [(48, 1), (96, 2), (192, 4), (288, 6)])
    def test_blockwise_roundtrip_multi_symbol(self, n_cbps, n_bpsc):
        rng = _rng(7)
        bits = rng.integers(0, 2, size=n_cbps * 3).astype(np.uint8)
        inter = I.interleave(bits, n_cbps, n_bpsc)
        np.testing.assert_array_equal(
            I.deinterleave(inter, n_cbps, n_bpsc), bits
        )
        # Vectorised multi-block path == one block at a time.
        perm = I.interleave_permutation(n_cbps, n_bpsc)
        for k in range(3):
            block = bits[k * n_cbps : (k + 1) * n_cbps]
            manual = np.empty_like(block)
            manual[perm] = block
            np.testing.assert_array_equal(
                inter[k * n_cbps : (k + 1) * n_cbps], manual
            )
