"""Tests for the ZigBee frame format and the stealthy-decode model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import ZIGBEE_MAX_PSDU, ZIGBEE_PREAMBLE, ZIGBEE_SFD
from repro.errors import DecodingError, EncodingError
from repro.phy import packet as P


class TestEncode:
    def test_layout(self):
        ppdu = P.encode_frame(b"AB")
        assert ppdu[:4] == b"\x00\x00\x00\x00"
        assert ppdu[4] == ZIGBEE_SFD
        assert ppdu[5] == 4  # 2 payload + 2 FCS
        assert ppdu[6:8] == b"AB"

    def test_empty_payload(self):
        ppdu = P.encode_frame(b"")
        assert ppdu[5] == 2
        assert P.decode_frame(ppdu).payload == b""

    def test_max_payload(self):
        payload = bytes(ZIGBEE_MAX_PSDU - 2)
        assert P.decode_frame(P.encode_frame(payload)).payload == payload

    def test_oversize_rejected(self):
        with pytest.raises(EncodingError):
            P.encode_frame(bytes(ZIGBEE_MAX_PSDU - 1))

    @given(st.binary(max_size=125))
    def test_roundtrip(self, payload):
        frame = P.decode_frame(P.encode_frame(payload))
        assert frame.payload == payload
        assert frame.ppdu_length == 6 + len(payload) + 2


class TestDecodeFailures:
    def test_too_short(self):
        with pytest.raises(DecodingError, match="shorter"):
            P.decode_frame(b"\x00\x00")

    def test_bad_preamble(self):
        ppdu = bytearray(P.encode_frame(b"x"))
        ppdu[0] = 0xFF
        with pytest.raises(DecodingError, match="preamble"):
            P.decode_frame(bytes(ppdu))

    def test_missing_sfd(self):
        ppdu = bytearray(P.encode_frame(b"x"))
        ppdu[4] = 0x00
        with pytest.raises(DecodingError, match="delimiter"):
            P.decode_frame(bytes(ppdu))

    def test_truncated_psdu(self):
        ppdu = P.encode_frame(b"hello")
        with pytest.raises(DecodingError, match="truncated"):
            P.decode_frame(ppdu[:-2])

    def test_crc_failure(self):
        ppdu = bytearray(P.encode_frame(b"hello"))
        ppdu[7] ^= 0x01
        with pytest.raises(DecodingError, match="check sequence"):
            P.decode_frame(bytes(ppdu))

    def test_oversize_phr(self):
        ppdu = bytearray(P.encode_frame(b"x"))
        ppdu[5] = 200
        with pytest.raises(DecodingError, match="oversize"):
            P.decode_frame(bytes(ppdu))

    def test_undersize_phr(self):
        ppdu = bytearray(P.encode_frame(b"x"))
        ppdu[5] = 1
        with pytest.raises(DecodingError, match="undersize"):
            P.decode_frame(bytes(ppdu))


class TestFrameListener:
    """The paper's stealthiness model: EmuBee bursts look like ZigBee but
    never yield a frame, keeping the radio busy (paper §II-A-2)."""

    def test_idle_air(self):
        rep = P.FrameListener().listen(None)
        assert rep.outcome is P.ListenOutcome.IDLE
        assert rep.busy_octets == 0

    def test_valid_frame(self):
        rep = P.FrameListener().listen(P.encode_frame(b"data"))
        assert rep.outcome is P.ListenOutcome.FRAME
        assert rep.frame is not None and rep.frame.payload == b"data"
        assert rep.busy_octets == rep.frame.ppdu_length

    def test_emubee_burst_occupies_radio(self):
        # A preamble followed by garbage — the classic EmuBee jamming burst:
        # the radio syncs, decodes, finds nothing, and the time is gone.
        burst = ZIGBEE_PREAMBLE + bytes(40)
        rep = P.FrameListener().listen(burst)
        assert rep.outcome is P.ListenOutcome.OCCUPIED
        assert rep.frame is None
        assert rep.busy_octets == len(burst)
        assert rep.error is not None

    def test_preamble_only(self):
        # Paper: "if a ZigBee packet only has the preamble ... nothing can
        # be decoded" yet the hardware is occupied.
        rep = P.FrameListener().listen(ZIGBEE_PREAMBLE + bytes(3))
        assert rep.outcome is P.ListenOutcome.OCCUPIED
        assert rep.busy_octets > 0

    def test_noise_without_preamble_dismissed_quickly(self):
        rep = P.FrameListener().listen(b"\xaa\x55" * 30)
        assert rep.outcome is P.ListenOutcome.OCCUPIED
        assert rep.busy_octets == 1  # dismissed almost immediately

    def test_frame_after_leading_noise(self):
        burst = b"\x99\x77" + P.encode_frame(b"ok")
        rep = P.FrameListener().listen(burst)
        assert rep.outcome is P.ListenOutcome.FRAME
        assert rep.frame.payload == b"ok"
