"""Tests for the 802.11 block interleaver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.phy import interleaver as I

#: (n_cbps, n_bpsc) for the four 802.11 modulations.
BLOCK_SHAPES = [(48, 1), (96, 2), (192, 4), (288, 6)]


class TestPermutation:
    @pytest.mark.parametrize("n_cbps,n_bpsc", BLOCK_SHAPES)
    def test_is_a_permutation(self, n_cbps, n_bpsc):
        perm = I.interleave_permutation(n_cbps, n_bpsc)
        assert sorted(perm.tolist()) == list(range(n_cbps))

    def test_known_bpsk_values(self):
        # For BPSK (s=1) the second permutation is the identity, so
        # out position of bit k is (N/16)(k mod 16) + floor(k/16).
        perm = I.interleave_permutation(48, 1)
        assert perm[0] == 0
        assert perm[1] == 3
        assert perm[16] == 1
        assert perm[47] == 47

    def test_adjacent_bits_separated(self):
        # The point of the interleaver: adjacent coded bits never map to
        # adjacent output positions.
        for n_cbps, n_bpsc in BLOCK_SHAPES:
            perm = I.interleave_permutation(n_cbps, n_bpsc)
            gaps = np.abs(np.diff(perm))
            assert gaps.min() >= 2

    def test_bad_block_size(self):
        with pytest.raises(EncodingError):
            I.interleave_permutation(50, 1)

    def test_bad_bpsc(self):
        with pytest.raises(EncodingError):
            I.interleave_permutation(48, 5)


class TestRoundtrip:
    @pytest.mark.parametrize("n_cbps,n_bpsc", BLOCK_SHAPES)
    def test_single_block(self, n_cbps, n_bpsc):
        rng = np.random.default_rng(n_cbps)
        bits = rng.integers(0, 2, n_cbps).astype(np.uint8)
        assert np.array_equal(
            I.deinterleave(I.interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc),
            bits,
        )

    @given(st.integers(1, 5), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_multi_block(self, n_blocks, shape_idx):
        n_cbps, n_bpsc = BLOCK_SHAPES[shape_idx]
        rng = np.random.default_rng(n_blocks * 7 + shape_idx)
        bits = rng.integers(0, 2, n_blocks * n_cbps).astype(np.uint8)
        out = I.deinterleave(I.interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
        assert np.array_equal(out, bits)

    def test_blocks_are_independent(self):
        n_cbps, n_bpsc = 96, 2
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, n_cbps).astype(np.uint8)
        b = rng.integers(0, 2, n_cbps).astype(np.uint8)
        joined = I.interleave(np.concatenate([a, b]), n_cbps, n_bpsc)
        assert np.array_equal(joined[:n_cbps], I.interleave(a, n_cbps, n_bpsc))
        assert np.array_equal(joined[n_cbps:], I.interleave(b, n_cbps, n_bpsc))

    def test_partial_block_rejected(self):
        with pytest.raises(EncodingError):
            I.interleave(np.zeros(47, np.uint8), 48, 1)
        with pytest.raises(EncodingError):
            I.deinterleave(np.zeros(47, np.uint8), 48, 1)
