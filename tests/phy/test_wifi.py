"""Tests for the full 802.11 DATA-field chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.phy import ofdm
from repro.phy.wifi import RATES, WifiPhy, WifiPhyConfig


class TestRates:
    def test_table_complete(self):
        assert sorted(RATES) == [6, 9, 12, 18, 24, 36, 48, 54]

    @pytest.mark.parametrize("mbps", sorted(RATES))
    def test_data_bits_per_symbol_matches_rate(self, mbps):
        rate = RATES[mbps]
        # N_DBPS bits per 4 µs symbol must equal the advertised Mbit/s.
        symbol_time = ofdm.SYMBOL_LENGTH / ofdm.SAMPLE_RATE
        assert rate.data_bits_per_symbol / symbol_time == pytest.approx(mbps * 1e6)

    def test_known_ndbps(self):
        assert RATES[6].data_bits_per_symbol == 24
        assert RATES[54].data_bits_per_symbol == 216
        assert RATES[54].coded_bits_per_symbol == 288

    def test_bad_rate_rejected(self):
        with pytest.raises(EncodingError):
            WifiPhyConfig(rate_mbps=11)  # 802.11b rate, not OFDM


class TestRoundtrip:
    @pytest.mark.parametrize("mbps", sorted(RATES))
    def test_all_rates(self, mbps):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=mbps))
        msg = bytes(range(100))
        assert phy.receive(phy.transmit(msg), num_bytes=100) == msg

    @given(st.binary(min_size=1, max_size=80))
    @settings(max_examples=15, deadline=None)
    def test_random_payloads(self, msg):
        phy = WifiPhy()
        assert phy.receive(phy.transmit(msg), num_bytes=len(msg)) == msg

    def test_single_byte(self):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=6))
        assert phy.receive(phy.transmit(b"\xa5"), num_bytes=1) == b"\xa5"

    def test_nondefault_scrambler_seed(self):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=54, scrambler_seed=1))
        msg = b"seed test"
        assert phy.receive(phy.transmit(msg), num_bytes=len(msg)) == msg

    def test_seed_mismatch_corrupts(self):
        tx = WifiPhy(WifiPhyConfig(scrambler_seed=1))
        rx = WifiPhy(WifiPhyConfig(scrambler_seed=2))
        msg = bytes(32)
        assert rx.receive(tx.transmit(msg), num_bytes=32) != msg


class TestStructure:
    def test_sample_count(self):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=54))
        msg = bytes(100)
        n_sym = phy.symbols_for(100)
        assert phy.transmit(msg).size == n_sym * ofdm.SYMBOL_LENGTH

    def test_symbols_for_small_payload(self):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=54))
        # 16 + 8 + 6 = 30 bits < 216 -> one symbol.
        assert phy.symbols_for(1) == 1

    def test_payload_capacity_inverse(self):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=54))
        for n_sym in range(1, 6):
            cap = phy.payload_capacity(n_sym)
            assert phy.symbols_for(cap) == n_sym
            assert phy.symbols_for(cap + 1) == n_sym + 1

    def test_duration(self):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=54))
        # One symbol lasts 4 µs.
        assert phy.duration_for(1) == pytest.approx(4e-6)

    def test_encode_grid_shape(self):
        phy = WifiPhy(WifiPhyConfig(rate_mbps=54))
        grid = phy.encode(bytes(60))
        assert grid.shape == (phy.symbols_for(60), 48)

    def test_tail_bits_zeroed_after_scrambling(self):
        phy = WifiPhy()
        payload = b"\xff" * 4
        bits, _ = phy.build_data_bits(payload)
        scrambled = phy.scramble_data(bits, len(payload) * 8)
        tail = scrambled[16 + 32 : 16 + 32 + 6]
        assert tail.sum() == 0


class TestRobustness:
    def test_corrects_channel_bit_errors(self):
        # Hard-decision Viterbi at rate 1/2 corrects sparse coded-bit errors.
        phy = WifiPhy(WifiPhyConfig(rate_mbps=6))
        msg = bytes(range(50))
        grid = phy.encode(msg)
        samples = phy.modulate_points(grid)
        rng = np.random.default_rng(0)
        noisy = samples + 0.03 * (
            rng.standard_normal(samples.size)
            + 1j * rng.standard_normal(samples.size)
        )
        assert phy.receive(noisy, num_bytes=50) == msg

    def test_decode_points_shape_check(self):
        phy = WifiPhy()
        with pytest.raises(DecodingError):
            phy.decode_points(np.zeros((2, 47), dtype=complex), 10)

    def test_receive_too_short(self):
        phy = WifiPhy()
        samples = phy.transmit(b"x")
        with pytest.raises(DecodingError):
            phy.receive(samples, num_bytes=1000)

    def test_capacity_zero_symbols(self):
        phy = WifiPhy()
        with pytest.raises(EncodingError):
            phy.payload_capacity(0)
