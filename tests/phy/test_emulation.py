"""Tests for the EmuBee waveform-emulation pipeline (paper §II-A, Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmulationError
from repro.phy import emulation as E
from repro.phy import ofdm, zigbee
from repro.phy.qam import QAM64
from repro.phy.wifi import WifiPhy, WifiPhyConfig


class TestFrequencyShift:
    def test_zero_shift_identity(self):
        wf = np.exp(1j * np.linspace(0, 5, 100))
        np.testing.assert_allclose(E.frequency_shift(wf, 0.0, 20e6), wf)

    def test_shift_moves_tone(self):
        fs = 20e6
        n = 2000
        t = np.arange(n) / fs
        tone = np.exp(2j * np.pi * 1e6 * t)
        shifted = E.frequency_shift(tone, 2e6, fs)
        spec = np.abs(np.fft.fft(shifted))
        peak = np.fft.fftfreq(n, 1 / fs)[np.argmax(spec)]
        assert peak == pytest.approx(3e6, abs=fs / n)

    def test_invalid_rate(self):
        with pytest.raises(EmulationError):
            E.frequency_shift(np.zeros(4, complex), 1.0, 0.0)

    def test_preserves_magnitude(self):
        rng = np.random.default_rng(0)
        wf = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        out = E.frequency_shift(wf, 3.7e6, 20e6)
        np.testing.assert_allclose(np.abs(out), np.abs(wf))


class TestAlphaOptimization:
    """Paper Eqs. (1)-(2): E(alpha) is convex; the search finds its minimum."""

    def test_exact_lattice_recovered(self):
        # Designed points that ARE an alpha-scaled lattice: optimum is alpha.
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 64, 300)
        pts = 0.7 * QAM64.points[idx]
        alpha = E.optimize_alpha(pts)
        assert alpha == pytest.approx(0.7, rel=1e-3)
        assert E.quantization_error(pts, alpha) == pytest.approx(0.0, abs=1e-9)

    def test_beats_brute_force_grid(self):
        rng = np.random.default_rng(2)
        pts = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        alpha = E.optimize_alpha(pts)
        best = E.quantization_error(pts, alpha)
        grid = np.linspace(0.05, 4.0, 400)
        grid_best = min(E.quantization_error(pts, a) for a in grid)
        assert best <= grid_best * (1 + 1e-6)

    def test_scale_equivariance(self):
        rng = np.random.default_rng(3)
        pts = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        a1 = E.optimize_alpha(pts)
        a2 = E.optimize_alpha(3.0 * pts)
        assert a2 == pytest.approx(3.0 * a1, rel=1e-2)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_error_nonnegative_and_optimal_in_bracket(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        alpha = E.optimize_alpha(pts)
        e_star = E.quantization_error(pts, alpha)
        assert e_star >= 0
        for trial in (alpha * 0.8, alpha * 1.25):
            assert e_star <= E.quantization_error(pts, trial) + 1e-9

    def test_zero_points_rejected(self):
        with pytest.raises(EmulationError):
            E.optimize_alpha(np.zeros(0, complex))

    def test_all_zero_design(self):
        alpha = E.optimize_alpha(np.zeros(10, complex))
        assert alpha > 0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(EmulationError):
            E.quantization_error(np.ones(3, complex), 0.0)

    def test_bad_bracket(self):
        with pytest.raises(EmulationError):
            E.optimize_alpha(np.ones(3, complex), lo=2.0, hi=1.0)


class TestQuantize:
    def test_on_lattice_is_identity(self):
        snapped = E.quantize_to_lattice(QAM64.points * 1.3, 1.3)
        np.testing.assert_allclose(snapped, QAM64.points, atol=1e-12)

    def test_preserves_shape(self):
        pts = np.zeros((3, 48), complex)
        assert E.quantize_to_lattice(pts, 1.0).shape == (3, 48)


class TestEvm:
    def test_identical_is_zero(self):
        wf = np.ones(10, complex)
        assert E.error_vector_magnitude(wf, wf) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(EmulationError):
            E.error_vector_magnitude(np.ones(3, complex), np.ones(4, complex))

    def test_known_value(self):
        d = np.ones(4, complex)
        e = np.zeros(4, complex)
        assert E.error_vector_magnitude(d, e) == pytest.approx(1.0)


class TestEmulator:
    @pytest.fixture(scope="class")
    def emulator(self):
        return E.WaveformEmulator()

    @pytest.fixture(scope="class")
    def result(self, emulator):
        return emulator.emulate_bytes(b"\x12\x34\x56\x78")

    def test_requires_64qam(self):
        with pytest.raises(EmulationError):
            E.WaveformEmulator(WifiPhy(WifiPhyConfig(rate_mbps=12)))

    def test_payload_is_transmittable(self, emulator, result):
        # The emitted waveform must be producible by a real Wi-Fi radio:
        # re-encoding the payload reproduces the emulated waveform exactly.
        again = emulator.wifi.encode(result.payload)
        wf = result.alpha * ofdm.modulate_stream(
            again[: result.designed.size // ofdm.SYMBOL_LENGTH]
        )
        np.testing.assert_allclose(wf, result.emulated, atol=1e-9)

    def test_chip_error_rate_within_dsss_tolerance(self, result):
        # DSSS despreading tolerates up to ~12/32 chip errors; emulation
        # must land comfortably below that for the attack to work.
        assert result.chip_error_rate is not None
        assert result.chip_error_rate < 0.3

    def test_victim_decodes_emulated_chips_as_symbols(self, emulator):
        # End-to-end attack check: a ZigBee receiver despreads the EmuBee
        # waveform into (mostly) the intended data symbols.
        data = b"\xde\xad\xbe\xef"
        designed, chips = emulator.design_from_bytes(data)
        res = emulator.emulate(designed, target_chips=chips)
        rx_chips = zigbee.oqpsk_demodulate(res.emulated)
        n = chips.size - (chips.size % zigbee.CHIPS_PER_SYMBOL)
        symbols, _ = zigbee.despread(rx_chips[:n])
        expected = zigbee.bytes_to_symbols(data)
        agreement = np.mean(symbols[: expected.size] == expected)
        assert agreement >= 0.75

    def test_optimized_alpha_beats_naive(self, emulator):
        # The paper's core §II-A claim: optimising the quantization scale
        # lowers the emulation error versus an arbitrary fixed scale.
        data = b"\x0f\x1e\x2d\x3c"
        designed, chips = emulator.design_from_bytes(data)
        opt = emulator.emulate(designed, target_chips=chips)
        naive = emulator.emulate(designed, target_chips=chips, alpha=opt.alpha * 4)
        assert opt.quantization_error < naive.quantization_error
        assert opt.evm <= naive.evm

    def test_designed_points_grid(self, emulator):
        designed, _ = emulator.design_from_bytes(b"\x01\x02")
        pts = emulator.designed_points(designed)
        n_sym = -(-designed.size // ofdm.SYMBOL_LENGTH)
        assert pts.shape == (n_sym, 48)

    def test_empty_design_rejected(self, emulator):
        with pytest.raises(EmulationError):
            emulator.emulate(np.zeros(0, complex))

    def test_negative_alpha_rejected(self, emulator):
        designed, _ = emulator.design_from_bytes(b"\x01\x02")
        with pytest.raises(EmulationError):
            emulator.emulate(designed, alpha=-1.0)

    def test_design_offset_shifts_spectrum(self, emulator):
        d0 = emulator.design_from_chips(zigbee.spread([1, 2, 3, 4]))
        d1 = emulator.design_from_chips(
            zigbee.spread([1, 2, 3, 4]), offset_hz=5e6
        )
        assert d0.size == d1.size
        np.testing.assert_allclose(np.abs(d0), np.abs(d1), atol=1e-9)
        assert not np.allclose(d0, d1)

    def test_result_fields(self, result):
        assert result.alpha > 0
        assert result.quantization_error >= 0
        assert result.designed.size == result.emulated.size
        assert result.designed.size % ofdm.SYMBOL_LENGTH == 0
