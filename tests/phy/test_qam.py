"""Tests for the Gray-mapped QAM constellations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.phy import qam


ALL = [qam.BPSK, qam.QPSK, qam.QAM16, qam.QAM64]


class TestConstruction:
    @pytest.mark.parametrize("c", ALL)
    def test_size(self, c):
        assert c.size == 2**c.bits_per_symbol
        assert c.labels.shape == (c.size, c.bits_per_symbol)

    @pytest.mark.parametrize("c", ALL)
    def test_unit_average_energy(self, c):
        # K_MOD normalises each constellation to unit mean power.
        assert np.mean(np.abs(c.points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("c", ALL)
    def test_points_distinct(self, c):
        assert len(set(np.round(c.points, 9).tolist())) == c.size

    @pytest.mark.parametrize("c", [qam.QPSK, qam.QAM16, qam.QAM64])
    def test_gray_property(self, c):
        # Horizontally or vertically adjacent points differ in exactly 1 bit.
        pts = c.points
        labels = c.labels
        # Minimum distance between distinct points.
        d = np.abs(pts[:, None] - pts[None, :])
        np.fill_diagonal(d, np.inf)
        dmin = d.min()
        for i in range(c.size):
            for j in range(c.size):
                if i < j and d[i, j] < dmin * 1.001:
                    assert int(np.sum(labels[i] != labels[j])) == 1

    def test_lookup(self):
        assert qam.constellation_for(6) is qam.QAM64

    def test_lookup_unknown(self):
        with pytest.raises(EncodingError):
            qam.constellation_for(3)


class TestModulation:
    @pytest.mark.parametrize("c", ALL)
    def test_roundtrip_all_symbols(self, c):
        bits = c.labels.reshape(-1)
        symbols = c.modulate(bits)
        assert symbols.size == c.size
        assert np.array_equal(c.demodulate(symbols), bits)

    @given(st.integers(0, 3), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random(self, which, n_syms):
        c = ALL[which]
        rng = np.random.default_rng(which * 100 + n_syms)
        bits = rng.integers(0, 2, n_syms * c.bits_per_symbol).astype(np.uint8)
        assert np.array_equal(c.demodulate(c.modulate(bits)), bits)

    def test_partial_symbol_rejected(self):
        with pytest.raises(EncodingError):
            qam.QAM64.modulate([0, 1, 0])

    def test_demodulate_tolerates_noise(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, 600).astype(np.uint8)
        sym = qam.QAM64.modulate(bits)
        # Perturb by less than half the minimum distance: min spacing of
        # normalised 64-QAM is 2/sqrt(42) ~ 0.3086.
        noise = (rng.random(sym.size) - 0.5) * 0.1 + 1j * (
            rng.random(sym.size) - 0.5
        ) * 0.1
        assert np.array_equal(qam.QAM64.demodulate(sym + noise), bits)

    def test_bpsk_values(self):
        assert qam.BPSK.modulate([0])[0] == pytest.approx(-1.0)
        assert qam.BPSK.modulate([1])[0] == pytest.approx(1.0)


class TestQuantization:
    def test_zero_error_on_lattice(self):
        assert qam.QAM64.quantization_error(qam.QAM64.points, 1.0) == pytest.approx(
            0.0, abs=1e-18
        )

    def test_scaled_lattice(self):
        assert qam.QAM64.quantization_error(
            2.5 * qam.QAM64.points, 2.5
        ) == pytest.approx(0.0, abs=1e-12)

    def test_nearest_index(self):
        idx = qam.QAM64.nearest_index(qam.QAM64.points * 1.001)
        assert np.array_equal(idx, np.arange(64))

    def test_error_positive_off_lattice(self):
        pts = np.array([0.01 + 0.01j])
        assert qam.QAM64.quantization_error(pts, 1.0) > 0
