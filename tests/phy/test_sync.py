"""Tests for ZigBee frame synchronisation over chip streams."""

import numpy as np

from repro.phy import sync as S
from repro.phy import zigbee
from repro.phy.packet import encode_frame


def frame_chips(payload: bytes) -> np.ndarray:
    return zigbee.ZigBeePhy().chips_for(encode_frame(payload))


def random_chips(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    chips = rng.integers(0, 2, n).astype(np.uint8)
    # Scrub accidental zero-symbol runs so noise never syncs.
    window = zigbee.CHIPS_PER_SYMBOL
    for k in range(0, n - window, window):
        if np.count_nonzero(
            chips[k : k + window] != zigbee.CHIP_TABLE[0]
        ) <= S.SEARCH_CHIP_TOLERANCE:
            chips[k] ^= 1
            chips[k + 2] ^= 1
    return chips


class TestFindPreamble:
    def test_finds_aligned_preamble(self):
        chips = frame_chips(b"hello")
        assert S.find_preamble(chips) == 0

    def test_finds_offset_preamble(self):
        noise = random_chips(57, seed=0)
        chips = np.concatenate([noise, frame_chips(b"x")])
        assert S.find_preamble(chips) == 57

    def test_no_preamble_in_noise(self):
        assert S.find_preamble(random_chips(600, seed=1)) is None

    def test_tolerates_chip_errors(self):
        chips = frame_chips(b"robust").copy()
        rng = np.random.default_rng(2)
        # 3 flips per 32-chip window, below the tolerance of 8.
        for w in range(8):
            idx = rng.choice(32, 3, replace=False) + 32 * w
            chips[idx] ^= 1
        assert S.find_preamble(chips) == 0


class TestSynchronise:
    def test_full_frame_decoded(self):
        res = S.synchronise(frame_chips(b"payload data"))
        assert res.error is None
        assert res.frame is not None
        assert res.frame.payload == b"payload data"
        assert res.sync_chip_index == 0

    def test_frame_after_noise(self):
        chips = np.concatenate(
            [random_chips(133, seed=3), frame_chips(b"late frame")]
        )
        res = S.synchronise(chips)
        assert res.frame is not None
        assert res.frame.payload == b"late frame"
        assert res.sync_chip_index == 133

    def test_noise_only(self):
        res = S.synchronise(random_chips(500, seed=4))
        assert res.frame is None
        assert res.error == "no preamble found"
        assert res.busy_symbols == 0

    def test_preamble_only_burns_receiver_time(self):
        # Paper §II-A-2: "if a ZigBee packet only has the preamble ...
        # nothing can be decoded [but] the hardware resource is occupied".
        preamble_only = zigbee.spread([0] * 8)
        res = S.synchronise(preamble_only)
        assert res.frame is None
        assert res.busy_symbols >= 8
        assert "SFD" in res.error or "ended" in res.error

    def test_missing_sfd(self):
        # Preamble followed by a wrong delimiter.
        chips = zigbee.spread(
            list(zigbee.bytes_to_symbols(b"\x00\x00\x00\x00\x55\x05\xaa\xbb"))
        )
        res = S.synchronise(chips)
        assert res.frame is None
        assert "SFD mismatch" in res.error

    def test_truncated_psdu_keeps_radio_busy(self):
        chips = frame_chips(b"truncated payload here")
        res = S.synchronise(chips[: chips.size // 2])
        assert res.frame is None
        assert res.error == "stream ended inside the PSDU"
        assert res.busy_symbols > 8

    def test_invalid_phr(self):
        # preamble + SFD + PHR of 1 (< FCS size).
        ppdu = b"\x00\x00\x00\x00\x7a\x01"
        chips = zigbee.spread(list(zigbee.bytes_to_symbols(ppdu)))
        res = S.synchronise(chips)
        assert res.frame is None
        assert "invalid length" in res.error

    def test_corrupted_crc(self):
        ppdu = bytearray(encode_frame(b"crc test"))
        ppdu[-1] ^= 0xFF
        chips = zigbee.spread(list(zigbee.bytes_to_symbols(bytes(ppdu))))
        res = S.synchronise(chips)
        assert res.frame is None
        assert "check sequence" in res.error

    def test_busy_symbols_cover_whole_frame(self):
        payload = b"0123456789"
        res = S.synchronise(frame_chips(payload))
        # preamble(8) + SFD(2) + PHR(2) + PSDU symbols.
        assert res.busy_symbols == 8 + 2 + 2 + 2 * (len(payload) + 2)


class TestReceiveStream:
    def test_waveform_to_frame(self):
        wf = zigbee.ZigBeePhy().transmit(encode_frame(b"over the air"))
        res = S.receive_stream(wf)
        assert res.frame is not None
        assert res.frame.payload == b"over the air"

    def test_waveform_with_noise(self):
        rng = np.random.default_rng(5)
        wf = zigbee.ZigBeePhy().transmit(encode_frame(b"noisy link"))
        noisy = wf + 0.15 * (
            rng.standard_normal(wf.size) + 1j * rng.standard_normal(wf.size)
        )
        res = S.receive_stream(noisy)
        assert res.frame is not None
        assert res.frame.payload == b"noisy link"

    def test_emulated_waveform_captures_receiver_without_frame(self):
        # The EmuBee stealth attack, end to end at waveform level: the
        # receiver syncs on the forged preamble, decodes, and gets nothing.
        from repro.phy.emulation import WaveformEmulator

        emulator = WaveformEmulator()
        burst = bytes(4) + b"\x13\x37\x00\x42"  # preamble + garbage (no SFD)
        result = emulator.emulate_bytes(burst)
        res = S.receive_stream(result.emulated)
        assert res.frame is None
        assert res.sync_chip_index >= 0  # it DID sync...
        assert res.busy_symbols >= 4  # ...and burned receiver time
