"""Tests for the EmuBee waveform template caches."""

import numpy as np
import pytest

from repro.phy.emulation import (
    WaveformEmulator,
    default_emulator,
    emulate_template,
)


class TestDesignCache:
    def test_memoized_identity(self):
        emulator = WaveformEmulator()
        chips = np.array([0, 1, 1, 0, 1, 0, 0, 1], dtype=np.uint8)
        a = emulator.design_from_chips(chips)
        b = emulator.design_from_chips(chips.copy())
        assert a is b

    def test_readonly(self):
        chips = np.array([0, 1, 0, 1], dtype=np.uint8)
        wf = WaveformEmulator().design_from_chips(chips)
        with pytest.raises(ValueError):
            wf[0] = 0.0

    def test_offset_partitions_cache(self):
        emulator = WaveformEmulator()
        chips = np.array([1, 0, 1, 0], dtype=np.uint8)
        assert emulator.design_from_chips(chips) is not emulator.design_from_chips(
            chips, offset_hz=1e6
        )

    def test_matches_direct_modulation(self):
        from repro.phy import zigbee

        chips = zigbee.spread([7, 2])
        wf = WaveformEmulator().design_from_chips(chips)
        np.testing.assert_array_equal(
            wf, zigbee.oqpsk_modulate(chips, zigbee.DEFAULT_SAMPLES_PER_CHIP)
        )


class TestTemplateCache:
    def test_default_emulator_shared(self):
        assert default_emulator() is default_emulator()

    def test_template_memoized(self):
        assert emulate_template(b"\x12\x34") is emulate_template(b"\x12\x34")

    def test_template_matches_fresh_pipeline(self):
        cached = emulate_template(b"\xde\xad")
        fresh = WaveformEmulator().emulate_bytes(b"\xde\xad")
        assert cached.alpha == fresh.alpha
        assert cached.payload == fresh.payload
        np.testing.assert_array_equal(cached.emulated, fresh.emulated)
        assert cached.chip_error_rate == fresh.chip_error_rate

    def test_template_arrays_readonly(self):
        result = emulate_template(b"\x01\x02")
        with pytest.raises(ValueError):
            result.emulated[0] = 0.0
