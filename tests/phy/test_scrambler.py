"""Tests for the 802.11 scrambler."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.phy import scrambler as S


class TestSequence:
    def test_period_is_127(self):
        seq = S.scrambler_sequence(127 * 3)
        assert np.array_equal(seq[:127], seq[127:254])
        assert np.array_equal(seq[:127], seq[254:])
        assert S.sequence_period() == 127

    def test_known_prefix_for_all_ones_seed(self):
        # IEEE 802.11-2016 §17.3.5.5: seed 1111111 generates the sequence
        # starting 0000 1110 1111 0010 ...
        seq = S.scrambler_sequence(16, seed=0b1111111)
        assert seq.tolist() == [0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]

    def test_balanced(self):
        # A maximal-length 7-bit LFSR sequence has 64 ones and 63 zeros.
        seq = S.scrambler_sequence(127)
        assert int(seq.sum()) == 64

    def test_zero_length(self):
        assert S.scrambler_sequence(0).size == 0

    def test_negative_length_rejected(self):
        with pytest.raises(EncodingError):
            S.scrambler_sequence(-1)

    @pytest.mark.parametrize("seed", [0, 128, 200])
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(EncodingError):
            S.scrambler_sequence(8, seed=seed)

    def test_all_seeds_give_shifted_sequences(self):
        # Every non-zero seed yields the same m-sequence, phase-shifted.
        base = S.scrambler_sequence(254, seed=1)
        for seed in range(2, 128):
            other = S.scrambler_sequence(127, seed=seed)
            joined = np.concatenate([base, base])
            found = any(
                np.array_equal(joined[k : k + 127], other) for k in range(127)
            )
            assert found, f"seed {seed} not a phase shift"


class TestScramble:
    @given(
        st.lists(st.integers(0, 1), max_size=300),
        st.integers(1, 127),
    )
    def test_involution(self, bits, seed):
        bits = np.array(bits, dtype=np.uint8)
        once = S.scramble(bits, seed)
        twice = S.descramble(once, seed)
        assert np.array_equal(twice, bits)

    def test_different_seeds_differ(self):
        zeros = np.zeros(64, dtype=np.uint8)
        a = S.scramble(zeros, seed=1)
        b = S.scramble(zeros, seed=2)
        assert not np.array_equal(a, b)

    def test_scrambling_zeros_yields_sequence(self):
        zeros = np.zeros(50, dtype=np.uint8)
        assert np.array_equal(S.scramble(zeros, 7), S.scrambler_sequence(50, 7))
