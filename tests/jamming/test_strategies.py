"""Tests for jammer sweep strategies and their effect on the competition."""

import numpy as np
import pytest

from repro.core.baselines import NoDefensePolicy
from repro.core.envs import SweepJammingEnv
from repro.core.mdp import MDPConfig
from repro.core.metrics import evaluate_policy
from repro.core.policy import ThresholdPolicy
from repro.errors import ConfigurationError
from repro.jamming.strategies import (
    STRATEGY_NAMES,
    AdaptiveSweep,
    RandomSweep,
    SequentialSweep,
    make_strategy,
    strategy_options,
)


class TestRandomSweep:
    def test_cycle_covers_all_blocks(self):
        s = RandomSweep(4, seed=0)
        picks = {s.next_block() for _ in range(4)}
        assert picks == {0, 1, 2, 3}

    def test_new_cycle_after_exhaustion(self):
        s = RandomSweep(3, seed=1)
        first = [s.next_block() for _ in range(3)]
        second = [s.next_block() for _ in range(3)]
        assert sorted(first) == sorted(second) == [0, 1, 2]

    def test_notify_lost_excludes_stale_block(self):
        s = RandomSweep(4, seed=2)
        s.notify_lost(2)
        picks = [s.next_block() for _ in range(3)]
        assert 2 not in picks
        assert sorted(picks) == [0, 1, 3]

    def test_reset(self):
        s = RandomSweep(4, seed=3)
        s.notify_lost(0)
        s.reset()
        assert sorted(s.next_block() for _ in range(4)) == [0, 1, 2, 3]


class TestSequentialSweep:
    def test_rotation(self):
        s = SequentialSweep(4)
        assert [s.next_block() for _ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_resumes_after_lost(self):
        s = SequentialSweep(4)
        s.notify_lost(2)
        assert s.next_block() == 3

    def test_start_offset(self):
        s = SequentialSweep(4, start=2)
        assert s.next_block() == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialSweep(4, start=4)
        with pytest.raises(ConfigurationError):
            SequentialSweep(0)


class TestAdaptiveSweep:
    def test_prefers_blocks_with_sightings(self):
        s = AdaptiveSweep(4, exploit_probability=1.0, seed=0)
        s.notify_found(2)
        picks = [s.next_block() for _ in range(4)]
        assert picks[0] == 2

    def test_scores_decay(self):
        s = AdaptiveSweep(4, memory_decay=0.5, seed=1)
        s.notify_found(1)
        s.notify_found(3)
        scores = s.block_scores()
        assert scores[3] > scores[1] > 0

    def test_exploration_still_happens(self):
        s = AdaptiveSweep(4, exploit_probability=0.0, seed=2)
        s.notify_found(0)
        firsts = set()
        for _ in range(40):
            s.reset()
            s.notify_found(0)
            firsts.add(s.next_block())
        assert len(firsts) > 1  # pure exploration ignores the memory

    def test_exploit_tie_breaks_to_lowest_block(self):
        # With no sightings every score ties at zero; the exploit path must
        # then be deterministic (lowest block first), not rng-order.
        s = AdaptiveSweep(4, exploit_probability=1.0, seed=0)
        assert [s.next_block() for _ in range(4)] == [0, 1, 2, 3]

    def test_memory_decay_fades_old_sightings(self):
        s = AdaptiveSweep(4, exploit_probability=1.0, memory_decay=0.5, seed=0)
        s.notify_found(1)
        for _ in range(3):
            s.notify_found(3)
        scores = s.block_scores()
        assert scores[3] > scores[1]
        assert scores[1] == pytest.approx(0.125)  # 1.0 decayed three times
        assert s.next_block() == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveSweep(4, exploit_probability=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveSweep(4, memory_decay=0.0)


class TestFactory:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_known_names(self, name):
        seed = 0 if "seed" in strategy_options(name) else None
        s = make_strategy(name, 4, seed=seed)
        assert 0 <= s.next_block() < 4

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_strategy("psychic", 4)

    def test_forwards_options(self):
        s = make_strategy(
            "adaptive", 4, seed=0, exploit_probability=0.25, memory_decay=0.5
        )
        assert isinstance(s, AdaptiveSweep)
        assert s.exploit_probability == 0.25
        assert s.memory_decay == 0.5
        seq = make_strategy("sequential", 4, start=2)
        assert seq.next_block() == 2

    def test_rejects_unknown_options(self):
        with pytest.raises(ConfigurationError, match="aggression"):
            make_strategy("random", 4, aggression=1.0)

    def test_rejects_seed_on_deterministic_strategy(self):
        # Silently discarding the seed would hide a reproducibility bug.
        with pytest.raises(ConfigurationError, match="seed"):
            make_strategy("sequential", 4, seed=7)

    def test_strategy_options_lists_accepted_keywords(self):
        assert "seed" in strategy_options("random")
        assert "seed" not in strategy_options("sequential")
        assert set(strategy_options("adaptive")) == {
            "exploit_probability",
            "memory_decay",
            "seed",
        }


class TestStrategyInEnvironment:
    def test_env_accepts_custom_strategy(self):
        cfg = MDPConfig(jammer_mode="max")
        env = SweepJammingEnv(
            cfg, seed=0, sweep_strategy=SequentialSweep(cfg.sweep_cycle)
        )
        m = evaluate_policy(env, NoDefensePolicy(), slots=2000)
        # A staying victim is destroyed by any sweep order.
        assert m.success_rate < 0.01

    def test_adaptive_jammer_punishes_channel_preference(self):
        # A victim that hops within a favourite pair of channels is found
        # faster by the memory-guided jammer than by the paper's random
        # sweep. The threshold-hopping defence keeps hopping between the
        # same two blocks, which the adaptive jammer memorises.
        cfg = MDPConfig(jammer_mode="max")
        policy = ThresholdPolicy(threshold=2, stay_power_index=0, hop_power_index=0)

        def jam_rate(strategy_name, seed):
            strategy = make_strategy(strategy_name, cfg.sweep_cycle, seed=seed)
            env = SweepJammingEnv(cfg, seed=seed, sweep_strategy=strategy)
            # Preference: the env's abstract hop draws uniformly, so build
            # preference by restricting channels via explicit steps.
            rate = 0
            channels = (0, 4)  # two favourite channels in two blocks
            current = 0
            for t in range(4000):
                action = policy.action(env.state)
                if action.hop:
                    current = channels[(channels.index(current) + 1) % 2]
                _, _, info = env.step_index(
                    env.channel_power_to_action(current, action.power_index)
                )
                rate += info.jam_attempted
            return rate / 4000

        adaptive = np.mean([jam_rate("adaptive", s) for s in (1, 2, 3)])
        random_ = np.mean([jam_rate("random", s) for s in (1, 2, 3)])
        assert adaptive > random_ + 0.05
