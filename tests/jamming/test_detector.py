"""Tests for detection models and the stealthiness assessment."""

import pytest

from repro.channel.link import JammerSignalType
from repro.constants import ZIGBEE_PREAMBLE
from repro.errors import ConfigurationError
from repro.jamming.detector import (
    AckEavesdropper,
    EnergyDetector,
    stealth_assessment,
)
from repro.phy.packet import encode_frame


class TestEnergyDetector:
    def test_threshold(self):
        det = EnergyDetector(sensitivity_dbm=-85.0)
        assert det.detects(-80.0)
        assert not det.detects(-90.0)


class TestAckEavesdropper:
    def test_always_overhears(self):
        ear = AckEavesdropper(1.0, seed=0)
        assert ear.observe(True) is True
        assert ear.observe(False) is False

    def test_never_overhears(self):
        ear = AckEavesdropper(0.0, seed=0)
        assert ear.observe(True) is None

    def test_partial_rate(self):
        ear = AckEavesdropper(0.5, seed=1)
        seen = sum(ear.observe(True) is not None for _ in range(2000))
        assert seen == pytest.approx(1000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AckEavesdropper(1.5)

    def test_same_seed_is_deterministic(self):
        first = AckEavesdropper(0.5, seed=7)
        second = AckEavesdropper(0.5, seed=7)
        sequence = [first.observe(True) for _ in range(200)]
        assert sequence == [second.observe(True) for _ in range(200)]
        assert any(o is None for o in sequence)  # both branches exercised
        assert any(o is True for o in sequence)


class TestStealth:
    """Paper §II-B: EmuBee evades a format-based jamming watchdog; plain
    Wi-Fi noise does not."""

    def emubee_bursts(self, n=20):
        # EmuBee chips decode as a preamble followed by format-violating
        # garbage (no SFD, no parseable frame).
        return [ZIGBEE_PREAMBLE + bytes([0x33] * 30) for _ in range(n)]

    def wifi_bursts(self, n=20):
        # Plain Wi-Fi energy never despread into anything preamble-like.
        return [b"\x5a\xc3" * 16 for _ in range(n)]

    def test_emubee_is_stealthy(self):
        report = stealth_assessment(
            JammerSignalType.EMUBEE, self.emubee_bursts()
        )
        assert report.detection_rate == 0.0
        # ... while still consuming receiver time (denial of service).
        assert report.radio_busy_octets > 0

    def test_wifi_noise_is_flagged(self):
        report = stealth_assessment(JammerSignalType.WIFI, self.wifi_bursts())
        assert report.detection_rate == 1.0

    def test_legit_frames_not_flagged(self):
        frames = [encode_frame(b"hello") for _ in range(5)]
        report = stealth_assessment(JammerSignalType.ZIGBEE, frames)
        assert report.detection_rate == 0.0

    def test_empty_campaign(self):
        report = stealth_assessment(JammerSignalType.EMUBEE, [])
        assert report.detection_rate == 0.0
        assert report.bursts == 0
