"""Tests for the time-domain field jammer."""

import pytest

from repro.core.mdp import JammerMode
from repro.errors import ConfigurationError
from repro.jamming.jammer import FieldJammer, FieldJammerConfig


class TestConfig:
    def test_default_blocks(self):
        assert FieldJammerConfig().num_blocks == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FieldJammerConfig(slot_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            FieldJammerConfig(jam_width=0)
        with pytest.raises(ConfigurationError):
            FieldJammerConfig(power_levels=())
        with pytest.raises(ConfigurationError):
            FieldJammerConfig(mode="sneaky")


class TestSweep:
    def test_blocks_partition_channels(self):
        j = FieldJammer(seed=0)
        flat = sorted(c for b in j.blocks for c in b)
        assert flat == list(range(16))

    def test_finds_staying_victim_within_cycle(self):
        # 4 blocks x 3 s: a victim staying on one channel is attacked
        # within 12 s.
        j = FieldJammer(FieldJammerConfig(slot_duration_s=3.0), seed=1)
        attacked_at = None
        for k in range(8):
            profile = j.attack_profile(k * 3.0, (k + 1) * 3.0, victim_channel=7)
            if profile.attempted:
                attacked_at = k
                break
        assert attacked_at is not None and attacked_at < 4

    def test_camps_once_found(self):
        j = FieldJammer(FieldJammerConfig(slot_duration_s=3.0, mode=JammerMode.MAX), seed=2)
        t = 0.0
        while True:
            profile = j.attack_profile(t, t + 3.0, victim_channel=7)
            t += 3.0
            if profile.attempted:
                break
        assert j.is_camping
        # Every subsequent window on the same channel is fully jammed.
        for _ in range(5):
            profile = j.attack_profile(t, t + 3.0, victim_channel=7)
            t += 3.0
            assert profile.attempted
            assert profile.jammed_fraction == pytest.approx(1.0)
            assert profile.max_power == 20.0

    def test_loses_victim_and_reacquires(self):
        j = FieldJammer(FieldJammerConfig(slot_duration_s=3.0), seed=3)
        t = 0.0
        while not j.is_camping:
            j.attack_profile(t, t + 3.0, victim_channel=7)
            t += 3.0
        # Victim hops far away: the jammer burns its next slot noticing.
        profile = j.attack_profile(t, t + 3.0, victim_channel=0)
        t += 3.0
        assert not profile.attempted
        assert not j.is_camping

    def test_fast_jammer_attacks_fraction_of_window(self):
        # A 0.5 s jammer sweeping inside a 3 s victim slot attacks the
        # victim's channel for some but rarely all of the window before
        # camping.
        j = FieldJammer(FieldJammerConfig(slot_duration_s=0.5), seed=4)
        profile = j.attack_profile(0.0, 3.0, victim_channel=7)
        assert profile.attempted  # 6 decisions cover > 1 sweep cycle
        assert 0.0 < profile.jammed_fraction <= 1.0

    def test_slow_jammer_spans_windows(self):
        # With a 6 s jammer slot, one decision covers two 3 s windows.
        j = FieldJammer(FieldJammerConfig(slot_duration_s=6.0), seed=5)
        first = j.attack_profile(0.0, 3.0, victim_channel=7)
        second = j.attack_profile(3.0, 6.0, victim_channel=7)
        # The active block is unchanged across the two windows.
        assert first.attempted == second.attempted

    def test_random_mode_varies_power(self):
        j = FieldJammer(
            FieldJammerConfig(slot_duration_s=1.0, mode=JammerMode.RANDOM), seed=6
        )
        powers = set()
        t = 0.0
        for _ in range(200):
            profile = j.attack_profile(t, t + 1.0, victim_channel=7)
            t += 1.0
            if profile.attempted:
                powers.add(profile.max_power)
        assert len(powers) > 3

    def test_window_validation(self):
        j = FieldJammer(seed=7)
        with pytest.raises(ConfigurationError):
            j.attack_profile(1.0, 1.0, victim_channel=0)
        with pytest.raises(ConfigurationError):
            j.attack_profile(0.0, 1.0, victim_channel=99)

    def test_reset_restores_initial_state(self):
        j = FieldJammer(seed=8)
        j.attack_profile(0.0, 30.0, victim_channel=7)
        j.reset()
        assert not j.is_camping


class TestClockContract:
    """attack_profile advances a monotone clock (module docstring contract)."""

    def test_backward_window_raises(self):
        j = FieldJammer(seed=0)
        j.attack_profile(0.0, 3.0, victim_channel=0)
        with pytest.raises(ConfigurationError, match="monotone"):
            j.attack_profile(1.0, 4.0, victim_channel=0)

    def test_gaps_are_fine(self):
        # The jammer simply makes its next decision late.
        j = FieldJammer(seed=0)
        j.attack_profile(0.0, 3.0, victim_channel=0)
        j.attack_profile(10.0, 13.0, victim_channel=0)

    def test_float_jitter_tolerated(self):
        j = FieldJammer(seed=0)
        j.attack_profile(0.0, 0.1 + 0.2, victim_channel=0)  # ends past 0.3
        j.attack_profile(0.3, 0.6, victim_channel=0)

    def test_reset_rewinds_the_clock(self):
        j = FieldJammer(seed=0)
        j.attack_profile(0.0, 30.0, victim_channel=7)
        j.reset()
        profile = j.attack_profile(0.0, 3.0, victim_channel=7)
        assert profile is not None  # time-zero windows are legal again


class TestAttackQueries:
    """The public attack-state accessors the field engines rely on."""

    def test_idle_before_first_window(self):
        j = FieldJammer(seed=9)
        assert j.active_channels == ()
        assert not j.is_attacking(0)

    def test_active_block_exposed_when_attacking(self):
        j = FieldJammer(seed=9)
        # Long window: the sweep finds and camps on the victim.
        profile = j.attack_profile(0.0, 30.0, victim_channel=7)
        assert profile.attempted and j.is_camping
        assert j.is_attacking(7)
        assert 7 in j.active_channels
        assert len(j.active_channels) == j.config.jam_width
        for channel in j.active_channels:
            assert j.is_attacking(channel)
        quiet = set(range(j.config.num_channels)) - set(j.active_channels)
        assert not any(j.is_attacking(c) for c in quiet)

    def test_reacquisition_slot_reports_idle(self):
        j = FieldJammer(seed=9)
        j.attack_profile(0.0, 30.0, victim_channel=7)
        assert j.is_camping
        # The victim escapes: the jammer burns its next slot re-acquiring,
        # during which no channel is under attack.
        block = j.active_channels
        escaped = next(
            c for c in range(j.config.num_channels) if c not in block
        )
        profile = j.attack_profile(30.0, 33.0, victim_channel=escaped)
        if not profile.attempted:
            assert j.active_channels == ()
            assert not j.is_attacking(escaped)

    def test_range_check(self):
        j = FieldJammer(seed=9)
        with pytest.raises(ConfigurationError):
            j.is_attacking(-1)
        with pytest.raises(ConfigurationError):
            j.is_attacking(j.config.num_channels)
