"""Tests for the adversarial jammer suite (reactive / follower / learning).

The anchor is the equivalence contract: an *ideal* reactive jammer
(perfect detection, zero latency, unbounded duty cycle) consumes the same
rng draws and makes the same decisions as the paper's proactive
sweep/camp jammer, so its traces are bit-for-bit identical in both timing
models. Every non-default knob then changes behaviour in a measurable way.
"""

import numpy as np
import pytest

from repro.core.envs import SweepJammingEnv
from repro.core.mdp import MDPConfig
from repro.core.selfplay import SelfPlayConfig, train_selfplay
from repro.errors import ConfigurationError
from repro.jamming.adversary import (
    FollowerFieldJammer,
    JammerMemory,
    LearningFieldJammer,
    ReactiveFieldJammer,
    make_field_jammer,
    make_slot_jammer_factory,
)
from repro.jamming.jammer import (
    FieldJammer,
    FieldJammerConfig,
    FollowerJammerConfig,
    ReactiveJammerConfig,
)


@pytest.fixture(scope="module")
def trained_jammer():
    """A tiny self-play-trained jammer DQN shared by the learning tests."""
    result = train_selfplay(
        SelfPlayConfig(pairs=1, episodes=2, steps_per_episode=60), seed=1
    )
    return result.best_jammer


def _monotone_windows(rng, n=200):
    """Random monotone windows with occasional gaps, plus victim channels."""
    windows, t = [], 0.0
    for _ in range(n):
        if rng.random() < 0.2:
            t += float(rng.uniform(0.0, 4.0))  # a gap: decisions run late
        duration = float(rng.uniform(0.5, 5.0))
        windows.append((t, t + duration))
        t += duration
    channels = [int(c) for c in rng.integers(16, size=n)]
    return windows, channels


class TestIdealEquivalence:
    """ReactiveJammerConfig() defaults degenerate to the paper's jammer."""

    def test_default_config_is_ideal(self):
        assert ReactiveJammerConfig().is_ideal
        assert not ReactiveJammerConfig(duty_cycle=0.5).is_ideal
        assert not ReactiveJammerConfig(response_latency_s=0.1).is_ideal
        assert not ReactiveJammerConfig(transmit_on_sweep=False).is_ideal

    @pytest.mark.parametrize("mode", ["max", "random"])
    def test_field_traces_bit_identical(self, mode):
        windows, channels = _monotone_windows(np.random.default_rng(17))
        base = FieldJammer(FieldJammerConfig(mode=mode), seed=11)
        react = make_field_jammer(
            FieldJammerConfig(mode=mode, adversary="reactive"), seed=11
        )
        assert isinstance(react, ReactiveFieldJammer)
        for (a, b), c in zip(windows, channels):
            assert base.attack_profile(a, b, c) == react.attack_profile(a, b, c)
            assert base.active_channels == react.active_channels
            assert base.is_camping == react.is_camping

    @pytest.mark.parametrize("mode", ["max", "random"])
    def test_slot_traces_bit_identical(self, mode):
        cfg = MDPConfig(jammer_mode=mode)
        base = SweepJammingEnv(cfg, seed=3)
        react = SweepJammingEnv(
            cfg, seed=3, jammer_factory=make_slot_jammer_factory("reactive")
        )
        actions = np.random.default_rng(7)
        for _ in range(400):
            action = int(actions.integers(base.num_actions))
            obs_b, reward_b, info_b = base.step_index(action)
            obs_r, reward_r, info_r = react.step_index(action)
            assert np.array_equal(obs_b, obs_r)
            assert reward_b == reward_r
            assert info_b == info_r


class TestReactiveField:
    def _staying_profiles(self, rc, *, seed=0, windows=40, channel=7):
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive", reactive=rc), seed=seed
        )
        profiles = []
        for k in range(windows):
            profiles.append(
                jammer.attack_profile(k * 3.0, (k + 1) * 3.0, channel)
            )
        return jammer, profiles

    def test_latency_shaves_each_burst(self):
        rc = ReactiveJammerConfig(response_latency_s=1.0)
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive", reactive=rc), seed=2
        )
        t = 0.0
        while not jammer.is_camping:
            jammer.attack_profile(t, t + 3.0, 7)
            t += 3.0
        profile = jammer.attack_profile(t, t + 3.0, 7)
        # One second of turnaround leaves 2 of the 3 s window attacked.
        assert profile.attempted
        assert profile.jammed_fraction == pytest.approx(2.0 / 3.0)

    def test_duty_cycle_budget_forces_idle_decisions(self):
        _, profiles = self._staying_profiles(
            ReactiveJammerConfig(duty_cycle=0.5), windows=41
        )
        attacked = [p.attempted for p in profiles[11:]]
        # The token bucket refills half a slot per slot: roughly every
        # other decision transmits once the initial budget is spent.
        assert 0.3 <= np.mean(attacked) <= 0.7

    def test_inaudible_victim_is_never_classified(self):
        rc = ReactiveJammerConfig(victim_rx_dbm=-95.0)  # below -85 dBm floor
        jammer, profiles = self._staying_profiles(rc)
        assert not jammer.is_camping
        # Sweep-and-jam still lands blind hits but never locks on.
        assert any(p.attempted for p in profiles)

    def test_sense_only_jammer_transmits_nothing_until_classified(self):
        jammer, profiles = self._staying_profiles(
            ReactiveJammerConfig(transmit_on_sweep=False)
        )
        first = next(i for i, p in enumerate(profiles) if p.attempted)
        assert first < 4  # found within one sweep cycle
        assert not any(p.attempted for p in profiles[:first])
        assert all(p.attempted for p in profiles[first:])
        assert jammer.is_camping

    def test_eavesdropper_relocks_after_escape(self):
        rc = ReactiveJammerConfig(eavesdrop_probability=1.0)
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive", reactive=rc), seed=4
        )
        t = 0.0
        while not jammer.is_camping:
            jammer.attack_profile(t, t + 3.0, 7)
            t += 3.0
        # Victim escapes: one decision is burned noticing, but the sniffed
        # negotiation hands the jammer the new block — no sweep needed.
        noticed = jammer.attack_profile(t, t + 3.0, 0)
        relocked = jammer.attack_profile(t + 3.0, t + 6.0, 0)
        assert not noticed.attempted
        assert relocked.attempted and jammer.is_camping

    def test_decoy_baits_camping_away_from_victim(self):
        # Victim inaudible, sense-only jammer: only the decoy can lure it.
        rc = ReactiveJammerConfig(
            transmit_on_sweep=False, victim_rx_dbm=-95.0
        )
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive", reactive=rc), seed=5
        )
        decoy = 5  # sits in a different block from the victim's channel 0
        for k in range(4):
            jammer.observe_decoy(decoy)
            profile = jammer.attack_profile(k * 3.0, (k + 1) * 3.0, 0)
            assert not profile.attempted  # the victim is never touched
        assert jammer.is_camping
        assert decoy in jammer.active_channels
        assert 0 not in jammer.active_channels

    def test_decoy_range_validated(self):
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive"), seed=0
        )
        with pytest.raises(ConfigurationError):
            jammer.observe_decoy(99)
        jammer.observe_decoy(None)  # clearing is always fine


class TestFollowerField:
    def _hopping_profiles(self, fc, *, windows=12, seed=0):
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="follower", follower=fc), seed=seed
        )
        assert isinstance(jammer, FollowerFieldJammer)
        profiles = []
        for k in range(windows):
            channel = 0 if k % 2 == 0 else 15  # hops across distant blocks
            profiles.append(
                jammer.attack_profile(k * 3.0, (k + 1) * 3.0, channel)
            )
        return profiles

    def test_zero_lag_is_a_perfect_follower(self):
        profiles = self._hopping_profiles(FollowerJammerConfig(lag_slots=0))
        assert all(p.attempted for p in profiles)
        assert all(p.jammed_fraction == pytest.approx(1.0) for p in profiles)

    def test_one_slot_lag_never_catches_a_per_slot_hopper(self):
        profiles = self._hopping_profiles(FollowerJammerConfig(lag_slots=1))
        assert not any(p.attempted for p in profiles)

    def test_one_slot_lag_pins_a_staying_victim(self):
        jammer = make_field_jammer(
            FieldJammerConfig(
                adversary="follower", follower=FollowerJammerConfig(lag_slots=1)
            ),
            seed=1,
        )
        first = jammer.attack_profile(0.0, 3.0, 7)
        later = [
            jammer.attack_profile(k * 3.0, (k + 1) * 3.0, 7) for k in (1, 2, 3)
        ]
        assert not first.attempted  # the trail is not deep enough yet
        assert all(p.attempted for p in later)

    def test_inaudible_victim_leaves_no_trail(self):
        fc = FollowerJammerConfig(lag_slots=0, victim_rx_dbm=-95.0)
        profiles = self._hopping_profiles(fc)
        assert not any(p.attempted for p in profiles)


class TestLearningJammers:
    def test_field_deployment_is_deterministic(self, trained_jammer):
        cfg = FieldJammerConfig(adversary="learning", learning_agent=trained_jammer)
        runs = []
        for _ in range(2):
            jammer = make_field_jammer(cfg, seed=6)
            assert isinstance(jammer, LearningFieldJammer)
            runs.append(
                [
                    jammer.attack_profile(k * 3.0, (k + 1) * 3.0, k % 16)
                    for k in range(30)
                ]
            )
        assert runs[0] == runs[1]
        assert any(p.attempted for p in runs[0])

    def test_slot_deployment_is_deterministic(self, trained_jammer):
        def trace():
            env = SweepJammingEnv(
                seed=0,
                jammer_factory=make_slot_jammer_factory(
                    "learning", agent=trained_jammer
                ),
            )
            actions = np.random.default_rng(9)
            return [
                env.step_index(int(actions.integers(env.num_actions)))[2]
                for _ in range(80)
            ]

        assert trace() == trace()

    def test_missing_agent_points_at_selfplay(self):
        with pytest.raises(ConfigurationError, match="train_selfplay"):
            make_field_jammer(FieldJammerConfig(adversary="learning"), seed=0)

    def test_geometry_mismatch_is_rejected(self, trained_jammer):
        # 8-wide blocks leave 2 blocks; the agent was trained on 4.
        cfg = FieldJammerConfig(
            adversary="learning", learning_agent=trained_jammer, jam_width=8
        )
        with pytest.raises(ConfigurationError, match="blocks"):
            make_field_jammer(cfg, seed=0)


class TestSlotReactiveQuantisation:
    def _run(self, reactive, *, steps=60, seed=0):
        env = SweepJammingEnv(
            seed=seed,
            jammer_factory=make_slot_jammer_factory(
                "reactive", reactive=reactive, slot_duration_s=3.0
            ),
        )
        channel = env.channel
        action = env.channel_power_to_action(channel, 0)
        return [env.step_index(action)[2] for _ in range(steps)]

    def test_sub_half_slot_latency_still_attacks(self):
        infos = self._run(ReactiveJammerConfig(response_latency_s=1.0))
        assert any(info.jam_attempted for info in infos)

    def test_latency_past_half_slot_voids_every_burst(self):
        # 2 s of turnaround on a 3 s slot leaves less than half the slot
        # attacked — below the jam_state_threshold, so no slot attack.
        infos = self._run(ReactiveJammerConfig(response_latency_s=2.0))
        assert not any(info.jam_attempted for info in infos)

    def test_duty_cycle_thins_the_camped_attacks(self):
        infos = self._run(
            ReactiveJammerConfig(duty_cycle=0.5), steps=50
        )
        attacked = [info.jam_attempted for info in infos[10:]]
        assert 0.3 <= np.mean(attacked) <= 0.7


class TestJammerMemory:
    def test_observation_shape_and_range(self):
        memory = JammerMemory(4, history_length=3)
        assert memory.observation_size == 9
        memory.update(hit=True, block=3)
        obs = memory.observation()
        assert obs.shape == (9,)
        assert obs.min() >= 0.0 and obs.max() <= 1.0

    def test_streak_accumulates_and_resets(self):
        memory = JammerMemory(4, history_length=1)
        memory.update(hit=True, block=0)
        memory.update(hit=True, block=0)
        assert memory.observation()[2] == pytest.approx(0.5)  # streak 2 of 4
        memory.update(hit=False, block=0)
        assert memory.observation()[2] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JammerMemory(0)
        with pytest.raises(ConfigurationError):
            JammerMemory(4, history_length=0)


class TestDispatch:
    def test_field_dispatch_types(self):
        assert type(make_field_jammer(FieldJammerConfig(), seed=0)) is FieldJammer
        assert isinstance(
            make_field_jammer(FieldJammerConfig(adversary="reactive"), seed=0),
            ReactiveFieldJammer,
        )
        assert isinstance(
            make_field_jammer(FieldJammerConfig(adversary="follower"), seed=0),
            FollowerFieldJammer,
        )

    def test_sweep_factory_is_none(self):
        # Callers pass the result straight through; the env then builds
        # the paper's jammer itself.
        assert make_slot_jammer_factory("sweep") is None

    def test_unknown_adversary_rejected(self):
        with pytest.raises(ConfigurationError):
            make_slot_jammer_factory("psychic")
        with pytest.raises(ConfigurationError):
            FieldJammerConfig(adversary="psychic")

    def test_reactive_config_validation(self):
        with pytest.raises(ConfigurationError):
            ReactiveJammerConfig(duty_cycle=0.0)
        with pytest.raises(ConfigurationError):
            ReactiveJammerConfig(response_latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            ReactiveJammerConfig(detection_probability=2.0)
        with pytest.raises(ConfigurationError):
            FollowerJammerConfig(lag_slots=-1)


class TestInstrumentationCounters:
    """Adversary-event counters drained into the telemetry layer."""

    def _camp(self, jammer, channel=7):
        t = 0.0
        while not jammer.is_camping:
            jammer.attack_profile(t, t + 3.0, channel)
            t += 3.0
        return t

    def test_base_sweep_jammer_counts_nothing(self):
        jammer = FieldJammer(FieldJammerConfig(), seed=0)
        for k in range(10):
            jammer.attack_profile(k * 3.0, (k + 1) * 3.0, 7)
        assert jammer.drain_counters() == {}

    def test_reactive_duty_spend_and_starvation(self):
        rc = ReactiveJammerConfig(duty_cycle=0.5)
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive", reactive=rc), seed=0
        )
        for k in range(41):
            jammer.attack_profile(k * 3.0, (k + 1) * 3.0, 7)
        counters = jammer.drain_counters()
        assert counters["duty_starved"] >= 1
        assert counters["duty_spent_s"] > 0.0
        # the token bucket level is exposed for telemetry gauges
        assert 0.0 <= jammer.duty_tokens <= 3.0

    def test_reactive_lock_and_loss_transitions(self):
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive"), seed=4
        )
        t = self._camp(jammer, channel=7)
        assert jammer.drain_counters()["locks"] == 1
        jammer.attack_profile(t, t + 3.0, 0)  # victim escaped
        assert jammer.drain_counters()["lock_losses"] == 1

    def test_reactive_decoy_bait_counted(self):
        rc = ReactiveJammerConfig(transmit_on_sweep=False, victim_rx_dbm=-95.0)
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive", reactive=rc), seed=5
        )
        for k in range(4):
            jammer.observe_decoy(5)
            jammer.attack_profile(k * 3.0, (k + 1) * 3.0, 0)
        counters = jammer.drain_counters()
        assert counters["decoy_baits"] >= 1
        assert counters["locks"] >= 1

    def test_drain_is_destructive_and_survives_reset(self):
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="reactive"), seed=4
        )
        self._camp(jammer)
        jammer.reset()  # new episode must not wipe pending counters
        counters = jammer.drain_counters()
        assert counters["locks"] >= 1
        assert jammer.drain_counters() == {}

    def test_follower_lock_transitions(self):
        fc = FollowerJammerConfig(lag_slots=1)
        jammer = make_field_jammer(
            FieldJammerConfig(adversary="follower", follower=fc), seed=0
        )
        assert isinstance(jammer, FollowerFieldJammer)
        for k in range(4):  # victim stays: trail catches it after the lag
            jammer.attack_profile(k * 3.0, (k + 1) * 3.0, 7)
        assert jammer.drain_counters()["locks"] == 1
        jammer.attack_profile(12.0, 15.0, 0)  # hop: stale trail misses
        assert jammer.drain_counters()["lock_losses"] == 1

    def test_reactive_slot_counters(self):
        from repro.jamming.adversary import ReactiveSlotJammer

        jammer = ReactiveSlotJammer(
            MDPConfig(),
            np.random.default_rng(0),
            reactive=ReactiveJammerConfig(duty_cycle=0.5),
        )
        for _ in range(40):
            jammer.observe_and_attack(7)
        counters = jammer.drain_counters()
        assert counters["locks"] >= 1
        assert counters["duty_spent_slots"] >= 1
        assert counters["duty_starved"] >= 1

    def test_follower_slot_counters(self):
        from repro.jamming.adversary import FollowerSlotJammer

        jammer = FollowerSlotJammer(
            MDPConfig(),
            np.random.default_rng(0),
            follower=FollowerJammerConfig(lag_slots=1),
        )
        for _ in range(4):
            jammer.observe_and_attack(7)
        assert jammer.drain_counters()["locks"] == 1
        jammer.observe_and_attack(0)
        assert jammer.drain_counters()["lock_losses"] == 1
