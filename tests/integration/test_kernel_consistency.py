"""Mechanistic environment vs the paper's analytic transition kernel.

The MDP kernel (Eqs. 6-14) abstracts the sweep-without-replacement
mechanics. These tests measure empirical transition frequencies of
:class:`~repro.core.envs.SweepJammingEnv` and compare them against the
kernel — exactly where they should agree, and directionally where the
kernel idealises (see DESIGN.md).
"""

import numpy as np
import pytest

from repro.core.envs import AnalyticJammingEnv, SweepJammingEnv
from repro.core.mdp import TJ, J, Action, AntiJammingMDP, MDPConfig
from repro.core.metrics import evaluate_policy
from repro.core.policy import ThresholdPolicy, policy_from_solution_map
from repro.core.solver import value_iteration


class TestFirstSweepAgreement:
    """During the first sweep cycle the mechanics match the kernel exactly."""

    def test_streak_survival_curve(self):
        # For a staying victim, P(survive first n slots) = (S-n)/S under
        # both the kernel and the sweep-without-replacement mechanics.
        cfg = MDPConfig(jammer_mode="max")
        s = cfg.sweep_cycle
        trials = 3000
        env = SweepJammingEnv(cfg, seed=0)
        survival = np.zeros(s + 1)
        for _ in range(trials):
            env.reset()
            for n in range(1, s + 1):
                _, _, info = env.step_action(Action(False, 0))
                if info.jam_attempted:
                    break
                survival[n] += 1
        empirical = survival[1:s] / trials
        expected = [(s - n) / s for n in range(1, s)]
        np.testing.assert_allclose(empirical, expected, atol=0.04)

    def test_case6_hop_from_jammed_escape_probability(self):
        # Eq. (14) idealises a hop out of a jammed channel as always
        # escaping. Mechanistically the victim hops to one of K-1 = 15
        # other channels, m-1 = 3 of which sit inside the jammer's camped
        # block — so the true escape probability is 1 - 3/15 = 0.8. This
        # is the kernel's main idealisation (documented in DESIGN.md).
        cfg = MDPConfig(jammer_mode="max")
        env = SweepJammingEnv(cfg, seed=1)
        escapes = 0
        hops = 0
        for _ in range(4000):
            _, _, info = env.step_action(Action(False, 0))
            if info.state == J:
                _, _, info2 = env.step_action(Action(True, 0))
                hops += 1
                escapes += not info2.jam_attempted
        assert hops > 100
        expected = 1.0 - (cfg.jam_width - 1) / (cfg.num_channels - 1)
        assert escapes / hops == pytest.approx(expected, abs=0.05)

    def test_camping_matches_case5(self):
        # Eqs. (12)-(13): staying on a jammed channel keeps the outcome
        # distribution fixed at P(p^T >= p^J).
        cfg = MDPConfig(jammer_mode="random")
        env = SweepJammingEnv(cfg, seed=2)
        tj = j = 0
        for _ in range(6000):
            _, _, info = env.step_action(Action(False, 9))  # top power: 15
            if info.state == TJ:
                tj += 1
            elif info.state == J:
                j += 1
        # P(survive) = P(jammer level <= 15) = 5/10.
        assert tj / (tj + j) == pytest.approx(0.5, abs=0.05)


class TestPolicyValueAgreement:
    """The exact optimum scores similarly on both environments."""

    @pytest.mark.parametrize("mode", ["max", "random"])
    def test_success_rates_close(self, mode):
        cfg = MDPConfig(jammer_mode=mode)
        policy = policy_from_solution_map(
            value_iteration(AntiJammingMDP(cfg)).policy_map()
        )
        analytic = evaluate_policy(
            AnalyticJammingEnv(AntiJammingMDP(cfg), seed=3), policy, slots=12_000
        )
        mechanistic = evaluate_policy(
            SweepJammingEnv(cfg, seed=4), policy, slots=12_000
        )
        # The kernel idealises post-hop bookkeeping, so allow a few points.
        assert abs(
            analytic.success_rate - mechanistic.success_rate
        ) < 0.08

    def test_threshold_policies_rank_identically(self):
        # Ranking of threshold choices transfers between environments.
        cfg = MDPConfig(jammer_mode="max")

        def score(env_cls, threshold, seed):
            policy = ThresholdPolicy(
                threshold=threshold,
                stay_power_index=0,
                hop_power_index=0,
                hop_when_jammed=threshold <= 3,
            )
            if env_cls is AnalyticJammingEnv:
                env = AnalyticJammingEnv(AntiJammingMDP(cfg), seed=seed)
            else:
                env = SweepJammingEnv(cfg, seed=seed)
            return evaluate_policy(env, policy, slots=8000).success_rate

        # Hop-never (threshold beyond the cycle) is catastrophic everywhere;
        # hopping at the terminal streak is good everywhere.
        for env_cls in (AnalyticJammingEnv, SweepJammingEnv):
            never = score(env_cls, 99, seed=5)
            always = score(env_cls, 3, seed=6)
            assert always > never + 0.5
