"""Cross-cutting property tests: invariants that must hold system-wide."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.link import Interferer, JammerSignalType, LinkBudget
from repro.core.envs import AnalyticJammingEnv, SweepJammingEnv
from repro.core.mdp import TJ, J, Action, AntiJammingMDP, MDPConfig
from repro.core.metrics import SlotLog
from repro.core.solver import value_iteration
from repro.net.energy import EnergyModel
from repro.phy.emulation import WaveformEmulator

mdp_configs = st.builds(
    MDPConfig,
    loss_jam=st.floats(0, 300),
    loss_hop=st.floats(0, 150),
    jammer_mode=st.sampled_from(["max", "random"]),
    sweep_cycle_override=st.one_of(st.none(), st.integers(2, 12)),
)


class TestValueInvariants:
    @given(mdp_configs)
    @settings(max_examples=20, deadline=None)
    def test_optimal_values_bounded_by_loss_extremes(self, cfg):
        # V* lies between the best-case (min power forever) and worst-case
        # (max everything forever) discounted loss streams.
        mdp = AntiJammingMDP(cfg)
        sol = value_iteration(mdp)
        gamma = cfg.discount
        per_slot_best = -cfg.tx_power_levels[0]
        per_slot_worst = -(
            cfg.tx_power_levels[-1] + cfg.loss_hop + cfg.loss_jam
        )
        lower = per_slot_worst / (1 - gamma) - 1e-6
        upper = per_slot_best / (1 - gamma) + 1e-6
        assert (sol.values >= lower).all()
        assert (sol.values <= upper).all()

    @given(mdp_configs)
    @settings(max_examples=15, deadline=None)
    def test_jammed_state_never_better_than_survived(self, cfg):
        # Being in J can never be strictly better than being in TJ: the
        # states share dynamics, J just cost more getting in.
        sol = value_iteration(AntiJammingMDP(cfg))
        assert sol.value(J) <= sol.value(TJ) + 1e-9


class TestEnvironmentInvariants:
    @given(st.integers(0, 10_000), st.sampled_from(["max", "random"]))
    @settings(max_examples=12, deadline=None)
    def test_reward_decomposition(self, seed, mode):
        cfg = MDPConfig(jammer_mode=mode)
        env = SweepJammingEnv(cfg, seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(80):
            action = Action(
                hop=bool(rng.integers(2)), power_index=int(rng.integers(10))
            )
            _, reward, info = env.step_action(action)
            expected = -cfg.tx_power_levels[info.power_index]
            if info.hopped:
                expected -= cfg.loss_hop
            if not info.success:
                expected -= cfg.loss_jam
            assert reward == pytest.approx(expected)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_info_flags_mutually_consistent(self, seed):
        env = SweepJammingEnv(MDPConfig(jammer_mode="random"), seed=seed)
        rng = np.random.default_rng(seed + 1)
        for _ in range(120):
            _, _, info = env.step_action(
                Action(hop=bool(rng.integers(2)), power_index=int(rng.integers(10)))
            )
            if info.jam_defeated:
                assert info.jam_attempted and info.state == TJ
            if info.state == J:
                assert info.jam_attempted and not info.success
            if not info.jam_attempted:
                assert info.success
            assert info.power_raised == (info.power_index > 0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_analytic_env_states_always_in_space(self, seed):
        env = AnalyticJammingEnv(seed=seed)
        rng = np.random.default_rng(seed + 2)
        for _ in range(100):
            state, _, _ = env.step(
                Action(hop=bool(rng.integers(2)), power_index=int(rng.integers(10)))
            )
            assert state in env.mdp.states


class TestMetricInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_rates_in_unit_interval(self, seed):
        env = SweepJammingEnv(MDPConfig(jammer_mode="random"), seed=seed)
        log = SlotLog()
        rng = np.random.default_rng(seed)
        for _ in range(200):
            _, _, info = env.step_action(
                Action(hop=bool(rng.integers(2)), power_index=int(rng.integers(10)))
            )
            log.record(info)
        s = log.summary()
        for value in (
            s.success_rate,
            s.fh_adoption_rate,
            s.fh_success_rate,
            s.pc_adoption_rate,
            s.pc_success_rate,
            s.jam_attempt_rate,
        ):
            assert 0.0 <= value <= 1.0


class TestChannelInvariants:
    @given(
        st.floats(-90, -20),
        st.floats(-90, -20),
        st.sampled_from(list(JammerSignalType)),
    )
    @settings(max_examples=30, deadline=None)
    def test_per_monotone_in_interference(self, signal_dbm, jam_dbm, sig):
        budget = LinkBudget()
        weak = budget.packet_error_rate(
            signal_dbm, 60, [Interferer(jam_dbm - 6.0, sig)]
        )
        strong = budget.packet_error_rate(
            signal_dbm, 60, [Interferer(jam_dbm, sig)]
        )
        assert strong >= weak - 1e-9

    @given(st.floats(-90, -20), st.sampled_from(list(JammerSignalType)))
    @settings(max_examples=30, deadline=None)
    def test_per_monotone_in_signal(self, jam_dbm, sig):
        budget = LinkBudget()
        itf = [Interferer(jam_dbm, sig)]
        low = budget.packet_error_rate(-80.0, 60, itf)
        high = budget.packet_error_rate(-40.0, 60, itf)
        assert high <= low + 1e-9


class TestEnergyInvariants:
    @given(st.integers(0, 9), st.integers(0, 9))
    @settings(max_examples=30)
    def test_energy_monotone_in_power_level(self, a, b):
        m = EnergyModel()
        lo, hi = sorted((a, b))
        assert m.slot_energy_mj(lo, False) <= m.slot_energy_mj(hi, False)


class TestEmulationInvariants:
    @given(st.binary(min_size=2, max_size=4))
    @settings(max_examples=6, deadline=None)
    def test_emulation_always_within_dsss_budget(self, payload):
        emulator = WaveformEmulator()
        result = emulator.emulate_bytes(payload)
        assert result.chip_error_rate is not None
        assert result.chip_error_rate < 0.35
        assert result.alpha > 0
        assert result.designed.size == result.emulated.size
