"""End-to-end integration: the full attack and defence pipelines together."""

import numpy as np
import pytest

from repro.channel.link import JammerSignalType
from repro.channel.waveform import jam_trial
from repro.core.dqn import DQNConfig, EpsilonSchedule
from repro.core.mdp import MDPConfig
from repro.core.trainer import TrainerConfig, train_dqn
from repro.errors import DecodingError
from repro.nn.serialize import load_parameters, save_parameters
from repro.phy import zigbee
from repro.phy.emulation import WaveformEmulator
from repro.phy.packet import decode_frame, encode_frame
from repro.sim.field import DQNPolicyAdapter, FieldConfig, FieldExperiment, StatePolicyAdapter
from repro.sim.scenario import field_jammer_config, paper_defaults
from repro.core.baselines import NoDefensePolicy


class TestAttackPipeline:
    """Wi-Fi radio -> forged ZigBee chips -> victim radio, end to end."""

    def test_emulated_frame_reaches_victim_decoder(self):
        # Forge an entire (format-violating) ZigBee PPDU via the Wi-Fi PHY
        # and verify the victim's chip correlator recovers it byte-exact —
        # DSSS fixes the emulation chip errors, which is why the attack
        # works at all.
        emulator = WaveformEmulator()
        burst = bytes([0, 0, 0, 0, 0x55, 0xAA, 0x10])  # preamble + junk
        result = emulator.emulate_bytes(burst)
        rx_chips = zigbee.oqpsk_demodulate(result.emulated)
        usable = rx_chips.size - rx_chips.size % zigbee.CHIPS_PER_SYMBOL
        symbols, _ = zigbee.despread(rx_chips[:usable])
        decoded = zigbee.symbols_to_bytes(symbols[: len(burst) * 2])
        assert decoded == burst
        # ... and the frame parser rejects it (stealth: busy, no frame).
        with pytest.raises(DecodingError):
            decode_frame(decoded)

    def test_legitimate_frame_survives_weak_jamming_only(self):
        payload = b"sensor reading 42"
        ppdu = encode_frame(payload)
        weak = jam_trial(
            ppdu, signal_type=JammerSignalType.EMUBEE,
            jam_to_signal_db=-20.0, rng=0,
        )
        assert weak.packet_delivered
        assert decode_frame(weak.decoded).payload == payload
        strong = jam_trial(
            ppdu, signal_type=JammerSignalType.EMUBEE,
            jam_to_signal_db=12.0, rng=1,
        )
        assert not strong.packet_delivered

    def test_hop_escapes_waveform_level_jamming(self):
        # The defence in miniature: same frame, jammer present on the old
        # channel but not the new one.
        ppdu = encode_frame(b"hop to safety")
        jammed = jam_trial(
            ppdu, signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=12.0, rng=2,
        )
        clear = jam_trial(
            ppdu, signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=-60.0, rng=3,  # jammer far off-channel
        )
        assert not jammed.packet_delivered
        assert clear.packet_delivered


class TestDefencePipeline:
    """Train -> serialise -> deploy on the field simulator."""

    @pytest.fixture(scope="class")
    def trained(self):
        dqn = DQNConfig(
            observation_size=15,
            num_actions=160,
            hidden_sizes=(24, 24),
            batch_size=16,
            warmup_transitions=64,
            replay_capacity=4000,
            epsilon=EpsilonSchedule(1.0, 0.05, 6000),
        )
        return train_dqn(
            MDPConfig(jammer_mode="max"),
            trainer=TrainerConfig(episodes=35, steps_per_episode=300),
            dqn=dqn,
            seed=11,
        )

    def test_artifact_roundtrip_preserves_policy(self, trained, tmp_path):
        # The paper's deployment step: ship the parameter matrices to the
        # hub and load them there.
        from repro.core.dqn import DQNAgent

        path = tmp_path / "policy.npz"
        save_parameters(trained.agent.network(), path)
        fresh = DQNAgent(trained.agent.config, seed=999)
        load_parameters(fresh.online, path)
        obs = np.linspace(0, 1, 15)
        assert fresh.act(obs, greedy=True) == trained.agent.act(obs, greedy=True)

    def test_dqn_beats_no_defense_in_field(self, trained):
        defaults = paper_defaults()
        cfg = FieldConfig(mdp=defaults.mdp, jammer=field_jammer_config(defaults))
        dqn_run = FieldExperiment(
            cfg,
            DQNPolicyAdapter(trained.agent, defaults.mdp, seed=1),
            seed=2,
        ).run_experiment(120)
        undefended = FieldExperiment(
            cfg,
            StatePolicyAdapter(NoDefensePolicy(), defaults.mdp, seed=3),
            seed=2,
        ).run_experiment(120)
        assert dqn_run.metrics.success_rate > undefended.metrics.success_rate + 0.3
        assert dqn_run.goodput_pkts_per_slot > undefended.goodput_pkts_per_slot * 2

    def test_training_reward_reflects_field_quality(self, trained):
        # Sanity linking the two halves: the trained agent's final training
        # rewards must beat its earliest ones (it learned *something*
        # transferable to the field run above).
        assert trained.reward_history[-5:].mean() > trained.reward_history[:5].mean()
