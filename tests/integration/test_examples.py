"""Smoke tests running the example scripts as real subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_mdp_analysis(self):
        out = run_example("mdp_analysis.py")
        assert "All structural results verified numerically." in out
        assert "Banach" in out

    def test_emubee_attack(self):
        out = run_example("emubee_attack.py")
        assert "byte-level agreement  : 100%" in out
        assert "EmuBee 0%" in out  # stealthy
        assert "Wi-Fi noise 100%" in out  # obvious

    def test_smart_warehouse(self):
        out = run_example("smart_warehouse.py", "--slots", "80")
        assert "Warehouse cell vs max-power EmuBee jammer" in out
        assert "Warehouse cell vs random-power EmuBee jammer" in out
        assert "hybrid FH+PC (optimal)" in out

    def test_adaptive_arms_race(self):
        out = run_example("adaptive_arms_race.py", "--slots", "2500")
        assert "Arms race" in out
        assert "Energy bill" in out

    @pytest.mark.slow
    def test_quickstart_fast(self):
        out = run_example("quickstart.py", "--fast", timeout=400)
        assert "Optimal policy (value iteration)" in out
        assert "Table-I metrics" in out
        assert "DQN (RL FH)" in out
