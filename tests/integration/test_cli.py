"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.loss_jam == 100.0
        assert args.jammer_mode == "max"

    def test_bad_jammer_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--jammer-mode", "sneaky"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "99"])


class TestSolveCommand:
    def test_prints_policy(self, capsys):
        assert main(["solve"]) == 0
        out = capsys.readouterr().out
        assert "hop threshold" in out
        assert "V*(x)" in out
        for state in ("1", "2", "3", "TJ", "J"):
            assert state in out

    def test_random_mode(self, capsys):
        assert main(["solve", "--jammer-mode", "random"]) == 0
        assert "mode=random" in capsys.readouterr().out


class TestFigureCommand:
    def test_fig10(self, capsys):
        assert main(["figure", "10"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "Fig. 10" in out

    def test_fig2b(self, capsys):
        assert main(["figure", "2b"]) == 0
        out = capsys.readouterr().out
        assert "PER EmuBee" in out

    def test_fig9a(self, capsys):
        assert main(["figure", "9a"]) == 0
        out = capsys.readouterr().out
        assert "DQN" in out and "Polling" in out

    def test_fig11b_small(self, capsys):
        assert main(["figure", "11b", "--slots", "30"]) == 0
        assert "Jx slot" in capsys.readouterr().out


class TestEmulateCommand:
    def test_emulates_hex(self, capsys):
        assert main(["emulate", "deadbeef"]) == 0
        out = capsys.readouterr().out
        assert "optimal alpha" in out
        assert "chip error rate" in out


class TestTrainCommand:
    def test_trains_and_saves(self, capsys, tmp_path):
        path = tmp_path / "weights.npz"
        code = main(
            [
                "train",
                "--episodes", "3",
                "--steps", "60",
                "--eval-slots", "300",
                "--save", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "S_T" in out
        assert path.exists()
        with np.load(path) as data:
            assert data["flat"].size == 10_960


class TestCalibrateCommand:
    def test_generate_check_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "cal.json"
        code = main(
            [
                "calibrate",
                "--trials", "4",
                "--margins=-3,0,3",
                "--seed", "2",
                "--out", str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "corrected" in out
        assert path.exists()
        assert main(["calibrate", "--check", str(path)]) == 0
        assert "reproduced" in capsys.readouterr().out.lower()

    def test_check_rejects_tampered_artifact(self, capsys, tmp_path):
        import json

        path = tmp_path / "cal.json"
        assert main(
            ["calibrate", "--trials", "4", "--margins=-3,0,3", "--out", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        payload["entries"][0]["corrected"] = [
            0.0 for _ in payload["entries"][0]["corrected"]
        ]
        path.write_text(json.dumps(payload))
        assert main(["calibrate", "--check", str(path)]) == 1

    def test_channel_flag_exported(self, monkeypatch):
        import os

        from repro.channel.fidelity import CHANNEL_ENV

        monkeypatch.delenv(CHANNEL_ENV, raising=False)
        args = build_parser().parse_args(["train", "--channel", "hybrid"])
        assert args.channel == "hybrid"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--channel", "exact"])
