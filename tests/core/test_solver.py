"""Tests for the exact solvers and the paper's structural results (§III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mdp import TJ, J, Action, AntiJammingMDP, MDPConfig
from repro.core.solver import (
    bellman_residual,
    hop_q_profile,
    is_threshold_policy,
    policy_iteration,
    stay_q_profile,
    value_iteration,
)
from repro.errors import SolverError


def solve(**kwargs):
    return value_iteration(AntiJammingMDP(MDPConfig(**kwargs)))


class TestValueIteration:
    def test_converges(self):
        sol = solve()
        assert sol.residual < 1e-9
        assert bellman_residual(sol) < 1e-6

    def test_contraction_theorem_iii1(self):
        # Theorem III.1 / Banach: successive VI sweeps contract by gamma, so
        # the iteration count is bounded by the geometric estimate.
        mdp = AntiJammingMDP()
        sol = value_iteration(mdp, tol=1e-8)
        gamma = mdp.config.discount
        # ||V_{k+1} - V_k|| <= gamma^k ||V_1 - V_0||; bound iterations.
        assert sol.iterations < np.log(1e-8 / 300) / np.log(gamma) + 10

    def test_values_negative(self):
        # All rewards are losses, so optimal values are negative.
        sol = solve()
        assert (sol.values < 0).all()

    def test_bad_tolerance(self):
        with pytest.raises(SolverError):
            value_iteration(AntiJammingMDP(), tol=0.0)

    def test_divergence_guard(self):
        with pytest.raises(SolverError):
            value_iteration(AntiJammingMDP(), tol=1e-12, max_iter=3)

    def test_policy_iteration_agrees(self):
        vi = solve(jammer_mode="random", loss_jam=70)
        pi = policy_iteration(AntiJammingMDP(MDPConfig(jammer_mode="random", loss_jam=70)))
        np.testing.assert_allclose(vi.values, pi.values, atol=1e-6)
        assert np.array_equal(vi.policy_indices, pi.policy_indices)

    @given(
        st.sampled_from(["max", "random"]),
        st.floats(min_value=0, max_value=200),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_solution_satisfies_bellman(self, mode, lj, lh):
        sol = value_iteration(
            AntiJammingMDP(MDPConfig(jammer_mode=mode, loss_jam=lj, loss_hop=lh))
        )
        assert bellman_residual(sol) < 1e-6


class TestLemmas:
    """Lemmas III.2 / III.3: monotone Q profiles over the streak states."""

    @pytest.mark.parametrize("mode", ["max", "random"])
    @pytest.mark.parametrize("power", [0, 5, 9])
    def test_lemma_iii2_stay_q_decreasing(self, mode, power):
        sol = solve(jammer_mode=mode, loss_jam=100)
        profile = stay_q_profile(sol, power)
        assert all(a > b for a, b in zip(profile, profile[1:])), profile

    @pytest.mark.parametrize("mode", ["max", "random"])
    @pytest.mark.parametrize("power", [0, 5, 9])
    def test_lemma_iii3_hop_q_increasing(self, mode, power):
        sol = solve(jammer_mode=mode, loss_jam=100)
        profile = hop_q_profile(sol, power)
        assert all(a < b for a, b in zip(profile, profile[1:])), profile

    def test_lemmas_hold_for_longer_sweep_cycles(self):
        for cycle in (5, 8, 12):
            sol = value_iteration(
                AntiJammingMDP(MDPConfig(sweep_cycle_override=cycle))
            )
            stay = stay_q_profile(sol, 0)
            hop = hop_q_profile(sol, 0)
            assert all(a > b for a, b in zip(stay, stay[1:]))
            assert all(a < b for a, b in zip(hop, hop[1:]))


class TestTheoremIII4:
    """The optimal policy is a threshold policy in the streak."""

    @given(
        st.sampled_from(["max", "random"]),
        st.floats(min_value=0, max_value=300),
        st.floats(min_value=0, max_value=150),
        st.integers(min_value=3, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_threshold_structure(self, mode, lj, lh, cycle):
        sol = value_iteration(
            AntiJammingMDP(
                MDPConfig(
                    jammer_mode=mode,
                    loss_jam=lj,
                    loss_hop=lh,
                    sweep_cycle_override=cycle,
                )
            )
        )
        assert is_threshold_policy(sol)

    def test_threshold_extremes(self):
        # Tiny L_J: never worth hopping -> n* = sweep cycle.
        lazy = solve(loss_jam=0.0)
        assert lazy.hop_threshold() == 4
        # Huge L_J, cheap hop: hop immediately -> n* = 1 or 2.
        eager = solve(loss_jam=500.0, loss_hop=1.0)
        assert eager.hop_threshold() <= 2


class TestTheoremIII5:
    """Threshold trends: n* falls with L_J, rises with L_H and sweep cycle."""

    def test_threshold_decreases_with_lj(self):
        thresholds = [
            solve(loss_jam=lj, loss_hop=50.0).hop_threshold()
            for lj in (10.0, 50.0, 150.0, 400.0)
        ]
        assert thresholds == sorted(thresholds, reverse=True)
        assert thresholds[0] > thresholds[-1]

    def test_threshold_increases_with_lh(self):
        thresholds = [
            solve(loss_jam=100.0, loss_hop=lh).hop_threshold()
            for lh in (1.0, 40.0, 120.0, 400.0)
        ]
        assert thresholds == sorted(thresholds)
        assert thresholds[-1] > thresholds[0]

    def test_threshold_increases_with_sweep_cycle(self):
        thresholds = [
            value_iteration(
                AntiJammingMDP(
                    MDPConfig(loss_jam=100.0, sweep_cycle_override=c)
                )
            ).hop_threshold()
            for c in (3, 6, 10, 14)
        ]
        assert thresholds == sorted(thresholds)
        assert thresholds[-1] > thresholds[0]


class TestSolutionAccessors:
    def test_action_lookup(self):
        sol = solve()
        a = sol.action(J)
        assert isinstance(a, Action)

    def test_q_and_value_consistent(self):
        sol = solve()
        for x in sol.mdp.states:
            best = max(sol.q_value(x, a) for a in sol.mdp.actions)
            assert sol.value(x) == pytest.approx(best, abs=1e-7)

    def test_policy_map_complete(self):
        sol = solve()
        pm = sol.policy_map()
        assert set(pm) == set(sol.mdp.states)

    def test_optimal_hops_out_of_jam_when_lj_high(self):
        sol = solve(loss_jam=100.0, jammer_mode="max")
        assert sol.action(J).hop
        assert sol.action(TJ).hop
