"""Tests for the replay buffer and DQN agent."""

import numpy as np
import pytest

from repro.core.dqn import DQNAgent, DQNConfig, EpsilonSchedule, GreedyDQNPolicy
from repro.core.replay import ReplayBuffer
from repro.errors import ConfigurationError, TrainingError


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(10, 4, seed=0)
        assert len(buf) == 0
        buf.push(np.zeros(4), 1, -1.0, np.ones(4))
        assert len(buf) == 1

    def test_eviction_at_capacity(self):
        buf = ReplayBuffer(3, 1, seed=0)
        for i in range(5):
            buf.push(np.array([float(i)]), i, float(i), np.array([0.0]))
        assert len(buf) == 3 and buf.is_full
        batch = buf.sample(64, allow_undersized=True)
        # Only the last three transitions remain.
        assert set(np.unique(batch.actions)).issubset({2, 3, 4})

    def test_sample_shapes(self):
        buf = ReplayBuffer(16, 5, seed=1)
        for i in range(8):
            buf.push(np.full(5, i), i, -float(i), np.full(5, i + 1))
        batch = buf.sample(4)
        assert batch.observations.shape == (4, 5)
        assert batch.actions.shape == (4,)
        assert batch.rewards.shape == (4,)
        assert batch.next_observations.shape == (4, 5)
        assert batch.size == 4

    def test_sample_contents_consistent(self):
        buf = ReplayBuffer(16, 1, seed=2)
        for i in range(10):
            buf.push(np.array([float(i)]), i, float(-i), np.array([float(i + 1)]))
        batch = buf.sample(32, allow_undersized=True)
        for obs, a, r, nxt in zip(
            batch.observations, batch.actions, batch.rewards, batch.next_observations
        ):
            assert obs[0] == a
            assert r == -a
            assert nxt[0] == a + 1

    def test_empty_sample_rejected(self):
        with pytest.raises(TrainingError):
            ReplayBuffer(4, 1).sample(1)

    def test_validation(self):
        with pytest.raises(TrainingError):
            ReplayBuffer(0, 1)
        with pytest.raises(TrainingError):
            ReplayBuffer(4, 0)
        buf = ReplayBuffer(4, 1)
        buf.push(np.zeros(1), 0, 0.0, np.zeros(1))
        with pytest.raises(TrainingError):
            buf.sample(0)

    def test_clear(self):
        buf = ReplayBuffer(4, 1, seed=0)
        buf.push(np.zeros(1), 0, 0.0, np.zeros(1))
        buf.clear()
        assert len(buf) == 0


class TestEpsilonSchedule:
    def test_linear_decay(self):
        sched = EpsilonSchedule(1.0, 0.1, 100)
        assert sched.value(0) == 1.0
        assert sched.value(50) == pytest.approx(0.55)
        assert sched.value(100) == pytest.approx(0.1)
        assert sched.value(10_000) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonSchedule(0.1, 0.5, 100)
        with pytest.raises(ConfigurationError):
            EpsilonSchedule(1.0, 0.1, 0)
        with pytest.raises(ConfigurationError):
            EpsilonSchedule().value(-1)


def small_config(**kw):
    defaults = dict(
        observation_size=6,
        num_actions=4,
        hidden_sizes=(16, 16),
        batch_size=8,
        warmup_transitions=8,
        replay_capacity=256,
        target_sync_interval=10,
    )
    defaults.update(kw)
    return DQNConfig(**defaults)


class TestDQNConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DQNConfig(observation_size=0, num_actions=4)
        with pytest.raises(ConfigurationError):
            DQNConfig(observation_size=4, num_actions=1)
        with pytest.raises(ConfigurationError):
            small_config(warmup_transitions=2, batch_size=8)
        with pytest.raises(ConfigurationError):
            small_config(discount=1.0)
        with pytest.raises(ConfigurationError):
            small_config(target_sync_interval=0)


class TestDQNAgent:
    def test_q_values_shape(self):
        agent = DQNAgent(small_config(), seed=0)
        q = agent.q_values(np.zeros(6))
        assert q.shape == (4,)

    def test_observation_size_check(self):
        agent = DQNAgent(small_config(), seed=0)
        with pytest.raises(ConfigurationError):
            agent.q_values(np.zeros(5))

    def test_greedy_act_is_argmax(self):
        agent = DQNAgent(small_config(), seed=0)
        obs = np.ones(6) * 0.3
        assert agent.act(obs, greedy=True) == int(np.argmax(agent.q_values(obs)))

    def test_epsilon_exploration_spreads_actions(self):
        cfg = small_config(epsilon=EpsilonSchedule(1.0, 1.0, 10))
        agent = DQNAgent(cfg, seed=1)
        obs = np.zeros(6)
        best = int(np.argmax(agent.q_values(obs)))
        picks = {agent.act(obs) for _ in range(200)}
        # Under epsilon = 1 the greedy action is never chosen.
        assert best not in picks
        assert len(picks) == 3

    def test_observe_warms_up_then_trains(self):
        agent = DQNAgent(small_config(), seed=2)
        obs = np.zeros(6)
        losses = []
        for i in range(20):
            loss = agent.observe(obs, i % 4, -1.0, obs)
            losses.append(loss)
        assert all(l is None for l in losses[:7])
        assert all(l is not None for l in losses[8:])
        assert agent.train_steps > 0

    def test_target_sync_happens(self):
        agent = DQNAgent(small_config(target_sync_interval=5), seed=3)
        obs = np.zeros(6)
        for i in range(40):
            agent.observe(obs, i % 4, -1.0, obs)
        # After syncs, the target must equal the online network.
        agent.sync_target()
        x = np.ones(6)
        np.testing.assert_allclose(
            agent.target.predict(x), agent.online.predict(x)
        )

    def test_learns_trivial_bandit(self):
        # One observation, action 2 pays 1, others pay 0: Q must rank it top.
        cfg = small_config(
            discount=0.0,
            epsilon=EpsilonSchedule(1.0, 1.0, 10),
            learning_rate=5e-3,
        )
        agent = DQNAgent(cfg, seed=4)
        rng = np.random.default_rng(0)
        obs = np.zeros(6)
        for _ in range(600):
            a = int(rng.integers(4))
            agent.observe(obs, a, 1.0 if a == 2 else 0.0, obs)
        assert agent.act(obs, greedy=True) == 2

    def test_greedy_policy_requires_training(self):
        agent = DQNAgent(small_config(), seed=5)
        with pytest.raises(TrainingError):
            GreedyDQNPolicy(agent)

    def test_greedy_policy_wraps_agent(self):
        agent = DQNAgent(small_config(), seed=6)
        obs = np.zeros(6)
        for i in range(20):
            agent.observe(obs, i % 4, 0.0, obs)
        policy = GreedyDQNPolicy(agent)
        assert policy.act(obs) == agent.act(obs, greedy=True)

    def test_seeded_determinism(self):
        def run(seed):
            agent = DQNAgent(small_config(), seed=seed)
            obs = np.arange(6) / 6
            out = []
            for i in range(30):
                a = agent.act(obs)
                agent.observe(obs, a, -0.1 * a, obs)
                out.append(a)
            return out

        assert run(9) == run(9)
