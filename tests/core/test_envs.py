"""Tests for both environments, including kernel-consistency checks."""

import numpy as np
import pytest

from repro.core.envs import AnalyticJammingEnv, SweepJammingEnv
from repro.core.mdp import TJ, J, Action, AntiJammingMDP, MDPConfig
from repro.errors import ConfigurationError, SimulationError


class TestAnalyticEnv:
    def test_reset_starts_fresh(self):
        env = AnalyticJammingEnv(seed=0)
        assert env.reset() == 1

    def test_step_returns_kernel_states(self):
        env = AnalyticJammingEnv(seed=0)
        mdp = env.mdp
        for _ in range(200):
            a = Action(hop=bool(np.random.default_rng(0).integers(2)), power_index=0)
            state, reward, info = env.step(a)
            assert state in mdp.states
            assert info.state == state
            assert isinstance(reward, float)

    def test_empirical_frequencies_match_kernel(self):
        # From streak 1 with (stay, p0) the kernel gives 2/3 -> streak 2 and
        # 1/3 -> J (max-power jammer always wins).
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="max"))
        env = AnalyticJammingEnv(mdp, seed=42)
        a = Action(hop=False, power_index=0)
        outcomes = {2: 0, J: 0}
        n = 6000
        for _ in range(n):
            env.state = 1
            nxt, _, _ = env.step(a)
            outcomes[nxt] += 1
        assert outcomes[2] / n == pytest.approx(2 / 3, abs=0.03)
        assert outcomes[J] / n == pytest.approx(1 / 3, abs=0.03)

    def test_hop_from_jammed_always_escapes(self):
        env = AnalyticJammingEnv(seed=1)
        a = Action(hop=True, power_index=0)
        for _ in range(100):
            env.state = J
            nxt, _, info = env.step(a)
            assert nxt == 1 and info.success

    def test_reward_matches_mdp(self):
        env = AnalyticJammingEnv(seed=2)
        mdp = env.mdp
        for _ in range(100):
            prev = env.state
            a = Action(hop=False, power_index=3)
            nxt, reward, _ = env.step(a)
            assert reward == mdp.reward(prev, a, nxt)

    def test_seeded_reproducibility(self):
        def run(seed):
            env = AnalyticJammingEnv(seed=seed)
            return [env.step(Action(False, 0))[0] for _ in range(30)]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_info_flags_consistent(self):
        env = AnalyticJammingEnv(seed=3)
        for i in range(300):
            a = Action(hop=i % 3 == 0, power_index=i % 10)
            _, _, info = env.step(a)
            assert info.success == (info.state != J)
            assert info.jam_attempted == (info.state in (TJ, J))
            if info.jam_defeated:
                assert info.state == TJ
            if info.avoided_jam:
                assert info.hopped and info.success


class TestSweepEnv:
    def test_geometry(self):
        env = SweepJammingEnv(seed=0)
        assert env.num_actions == 160
        assert env.observation_size == 15
        assert env.reset().shape == (15,)

    def test_action_index_roundtrip(self):
        env = SweepJammingEnv(seed=0)
        for idx in (0, 37, 159):
            ch, p = env.action_to_channel_power(idx)
            assert env.channel_power_to_action(ch, p) == idx

    def test_action_index_bounds(self):
        env = SweepJammingEnv(seed=0)
        with pytest.raises(SimulationError):
            env.action_to_channel_power(160)
        with pytest.raises(SimulationError):
            env.channel_power_to_action(16, 0)
        with pytest.raises(SimulationError):
            env.channel_power_to_action(0, 10)

    def test_history_length_validation(self):
        with pytest.raises(ConfigurationError):
            SweepJammingEnv(history_length=0)

    def test_observation_in_unit_range(self):
        env = SweepJammingEnv(seed=1)
        obs = env.reset()
        rng = np.random.default_rng(0)
        for _ in range(300):
            obs, _, _ = env.step_index(int(rng.integers(160)))
            assert obs.min() >= 0.0 and obs.max() <= 1.0

    def test_stay_action_keeps_channel(self):
        env = SweepJammingEnv(seed=2)
        ch = env.channel
        _, _, info = env.step_index(env.channel_power_to_action(ch, 0))
        assert not info.hopped and info.channel == ch

    def test_explicit_hop_changes_channel(self):
        env = SweepJammingEnv(seed=3)
        ch = env.channel
        target = (ch + 5) % 16
        _, _, info = env.step_index(env.channel_power_to_action(target, 0))
        assert info.hopped and info.channel == target

    def test_abstract_hop_draws_other_channel(self):
        env = SweepJammingEnv(seed=4)
        for _ in range(50):
            before = env.channel
            _, _, info = env.step_action(Action(hop=True, power_index=0))
            assert info.channel != before

    def test_camping_jammer_pins_victim(self):
        # Stay forever against a max-power jammer: once found, jammed in
        # every subsequent slot.
        env = SweepJammingEnv(MDPConfig(jammer_mode="max"), seed=5)
        jam_started = None
        for t in range(200):
            _, _, info = env.step_action(Action(hop=False, power_index=0))
            if info.state == J and jam_started is None:
                jam_started = t
            elif jam_started is not None:
                assert info.state == J
        assert jam_started is not None and jam_started < 8

    def test_jammer_finds_victim_within_sweep_cycle(self):
        # From a fresh sweep, a staying victim is found within S slots.
        env = SweepJammingEnv(MDPConfig(jammer_mode="max"), seed=6)
        hits = 0
        for _ in range(50):
            env.reset()
            for t in range(4):
                _, _, info = env.step_action(Action(hop=False, power_index=0))
                if info.jam_attempted:
                    hits += 1
                    break
            else:
                pytest.fail("victim not found within one sweep cycle")
        assert hits == 50

    def test_power_defeats_random_jammer_sometimes(self):
        env = SweepJammingEnv(MDPConfig(jammer_mode="random"), seed=7)
        defeats = 0
        attempts = 0
        for _ in range(2000):
            _, _, info = env.step_action(Action(hop=False, power_index=9))
            attempts += info.jam_attempted
            defeats += info.jam_defeated
        assert attempts > 0
        # Top victim level 15 survives jammer levels 11..15: about half.
        assert defeats / attempts == pytest.approx(0.5, abs=0.1)

    def test_max_jammer_never_defeated(self):
        env = SweepJammingEnv(MDPConfig(jammer_mode="max"), seed=8)
        for _ in range(500):
            _, _, info = env.step_action(Action(hop=False, power_index=9))
            assert not info.jam_defeated

    def test_reward_structure(self):
        cfg = MDPConfig()
        env = SweepJammingEnv(cfg, seed=9)
        _, reward, info = env.step_action(Action(hop=True, power_index=0))
        expected = -(cfg.tx_power_levels[0] + cfg.loss_hop)
        if info.state == J:
            expected -= cfg.loss_jam
        assert reward == expected

    def test_seeded_reproducibility(self):
        def run(seed):
            env = SweepJammingEnv(seed=seed)
            out = []
            for i in range(60):
                _, r, info = env.step_index(i % 160)
                out.append((r, info.state))
            return out

        assert run(11) == run(11)

    def test_empirical_first_hit_distribution(self):
        # The sweep-without-replacement mechanics make the first-detection
        # time uniform over {1..S} for a staying victim (kernel Eqs. 6-8).
        env = SweepJammingEnv(MDPConfig(jammer_mode="max"), seed=12)
        counts = np.zeros(5)
        for _ in range(2000):
            env.reset()
            for t in range(1, 5):
                _, _, info = env.step_action(Action(hop=False, power_index=0))
                if info.jam_attempted:
                    counts[t] += 1
                    break
        probs = counts[1:] / counts.sum()
        np.testing.assert_allclose(probs, 0.25, atol=0.04)


class TestSeededResetIsolation:
    """Regression: a seeded reset must not leak strategy/jammer state.

    SweepJammingEnv used to hand an injected sweep strategy straight to the
    jammer, so ``reset(seed=k)`` reused the strategy's *mutated* state
    (adaptive scores, partial cycles) and two same-seed episodes diverged.
    The env now deep-copies the pristine template on every seeded reset.
    """

    def _trace(self, env, seed, steps=150):
        env.reset(seed=seed)
        actions = np.random.default_rng(5)
        out = []
        for _ in range(steps):
            _, reward, info = env.step_index(int(actions.integers(env.num_actions)))
            out.append((reward, info))
        return out

    def test_seeded_reset_restores_injected_strategy_state(self):
        from repro.jamming.strategies import AdaptiveSweep

        cfg = MDPConfig(jammer_mode="max")
        env = SweepJammingEnv(
            cfg, seed=0, sweep_strategy=AdaptiveSweep(cfg.sweep_cycle, seed=9)
        )
        assert self._trace(env, seed=42) == self._trace(env, seed=42)

    def test_seeded_reset_rebuilds_factory_jammers(self):
        from repro.jamming.adversary import make_slot_jammer_factory

        env = SweepJammingEnv(
            seed=0, jammer_factory=make_slot_jammer_factory("follower")
        )
        assert self._trace(env, seed=7) == self._trace(env, seed=7)

    def test_strategy_and_factory_are_mutually_exclusive(self):
        from repro.jamming.strategies import SequentialSweep

        with pytest.raises(ConfigurationError, match="not both"):
            SweepJammingEnv(
                seed=0,
                sweep_strategy=SequentialSweep(4),
                jammer_factory=lambda config, rng: None,
            )

    def test_injected_strategy_template_stays_pristine(self):
        from repro.jamming.strategies import AdaptiveSweep

        cfg = MDPConfig(jammer_mode="max")
        template = AdaptiveSweep(cfg.sweep_cycle, seed=3)
        env = SweepJammingEnv(cfg, seed=0, sweep_strategy=template)
        self._trace(env, seed=1)
        # Episodes mutate the jammer's copy, never the caller's object.
        assert template.block_scores().sum() == 0.0


class TestChannelTiers:
    """Fidelity-tier selection threaded through both environments."""

    @staticmethod
    def _sweep_trajectory(**kwargs):
        env = SweepJammingEnv(seed=11, **kwargs)
        out = []
        for i in range(150):
            _, reward, info = env.step_index(i % env.num_actions)
            out.append((reward, info.state, info.jam_attempted))
        return out

    def test_analytic_default_bit_identical(self):
        # channel=None (default) and channel="analytic" must be the same
        # trajectory: the analytic adjudicator consumes no randomness.
        assert self._sweep_trajectory() == self._sweep_trajectory(
            channel="analytic"
        )

    def test_hybrid_sweep_deterministic(self):
        a = self._sweep_trajectory(channel="hybrid")
        b = self._sweep_trajectory(channel="hybrid")
        assert a == b

    def test_env_variable_selects_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHANNEL", "hybrid")
        env = AnalyticJammingEnv(seed=0)
        assert env._adjudicator.tier == "hybrid"
        monkeypatch.setenv("REPRO_CHANNEL", "")
        assert AnalyticJammingEnv(seed=0)._adjudicator.analytic

    def test_hybrid_rewires_jam_success_law(self):
        # Levels straddling the capture transition: analytically a jammer
        # below the tx power never wins; under the calibrated tier the
        # -1.4 dB margin still corrupts a fraction of the packets.
        cfg = MDPConfig(
            tx_power_levels=(11.0, 11.4, 12.0),
            jammer_power_levels=(8.0, 10.0),
        )
        analytic = AnalyticJammingEnv(cfg, seed=0)
        hybrid = AnalyticJammingEnv(cfg, seed=0, channel="hybrid")
        p_analytic = analytic.mdp.config.jam_success_probability(1)
        p_hybrid = hybrid.mdp.config.jam_success_probability(1)
        assert p_analytic == 0.0
        assert 0.0 < p_hybrid < 1.0

    def test_analytic_env_hybrid_runs(self):
        env = AnalyticJammingEnv(seed=4, channel="hybrid")
        for i in range(50):
            state, reward, info = env.step(Action(hop=i % 2 == 0, power_index=0))
            assert state in env.mdp.states
