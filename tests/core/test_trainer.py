"""Tests for the DQN training loop (small budgets — smoke-scale learning)."""

import numpy as np
import pytest

from repro.core.dqn import DQNConfig, EpsilonSchedule
from repro.core.mdp import MDPConfig
from repro.core.trainer import TrainerConfig, evaluate_dqn, train_dqn
from repro.errors import TrainingError


def tiny_dqn(env_obs=15, env_actions=160, **kw):
    defaults = dict(
        observation_size=env_obs,
        num_actions=env_actions,
        hidden_sizes=(24, 24),
        batch_size=16,
        warmup_transitions=64,
        replay_capacity=4000,
        epsilon=EpsilonSchedule(1.0, 0.1, 2000),
    )
    defaults.update(kw)
    return DQNConfig(**defaults)


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            TrainerConfig(episodes=0)
        with pytest.raises(TrainingError):
            TrainerConfig(steps_per_episode=0)
        with pytest.raises(TrainingError):
            TrainerConfig(goal_window=0)
        with pytest.raises(TrainingError):
            TrainerConfig(reward_scale=0.0)


class TestTraining:
    def test_histories_have_episode_length(self):
        res = train_dqn(
            MDPConfig(),
            trainer=TrainerConfig(episodes=3, steps_per_episode=50),
            dqn=tiny_dqn(),
            seed=0,
        )
        assert res.episodes == 3
        assert res.reward_history.shape == (3,)
        assert res.loss_history.shape == (3,)
        assert res.steps == 150

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            train_dqn(
                MDPConfig(),
                trainer=TrainerConfig(episodes=1, steps_per_episode=10),
                dqn=tiny_dqn(env_obs=9),
                seed=0,
            )

    def test_reward_goal_early_stop(self):
        # A goal of -infinity-ish is reached immediately after goal_window.
        res = train_dqn(
            MDPConfig(),
            trainer=TrainerConfig(
                episodes=50, steps_per_episode=30, reward_goal=-1e9, goal_window=2
            ),
            dqn=tiny_dqn(),
            seed=1,
        )
        assert res.converged
        assert res.episodes == 2

    def test_deterministic_given_seed(self):
        kwargs = dict(
            trainer=TrainerConfig(episodes=2, steps_per_episode=40),
            dqn=tiny_dqn(),
        )
        a = train_dqn(MDPConfig(), seed=7, **kwargs)
        b = train_dqn(MDPConfig(), seed=7, **kwargs)
        np.testing.assert_allclose(a.reward_history, b.reward_history)

    def test_learning_improves_over_no_defense(self):
        # Even a short run must clear the "never act" floor (S_T ~ 0
        # against a camping max-power jammer).
        res = train_dqn(
            MDPConfig(jammer_mode="max"),
            trainer=TrainerConfig(episodes=30, steps_per_episode=250),
            dqn=tiny_dqn(epsilon=EpsilonSchedule(1.0, 0.05, 5000)),
            seed=3,
        )
        metrics = evaluate_dqn(res.agent, MDPConfig(jammer_mode="max"), slots=4000, seed=4)
        assert metrics.success_rate > 0.35

    def test_reward_history_trends_up(self):
        res = train_dqn(
            MDPConfig(jammer_mode="max"),
            trainer=TrainerConfig(episodes=30, steps_per_episode=250),
            dqn=tiny_dqn(epsilon=EpsilonSchedule(1.0, 0.05, 5000)),
            seed=5,
        )
        first = res.reward_history[:5].mean()
        last = res.reward_history[-5:].mean()
        assert last > first


class TestEvaluate:
    def test_slots_validated(self):
        res = train_dqn(
            MDPConfig(),
            trainer=TrainerConfig(episodes=1, steps_per_episode=80),
            dqn=tiny_dqn(),
            seed=0,
        )
        with pytest.raises(TrainingError):
            evaluate_dqn(res.agent, slots=0)

    def test_observation_mismatch_rejected(self):
        res = train_dqn(
            MDPConfig(),
            trainer=TrainerConfig(episodes=1, steps_per_episode=80),
            dqn=tiny_dqn(),
            seed=0,
        )
        with pytest.raises(TrainingError):
            evaluate_dqn(res.agent, history_length=7, slots=10)
