"""Tests for policy abstractions."""

import pytest

from repro.core.mdp import TJ, J, Action, AntiJammingMDP, MDPConfig
from repro.core.policy import (
    RandomPolicy,
    TabularPolicy,
    ThresholdPolicy,
    extract_threshold,
    policy_from_solution_map,
    policy_power_profile,
)
from repro.core.solver import value_iteration
from repro.errors import ConfigurationError


class TestTabular:
    def test_lookup(self):
        pol = TabularPolicy({1: Action(False, 0), J: Action(True, 2)})
        assert pol.action(1) == Action(False, 0)
        assert pol.action(J).hop

    def test_missing_state(self):
        with pytest.raises(ConfigurationError):
            TabularPolicy({}).action(1)

    def test_from_solution(self):
        sol = value_iteration(AntiJammingMDP())
        pol = policy_from_solution_map(sol.policy_map())
        for x in sol.mdp.states:
            assert pol.action(x) == sol.action(x)


class TestThreshold:
    def test_structure(self):
        pol = ThresholdPolicy(threshold=3, stay_power_index=0, hop_power_index=2)
        assert not pol.action(1).hop
        assert not pol.action(2).hop
        assert pol.action(3).hop
        assert pol.action(TJ).hop and pol.action(J).hop

    def test_power_selection(self):
        pol = ThresholdPolicy(threshold=2, stay_power_index=1, hop_power_index=5)
        assert pol.action(1).power_index == 1
        assert pol.action(2).power_index == 5

    def test_hop_when_jammed_flag(self):
        pol = ThresholdPolicy(
            threshold=2, stay_power_index=0, hop_power_index=0, hop_when_jammed=False
        )
        assert not pol.action(J).hop

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdPolicy(threshold=0, stay_power_index=0, hop_power_index=0)

    def test_extract_threshold_roundtrip(self):
        cfg = MDPConfig()
        for t in (1, 2, 3):
            pol = ThresholdPolicy(threshold=t, stay_power_index=0, hop_power_index=0)
            assert extract_threshold(pol, cfg) == t

    def test_extract_threshold_never_hops(self):
        cfg = MDPConfig()
        pol = ThresholdPolicy(
            threshold=99, stay_power_index=0, hop_power_index=0
        )
        assert extract_threshold(pol, cfg) == cfg.sweep_cycle


class TestRandom:
    def test_covers_action_space(self):
        mdp = AntiJammingMDP()
        pol = RandomPolicy(mdp, seed=0)
        seen = {pol.action(1) for _ in range(500)}
        assert len(seen) == mdp.num_actions

    def test_reproducible(self):
        mdp = AntiJammingMDP()
        a = [RandomPolicy(mdp, seed=3).action(1) for _ in range(5)]
        b = [RandomPolicy(mdp, seed=3).action(1) for _ in range(5)]
        assert a == b


class TestPowerProfile:
    def test_profile_covers_all_states(self):
        cfg = MDPConfig()
        pol = ThresholdPolicy(threshold=3, stay_power_index=0, hop_power_index=9)
        profile = policy_power_profile(pol, cfg)
        assert set(profile) == {1, 2, 3, TJ, J}
        assert profile[1] == cfg.tx_power_levels[0]
        assert profile[J] == cfg.tx_power_levels[9]
