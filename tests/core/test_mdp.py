"""Tests for the anti-jamming MDP: state/action spaces, rewards, kernel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mdp import TJ, J, Action, AntiJammingMDP, JammerMode, MDPConfig
from repro.errors import ConfigurationError

configs = st.builds(
    MDPConfig,
    num_channels=st.sampled_from([8, 16, 32]),
    jam_width=st.sampled_from([1, 2, 4]),
    jammer_mode=st.sampled_from(["max", "random"]),
    loss_hop=st.floats(0, 100),
    loss_jam=st.floats(0, 200),
)


class TestConfig:
    def test_default_sweep_cycle(self):
        assert MDPConfig().sweep_cycle == 4

    def test_sweep_cycle_is_ceiling(self):
        assert MDPConfig(num_channels=16, jam_width=5).sweep_cycle == 4
        assert MDPConfig(num_channels=16, jam_width=3).sweep_cycle == 6

    def test_override(self):
        cfg = MDPConfig().with_sweep_cycle(9)
        assert cfg.sweep_cycle == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MDPConfig(num_channels=1)
        with pytest.raises(ConfigurationError):
            MDPConfig(jam_width=0)
        with pytest.raises(ConfigurationError):
            MDPConfig(tx_power_levels=())
        with pytest.raises(ConfigurationError):
            MDPConfig(tx_power_levels=(10, 5))
        with pytest.raises(ConfigurationError):
            MDPConfig(loss_hop=-1)
        with pytest.raises(ConfigurationError):
            MDPConfig(jammer_mode="stealth")
        with pytest.raises(ConfigurationError):
            MDPConfig(discount=1.0)
        with pytest.raises(ConfigurationError):
            MDPConfig(sweep_cycle_override=1)

    def test_sweep_cycle_one_rejected_by_mdp(self):
        with pytest.raises(ConfigurationError):
            AntiJammingMDP(MDPConfig(num_channels=16, jam_width=16))


class TestJamSuccessProbability:
    def test_max_mode_always_wins_below_top(self):
        cfg = MDPConfig(jammer_mode=JammerMode.MAX)
        # Jammer top level is 20; every victim level 6..15 loses.
        for i in range(cfg.num_power_levels):
            assert cfg.jam_success_probability(i) == 1.0

    def test_max_mode_tie_survives(self):
        cfg = MDPConfig(
            tx_power_levels=tuple(range(11, 21)),
            jammer_mode=JammerMode.MAX,
        )
        # Victim's top level 20 equals the jammer's top level: survives.
        assert cfg.jam_success_probability(cfg.num_power_levels - 1) == 0.0

    def test_random_mode_counts_wins(self):
        cfg = MDPConfig(jammer_mode=JammerMode.RANDOM)
        # Victim level 15 (index 9): jammer wins with 16..20 -> 5/10.
        assert cfg.jam_success_probability(9) == 0.5
        # Victim level 6 (index 0): all ten jammer levels exceed it.
        assert cfg.jam_success_probability(0) == 1.0

    def test_random_mode_monotone_in_power(self):
        cfg = MDPConfig(jammer_mode=JammerMode.RANDOM)
        probs = [cfg.jam_success_probability(i) for i in range(10)]
        assert probs == sorted(probs, reverse=True)


class TestSpaces:
    def test_state_space_matches_eq3(self):
        mdp = AntiJammingMDP()
        assert mdp.states == (1, 2, 3, TJ, J)

    def test_action_space_matches_eq4(self):
        mdp = AntiJammingMDP()
        assert mdp.num_actions == 20
        hops = [a.hop for a in mdp.actions]
        assert hops.count(True) == 10 and hops.count(False) == 10

    def test_indexing_roundtrip(self):
        mdp = AntiJammingMDP()
        for x in mdp.states:
            assert mdp.states[mdp.state_index(x)] == x
        for a in mdp.actions:
            assert mdp.actions[mdp.action_index(a)] == a

    def test_unknown_state(self):
        with pytest.raises(ConfigurationError):
            AntiJammingMDP().state_index(99)

    def test_successful_states(self):
        mdp = AntiJammingMDP()
        assert J not in mdp.successful_states()
        assert TJ in mdp.successful_states()


class TestRewards:
    def test_eq5_all_four_cases(self):
        mdp = AntiJammingMDP()
        cfg = mdp.config
        p0 = cfg.tx_power_levels[0]
        stay = Action(hop=False, power_index=0)
        hop = Action(hop=True, power_index=0)
        assert mdp.reward(1, stay, J) == -(p0 + cfg.loss_jam)
        assert mdp.reward(1, stay, 2) == -p0
        assert mdp.reward(1, hop, J) == -(p0 + cfg.loss_jam + cfg.loss_hop)
        assert mdp.reward(1, hop, 1) == -(p0 + cfg.loss_hop)

    def test_power_term_scales(self):
        mdp = AntiJammingMDP()
        lo = mdp.reward(1, Action(False, 0), 2)
        hi = mdp.reward(1, Action(False, 9), 2)
        assert hi < lo

    def test_expected_reward_eq23(self):
        # E[U(n, (s, p))] = -L_p - L_J * P(jam) / (S - n)  (paper Eq. 23).
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="max"))
        cfg = mdp.config
        s = cfg.sweep_cycle
        for n in mdp.streak_states:
            a = Action(hop=False, power_index=0)
            expected = -cfg.tx_power_levels[0] - cfg.loss_jam * 1.0 / (s - n)
            assert mdp.expected_reward(n, a) == pytest.approx(expected)

    def test_expected_reward_eq24(self):
        # E[U(n, (h, p))] = -L_p - L_H - L_J * P(jam) (S-n-1)/((S-1)(S-n)).
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="max"))
        cfg = mdp.config
        s = cfg.sweep_cycle
        for n in mdp.streak_states:
            a = Action(hop=True, power_index=0)
            q = (s - n - 1) / ((s - 1) * (s - n))
            expected = -cfg.tx_power_levels[0] - cfg.loss_hop - cfg.loss_jam * q
            assert mdp.expected_reward(n, a) == pytest.approx(expected)


class TestKernel:
    @given(configs)
    @settings(max_examples=30, deadline=None)
    def test_rows_sum_to_one(self, cfg):
        mdp = AntiJammingMDP(cfg)
        for x in mdp.states:
            for a in mdp.actions:
                assert math.isclose(
                    sum(mdp.transitions(x, a).values()), 1.0, abs_tol=1e-9
                )

    @given(configs)
    @settings(max_examples=30, deadline=None)
    def test_kernel_matrix_stochastic(self, cfg):
        mdp = AntiJammingMDP(cfg)
        P = mdp.kernel_matrix()
        assert P.min() >= 0
        np.testing.assert_allclose(P.sum(axis=2), 1.0, atol=1e-9)

    def test_case1_streak_grows(self):
        mdp = AntiJammingMDP()
        dist = mdp.transitions(1, Action(False, 0))
        # 1 - 1/(4 - 1) = 2/3 chance of reaching streak 2.
        assert dist[2] == pytest.approx(2 / 3)

    def test_case2_terminal_streak_always_attacked(self):
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="max"))
        dist = mdp.transitions(3, Action(False, 0))
        # At n = S-1 the sweep must find the victim: 1/(4-3) = 1.
        assert dist == {J: pytest.approx(1.0)}

    def test_case2_splits_by_power(self):
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="random"))
        dist = mdp.transitions(3, Action(False, 9))  # level 15: survives 1/2
        assert dist[TJ] == pytest.approx(0.5)
        assert dist[J] == pytest.approx(0.5)

    def test_case3_hop_escape_probability(self):
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="max"))
        dist = mdp.transitions(1, Action(True, 0))
        q = (4 - 1 - 1) / ((4 - 1) * (4 - 1))  # = 2/9
        assert dist[1] == pytest.approx(1 - q)
        assert dist[J] == pytest.approx(q)

    def test_case4_hop_at_terminal_streak_is_safe(self):
        # (S - n - 1) = 0 at n = S-1: hopping always escapes.
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="max"))
        dist = mdp.transitions(3, Action(True, 0))
        assert dist == {1: pytest.approx(1.0)}

    def test_case5_camping_jammer(self):
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="max"))
        for x in (TJ, J):
            dist = mdp.transitions(x, Action(False, 0))
            assert dist == {J: pytest.approx(1.0)}

    def test_case5_random_mode(self):
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="random"))
        dist = mdp.transitions(J, Action(False, 9))
        assert dist[TJ] == pytest.approx(0.5)

    def test_case6_hop_from_jammed_always_escapes(self):
        mdp = AntiJammingMDP()
        for x in (TJ, J):
            for p in (0, 9):
                assert mdp.transitions(x, Action(True, p)) == {1: pytest.approx(1.0)}

    def test_invalid_streak_rejected(self):
        mdp = AntiJammingMDP()
        with pytest.raises(ConfigurationError):
            mdp.transitions(7, Action(False, 0))

    def test_describe(self):
        text = AntiJammingMDP().describe()
        assert "sweep_cycle=4" in text and "K=16" in text
