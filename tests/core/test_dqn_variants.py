"""Tests for the DQN extensions: Double DQN and soft target updates."""

import numpy as np
import pytest

from repro.core.dqn import DQNAgent, DQNConfig, EpsilonSchedule
from repro.core.mdp import MDPConfig
from repro.core.trainer import TrainerConfig, evaluate_dqn, train_dqn
from repro.errors import ConfigurationError


def cfg(**kw):
    defaults = dict(
        observation_size=6,
        num_actions=4,
        hidden_sizes=(16, 16),
        batch_size=8,
        warmup_transitions=8,
        replay_capacity=256,
        target_sync_interval=10,
    )
    defaults.update(kw)
    return DQNConfig(**defaults)


class TestConfigValidation:
    def test_tau_bounds(self):
        with pytest.raises(ConfigurationError):
            cfg(soft_update_tau=0.0)
        with pytest.raises(ConfigurationError):
            cfg(soft_update_tau=1.5)
        assert cfg(soft_update_tau=1.0).soft_update_tau == 1.0

    def test_defaults_off(self):
        c = cfg()
        assert not c.double_dqn
        assert c.soft_update_tau is None


class TestSoftUpdates:
    def test_tau_one_equals_hard_sync(self):
        agent = DQNAgent(cfg(soft_update_tau=1.0), seed=0)
        obs = np.ones(6) * 0.5
        for i in range(12):
            agent.observe(obs, i % 4, -1.0, obs)
        np.testing.assert_allclose(
            agent.target.predict(obs), agent.online.predict(obs)
        )

    def test_small_tau_tracks_slowly(self):
        agent = DQNAgent(cfg(soft_update_tau=0.01), seed=1)
        obs = np.ones(6) * 0.5
        before = agent.target.predict(obs).copy()
        for i in range(12):
            agent.observe(obs, i % 4, -1.0, obs)
        after = agent.target.predict(obs)
        online = agent.online.predict(obs)
        # The target moved, but remains between its start and the online net.
        assert not np.allclose(after, before)
        assert np.linalg.norm(after - online) > 0

    def test_hard_sync_not_used_with_tau(self):
        # With tau set, the interval-based hard sync must not fire: after
        # exactly target_sync_interval steps the target must NOT equal the
        # online network (tau is tiny).
        agent = DQNAgent(
            cfg(soft_update_tau=1e-4, target_sync_interval=3), seed=2
        )
        obs = np.ones(6) * 0.5
        for i in range(15):
            agent.observe(obs, i % 4, -1.0, obs)
        assert not np.allclose(
            agent.target.predict(obs), agent.online.predict(obs)
        )


class TestDoubleDQN:
    def test_double_dqn_learns_bandit(self):
        config = cfg(
            double_dqn=True,
            discount=0.0,
            epsilon=EpsilonSchedule(1.0, 1.0, 10),
            learning_rate=5e-3,
        )
        agent = DQNAgent(config, seed=3)
        rng = np.random.default_rng(0)
        obs = np.zeros(6)
        for _ in range(600):
            a = int(rng.integers(4))
            agent.observe(obs, a, 1.0 if a == 1 else 0.0, obs)
        assert agent.act(obs, greedy=True) == 1

    def test_double_dqn_reduces_overestimation(self):
        # In a zero-reward environment with noisy targets, vanilla DQN's
        # max operator biases Q upward; Double DQN's decoupled argmax
        # should produce smaller (less positive) values.
        def mean_q(double):
            config = cfg(
                double_dqn=double,
                discount=0.9,
                epsilon=EpsilonSchedule(1.0, 1.0, 10),
                learning_rate=1e-2,
            )
            agent = DQNAgent(config, seed=4)
            rng = np.random.default_rng(1)
            for _ in range(800):
                obs = rng.random(6)
                nxt = rng.random(6)
                agent.observe(obs, int(rng.integers(4)), 0.0, nxt)
            probe = rng.random((64, 6))
            return float(agent.online.forward(probe).max(axis=1).mean())

        assert mean_q(True) <= mean_q(False) + 0.05

    def test_double_dqn_trains_on_environment(self):
        env_cfg = MDPConfig(jammer_mode="max")
        dqn = DQNConfig(
            observation_size=15,
            num_actions=160,
            hidden_sizes=(24, 24),
            batch_size=16,
            warmup_transitions=64,
            replay_capacity=4000,
            double_dqn=True,
            soft_update_tau=0.01,
            epsilon=EpsilonSchedule(1.0, 0.05, 5000),
        )
        res = train_dqn(
            env_cfg,
            trainer=TrainerConfig(episodes=30, steps_per_episode=250),
            dqn=dqn,
            seed=5,
        )
        metrics = evaluate_dqn(res.agent, env_cfg, slots=4000, seed=6)
        assert metrics.success_rate > 0.35
