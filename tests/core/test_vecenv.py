"""Equivalence tests for lock-step batched multi-seed DQN training.

The contract under test is hard bit-identity: ``train_dqn_batch`` over N
seeds must produce exactly what N serial ``train_dqn`` calls produce —
reward/loss histories, final online and target weights, optimizer state,
and even the downstream replay-sampling rng position.
"""

import numpy as np
import pytest

from repro.core.dqn import DQNAgent, DQNConfig, EpsilonSchedule
from repro.core.envs import SweepJammingEnv
from repro.core.mdp import MDPConfig
from repro.core.replay import ReplayBuffer
from repro.core.trainer import TrainerConfig, train_dqn, train_dqn_multi_seed
from repro.core.vecenv import (
    DEFAULT_ENV_BATCH,
    ENV_BATCH_ENV,
    VectorEnv,
    clear_policy_stack_cache,
    get_policy_stack,
    greedy_policy_actions,
    resolve_env_batch,
    train_dqn_batch,
)
from repro.errors import TrainingError
from repro.exec import FaultPolicy
from repro.rng import derive


def tiny_dqn(env_obs=15, env_actions=160, **kw):
    defaults = dict(
        observation_size=env_obs,
        num_actions=env_actions,
        hidden_sizes=(24, 24),
        batch_size=16,
        warmup_transitions=64,
        replay_capacity=4000,
        epsilon=EpsilonSchedule(1.0, 0.1, 2000),
    )
    defaults.update(kw)
    return DQNConfig(**defaults)


TINY = TrainerConfig(episodes=2, steps_per_episode=40)


def assert_run_identical(batched, serial):
    """Bit-identity of one batched seed's result against its serial twin."""
    assert batched.episodes == serial.episodes
    assert batched.steps == serial.steps
    assert batched.converged == serial.converged
    np.testing.assert_array_equal(batched.reward_history, serial.reward_history)
    np.testing.assert_array_equal(batched.loss_history, serial.loss_history)
    for pa, pb in zip(
        batched.agent.network().parameters, serial.agent.network().parameters
    ):
        np.testing.assert_array_equal(pa, pb)
    probe = np.linspace(-1.0, 1.0, batched.agent.config.observation_size)
    np.testing.assert_array_equal(
        batched.agent.target.predict(probe), serial.agent.target.predict(probe)
    )
    # The replay rng streams are also in the same position afterwards.
    cfg = batched.agent.config
    a = batched.agent.replay.sample(cfg.batch_size)
    b = serial.agent.replay.sample(cfg.batch_size)
    np.testing.assert_array_equal(a.actions, b.actions)
    np.testing.assert_array_equal(a.observations, b.observations)


class TestResolveEnvBatch:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(ENV_BATCH_ENV, raising=False)
        assert resolve_env_batch() == DEFAULT_ENV_BATCH

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(ENV_BATCH_ENV, "3")
        assert resolve_env_batch() == 3

    @pytest.mark.parametrize("word", ["off", "none", " OFF "])
    def test_disable_words(self, word):
        assert resolve_env_batch(word) == 1

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BATCH_ENV, "3")
        assert resolve_env_batch(5) == 5

    @pytest.mark.parametrize("bad", ["soon", "1.5"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(TrainingError):
            resolve_env_batch(bad)

    @pytest.mark.parametrize("bad", [0, -2, "0"])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(TrainingError):
            resolve_env_batch(bad)


class TestVectorEnv:
    def test_lockstep_matches_serial_trajectories(self):
        seeds = (0, 1, 2)
        vec = VectorEnv.from_seeds(MDPConfig(), seeds, history_length=5)
        solo = [
            SweepJammingEnv(
                MDPConfig(), history_length=5, seed=derive(s, "train-env")
            )
            for s in seeds
        ]
        obs = vec.reset()
        solo_obs = [env.reset() for env in solo]
        np.testing.assert_array_equal(obs, np.stack(solo_obs))
        rng = np.random.default_rng(0)
        for _ in range(30):
            actions = rng.integers(0, vec.num_actions, size=len(seeds))
            obs, rewards, infos = vec.step(actions)
            for i, env in enumerate(solo):
                o, r, info = env.step_index(int(actions[i]))
                np.testing.assert_array_equal(obs[i], o)
                assert rewards[i] == r
                assert infos[i] == info

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            VectorEnv([])

    def test_geometry_mismatch_rejected(self):
        a = SweepJammingEnv(MDPConfig(), history_length=5, seed=0)
        b = SweepJammingEnv(MDPConfig(), history_length=7, seed=0)
        with pytest.raises(TrainingError, match="share geometry"):
            VectorEnv([a, b])

    def test_wrong_action_count_rejected(self):
        vec = VectorEnv.from_seeds(MDPConfig(), (0, 1), history_length=5)
        vec.reset()
        with pytest.raises(TrainingError, match="expected 2 actions"):
            vec.step(np.zeros(3, dtype=np.int64))

    def test_select_keeps_wrapped_envs(self):
        vec = VectorEnv.from_seeds(MDPConfig(), (0, 1, 2), history_length=5)
        sub = vec.select([0, 2])
        assert sub.num_envs == 2
        assert sub.envs[0] is vec.envs[0]
        assert sub.envs[1] is vec.envs[2]


class TestPushMany:
    @staticmethod
    def _fill(buf, rows):
        for i in rows:
            buf.push(np.full(3, float(i)), i, -float(i), np.full(3, i + 0.5))

    @staticmethod
    def _assert_buffers_equal(a, b):
        assert len(a) == len(b)
        assert a._cursor == b._cursor
        np.testing.assert_array_equal(a._obs, b._obs)
        np.testing.assert_array_equal(a._actions, b._actions)
        np.testing.assert_array_equal(a._rewards, b._rewards)
        np.testing.assert_array_equal(a._next_obs, b._next_obs)

    @pytest.mark.parametrize("preload,count", [(0, 3), (2, 5), (6, 4), (0, 8), (3, 20)])
    def test_matches_sequential_push(self, preload, count):
        # capacity 8: the cases cover no-wrap, wraparound, and n > capacity.
        seq = ReplayBuffer(8, 3, seed=0)
        bulk = ReplayBuffer(8, 3, seed=0)
        self._fill(seq, range(preload))
        self._fill(bulk, range(preload))
        rows = range(100, 100 + count)
        self._fill(seq, rows)
        bulk.push_many(
            np.stack([np.full(3, float(i)) for i in rows]),
            np.array(list(rows)),
            np.array([-float(i) for i in rows]),
            np.stack([np.full(3, i + 0.5) for i in rows]),
        )
        self._assert_buffers_equal(seq, bulk)
        # Same rng, same contents => identical future samples.
        a = seq.sample(4, allow_undersized=True)
        b = bulk.sample(4, allow_undersized=True)
        np.testing.assert_array_equal(a.actions, b.actions)

    def test_empty_push_is_noop(self):
        buf = ReplayBuffer(4, 3, seed=0)
        buf.push_many(np.empty((0, 3)), np.empty(0), np.empty(0), np.empty((0, 3)))
        assert len(buf) == 0 and buf._cursor == 0

    def test_row_count_mismatch_rejected(self):
        buf = ReplayBuffer(4, 3)
        with pytest.raises(TrainingError, match="disagree"):
            buf.push_many(np.zeros((2, 3)), np.zeros(3), np.zeros(2), np.zeros((2, 3)))

    def test_observation_shape_mismatch_rejected(self):
        buf = ReplayBuffer(4, 3)
        with pytest.raises(TrainingError, match="do not match"):
            buf.push_many(np.zeros((2, 4)), np.zeros(2), np.zeros(2), np.zeros((2, 4)))


class TestSampleGuard:
    def test_undersized_sample_rejected(self):
        buf = ReplayBuffer(16, 2, seed=0)
        for i in range(4):
            buf.push(np.zeros(2), i, 0.0, np.zeros(2))
        with pytest.raises(TrainingError, match="allow_undersized"):
            buf.sample(8)
        assert buf.sample(8, allow_undersized=True).size == 8

    def test_warmup_keeps_agent_clear_of_guard(self):
        # DQNConfig enforces warmup >= batch, so an agent that only trains
        # after warm-up can never request more rows than it stored.
        agent = DQNAgent(
            tiny_dqn(env_obs=4, env_actions=3, hidden_sizes=(8,),
                     batch_size=8, warmup_transitions=8, replay_capacity=32),
            seed=0,
        )
        obs = np.zeros(4)
        for i in range(12):
            agent.observe(obs, i % 3, -1.0, obs)  # must never raise
        assert agent.train_steps > 0


class TestBatchedEquivalence:
    def _serial(self, seeds, trainer=TINY, dqn=None, **kw):
        return [
            train_dqn(MDPConfig(), trainer=trainer, dqn=dqn, seed=s, **kw)
            for s in seeds
        ]

    def test_plain_matches_serial(self):
        seeds = (0, 1, 2)
        dqn = tiny_dqn()
        batched = train_dqn_batch(MDPConfig(), seeds=seeds, trainer=TINY, dqn=dqn)
        for b, s in zip(batched, self._serial(seeds, dqn=dqn)):
            assert_run_identical(b, s)

    def test_double_dqn_matches_serial(self):
        seeds = (3, 4)
        dqn = tiny_dqn(double_dqn=True)
        batched = train_dqn_batch(MDPConfig(), seeds=seeds, trainer=TINY, dqn=dqn)
        for b, s in zip(batched, self._serial(seeds, dqn=dqn)):
            assert_run_identical(b, s)

    def test_soft_target_update_matches_serial(self):
        seeds = (5, 6)
        dqn = tiny_dqn(soft_update_tau=0.05)
        batched = train_dqn_batch(MDPConfig(), seeds=seeds, trainer=TINY, dqn=dqn)
        for b, s in zip(batched, self._serial(seeds, dqn=dqn)):
            assert_run_identical(b, s)

    def test_staggered_early_stop_matches_serial(self):
        # Seeds 0-4 hit the goal after 8/5/2/2/3 episodes (seed 0 never
        # converges), so the stacked tensors compact repeatedly mid-run.
        seeds = (0, 1, 2, 3, 4)
        dqn = tiny_dqn()
        trainer = TrainerConfig(
            episodes=8, steps_per_episode=40, reward_goal=-81.0, goal_window=2
        )
        batched = train_dqn_batch(MDPConfig(), seeds=seeds, trainer=trainer, dqn=dqn)
        serial = self._serial(seeds, trainer=trainer, dqn=dqn)
        episodes = [r.episodes for r in serial]
        assert len(set(episodes)) > 2  # the stagger actually happened
        assert not serial[0].converged and serial[2].converged
        for b, s in zip(batched, serial):
            assert_run_identical(b, s)

    def test_single_seed_delegates_to_serial(self):
        batched = train_dqn_batch(MDPConfig(), seeds=(7,), trainer=TINY)
        solo = train_dqn(MDPConfig(), trainer=TINY, seed=7)
        assert len(batched) == 1
        np.testing.assert_array_equal(
            batched[0].reward_history, solo.reward_history
        )

    def test_empty_seeds_rejected(self):
        with pytest.raises(TrainingError):
            train_dqn_batch(MDPConfig(), seeds=(), trainer=TINY)

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(TrainingError, match="geometry"):
            train_dqn_batch(
                MDPConfig(),
                seeds=(0, 1),
                trainer=TINY,
                dqn=tiny_dqn(env_obs=7),
            )


class TestMultiSeedComposition:
    def test_env_batch_matches_serial_path(self):
        serial = train_dqn_multi_seed(
            MDPConfig(), seeds=(0, 1, 2), trainer=TINY, workers=1, env_batch=1
        )
        batched = train_dqn_multi_seed(
            MDPConfig(), seeds=(0, 1, 2), trainer=TINY, workers=1, env_batch=2
        )
        assert batched.seeds == serial.seeds
        for a, b in zip(batched.results, serial.results):
            np.testing.assert_array_equal(a.reward_history, b.reward_history)
            for pa, pb in zip(
                a.agent.network().parameters, b.agent.network().parameters
            ):
                np.testing.assert_array_equal(pa, pb)

    def test_fault_takes_out_whole_group(self):
        # fault_seed=2 at rate 0.5 fails exactly task index 0. With
        # env_batch=2 that task carries seeds (0, 1), so both are lost and
        # the second group (seeds 2, 3) survives untouched.
        multi = train_dqn_multi_seed(
            MDPConfig(),
            seeds=(0, 1, 2, 3),
            trainer=TINY,
            workers=1,
            env_batch=2,
            policy=FaultPolicy(
                on_error="skip", max_retries=0, fault_rate=0.5, fault_seed=2
            ),
        )
        assert multi.seeds == (2, 3)
        assert len(multi.failures) == 1
        assert multi.failures[0].index == 0
        solo = train_dqn(MDPConfig(), trainer=TINY, seed=2)
        np.testing.assert_array_equal(
            multi.results[0].reward_history, solo.reward_history
        )


class TestPolicyStackCache:
    """The cached stacked-inference handle behind greedy_policy_actions."""

    def _agents(self, n=5, seed0=0):
        cfg = tiny_dqn()
        return [DQNAgent(cfg, seed=seed0 + i) for i in range(n)]

    def _obs(self, agents, seed=0):
        rng = np.random.default_rng(seed)
        return rng.random((len(agents), agents[0].config.observation_size))

    def test_greedy_actions_bit_identical_to_serial(self):
        agents = self._agents()
        obs = self._obs(agents)
        batched = greedy_policy_actions(agents, obs)
        serial = np.array(
            [a.act(o, greedy=True) for a, o in zip(agents, obs)]
        )
        np.testing.assert_array_equal(batched, serial)

    def test_shared_agent_bit_identical_to_serial(self):
        agent = self._agents(1)[0]
        agents = [agent] * 7
        obs = self._obs(agents)
        batched = greedy_policy_actions(agents, obs)
        serial = np.array([agent.act(o, greedy=True) for o in obs])
        np.testing.assert_array_equal(batched, serial)

    def test_repeat_calls_reuse_the_cached_stack(self):
        clear_policy_stack_cache()
        agents = self._agents()
        networks = [a.online for a in agents]
        first = get_policy_stack(networks)
        again = get_policy_stack(networks)
        assert again is first

    def test_distinct_fleets_get_distinct_stacks(self):
        clear_policy_stack_cache()
        a = self._agents(3, seed0=0)
        b = self._agents(3, seed0=10)
        stack_a = get_policy_stack([x.online for x in a])
        stack_b = get_policy_stack([x.online for x in b])
        assert stack_a is not stack_b
        assert get_policy_stack([x.online for x in a]) is stack_a

    def test_set_weights_invalidates_cached_slice(self):
        agents = self._agents()
        obs = self._obs(agents)
        greedy_policy_actions(agents, obs)  # populate the cache
        donor = DQNAgent(agents[0].config, seed=99)
        agents[2].online.set_weights(donor.online.get_weights())
        batched = greedy_policy_actions(agents, obs)
        serial = np.array(
            [a.act(o, greedy=True) for a, o in zip(agents, obs)]
        )
        np.testing.assert_array_equal(batched, serial)

    def test_train_step_invalidates_cached_slice(self):
        from repro.nn.losses import MeanSquaredError
        from repro.nn.network import mlp
        from repro.nn.optimizers import Adam

        clear_policy_stack_cache()
        nets = [mlp(4, (8,), 3, seed=i) for i in range(3)]
        stack = get_policy_stack(nets)
        x = np.linspace(-1.0, 1.0, 4)
        before = stack.greedy_actions(np.tile(x, (3, 1)))
        opt = Adam(learning_rate=0.5)
        for _ in range(5):
            nets[1].train_step(
                x[None, :], np.array([[5.0, -5.0, 0.0]]), MeanSquaredError(), opt
            )
        after = get_policy_stack(nets).greedy_actions(np.tile(x, (3, 1)))
        expected = np.array([int(np.argmax(net.predict(x))) for net in nets])
        np.testing.assert_array_equal(after, expected)
        del before

    def test_unflatten_parameters_invalidates(self):
        from repro.nn.network import mlp
        from repro.nn.serialize import flatten_parameters, unflatten_parameters

        nets = [mlp(4, (8,), 3, seed=i) for i in range(2)]
        stack = get_policy_stack(nets)
        x = np.tile(np.linspace(0.0, 1.0, 4), (2, 1))
        stack.greedy_actions(x)
        unflatten_parameters(nets[0], flatten_parameters(mlp(4, (8,), 3, seed=7)))
        after = get_policy_stack(nets).greedy_actions(x)
        expected = np.array([int(np.argmax(net.predict(row))) for net, row in zip(nets, x)])
        np.testing.assert_array_equal(after, expected)

    def test_mark_mutated_refreshes_in_place_edits(self):
        from repro.nn.network import mlp

        nets = [mlp(4, (8,), 3, seed=i) for i in range(2)]
        stack = get_policy_stack(nets)
        x = np.tile(np.linspace(0.0, 1.0, 4), (2, 1))
        stack.greedy_actions(x)
        nets[1].layers[-1].bias[...] = np.array([100.0, 0.0, -100.0])
        nets[1].mark_mutated()
        after = stack.greedy_actions(x)
        assert after[1] == 0

    def test_cache_eviction_respects_limit(self):
        from repro.core.vecenv import POLICY_STACK_CACHE_LIMIT, _POLICY_STACK_CACHE
        from repro.nn.network import mlp

        clear_policy_stack_cache()
        fleets = [
            [mlp(3, (4,), 2, seed=i * 10 + j) for j in range(2)]
            for i in range(POLICY_STACK_CACHE_LIMIT + 3)
        ]
        for fleet in fleets:
            get_policy_stack(fleet)
        assert len(_POLICY_STACK_CACHE) <= POLICY_STACK_CACHE_LIMIT

    def test_geometry_mismatch_still_raises(self):
        agents = self._agents(2)
        other = DQNAgent(tiny_dqn(env_actions=10), seed=5)
        with pytest.raises(TrainingError, match="share geometry"):
            greedy_policy_actions(
                [agents[0], other],
                np.zeros((2, agents[0].config.observation_size)),
            )
