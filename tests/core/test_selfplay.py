"""Tests for DQN-vs-DQN self-play (the learning jammer's training loop)."""

import numpy as np
import pytest

from repro.core.mdp import J, MDPConfig
from repro.core.selfplay import SelfPlayConfig, SelfPlayEnv, train_selfplay
from repro.errors import ConfigurationError


def _tiny() -> SelfPlayConfig:
    return SelfPlayConfig(pairs=2, episodes=2, steps_per_episode=40)


class TestSelfPlayEnv:
    def test_reset_returns_both_observations(self):
        env = SelfPlayEnv(seed=0)
        victim_obs, jammer_obs = env.reset()
        assert victim_obs.shape == (env.observation_size,)
        assert jammer_obs.shape == (env.memory.observation_size,)
        assert env.num_blocks == 4

    def test_commanded_hit_rewards_the_jammer(self):
        env = SelfPlayEnv(MDPConfig(jammer_mode="max"), seed=0)
        env.reset()
        stay = env.env.channel_power_to_action(0, 0)
        block = env._puppet.blocks.index(
            next(b for b in env._puppet.blocks if 0 in b)
        )
        _, _, _, jammer_reward, info = env.step(stay, block)
        assert info.jam_attempted and info.state == J
        assert jammer_reward == SelfPlayEnv.JAM_REWARD

    def test_commanded_miss_earns_nothing(self):
        env = SelfPlayEnv(MDPConfig(jammer_mode="max"), seed=0)
        env.reset()
        stay = env.env.channel_power_to_action(0, 0)
        miss = env._puppet.blocks.index(
            next(b for b in env._puppet.blocks if 0 not in b)
        )
        _, _, _, jammer_reward, info = env.step(stay, miss)
        assert not info.jam_attempted
        assert jammer_reward == 0.0

    def test_jammer_observation_tracks_the_attack(self):
        env = SelfPlayEnv(seed=0)
        _, before = env.reset()
        _, after, _, _, _ = env.step(env.env.channel_power_to_action(0, 0), 0)
        assert not np.array_equal(before, after)

    def test_block_range_validated(self):
        env = SelfPlayEnv(seed=0)
        env.reset()
        with pytest.raises(ConfigurationError):
            env.step(0, env.num_blocks)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SelfPlayConfig(pairs=0)
        with pytest.raises(ConfigurationError):
            SelfPlayConfig(episodes=0)
        assert _tiny().total_steps == 80


class TestTrainSelfplay:
    def test_shapes(self):
        result = train_selfplay(_tiny(), seed=3)
        assert result.jam_rates.shape == (2, 2)
        assert result.victim_returns.shape == (2, 2)
        assert result.jammer_returns.shape == (2, 2)
        assert len(result.victim_agents) == len(result.jammer_agents) == 2
        assert np.all(result.jam_rates >= 0.0)
        assert np.all(result.jam_rates <= 1.0)

    def test_deterministic_in_seed(self):
        first = train_selfplay(_tiny(), seed=3)
        second = train_selfplay(_tiny(), seed=3)
        np.testing.assert_array_equal(first.jam_rates, second.jam_rates)
        np.testing.assert_array_equal(
            first.victim_returns, second.victim_returns
        )
        np.testing.assert_array_equal(
            first.jammer_returns, second.jammer_returns
        )
        assert first.best_pair == second.best_pair

    def test_best_pair_maximises_tail_jam_rate(self):
        result = train_selfplay(_tiny(), seed=5)
        tail = max(1, result.jam_rates.shape[1] // 4)
        expected = int(result.jam_rates[:, -tail:].mean(axis=1).argmax())
        assert result.best_pair == expected
        assert result.best_jammer is result.jammer_agents[expected]

    def test_best_jammer_deploys_in_the_slot_env(self):
        from repro.core.envs import SweepJammingEnv
        from repro.jamming.adversary import make_slot_jammer_factory

        result = train_selfplay(
            SelfPlayConfig(pairs=1, episodes=1, steps_per_episode=40), seed=7
        )
        env = SweepJammingEnv(
            seed=0,
            jammer_factory=make_slot_jammer_factory(
                "learning", agent=result.best_jammer
            ),
        )
        actions = np.random.default_rng(1)
        infos = [
            env.step_index(int(actions.integers(env.num_actions)))[2]
            for _ in range(60)
        ]
        assert len(infos) == 60  # deployment runs end-to-end
