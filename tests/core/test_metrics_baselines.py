"""Tests for the Table-I metrics and the baseline policies."""

import pytest

from repro.core.baselines import (
    MaxPowerPolicy,
    NoDefensePolicy,
    PassiveFHPolicy,
    RandomFHPolicy,
)
from repro.core.envs import StepInfo, SweepJammingEnv
from repro.core.mdp import TJ, J, MDPConfig
from repro.core.metrics import SlotLog, evaluate_policy
from repro.errors import ConfigurationError, SimulationError


def info(**kw):
    defaults = dict(
        state=1,
        success=True,
        hopped=False,
        power_index=0,
        power_raised=False,
        jam_attempted=False,
        jam_defeated=False,
        avoided_jam=False,
        reward=-6.0,
    )
    defaults.update(kw)
    return StepInfo(**defaults)


class TestSlotLog:
    def test_empty_summary_rejected(self):
        with pytest.raises(SimulationError):
            SlotLog().summary()

    def test_success_rate(self):
        log = SlotLog()
        log.extend([info(success=True), info(success=True), info(success=False, state=J)])
        assert log.summary().success_rate == pytest.approx(2 / 3)

    def test_fh_metrics(self):
        log = SlotLog()
        log.extend(
            [
                info(hopped=True, avoided_jam=True),
                info(hopped=True, avoided_jam=False),
                info(hopped=False),
                info(hopped=False),
            ]
        )
        s = log.summary()
        assert s.fh_adoption_rate == 0.5
        assert s.fh_success_rate == 0.5

    def test_pc_metrics(self):
        log = SlotLog()
        log.extend(
            [
                info(power_raised=True, jam_defeated=True, jam_attempted=True, state=TJ),
                info(power_raised=True),
                info(power_raised=False),
            ]
        )
        s = log.summary()
        assert s.pc_adoption_rate == pytest.approx(2 / 3)
        assert s.pc_success_rate == pytest.approx(0.5)

    def test_zero_adoption_rates_defined(self):
        log = SlotLog()
        log.record(info())
        s = log.summary()
        assert s.fh_success_rate == 0.0
        assert s.pc_success_rate == 0.0

    def test_mean_reward(self):
        log = SlotLog()
        log.extend([info(reward=-10.0), info(reward=-20.0)])
        assert log.summary().mean_reward == -15.0

    def test_history_flag(self):
        log = SlotLog(keep_history=True)
        log.record(info())
        assert len(log.history) == 1
        with pytest.raises(SimulationError):
            SlotLog().history

    def test_as_dict_keys(self):
        log = SlotLog()
        log.record(info())
        d = log.summary().as_dict()
        assert {"S_T", "A_H", "S_H", "A_P", "S_P"} <= set(d)


class TestSlotLogEdgeCases:
    def test_extend_with_empty_list_still_rejected(self):
        log = SlotLog()
        log.extend([])
        with pytest.raises(SimulationError):
            log.summary()

    def test_all_hops_without_avoided_jam_gives_zero_sh(self):
        # Every slot hopped preventatively: A_H == 1 but S_H must be 0,
        # not a division error or NaN.
        log = SlotLog()
        log.extend([info(hopped=True, avoided_jam=False)] * 4)
        s = log.summary()
        assert s.fh_adoption_rate == 1.0
        assert s.fh_success_rate == 0.0

    def test_all_pc_without_defeats_gives_zero_sp(self):
        log = SlotLog()
        log.extend([info(power_raised=True, jam_defeated=False)] * 4)
        s = log.summary()
        assert s.pc_adoption_rate == 1.0
        assert s.pc_success_rate == 0.0

    def test_jam_attempt_rate(self):
        log = SlotLog()
        log.extend([info(jam_attempted=True), info(), info(), info()])
        assert log.summary().jam_attempt_rate == 0.25

    def test_history_not_kept_by_default(self):
        log = SlotLog()
        log.record(info())
        assert log._history == []  # no silent memory growth

    def test_history_returns_a_copy(self):
        log = SlotLog(keep_history=True)
        log.record(info())
        snapshot = log.history
        snapshot.clear()
        assert len(log.history) == 1

    def test_summary_is_idempotent(self):
        log = SlotLog()
        log.extend([info(success=True), info(success=False, state=J)])
        assert log.summary() == log.summary()


class TestEvaluatePolicy:
    def test_slot_count_respected(self):
        cfg = MDPConfig()
        env = SweepJammingEnv(cfg, seed=0)
        m = evaluate_policy(env, NoDefensePolicy(), slots=500)
        assert m.slots == 500

    def test_invalid_slots(self):
        env = SweepJammingEnv(MDPConfig(), seed=0)
        with pytest.raises(SimulationError):
            evaluate_policy(env, NoDefensePolicy(), slots=0)


class TestBaselineBehaviour:
    def test_no_defense_is_eventually_always_jammed(self):
        env = SweepJammingEnv(MDPConfig(jammer_mode="max"), seed=1)
        m = evaluate_policy(env, NoDefensePolicy(), slots=5000)
        assert m.success_rate < 0.01
        assert m.fh_adoption_rate == 0.0

    def test_passive_reacts_after_threshold(self):
        cfg = MDPConfig(jammer_mode="max")
        policy = PassiveFHPolicy(cfg, react_after=2)
        # Feed states directly: hop only on the 2nd consecutive J.
        assert not policy.action(J).hop
        assert policy.action(J).hop
        assert not policy.action(J).hop  # counter reset after the hop

    def test_passive_counter_resets_on_success(self):
        cfg = MDPConfig()
        policy = PassiveFHPolicy(cfg, react_after=2)
        assert not policy.action(J).hop
        assert not policy.action(1).hop
        assert not policy.action(J).hop  # count restarted

    def test_passive_validation(self):
        with pytest.raises(ConfigurationError):
            PassiveFHPolicy(MDPConfig(), react_after=0)

    def test_passive_beats_no_defense(self):
        cfg = MDPConfig(jammer_mode="max")
        env = SweepJammingEnv(cfg, seed=2)
        passive = evaluate_policy(env, PassiveFHPolicy(cfg), slots=10_000)
        env2 = SweepJammingEnv(cfg, seed=2)
        none = evaluate_policy(env2, NoDefensePolicy(), slots=10_000)
        assert passive.success_rate > none.success_rate + 0.2

    def test_random_fh_hop_rate_matches_probability(self):
        cfg = MDPConfig()
        env = SweepJammingEnv(cfg, seed=3)
        m = evaluate_policy(env, RandomFHPolicy(cfg, seed=4), slots=10_000)
        assert m.fh_adoption_rate == pytest.approx(0.5, abs=0.02)

    def test_random_fh_validation(self):
        with pytest.raises(ConfigurationError):
            RandomFHPolicy(MDPConfig(), hop_probability=1.5)

    def test_max_power_policy_beats_random_jammer_half_the_time(self):
        cfg = MDPConfig(jammer_mode="random")
        env = SweepJammingEnv(cfg, seed=5)
        m = evaluate_policy(env, MaxPowerPolicy(cfg), slots=10_000)
        # Camping jammer attacks nearly every slot; top power survives ~1/2.
        assert 0.35 < m.success_rate < 0.65
        assert m.pc_adoption_rate == 1.0

    def test_max_power_policy_useless_against_max_jammer(self):
        cfg = MDPConfig(jammer_mode="max")
        env = SweepJammingEnv(cfg, seed=6)
        m = evaluate_policy(env, MaxPowerPolicy(cfg), slots=5000)
        assert m.success_rate < 0.01
