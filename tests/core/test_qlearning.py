"""Tests for tabular Q-learning and the paper's DQN-vs-Q-learning argument."""

import numpy as np
import pytest

from repro.core.envs import AnalyticJammingEnv, SweepJammingEnv
from repro.core.mdp import AntiJammingMDP, MDPConfig
from repro.core.metrics import evaluate_policy
from repro.core.qlearning import (
    QLearningConfig,
    TabularQLearning,
    observation_table_size,
)
from repro.core.solver import value_iteration
from repro.errors import ConfigurationError, TrainingError


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QLearningConfig(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            QLearningConfig(epsilon=1.5)
        with pytest.raises(ConfigurationError):
            QLearningConfig(epsilon_decay=0.0)
        with pytest.raises(ConfigurationError):
            QLearningConfig(min_learning_rate=0.0)


class TestLearning:
    @pytest.fixture(scope="class")
    def trained(self):
        # Random jammer mode keeps every state reachable (against the
        # max-power jammer TJ never occurs, so its table row never updates).
        mdp = AntiJammingMDP(MDPConfig(jammer_mode="random"))
        learner = TabularQLearning(
            mdp,
            QLearningConfig(min_learning_rate=0.05, min_epsilon=0.1),
            seed=0,
        )
        env = AnalyticJammingEnv(mdp, seed=1)
        learner.train(env, steps=120_000)
        return mdp, learner

    def test_learned_policy_is_near_optimal(self, trained):
        # On the oracle state space, model-free Q-learning recovers a
        # near-optimal policy (the paper's premise: DQN is only needed
        # because the deployed state is not observable). Exact argmax
        # equality is too strict for a sampled learner — instead every
        # learned action's exact Q-value must be within 3 % of V*.
        mdp, learner = trained
        solution = value_iteration(mdp)
        learned = learner.greedy_policy_map()
        for state in mdp.states:
            q_of_learned = solution.q_value(state, learned[state])
            v_star = solution.value(state)
            assert q_of_learned >= v_star - 0.03 * abs(v_star), (
                state,
                learned[state],
                q_of_learned,
                v_star,
            )

    def test_values_approach_optimal(self, trained):
        mdp, learner = trained
        solution = value_iteration(mdp)
        # Learned values approach V* (loose band: stochastic targets, lr floor).
        gap = learner.max_q_gap_to(solution.values)
        assert gap < 0.35 * float(np.abs(solution.values).max())

    def test_policy_scores_like_optimum(self, trained):
        mdp, learner = trained
        cfg = mdp.config
        metrics = evaluate_policy(
            SweepJammingEnv(cfg, seed=2), learner.policy(), slots=8000
        )
        assert metrics.success_rate > 0.6  # optimum scores ~0.7

    def test_td_errors_shrink(self, trained):
        _, learner = trained
        mdp2 = AntiJammingMDP(MDPConfig(jammer_mode="random"))
        fresh = TabularQLearning(mdp2, seed=3)
        env = AnalyticJammingEnv(mdp2, seed=4)
        errors = fresh.train(env, steps=30_000)
        assert errors[-2000:].mean() < errors[:2000].mean()

    def test_policy_requires_training(self):
        learner = TabularQLearning(AntiJammingMDP(), seed=0)
        with pytest.raises(TrainingError):
            learner.policy()

    def test_train_validation(self):
        learner = TabularQLearning(AntiJammingMDP(), seed=0)
        with pytest.raises(TrainingError):
            learner.train(AnalyticJammingEnv(seed=0), steps=0)

    def test_gap_size_check(self):
        learner = TabularQLearning(AntiJammingMDP(), seed=0)
        with pytest.raises(ConfigurationError):
            learner.max_q_gap_to(np.zeros(3))


class TestCurseOfDimensionality:
    """The paper's §III-C argument, made quantitative."""

    def test_oracle_table_is_tiny(self):
        mdp = AntiJammingMDP()
        assert mdp.num_states * mdp.num_actions == 100

    def test_observation_table_explodes(self):
        # A table over the deployed observation space at the paper's I = 5
        # would need ~2.5e13 rows — hence the DQN.
        assert observation_table_size(1) == 480
        assert observation_table_size(5) == 480**5
        assert observation_table_size(5) > 1e13

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            observation_table_size(0)
