"""Tests for multi-seed DQN training on the execution layer."""

import numpy as np
import pytest

from repro.core.mdp import MDPConfig
from repro.core.trainer import TrainerConfig, train_dqn, train_dqn_multi_seed
from repro.errors import TrainingError
from repro.exec import FaultPolicy, TaskFailure

TINY = TrainerConfig(episodes=2, steps_per_episode=40)


class TestMultiSeed:
    def test_one_result_per_seed(self):
        multi = train_dqn_multi_seed(
            MDPConfig(), seeds=(0, 1, 2), trainer=TINY, workers=1
        )
        assert multi.seeds == (0, 1, 2)
        assert len(multi.results) == 3
        for res in multi.results:
            assert res.episodes == 2
            assert res.steps == 80

    def test_matches_single_seed_runs(self):
        multi = train_dqn_multi_seed(MDPConfig(), seeds=(5,), trainer=TINY, workers=1)
        solo = train_dqn(MDPConfig(), trainer=TINY, seed=5)
        np.testing.assert_array_equal(
            multi.results[0].reward_history, solo.reward_history
        )

    def test_worker_count_invariance(self):
        serial = train_dqn_multi_seed(
            MDPConfig(), seeds=(0, 1), trainer=TINY, workers=1
        )
        pooled = train_dqn_multi_seed(
            MDPConfig(), seeds=(0, 1), trainer=TINY, workers=2
        )
        for a, b in zip(serial.results, pooled.results):
            np.testing.assert_array_equal(a.reward_history, b.reward_history)
            for pa, pb in zip(a.agent.network().parameters, b.agent.network().parameters):
                np.testing.assert_array_equal(pa, pb)

    def test_aggregates(self):
        multi = train_dqn_multi_seed(
            MDPConfig(), seeds=(0, 1, 2), trainer=TINY, workers=1
        )
        rewards = multi.final_rewards
        assert rewards.shape == (3,)
        assert multi.mean_final_reward == pytest.approx(float(rewards.mean()))
        assert multi.best().reward_history[-1] == pytest.approx(float(rewards.max()))

    def test_empty_seeds_rejected(self):
        with pytest.raises(TrainingError):
            train_dqn_multi_seed(MDPConfig(), seeds=(), trainer=TINY)


class TestMultiSeedFaults:
    def test_retried_seeds_are_bit_identical(self):
        clean = train_dqn_multi_seed(
            MDPConfig(), seeds=(0, 1), trainer=TINY, workers=1
        )
        faulty = train_dqn_multi_seed(
            MDPConfig(),
            seeds=(0, 1),
            trainer=TINY,
            workers=1,
            env_batch=1,
            policy=FaultPolicy(
                on_error="retry",
                max_retries=6,
                backoff_s=0.0,
                fault_rate=0.4,
                fault_seed=7,
            ),
        )
        assert faulty.seeds == clean.seeds
        assert faulty.failures == ()
        for a, b in zip(faulty.results, clean.results):
            np.testing.assert_array_equal(a.reward_history, b.reward_history)

    def test_skip_salvages_surviving_seeds(self):
        # fault_seed=2 at rate 0.5 fails exactly task index 0 (seed 0).
        # env_batch=1 pins per-seed task granularity: under batching a
        # crash takes out its whole seed group (covered in test_vecenv).
        multi = train_dqn_multi_seed(
            MDPConfig(),
            seeds=(0, 1, 2),
            trainer=TINY,
            workers=1,
            env_batch=1,
            policy=FaultPolicy(
                on_error="skip", max_retries=0, fault_rate=0.5, fault_seed=2
            ),
        )
        assert multi.seeds == (1, 2)
        assert len(multi.failures) == 1
        failure = multi.failures[0]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 0
        assert failure.error_type == "InjectedFault"
        # The survivors are untouched by the neighbour's crash.
        solo = train_dqn(MDPConfig(), trainer=TINY, seed=1)
        np.testing.assert_array_equal(
            multi.results[0].reward_history, solo.reward_history
        )

    def test_all_seeds_failing_raises(self):
        with pytest.raises(TrainingError, match="all 2 training seeds failed"):
            train_dqn_multi_seed(
                MDPConfig(),
                seeds=(0, 1),
                trainer=TINY,
                workers=1,
                policy=FaultPolicy(
                    on_error="skip", max_retries=0, fault_rate=1.0
                ),
            )
