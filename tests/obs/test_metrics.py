"""Tests for the counters/gauges/histograms registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(0.5)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_binning_and_sidecars(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last slot is the overflow bucket
        assert h.count == 4
        assert h.total == 105.0
        assert h.minimum == 0.5
        assert h.maximum == 100.0

    def test_nan_observations_skipped(self):
        h = Histogram()
        h.observe(float("nan"))
        assert h.count == 0
        assert math.isnan(h.mean)

    def test_buckets_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram(buckets=())

    def test_quantiles_interpolate(self):
        h = Histogram(buckets=(1.0, 2.0))
        for _ in range(100):
            h.observe(1.5)
        # All mass in the (1, 2] bucket: the median interpolates inside it.
        assert 1.0 < h.quantile(0.5) <= 2.0
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_overflow_quantile_reports_maximum(self):
        h = Histogram(buckets=(1.0,))
        h.observe(42.0)
        assert h.quantile(0.99) == 42.0

    def test_as_dict_roundtrips_json_types(self):
        h = Histogram(buckets=RATIO_BUCKETS)
        h.observe(0.33)
        doc = h.as_dict()
        assert doc["count"] == 1
        assert doc["min"] == doc["max"] == 0.33
        assert len(doc["counts"]) == len(doc["buckets"]) + 1

    def test_empty_as_dict_has_null_extrema(self):
        doc = Histogram().as_dict()
        assert doc["min"] is None and doc["max"] is None


class TestQuantileFromBuckets:
    def test_empty_counts_is_nan(self):
        out = quantile_from_buckets((1.0,), [0, 0], 0.5, minimum=0, maximum=0)
        assert math.isnan(out)

    def test_invalid_q_rejected(self):
        with pytest.raises(ConfigurationError):
            quantile_from_buckets((1.0,), [1, 0], 1.5, minimum=0, maximum=1)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_shorthands(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2)
        reg.set("eps", 0.1)
        reg.observe("lat", 0.02)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 2
        assert snap["gauges"]["eps"] == 0.1
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_sorted_and_detached(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        snap["counters"]["a"] = 99
        assert reg.counter("a").value == 1

    def test_merge_worker_snapshot(self):
        worker = MetricsRegistry()
        worker.inc("tasks", 3)
        worker.set("eps", 0.5)
        worker.observe("lat", 0.004)
        worker.observe("lat", 30.0)

        parent = MetricsRegistry()
        parent.inc("tasks", 1)
        parent.observe("lat", 0.008)
        parent.merge(worker.snapshot())

        snap = parent.snapshot()
        assert snap["counters"]["tasks"] == 4
        assert snap["gauges"]["eps"] == 0.5
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["min"] == 0.004
        assert hist["max"] == 30.0

    def test_merge_bucket_mismatch_rejected(self):
        worker = MetricsRegistry()
        worker.observe("x", 0.5, buckets=(1.0, 2.0))
        parent = MetricsRegistry()
        parent.observe("x", 0.5)  # DEFAULT_BUCKETS
        with pytest.raises(ConfigurationError):
            parent.merge(worker.snapshot())

    def test_merge_empty_histogram_keeps_extrema(self):
        worker = MetricsRegistry()
        worker.histogram("x")  # created but never observed
        parent = MetricsRegistry()
        parent.observe("x", 0.5)
        parent.merge(worker.snapshot())
        assert parent.histogram("x").minimum == 0.5

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert list(RATIO_BUCKETS) == sorted(RATIO_BUCKETS)
