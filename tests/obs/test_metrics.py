"""Tests for the counters/gauges/histograms registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    drain_labelled_counters,
    label_key,
    parse_metric_key,
    quantile_from_buckets,
)


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(0.5)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_binning_and_sidecars(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last slot is the overflow bucket
        assert h.count == 4
        assert h.total == 105.0
        assert h.minimum == 0.5
        assert h.maximum == 100.0

    def test_nan_observations_skipped(self):
        h = Histogram()
        h.observe(float("nan"))
        assert h.count == 0
        assert math.isnan(h.mean)

    def test_buckets_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram(buckets=())

    def test_quantiles_interpolate(self):
        h = Histogram(buckets=(1.0, 2.0))
        for _ in range(100):
            h.observe(1.5)
        # All mass in the (1, 2] bucket: the median interpolates inside it.
        assert 1.0 < h.quantile(0.5) <= 2.0
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_overflow_quantile_reports_maximum(self):
        h = Histogram(buckets=(1.0,))
        h.observe(42.0)
        assert h.quantile(0.99) == 42.0

    def test_as_dict_roundtrips_json_types(self):
        h = Histogram(buckets=RATIO_BUCKETS)
        h.observe(0.33)
        doc = h.as_dict()
        assert doc["count"] == 1
        assert doc["min"] == doc["max"] == 0.33
        assert len(doc["counts"]) == len(doc["buckets"]) + 1

    def test_empty_as_dict_has_null_extrema(self):
        doc = Histogram().as_dict()
        assert doc["min"] is None and doc["max"] is None

    def test_observe_many_matches_observe(self):
        values = [0.5, 1.0, 1.5, 3.0, 100.0, float("nan"), 2.0]
        one = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in values:
            one.observe(v)
        many = Histogram(buckets=(1.0, 2.0, 4.0))
        many.observe_many(values)
        assert many.counts == one.counts
        assert many.count == one.count
        assert many.total == one.total
        assert many.minimum == one.minimum
        assert many.maximum == one.maximum

    def test_observe_many_empty_is_noop(self):
        h = Histogram()
        h.observe_many([])
        h.observe_many([float("nan")])
        assert h.count == 0


class TestQuantileFromBuckets:
    def test_empty_counts_is_nan(self):
        out = quantile_from_buckets((1.0,), [0, 0], 0.5, minimum=0, maximum=0)
        assert math.isnan(out)

    def test_invalid_q_rejected(self):
        with pytest.raises(ConfigurationError):
            quantile_from_buckets((1.0,), [1, 0], 1.5, minimum=0, maximum=1)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_shorthands(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2)
        reg.set("eps", 0.1)
        reg.observe("lat", 0.02)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == 2
        assert snap["gauges"]["eps"] == 0.1
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_sorted_and_detached(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        snap["counters"]["a"] = 99
        assert reg.counter("a").value == 1

    def test_merge_worker_snapshot(self):
        worker = MetricsRegistry()
        worker.inc("tasks", 3)
        worker.set("eps", 0.5)
        worker.observe("lat", 0.004)
        worker.observe("lat", 30.0)

        parent = MetricsRegistry()
        parent.inc("tasks", 1)
        parent.observe("lat", 0.008)
        parent.merge(worker.snapshot())

        snap = parent.snapshot()
        assert snap["counters"]["tasks"] == 4
        assert snap["gauges"]["eps"] == 0.5
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["min"] == 0.004
        assert hist["max"] == 30.0

    def test_merge_bucket_mismatch_rejected(self):
        worker = MetricsRegistry()
        worker.observe("x", 0.5, buckets=(1.0, 2.0))
        parent = MetricsRegistry()
        parent.observe("x", 0.5)  # DEFAULT_BUCKETS
        with pytest.raises(ConfigurationError):
            parent.merge(worker.snapshot())

    def test_merge_empty_histogram_keeps_extrema(self):
        worker = MetricsRegistry()
        worker.histogram("x")  # created but never observed
        parent = MetricsRegistry()
        parent.observe("x", 0.5)
        parent.merge(worker.snapshot())
        assert parent.histogram("x").minimum == 0.5

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert list(RATIO_BUCKETS) == sorted(RATIO_BUCKETS)


class TestLabels:
    def test_label_key_sorts_labels(self):
        assert label_key("jam.locks", {"b": 2, "a": "x"}) == "jam.locks{a=x,b=2}"
        assert label_key("jam.locks", {"a": "x", "b": 2}) == "jam.locks{a=x,b=2}"

    def test_label_key_bare_name(self):
        assert label_key("sim.slots") == "sim.slots"
        assert label_key("sim.slots", {}) == "sim.slots"

    def test_label_key_rejects_forbidden_characters(self):
        for bad in ("a=b", 'a"b', "a{b", "a,b", ""):
            with pytest.raises(ConfigurationError):
                label_key(bad)
            with pytest.raises(ConfigurationError):
                label_key("ok", {bad or "k": "v"} if bad else {"": "v"})
            with pytest.raises(ConfigurationError):
                label_key("ok", {"k": bad})

    def test_parse_roundtrip(self):
        key = label_key("defense.decoys", {"scheme": "deception", "network": 3})
        name, labels = parse_metric_key(key)
        assert name == "defense.decoys"
        assert labels == {"network": "3", "scheme": "deception"}
        assert parse_metric_key("bare") == ("bare", {})

    def test_parse_rejects_malformed(self):
        for bad in ("a{b", "a{}x", "{x=1}", "a{x}", "a{=1}", "a{x=}"):
            with pytest.raises(ConfigurationError):
                parse_metric_key(bad)

    def test_parse_empty_body(self):
        assert parse_metric_key("a{}") == ("a", {})

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.inc("jam.locks", labels={"adversary": "reactive"})
        reg.inc("jam.locks", 2, labels={"adversary": "follower"})
        reg.inc("jam.locks")
        snap = reg.snapshot()["counters"]
        assert snap == {
            "jam.locks": 1.0,
            "jam.locks{adversary=follower}": 2.0,
            "jam.locks{adversary=reactive}": 1.0,
        }

    def test_labelled_gauges_and_histograms(self):
        reg = MetricsRegistry()
        reg.set("tokens", 4.0, labels={"network": 7})
        reg.observe("lat", 0.02, labels={"scheme": "fh"})
        snap = reg.snapshot()
        assert snap["gauges"]["tokens{network=7}"] == 4.0
        assert snap["histograms"]["lat{scheme=fh}"]["count"] == 1

    def test_labelled_merge_adds_per_key(self):
        worker = MetricsRegistry()
        worker.inc("jam.hits", 3, labels={"network": 0})
        worker.inc("jam.hits", 5, labels={"network": 1})
        parent = MetricsRegistry()
        parent.inc("jam.hits", 1, labels={"network": 0})
        parent.merge(worker.snapshot())
        snap = parent.snapshot()["counters"]
        assert snap["jam.hits{network=0}"] == 4.0
        assert snap["jam.hits{network=1}"] == 5.0


class TestDrainLabelledCounters:
    class _Instrumented:
        def __init__(self):
            self._c = {"locks": 2.0, "idle": 0.0}

        def drain_counters(self):
            c, self._c = self._c, {}
            return c

    def test_drains_into_labelled_keys(self):
        reg = MetricsRegistry()
        obj = self._Instrumented()
        drain_labelled_counters(obj, "jam", {"adversary": "reactive"}, registry=reg)
        snap = reg.snapshot()["counters"]
        # zero-valued counters are skipped, non-zero land under prefix+labels
        assert snap == {"jam.locks{adversary=reactive}": 2.0}
        # drain is destructive: a second flush adds nothing
        drain_labelled_counters(obj, "jam", {"adversary": "reactive"}, registry=reg)
        assert reg.snapshot()["counters"] == snap

    def test_objects_without_hook_ignored(self):
        reg = MetricsRegistry()
        drain_labelled_counters(object(), "jam", {"a": "b"}, registry=reg)
        drain_labelled_counters(None, "jam", {"a": "b"}, registry=reg)
        assert reg.snapshot()["counters"] == {}


class TestQuantileContract:
    """The boundary interpolation contract documented on quantile_from_buckets."""

    def test_estimates_clamped_into_observed_range(self):
        # All 10 observations at 0.7 land in the (0.5, 1.0] bucket; naive
        # interpolation would report values below the observed minimum.
        counts = [0] * (len(DEFAULT_BUCKETS) + 1)
        counts[DEFAULT_BUCKETS.index(1.0)] = 10
        for q in (0.0, 0.25, 0.5, 1.0):
            value = quantile_from_buckets(
                DEFAULT_BUCKETS, counts, q, minimum=0.7, maximum=0.7
            )
            assert value == 0.7

    def test_q_zero_and_one_stay_in_range(self):
        reg = MetricsRegistry()
        for v in (0.002, 0.3, 7.0):
            reg.observe("x", v)
        hist = reg.histogram("x")
        assert hist.quantile(0.0) >= hist.minimum
        assert hist.quantile(1.0) <= hist.maximum

    def test_overflow_bucket_reports_maximum(self):
        counts = [0] * (len(DEFAULT_BUCKETS) + 1)
        counts[-1] = 4  # all observations above the last bound
        assert (
            quantile_from_buckets(
                DEFAULT_BUCKETS, counts, 0.5, minimum=150.0, maximum=320.0
            )
            == 320.0
        )

    def test_first_bucket_lower_bound_is_minimum(self):
        buckets = (10.0, 20.0)
        counts = [2, 0, 0]
        value = quantile_from_buckets(buckets, counts, 0.5, minimum=4.0, maximum=9.0)
        assert 4.0 <= value <= 9.0
