"""Tests for trace summarisation and the ``repro obs`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs import trace
from repro.obs.metrics import METRICS
from repro.obs.summary import load_trace, render_summary, span_tree


def write_demo_trace(monkeypatch, tmp_path, name="demo"):
    target = tmp_path / f"RUN_{name}.jsonl"
    monkeypatch.setenv(trace.TRACE_ENV, str(target))
    trace.reset()
    trace.start_run(command="demo")
    with trace.span("cli/demo"):
        with trace.span("sim/run", slots=3):
            for i in range(3):
                trace.event("sim.slot", slot=i)
        METRICS.inc("sim.slots", 3)
        METRICS.set("dqn.epsilon", 0.5)
        METRICS.observe("exec.dispatch_seconds", 0.02)
    trace.finish_run()
    return target


class TestLoadTrace:
    def test_buckets_record_types(self, monkeypatch, tmp_path):
        doc = load_trace(write_demo_trace(monkeypatch, tmp_path))
        assert doc.manifest["run"] == "demo"
        assert len(doc.spans) == 2
        assert len(doc.events) == 3
        assert doc.metrics["counters"]["sim.slots"] == 3
        assert doc.malformed == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.jsonl")

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "RUN_empty.jsonl"
        empty.write_text("")
        with pytest.raises(ReproError):
            load_trace(empty)

    def test_garbled_lines_tolerated(self, monkeypatch, tmp_path):
        target = write_demo_trace(monkeypatch, tmp_path)
        with target.open("a") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"type": "mystery"}) + "\n")
        doc = load_trace(target)
        assert doc.malformed == 2
        assert len(doc.spans) == 2  # good records still load


class TestSpanTree:
    def test_aggregates_siblings_by_name(self, monkeypatch, tmp_path):
        doc = load_trace(write_demo_trace(monkeypatch, tmp_path))
        tree = span_tree(doc)
        assert len(tree) == 1
        name, count, dur, children = tree[0]
        assert name == "cli/demo" and count == 1 and dur > 0
        assert children[0][0] == "sim/run"

    def test_orphaned_parent_becomes_root(self):
        from repro.obs.summary import TraceDoc

        doc = TraceDoc(path=None)
        doc.spans = [
            {"id": "1.1", "parent": "ghost", "name": "lost", "dur": 0.1},
        ]
        tree = span_tree(doc)
        assert tree[0][0] == "lost"


class TestRenderSummary:
    def test_sections_present(self, monkeypatch, tmp_path):
        text = render_summary(write_demo_trace(monkeypatch, tmp_path))
        assert "run=demo" in text
        assert "cli/demo" in text
        assert "sim/run" in text
        assert "sim.slot" in text
        assert "sim.slots" in text
        assert "dqn.epsilon" in text
        assert "exec.dispatch_seconds" in text
        assert "p99" in text

    def test_top_limits_listing(self, monkeypatch, tmp_path):
        target = tmp_path / "RUN_many.jsonl"
        monkeypatch.setenv(trace.TRACE_ENV, str(target))
        trace.reset()
        for i in range(5):
            METRICS.inc(f"counter.{i}")
        trace.event("seed")  # force the file open
        trace.finish_run()
        text = render_summary(target, top=2)
        assert "counters (5)" in text
        assert text.count("counter.") == 2


class TestObsCommand:
    def test_cli_renders_trace(self, monkeypatch, tmp_path, capsys):
        target = write_demo_trace(monkeypatch, tmp_path)
        # The obs command reads traces and must not truncate/extend the
        # file it is summarising even with REPRO_TRACE still pointing there.
        size_before = target.stat().st_size
        assert main(["obs", str(target)]) == 0
        out = capsys.readouterr().out
        assert "cli/demo" in out
        assert target.stat().st_size == size_before

    def test_cli_missing_trace_fails(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.jsonl")]) == 1

    def test_fresh_process_obs_does_not_append(self, monkeypatch, tmp_path):
        """REPRO_TRACE still set + no prior run state (a fresh process):
        the obs command must not lazily open the trace and append to it."""
        target = write_demo_trace(monkeypatch, tmp_path)
        trace.reset()  # back to the pristine lazy state of a new process
        size_before = target.stat().st_size
        assert main(["obs", str(target)]) == 0
        assert target.stat().st_size == size_before
