"""Tests for trace summarisation and the ``repro obs`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs import trace
from repro.obs.metrics import METRICS
from repro.obs.summary import load_trace, render_summary, span_tree


def write_demo_trace(monkeypatch, tmp_path, name="demo"):
    target = tmp_path / f"RUN_{name}.jsonl"
    monkeypatch.setenv(trace.TRACE_ENV, str(target))
    trace.reset()
    trace.start_run(command="demo")
    with trace.span("cli/demo"):
        with trace.span("sim/run", slots=3):
            for i in range(3):
                trace.event("sim.slot", slot=i)
        METRICS.inc("sim.slots", 3)
        METRICS.set("dqn.epsilon", 0.5)
        METRICS.observe("exec.dispatch_seconds", 0.02)
    trace.finish_run()
    return target


class TestLoadTrace:
    def test_buckets_record_types(self, monkeypatch, tmp_path):
        doc = load_trace(write_demo_trace(monkeypatch, tmp_path))
        assert doc.manifest["run"] == "demo"
        assert len(doc.spans) == 2
        assert len(doc.events) == 3
        assert doc.metrics["counters"]["sim.slots"] == 3
        assert doc.malformed == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.jsonl")

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "RUN_empty.jsonl"
        empty.write_text("")
        with pytest.raises(ReproError):
            load_trace(empty)

    def test_garbled_lines_tolerated(self, monkeypatch, tmp_path):
        target = write_demo_trace(monkeypatch, tmp_path)
        with target.open("a") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"type": "mystery"}) + "\n")
        doc = load_trace(target)
        assert doc.malformed == 2
        assert len(doc.spans) == 2  # good records still load


class TestSpanTree:
    def test_aggregates_siblings_by_name(self, monkeypatch, tmp_path):
        doc = load_trace(write_demo_trace(monkeypatch, tmp_path))
        tree = span_tree(doc)
        assert len(tree) == 1
        name, count, dur, children = tree[0]
        assert name == "cli/demo" and count == 1 and dur > 0
        assert children[0][0] == "sim/run"

    def test_orphaned_parent_becomes_root(self):
        from repro.obs.summary import TraceDoc

        doc = TraceDoc(path=None)
        doc.spans = [
            {"id": "1.1", "parent": "ghost", "name": "lost", "dur": 0.1},
        ]
        tree = span_tree(doc)
        assert tree[0][0] == "lost"


class TestRenderSummary:
    def test_sections_present(self, monkeypatch, tmp_path):
        text = render_summary(write_demo_trace(monkeypatch, tmp_path))
        assert "run=demo" in text
        assert "cli/demo" in text
        assert "sim/run" in text
        assert "sim.slot" in text
        assert "sim.slots" in text
        assert "dqn.epsilon" in text
        assert "exec.dispatch_seconds" in text
        assert "p99" in text

    def test_top_limits_listing(self, monkeypatch, tmp_path):
        target = tmp_path / "RUN_many.jsonl"
        monkeypatch.setenv(trace.TRACE_ENV, str(target))
        trace.reset()
        for i in range(5):
            METRICS.inc(f"counter.{i}")
        trace.event("seed")  # force the file open
        trace.finish_run()
        text = render_summary(target, top=2)
        assert "counters (5)" in text
        assert text.count("counter.") == 2


class TestObsCommand:
    def test_cli_renders_trace(self, monkeypatch, tmp_path, capsys):
        target = write_demo_trace(monkeypatch, tmp_path)
        # The obs command reads traces and must not truncate/extend the
        # file it is summarising even with REPRO_TRACE still pointing there.
        size_before = target.stat().st_size
        assert main(["obs", str(target)]) == 0
        out = capsys.readouterr().out
        assert "cli/demo" in out
        assert target.stat().st_size == size_before

    def test_cli_missing_trace_fails(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.jsonl")]) == 1

    def test_fresh_process_obs_does_not_append(self, monkeypatch, tmp_path):
        """REPRO_TRACE still set + no prior run state (a fresh process):
        the obs command must not lazily open the trace and append to it."""
        target = write_demo_trace(monkeypatch, tmp_path)
        trace.reset()  # back to the pristine lazy state of a new process
        size_before = target.stat().st_size
        assert main(["obs", str(target)]) == 0
        assert target.stat().st_size == size_before


class TestObsSubcommands:
    def _write_telemetry(self, monkeypatch, tmp_path):
        from repro.obs import telemetry

        target = tmp_path / "TELEM_demo.jsonl"
        monkeypatch.setenv(telemetry.TELEM_ENV, str(target))
        telemetry.reset()
        rec = telemetry.FlightRecorder("dqn", interval=1)
        rec.tick(reward=1.0)
        rec.tick(reward=2.0)
        METRICS.inc("jam.locks", 2, labels={"adversary": "reactive", "network": 0})
        telemetry.finish_run()
        return target

    def test_explicit_summary_action(self, monkeypatch, tmp_path, capsys):
        target = write_demo_trace(monkeypatch, tmp_path)
        assert main(["obs", "summary", str(target)]) == 0
        assert "cli/demo" in capsys.readouterr().out

    def test_summary_routes_telemetry_to_dashboard(
        self, monkeypatch, tmp_path, capsys
    ):
        target = self._write_telemetry(monkeypatch, tmp_path)
        assert main(["obs", str(target)]) == 0  # back-compat spelling
        out = capsys.readouterr().out
        assert "telemetry" in out
        assert "dqn" in out

    def test_export_writes_prom_and_series(self, monkeypatch, tmp_path, capsys):
        target = self._write_telemetry(monkeypatch, tmp_path)
        assert main(["obs", "export", str(target)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path / "TELEM_demo.prom") in out
        assert (tmp_path / "TELEM_demo.prom").read_text().endswith("# EOF\n")
        assert (tmp_path / "TELEM_demo_series.jsonl").is_file()

    def test_watch_once(self, monkeypatch, tmp_path, capsys):
        target = self._write_telemetry(monkeypatch, tmp_path)
        assert main(["obs", "watch", str(target), "--once"]) == 0
        out = capsys.readouterr().out
        assert "dqn" in out
        assert "\x1b[2J" not in out

    def test_obs_never_writes_telemetry(self, monkeypatch, tmp_path):
        from repro.obs import telemetry

        target = self._write_telemetry(monkeypatch, tmp_path)
        telemetry.reset()  # fresh-process lazy state, env still set
        size_before = target.stat().st_size
        assert main(["obs", str(target)]) == 0
        assert target.stat().st_size == size_before
