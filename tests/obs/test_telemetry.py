"""Tests for the windowed telemetry stream (REPRO_TELEM)."""

import json
import random

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.obs import telemetry
from repro.obs.metrics import METRICS


def _set_target(monkeypatch, tmp_path, name="t"):
    path = tmp_path / f"TELEM_{name}.jsonl"
    monkeypatch.setenv(telemetry.TELEM_ENV, str(path))
    telemetry.reset()
    return path


def _records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestTargetResolution:
    def test_off_by_default(self):
        assert telemetry.telem_target() is None
        assert not telemetry.enabled()

    def test_truthy_uses_default_name(self, monkeypatch):
        monkeypatch.setenv(telemetry.TELEM_ENV, "1")
        assert telemetry.telem_target().name == "TELEM_run.jsonl"

    def test_name_lands_in_artifact_dir(self, monkeypatch):
        monkeypatch.setenv(telemetry.TELEM_ENV, "smoke")
        assert telemetry.telem_target().name == "TELEM_smoke.jsonl"

    def test_path_used_verbatim(self, monkeypatch, tmp_path):
        target = tmp_path / "x.jsonl"
        monkeypatch.setenv(telemetry.TELEM_ENV, str(target))
        assert telemetry.telem_target() == target

    def test_interval_and_window_envs(self, monkeypatch):
        assert telemetry.telem_interval() == telemetry.DEFAULT_INTERVAL
        monkeypatch.setenv(telemetry.TELEM_INTERVAL_ENV, "7")
        monkeypatch.setenv(telemetry.TELEM_WINDOW_ENV, "9")
        assert telemetry.telem_interval() == 7
        assert telemetry.telem_window() == 9

    @pytest.mark.parametrize("bad", ["0", "-3", "x"])
    def test_invalid_interval_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(telemetry.TELEM_INTERVAL_ENV, bad)
        with pytest.raises(ConfigurationError):
            telemetry.telem_interval()


class TestLifecycle:
    def test_record_and_finish(self, monkeypatch, tmp_path):
        path = _set_target(monkeypatch, tmp_path)
        assert telemetry.enabled()
        telemetry.record_frame({"type": "frame", "series": "x", "window": 0})
        METRICS.inc("sim.slots", 5)
        out = telemetry.finish_run()
        assert out == path
        records = _records(path)
        assert records[0]["type"] == "header"
        assert records[0]["interval"] == telemetry.DEFAULT_INTERVAL
        assert records[1]["series"] == "x"
        assert records[-1]["type"] == "metrics"
        assert records[-1]["counters"]["sim.slots"] == 5
        # finish_run disables until the next reset
        assert not telemetry.enabled()

    def test_no_frames_no_file(self, monkeypatch, tmp_path):
        path = _set_target(monkeypatch, tmp_path)
        assert telemetry.finish_run() is None
        assert not path.exists()

    def test_disable_overrides_env(self, monkeypatch, tmp_path):
        _set_target(monkeypatch, tmp_path)
        telemetry.disable()
        assert not telemetry.enabled()
        telemetry.record_frame({"type": "frame"})  # swallowed
        assert telemetry.finish_run() is None


class TestWorkerProtocol:
    def test_activation_buffers_frames(self, monkeypatch, tmp_path):
        _set_target(monkeypatch, tmp_path)
        assert telemetry.worker_interval() == telemetry.DEFAULT_INTERVAL
        telemetry.activate_worker(5)
        assert telemetry.enabled()
        assert telemetry.interval() == 5
        telemetry.record_frame({"type": "frame", "series": "x", "window": 0})
        frames = telemetry.drain_worker()
        assert [f["window"] for f in frames] == [0]
        assert telemetry.drain_worker() == ()  # drained

    def test_activation_with_zero_disables(self):
        telemetry.activate_worker(0)
        assert not telemetry.enabled()
        assert telemetry.worker_interval() == 0

    def test_reactivation_clears_stale_frames(self):
        telemetry.activate_worker(5)
        telemetry.record_frame({"type": "frame", "window": 0})
        telemetry.activate_worker(5)  # retry / next task
        assert telemetry.drain_worker() == ()

    def test_absorb_appends_to_parent_sink(self, monkeypatch, tmp_path):
        path = _set_target(monkeypatch, tmp_path)
        telemetry.absorb(
            [{"type": "frame", "series": "x", "window": w} for w in (0, 1)]
        )
        telemetry.finish_run()
        kinds = [r["type"] for r in _records(path)]
        assert kinds == ["header", "frame", "frame", "metrics"]


class TestFlightRecorder:
    def test_inert_when_disabled(self):
        rec = telemetry.FlightRecorder("dqn")
        assert rec.tick(reward=1.0) is None
        assert rec.flush() is None
        assert not rec.frames

    def test_windows_sum_ticks(self, monkeypatch, tmp_path):
        path = _set_target(monkeypatch, tmp_path)
        rec = telemetry.FlightRecorder("dqn", interval=2, labels={"batch": 3})
        assert rec.tick(reward=1.0) is None
        frame = rec.tick(reward=2.0, loss=0.5)
        assert frame["window"] == 0
        assert frame["ticks"] == 2
        assert frame["values"] == {"loss": 0.5, "reward": 3.0}
        assert frame["labels"] == {"batch": "3"}
        rec.tick(reward=5.0)
        partial = rec.flush()
        assert partial["window"] == 1
        assert partial["ticks"] == 1
        telemetry.finish_run()
        windows = [r["window"] for r in _records(path) if r["type"] == "frame"]
        assert windows == [0, 1]

    def test_counter_deltas_ride_along(self, monkeypatch, tmp_path):
        _set_target(monkeypatch, tmp_path)
        METRICS.inc("link.per_cache_hits", 10)
        rec = telemetry.FlightRecorder(
            "dqn", interval=1, counters=("link.per_cache_hits",)
        )
        METRICS.inc("link.per_cache_hits", 3)
        frame = rec.tick(episodes=1)
        assert frame["values"]["delta.link.per_cache_hits"] == 3.0
        METRICS.inc("link.per_cache_hits", 2)
        frame = rec.tick(episodes=1)
        assert frame["values"]["delta.link.per_cache_hits"] == 2.0

    def test_ring_is_bounded(self, monkeypatch, tmp_path):
        _set_target(monkeypatch, tmp_path)
        rec = telemetry.FlightRecorder("dqn", interval=1, ring=3)
        for i in range(10):
            rec.tick(v=float(i))
        assert len(rec.frames) == 3
        assert [f["window"] for f in rec.frames] == [7, 8, 9]

    def test_interval_validated(self, monkeypatch, tmp_path):
        _set_target(monkeypatch, tmp_path)
        with pytest.raises(ConfigurationError):
            telemetry.FlightRecorder("dqn", interval=0)


class TestReadSide:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            telemetry.load_telemetry(tmp_path / "nope.jsonl")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            telemetry.load_telemetry(path)

    def test_malformed_lines_tolerated(self, monkeypatch, tmp_path):
        path = _set_target(monkeypatch, tmp_path)
        telemetry.record_frame({"type": "frame", "series": "x", "window": 0})
        telemetry.finish_run()
        with path.open("a") as handle:
            handle.write("garbage\n")
        doc = telemetry.load_telemetry(path)
        assert doc.malformed == 1
        assert doc.header is not None
        assert doc.metrics is not None
        assert len(doc.frames) == 1

    def test_is_telemetry_file(self, monkeypatch, tmp_path):
        path = _set_target(monkeypatch, tmp_path)
        telemetry.record_frame({"type": "frame", "series": "x", "window": 0})
        telemetry.finish_run()
        assert telemetry.is_telemetry_file(path)
        trace = tmp_path / "RUN_x.jsonl"
        trace.write_text(json.dumps({"type": "manifest"}) + "\n")
        assert not telemetry.is_telemetry_file(trace)
        assert not telemetry.is_telemetry_file(tmp_path / "absent.jsonl")


def _shard_frame(window, shard, networks, jammed, **overrides):
    frame = telemetry.field_frame(
        window=window,
        slot0=window * 10,
        slots=10,
        shard=shard,
        labels={"adversary": "reactive"},
        networks=networks,
        jammed=jammed,
        attempts=[j + 1 for j in jammed],
        delivered=[100 + n for n in networks],
        attempted=[120 + n for n in networks],
        hops=[1] * len(networks),
        neg_sum=[0.5 * (n + 1) for n in networks],
        lat_counts=[1] * (len(telemetry.LATENCY_BUCKETS) + 1),
        lat_min=0.01,
        lat_max=2.0,
        **overrides,
    )
    return frame


class TestMergeFrames:
    def _doc(self, frames, tmp_path):
        doc = telemetry.TelemetryDoc(path=tmp_path / "t.jsonl")
        doc.frames = list(frames)
        return doc

    def test_field_merge_places_by_global_index(self, tmp_path):
        frames = [
            _shard_frame(0, 0, [0, 2], [3, 4]),
            _shard_frame(0, 1, [1, 3], [5, 6]),
        ]
        merged = telemetry.merge_frames(self._doc(frames, tmp_path))["field"]
        assert len(merged) == 1
        window = merged[0]
        assert window["networks"] == [0, 1, 2, 3]
        assert window["jammed"] == [3, 5, 4, 6]
        assert window["jam_rate"] == (3 + 4 + 5 + 6) / (10 * 4)
        # latency bucket counts are integer sums across shards
        assert window["lat_counts"][0] == 2

    def test_field_merge_is_order_independent(self, tmp_path):
        frames = [
            _shard_frame(w, s, [2 * s, 2 * s + 1], [w + s, w + 2 * s])
            for w in range(4)
            for s in range(3)
        ]
        reference = telemetry.merge_frames(self._doc(frames, tmp_path))
        rng = random.Random(7)
        for _ in range(5):
            shuffled = list(frames)
            rng.shuffle(shuffled)
            assert (
                telemetry.merge_frames(self._doc(shuffled, tmp_path)) == reference
            )

    def test_field_merge_dedupes_retried_shards_last_wins(self, tmp_path):
        stale = _shard_frame(0, 0, [0, 1], [9, 9])
        fresh = _shard_frame(0, 0, [0, 1], [1, 2])
        other = _shard_frame(0, 1, [2], [5])
        merged = telemetry.merge_frames(
            self._doc([stale, fresh, other], tmp_path)
        )["field"]
        assert merged[0]["jammed"] == [1, 2, 5]

    def test_field_merge_tokens_optional(self, tmp_path):
        with_tokens = _shard_frame(0, 0, [0], [1], tokens=[0.25])
        without = _shard_frame(0, 1, [1], [2])
        merged = telemetry.merge_frames(
            self._doc([with_tokens, without], tmp_path)
        )["field"]
        assert merged[0]["tokens"] == [0.25, 0.0]

    def test_generic_merge_last_wins_by_window(self, tmp_path):
        frames = [
            {"type": "frame", "series": "dqn", "window": 1, "values": {"r": 2.0}},
            {"type": "frame", "series": "dqn", "window": 0, "values": {"r": 9.0}},
            {"type": "frame", "series": "dqn", "window": 0, "values": {"r": 1.0}},
        ]
        merged = telemetry.merge_frames(self._doc(frames, tmp_path))["dqn"]
        assert [w["window"] for w in merged] == [0, 1]
        assert merged[0]["values"]["r"] == 1.0
