"""Tests for the live telemetry dashboard (``repro obs watch``)."""

import io

from repro.obs import telemetry
from repro.obs.metrics import METRICS
from repro.obs.watch import SPARK_CHARS, render_dashboard, sparkline, watch


class TestSparkline:
    def test_scales_to_eight_levels(self):
        spark = sparkline([0.0, 0.5, 1.0])
        assert spark == SPARK_CHARS[0] + SPARK_CHARS[4] + SPARK_CHARS[7]

    def test_flat_series_renders_low(self):
        assert sparkline([2.0, 2.0, 2.0]) == SPARK_CHARS[0] * 3

    def test_width_keeps_the_tail(self):
        spark = sparkline(list(range(100)), width=10)
        assert len(spark) == 10

    def test_empty(self):
        assert sparkline([]) == ""


def _write_field_run(monkeypatch, tmp_path, *, adversary="reactive"):
    path = tmp_path / "TELEM_d.jsonl"
    monkeypatch.setenv(telemetry.TELEM_ENV, str(path))
    telemetry.reset()
    for window in range(3):
        for shard, networks in ((0, [0, 1]), (1, [2, 3])):
            jammed = [window + 1, 0] if shard == 0 else [0, 1]
            telemetry.record_frame(
                telemetry.field_frame(
                    window=window,
                    slot0=window * 10,
                    slots=10,
                    shard=shard,
                    labels={"adversary": adversary, "scheme": "deception"},
                    networks=networks,
                    jammed=jammed,
                    attempts=[j + 1 for j in jammed],
                    delivered=[280, 300],
                    attempted=[320, 320],
                    hops=[2, 1],
                    neg_sum=[0.8, 0.4],
                    lat_counts=[2] * (len(telemetry.LATENCY_BUCKETS) + 1),
                    lat_min=0.02,
                    lat_max=1.5,
                    tokens=[4.0, 6.0],
                )
            )
    METRICS.inc(
        "jam.duty_starved", 7, labels={"adversary": adversary, "network": 0}
    )
    METRICS.inc(
        "defense.decoys", 30, labels={"scheme": "deception", "network": 2}
    )
    telemetry.finish_run()
    return path


class TestRenderDashboard:
    def test_field_sections(self, monkeypatch, tmp_path):
        path = _write_field_run(monkeypatch, tmp_path)
        text = render_dashboard(path)
        assert "field fleet  (4 networks, 3 windows, 10 slots/window)" in text
        assert "jam rate" in text
        assert "goodput" in text
        assert "duty tokens" in text
        assert "negotiation  p50=" in text
        assert "hottest networks  #0:" in text
        assert "adversary hit rate  reactive:" in text
        # the final labelled counters roll up over the network label
        assert "jam.duty_starved" in text
        assert "defense.decoys" in text
        assert any(ch in text for ch in SPARK_CHARS)

    def test_same_dashboard_for_any_frame_order(self, monkeypatch, tmp_path):
        path = _write_field_run(monkeypatch, tmp_path)
        lines = path.read_text().splitlines()
        header, frames, metrics = lines[0], lines[1:-1], lines[-1]
        reordered = "\n".join([header] + frames[::-1] + [metrics]) + "\n"
        other = tmp_path / "TELEM_r.jsonl"
        other.write_text(reordered)
        a = render_dashboard(path).replace(str(path), "X")
        b = render_dashboard(other).replace(str(other), "X")
        assert a == b

    def test_generic_series(self, monkeypatch, tmp_path):
        path = tmp_path / "TELEM_g.jsonl"
        monkeypatch.setenv(telemetry.TELEM_ENV, str(path))
        telemetry.reset()
        rec = telemetry.FlightRecorder("dqn", interval=2)
        for i in range(6):
            rec.tick(reward=float(i), episodes=1.0)
        telemetry.finish_run()
        text = render_dashboard(path)
        assert "dqn  (3 windows, 2 ticks/window)" in text
        assert "reward" in text

    def test_header_only_file(self, monkeypatch, tmp_path):
        path = tmp_path / "TELEM_h.jsonl"
        monkeypatch.setenv(telemetry.TELEM_ENV, str(path))
        telemetry.reset()
        telemetry.record_frame({"type": "frame", "series": "x", "window": 0})
        telemetry.finish_run()
        text = render_dashboard(path)
        assert "telemetry" in text


class TestWatch:
    def test_once_renders_single_frame_without_clearing(
        self, monkeypatch, tmp_path
    ):
        path = _write_field_run(monkeypatch, tmp_path)
        out = io.StringIO()
        assert watch(path, iterations=1, stream=out) == 0
        text = out.getvalue()
        assert "\x1b[2J" not in text
        assert "field fleet" in text

    def test_looping_clears_between_frames(self, monkeypatch, tmp_path):
        path = _write_field_run(monkeypatch, tmp_path)
        out = io.StringIO()
        assert watch(path, iterations=2, interval=0.0, stream=out) == 0
        assert out.getvalue().count("\x1b[2J\x1b[H") == 2

    def test_missing_file_waits_instead_of_crashing(self, tmp_path):
        out = io.StringIO()
        assert watch(tmp_path / "absent.jsonl", iterations=1, stream=out) == 0
        assert "waiting for telemetry" in out.getvalue()
