"""Disabled-path cost and the tracing-never-changes-results guarantee."""

import time

import numpy as np

from repro.core.mdp import MDPConfig
from repro.core.trainer import TrainerConfig, train_dqn
from repro.obs import trace
from repro.obs.metrics import METRICS
from repro.sim.testbed import Testbed, TestbedConfig


def best_of(fn, *, repeats=5, loops=20_000) -> float:
    """Per-call seconds, best of ``repeats`` timing runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / loops


class TestDisabledOverhead:
    def test_disabled_event_is_cheap(self):
        assert not trace.enabled()
        per_call = best_of(lambda: trace.event("tick", n=1))
        # The off path is one cached-state check; anything near a
        # microsecond-scale bound means no I/O or serialisation happened.
        assert per_call < 5e-6

    def test_disabled_span_is_cheap(self):
        def spanned():
            with trace.span("s"):
                pass

        assert best_of(spanned, loops=5_000) < 20e-6

    def test_counter_inc_is_cheap(self):
        assert best_of(lambda: METRICS.inc("bench.counter")) < 5e-6


class TestBitIdentical:
    """Tracing samples no simulation RNG: results match bit for bit."""

    def test_training_identical_with_tracing(self, monkeypatch, tmp_path):
        trainer = TrainerConfig(episodes=2, steps_per_episode=20)
        baseline = train_dqn(MDPConfig(), trainer=trainer, seed=7)

        monkeypatch.setenv(trace.TRACE_ENV, str(tmp_path / "RUN_bit.jsonl"))
        monkeypatch.setenv(trace.SAMPLE_ENV, "0.5")  # sampling must not leak
        trace.reset()
        traced = train_dqn(MDPConfig(), trainer=trainer, seed=7)
        trace.finish_run()

        np.testing.assert_array_equal(
            baseline.reward_history, traced.reward_history
        )
        np.testing.assert_array_equal(baseline.loss_history, traced.loss_history)
        assert baseline.steps == traced.steps

    def test_distance_sweep_identical_with_tracing(self, monkeypatch, tmp_path):
        config = TestbedConfig(num_peripherals=2)
        distances = [5.0, 20.0]
        baseline = Testbed(config, seed=3).distance_sweep(
            distances, frames_per_node=5
        )

        monkeypatch.setenv(trace.TRACE_ENV, str(tmp_path / "RUN_sweep.jsonl"))
        trace.reset()
        traced = Testbed(config, seed=3).distance_sweep(
            distances, frames_per_node=5
        )
        trace.finish_run()

        assert baseline == traced
