"""Tests for the structured logger and the --quiet behaviour."""

import io
import json
import logging

from repro.obs import log as obs_log
from repro.obs import trace


class TestConfigure:
    def test_stream_and_level(self):
        stream = io.StringIO()
        obs_log.configure(stream=stream)
        obs_log.get_logger("test").info("hello", n=3)
        out = stream.getvalue()
        assert "hello n=3" in out
        assert "repro.test" in out

    def test_quiet_drops_info(self):
        stream = io.StringIO()
        obs_log.configure(quiet=True, stream=stream)
        logger = obs_log.get_logger("test")
        logger.info("chatter")
        logger.warning("important")
        out = stream.getvalue()
        assert "chatter" not in out
        assert "important" in out

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        obs_log.configure(stream=first)
        obs_log.configure(stream=second)
        obs_log.get_logger().info("once")
        assert first.getvalue() == ""
        assert "once" in second.getvalue()
        root = logging.getLogger(obs_log.ROOT_LOGGER)
        assert len(root.handlers) == 1
        assert root.propagate is False


class TestStructuredFormatting:
    def test_values_with_spaces_are_quoted(self):
        stream = io.StringIO()
        obs_log.configure(stream=stream)
        obs_log.get_logger().info("msg", path="a b")
        assert "path='a b'" in stream.getvalue()

    def test_floats_compact(self):
        stream = io.StringIO()
        obs_log.configure(stream=stream)
        obs_log.get_logger().info("msg", rate=0.3333333333)
        assert "rate=0.333333" in stream.getvalue()


class TestTraceMirroring:
    def test_log_lines_become_trace_events(self, monkeypatch, tmp_path):
        target = tmp_path / "RUN_log.jsonl"
        monkeypatch.setenv(trace.TRACE_ENV, str(target))
        trace.reset()
        obs_log.configure(stream=io.StringIO())
        obs_log.get_logger("cli").info("traced line", k=1)
        trace.finish_run()
        records = [json.loads(line) for line in target.read_text().splitlines()]
        events = [r for r in records if r["type"] == "event" and r["name"] == "log"]
        assert len(events) == 1
        assert events[0]["fields"]["message"] == "traced line k=1"
        assert events[0]["fields"]["logger"] == "repro.cli"

    def test_no_trace_event_when_disabled(self, tmp_path):
        obs_log.configure(stream=io.StringIO())
        obs_log.get_logger().info("untraced")
        assert not trace.enabled()
        assert list(tmp_path.iterdir()) == []
