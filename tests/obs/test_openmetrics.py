"""Tests for the OpenMetrics exposition and ``repro obs export``."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import telemetry
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.openmetrics import export_telemetry, metric_name, render_openmetrics


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("sim.jam_attempts") == "sim_jam_attempts"

    def test_leading_digit_prefixed(self):
        assert metric_name("2b.trials") == "_2b_trials"

    def test_empty_rejected(self):
        assert metric_name("...") == "___"  # sanitised, not rejected
        with pytest.raises(ReproError):
            metric_name("")


class TestRenderOpenmetrics:
    def test_counters_get_total_suffix_and_labels(self):
        reg = MetricsRegistry()
        reg.inc("jam.locks", 3, labels={"adversary": "reactive", "network": 0})
        reg.inc("sim.slots", 40)
        text = render_openmetrics(reg.snapshot())
        assert "# TYPE jam_locks counter" in text
        assert (
            'jam_locks_total{adversary="reactive",network="0"} 3' in text
        )
        assert "sim_slots_total 40" in text
        assert text.endswith("# EOF\n")

    def test_gauges_plain(self):
        reg = MetricsRegistry()
        reg.set("dqn.epsilon", 0.125)
        text = render_openmetrics(reg.snapshot())
        assert "# TYPE dqn_epsilon gauge" in text
        assert "dqn_epsilon 0.125" in text

    def test_histograms_expand_cumulative_buckets(self):
        reg = MetricsRegistry()
        for v in (0.5, 1.5, 9.0):
            reg.observe("lat", v, buckets=(1.0, 2.0))
        text = render_openmetrics(reg.snapshot())
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 11" in text
        assert "lat_count 3" in text

    def test_label_values_escaped(self):
        text = render_openmetrics(
            {"gauges": {"x{k=v}": 1.0}, "counters": {}, "histograms": {}}
        )
        assert 'x{k="v"} 1' in text

    def test_families_share_one_type_line(self):
        reg = MetricsRegistry()
        reg.inc("jam.locks", 1, labels={"network": 0})
        reg.inc("jam.locks", 2, labels={"network": 1})
        text = render_openmetrics(reg.snapshot())
        assert text.count("# TYPE jam_locks counter") == 1


class TestExportTelemetry:
    def _write_run(self, monkeypatch, tmp_path):
        path = tmp_path / "TELEM_x.jsonl"
        monkeypatch.setenv(telemetry.TELEM_ENV, str(path))
        telemetry.reset()
        for shard, networks in ((0, [0, 1]), (1, [2])):
            telemetry.record_frame(
                telemetry.field_frame(
                    window=0,
                    slot0=0,
                    slots=10,
                    shard=shard,
                    labels={"adversary": "reactive", "scheme": "fh"},
                    networks=networks,
                    jammed=[2] * len(networks),
                    attempts=[3] * len(networks),
                    delivered=[250] * len(networks),
                    attempted=[300] * len(networks),
                    hops=[1] * len(networks),
                    neg_sum=[0.4] * len(networks),
                    lat_counts=[1] * (len(telemetry.LATENCY_BUCKETS) + 1),
                    lat_min=0.01,
                    lat_max=2.0,
                    tokens=[5.0] * len(networks),
                )
            )
        METRICS.inc("jam.locks", 4, labels={"adversary": "reactive", "network": 1})
        telemetry.finish_run()
        return path

    def test_writes_prom_and_series(self, monkeypatch, tmp_path):
        src = self._write_run(monkeypatch, tmp_path)
        prom, series = export_telemetry(src)
        assert prom == tmp_path / "TELEM_x.prom"
        assert series == tmp_path / "TELEM_x_series.jsonl"
        text = prom.read_text()
        assert 'jam_locks_total{adversary="reactive",network="1"} 4' in text
        # fleet gauges recomputed from the merged field series
        assert (
            'fleet_jam_rate{adversary="reactive",scheme="fh"} 0.2' in text
        )
        assert 'fleet_networks{adversary="reactive",scheme="fh"} 3' in text
        assert 'fleet_duty_tokens{adversary="reactive",scheme="fh"} 5' in text
        rows = [json.loads(line) for line in series.read_text().splitlines()]
        assert len(rows) == 1
        assert rows[0]["series"] == "field"
        assert rows[0]["networks"] == [0, 1, 2]
        assert rows[0]["jammed"] == [2, 2, 2]

    def test_explicit_output_paths(self, monkeypatch, tmp_path):
        src = self._write_run(monkeypatch, tmp_path)
        prom, series = export_telemetry(
            src,
            out=tmp_path / "sub" / "m.prom",
            series_out=tmp_path / "sub" / "s.jsonl",
        )
        assert prom.is_file() and series.is_file()

    def test_export_without_metrics_record(self, monkeypatch, tmp_path):
        # A killed run has frames but no final metrics record.
        src = self._write_run(monkeypatch, tmp_path)
        kept = [
            line
            for line in src.read_text().splitlines()
            if json.loads(line)["type"] != "metrics"
        ]
        src.write_text("\n".join(kept) + "\n")
        prom, _ = export_telemetry(src)
        text = prom.read_text()
        assert "jam_locks_total" not in text
        assert "fleet_jam_rate" in text  # series-derived gauges survive
