"""Shared fixtures: every obs test starts with a clean, disabled state."""

import pytest

from repro.obs import telemetry, trace
from repro.obs.metrics import METRICS


@pytest.fixture(autouse=True)
def clean_obs_state(monkeypatch):
    """Isolate trace/telemetry/metrics globals and the REPRO_* env between tests."""
    monkeypatch.delenv(trace.TRACE_ENV, raising=False)
    monkeypatch.delenv(trace.SAMPLE_ENV, raising=False)
    monkeypatch.delenv(telemetry.TELEM_ENV, raising=False)
    monkeypatch.delenv(telemetry.TELEM_INTERVAL_ENV, raising=False)
    monkeypatch.delenv(telemetry.TELEM_WINDOW_ENV, raising=False)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    trace.reset()
    telemetry.reset()
    METRICS.reset()
    yield
    trace.reset()
    telemetry.reset()
    METRICS.reset()
