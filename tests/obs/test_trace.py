"""Tests for span/event recording and cross-process trace merging."""

import json
from pathlib import Path

import pytest

from repro.core.mdp import MDPConfig
from repro.core.trainer import TrainerConfig, train_dqn_multi_seed
from repro.errors import ConfigurationError
from repro.obs import trace
from repro.obs.metrics import METRICS


def read_records(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines() if line]


def enable(monkeypatch, tmp_path: Path, name: str = "t") -> Path:
    target = tmp_path / f"RUN_{name}.jsonl"
    monkeypatch.setenv(trace.TRACE_ENV, str(target))
    trace.reset()
    return target


class TestDisabled:
    def test_span_yields_none_and_records_nothing(self, tmp_path):
        with trace.span("x", a=1) as sid:
            assert sid is None
        trace.event("y", b=2)
        assert not trace.enabled()
        assert trace.current_trace_id() is None
        assert trace.finish_run() is None
        assert list(tmp_path.iterdir()) == []

    def test_start_run_reports_disabled(self):
        assert trace.start_run(command="test") is False


class TestTargetResolution:
    def test_explicit_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(trace.TRACE_ENV, str(tmp_path / "t.jsonl"))
        assert trace.trace_target() == tmp_path / "t.jsonl"

    def test_run_name(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_ENV, "smoke")
        assert trace.trace_target().name == "RUN_smoke.jsonl"

    def test_truthy_flag(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_ENV, "1")
        assert trace.trace_target().name == "RUN_run.jsonl"

    def test_empty_is_disabled(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_ENV, "  ")
        assert trace.trace_target() is None

    def test_sample_rate_validation(self, monkeypatch):
        monkeypatch.setenv(trace.SAMPLE_ENV, "2.0")
        with pytest.raises(ConfigurationError):
            trace.sample_rate()
        monkeypatch.setenv(trace.SAMPLE_ENV, "nope")
        with pytest.raises(ConfigurationError):
            trace.sample_rate()


class TestRecording:
    def test_manifest_is_first_line(self, monkeypatch, tmp_path):
        target = enable(monkeypatch, tmp_path, "manifest")
        assert trace.start_run(command="test", seeds=[1, 2]) is True
        trace.event("ping")
        assert trace.finish_run() == target
        records = read_records(target)
        manifest = records[0]
        assert manifest["type"] == "manifest"
        assert manifest["run"] == "manifest"
        assert manifest["command"] == "test"
        assert manifest["seeds"] == [1, 2]
        assert manifest["trace"] == records[1]["trace"]
        assert records[-1]["type"] == "metrics"

    def test_span_nesting_parents(self, monkeypatch, tmp_path):
        target = enable(monkeypatch, tmp_path)
        with trace.span("outer") as outer_id:
            with trace.span("inner") as inner_id:
                trace.event("tick", n=1)
        trace.finish_run()
        records = read_records(target)
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        events = [r for r in records if r["type"] == "event"]
        assert spans["inner"]["parent"] == outer_id
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["id"] == inner_id
        assert events[0]["span"] == inner_id
        # Spans are written on exit: children precede parents in the file.
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["inner", "outer"]

    def test_nan_and_numpy_fields_serialise(self, monkeypatch, tmp_path):
        import numpy as np

        target = enable(monkeypatch, tmp_path)
        trace.event("weird", loss=float("nan"), arr=np.float64(1.5), obj=object())
        trace.finish_run()
        fields = read_records(target)[1]["fields"]
        assert fields["loss"] is None
        assert fields["arr"] == 1.5
        assert isinstance(fields["obj"], str)

    def test_finish_run_disables_for_rest_of_process(self, monkeypatch, tmp_path):
        target = enable(monkeypatch, tmp_path)
        trace.event("before")
        trace.finish_run()
        n_records = len(read_records(target))
        # Late stragglers must not re-open the file with a second manifest.
        trace.event("after")
        assert not trace.enabled()
        assert len(read_records(target)) == n_records

    def test_no_file_without_records(self, monkeypatch, tmp_path):
        target = enable(monkeypatch, tmp_path)
        assert trace.start_run() is True
        assert trace.finish_run() is None
        assert not target.exists()


class TestSampling:
    def test_sampling_drops_events_not_spans(self, monkeypatch, tmp_path):
        target = enable(monkeypatch, tmp_path)
        monkeypatch.setenv(trace.SAMPLE_ENV, "0.2")
        trace.reset()
        with trace.span("all"):
            for i in range(500):
                trace.event("tick", n=i)
        trace.finish_run()
        records = read_records(target)
        events = [r for r in records if r["type"] == "event"]
        spans = [r for r in records if r["type"] == "span"]
        assert len(spans) == 1
        assert 0 < len(events) < 300  # ~100 expected at rate 0.2

    def test_decision_is_deterministic(self):
        kept = [trace._keep("abc", seq, 0.5) for seq in range(100)]
        assert kept == [trace._keep("abc", seq, 0.5) for seq in range(100)]
        assert any(kept) and not all(kept)


class TestWorkerEnvelope:
    def test_context_roundtrip(self, monkeypatch, tmp_path):
        target = enable(monkeypatch, tmp_path)
        with trace.span("dispatch") as dispatch_id:
            ctx = trace.worker_context()
        assert ctx is not None
        assert ctx.parent == dispatch_id
        assert trace.in_origin(ctx)

        # Simulate the worker side: buffer, then merge back at the origin.
        parent_state_id = trace.current_trace_id()
        trace.activate_worker(ctx)
        with trace.span("task"):
            trace.event("inside")
        records = trace.drain_worker()
        assert [r["type"] for r in records] == ["event", "span"]
        assert all(r["trace"] == parent_state_id for r in records)
        assert trace.drain_worker() == ()  # drained

        trace.reset()
        enable(monkeypatch, tmp_path)
        trace.absorb(records)
        trace.finish_run()
        absorbed = read_records(target)
        assert any(r.get("name") == "task" for r in absorbed)

    def test_worker_context_none_when_disabled(self):
        assert trace.worker_context() is None


class TestParallelMergedTrace:
    def test_multi_seed_training_merges_into_one_trace(self, monkeypatch, tmp_path):
        """The acceptance scenario: one trace file, worker spans inside."""
        target = enable(monkeypatch, tmp_path, "fanout")
        seeds = (0, 1, 2)
        trainer = TrainerConfig(episodes=2, steps_per_episode=10)
        # env_batch=1 keeps one pool task per seed: this test is about the
        # per-task trace merge, which needs a genuine multi-task fan-out.
        train_dqn_multi_seed(
            MDPConfig(), seeds=seeds, trainer=trainer, workers=2, env_batch=1
        )
        trace.finish_run()
        records = read_records(target)

        trace_ids = {r["trace"] for r in records if "trace" in r}
        assert len(trace_ids) == 1  # worker records carry the parent id

        spans = [r for r in records if r["type"] == "span"]
        by_name = {}
        for s in spans:
            by_name.setdefault(s["name"], []).append(s)
        dispatch = by_name["exec/dispatch"][0]
        tasks = by_name["exec/task"]
        runs = by_name["train/run"]
        assert len(tasks) == len(seeds)
        assert len(runs) == len(seeds)
        assert all(t["parent"] == dispatch["id"] for t in tasks)
        task_ids = {t["id"] for t in tasks}
        assert len(task_ids) == len(seeds)  # no span-id collisions
        assert all(r["parent"] in task_ids for r in runs)

        episodes = [
            r for r in records
            if r["type"] == "event" and r["name"] == "dqn.episode"
        ]
        assert len(episodes) == len(seeds) * trainer.episodes

        # Worker metrics merged back into the parent registry.
        assert METRICS.counter("dqn.episodes").value == len(seeds) * trainer.episodes
