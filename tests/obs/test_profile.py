"""Tests for the opt-in cProfile stage hook."""

import pstats

from repro.exec import timing
from repro.obs import profile


class TestProfileHook:
    def test_off_by_default(self, tmp_path):
        with profile.maybe_profile("stage", directory=tmp_path) as prof:
            assert prof is None
        assert list(tmp_path.iterdir()) == []

    def test_falsy_values(self, monkeypatch):
        for value in ("", "0", "false", "no", "off", "OFF"):
            monkeypatch.setenv(profile.PROFILE_ENV, value)
            assert not profile.profiling_enabled()
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        assert profile.profiling_enabled()

    def test_dumps_pstats(self, monkeypatch, tmp_path):
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        with profile.maybe_profile("my stage/x", directory=tmp_path):
            sum(range(1000))
        out = tmp_path / "PROF_my_stage_x.pstats"
        assert out.exists()
        stats = pstats.Stats(str(out))  # parseable by the pstats module
        assert stats.total_calls >= 1

    def test_no_nesting(self, monkeypatch, tmp_path):
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        with profile.maybe_profile("outer", directory=tmp_path):
            with profile.maybe_profile("inner", directory=tmp_path) as inner:
                assert inner is None
        assert (tmp_path / "PROF_outer.pstats").exists()
        assert not (tmp_path / "PROF_inner.pstats").exists()

    def test_timing_stage_profiles(self, monkeypatch, tmp_path):
        monkeypatch.setenv(profile.PROFILE_ENV, "1")
        monkeypatch.setenv(timing.BENCH_DIR_ENV, str(tmp_path))
        reg = timing.TimingRegistry()
        with reg.stage("timed"):
            pass
        assert (tmp_path / "PROF_timed.pstats").exists()
