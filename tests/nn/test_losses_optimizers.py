"""Tests for losses and optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.nn.losses import HuberLoss, MeanSquaredError
from repro.nn.optimizers import SGD, Adam


class TestMSE:
    def test_zero_at_target(self):
        t = np.ones((2, 3))
        assert MeanSquaredError().value(t, t) == 0.0

    def test_known_value(self):
        p = np.array([[2.0]])
        t = np.array([[0.0]])
        assert MeanSquaredError().value(p, t) == pytest.approx(2.0)

    def test_gradient_direction(self):
        p = np.array([[2.0, -1.0]])
        t = np.zeros((1, 2))
        g = MeanSquaredError().gradient(p, t)
        assert g[0, 0] > 0 and g[0, 1] < 0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            MeanSquaredError().value(np.zeros((1, 2)), np.zeros((2, 1)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MeanSquaredError().value(np.zeros((0,)), np.zeros((0,)))

    @given(st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=25)
    def test_gradient_is_numerical_derivative(self, p, t):
        loss = MeanSquaredError()
        pa = np.array([[p]])
        ta = np.array([[t]])
        eps = 1e-6
        num = (
            loss.value(pa + eps, ta) - loss.value(pa - eps, ta)
        ) / (2 * eps)
        assert loss.gradient(pa, ta)[0, 0] == pytest.approx(num, abs=1e-5)


class TestHuber:
    def test_quadratic_inside_delta(self):
        loss = HuberLoss(delta=1.0)
        p, t = np.array([[0.5]]), np.array([[0.0]])
        assert loss.value(p, t) == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        loss = HuberLoss(delta=1.0)
        p, t = np.array([[3.0]]), np.array([[0.0]])
        # 0.5 * 1^2 + 1 * (3 - 1) = 2.5
        assert loss.value(p, t) == pytest.approx(2.5)

    def test_gradient_clipped(self):
        loss = HuberLoss(delta=1.0)
        g = loss.gradient(np.array([[10.0]]), np.array([[0.0]]))
        assert g[0, 0] == pytest.approx(1.0)

    def test_bad_delta(self):
        with pytest.raises(ConfigurationError):
            HuberLoss(delta=0.0)

    @given(st.floats(-4, 4))
    @settings(max_examples=25)
    def test_gradient_is_numerical_derivative(self, p):
        loss = HuberLoss(delta=1.0)
        pa, ta = np.array([[p]]), np.array([[0.0]])
        eps = 1e-6
        num = (loss.value(pa + eps, ta) - loss.value(pa - eps, ta)) / (2 * eps)
        assert loss.gradient(pa, ta)[0, 0] == pytest.approx(num, abs=1e-4)


class TestSGD:
    def test_descends_quadratic(self):
        x = np.array([5.0])
        opt = SGD(learning_rate=0.1)
        for _ in range(100):
            g = np.array([2 * x[0]])
            opt.step([x], [g])
        assert abs(x[0]) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            x = np.array([5.0])
            opt = SGD(learning_rate=0.01, momentum=momentum)
            for _ in range(50):
                opt.step([x], [np.array([2 * x[0]])])
            return abs(x[0])

        assert run(0.9) < run(0.0)

    def test_zeroes_gradients(self):
        x, g = np.array([1.0]), np.array([1.0])
        SGD(0.1).step([x], [g])
        assert g[0] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGD(0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(0.1).step([np.zeros(2)], [np.zeros(3)])
        with pytest.raises(ConfigurationError):
            SGD(0.1).step([np.zeros(2)], [])


class TestAdam:
    def test_descends_quadratic(self):
        x = np.array([5.0])
        opt = Adam(learning_rate=0.1)
        for _ in range(300):
            opt.step([x], [np.array([2 * x[0]])])
        assert abs(x[0]) < 1e-2

    def test_handles_sparse_scales(self):
        # Adam equalises very differently scaled gradients.
        x = np.array([1.0, 1.0])
        opt = Adam(learning_rate=0.05)
        for _ in range(400):
            g = np.array([2e-4 * x[0], 2e4 * x[1]])
            opt.step([x], [g])
        assert abs(x[0]) < 0.2 and abs(x[1]) < 0.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(epsilon=0.0)

    def test_zeroes_gradients(self):
        x, g = np.array([1.0]), np.array([1.0])
        Adam(0.1).step([x], [g])
        assert g[0] == 0.0
