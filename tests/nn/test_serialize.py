"""Tests for the flat-parameter artifact: round-trips and manifest validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Layer
from repro.nn.network import Network, mlp
from repro.nn.serialize import (
    flatten_parameters,
    load_parameters,
    parameter_count,
    save_parameters,
)


class Conv3D(Layer):
    """Identity layer carrying a 3-D parameter (exercises ndim > 2)."""

    def __init__(self, shape=(2, 3, 4), seed=0):
        self.kernel = np.random.default_rng(seed).normal(size=shape)
        self.grad_kernel = np.zeros_like(self.kernel)

    def forward(self, x):
        return x

    def backward(self, grad_output):
        return grad_output

    @property
    def parameters(self):
        return [self.kernel]

    @property
    def gradients(self):
        return [self.grad_kernel]


class TestRoundTrip:
    def test_mlp_round_trip(self, tmp_path):
        path = tmp_path / "params.npz"
        net = mlp(4, (6,), 2, seed=0)
        saved = [p.copy() for p in net.parameters]
        save_parameters(net, path)
        for p in net.parameters:
            p[...] = 0.0
        load_parameters(net, path)
        for p, ref in zip(net.parameters, saved):
            np.testing.assert_allclose(p, ref, atol=1e-6)

    def test_three_dim_parameters_round_trip(self, tmp_path):
        """The padded manifest must survive ndim-3 parameters (old code
        hard-padded rows to length 2 and died on the ragged array)."""
        path = tmp_path / "conv.npz"
        net = Network([Conv3D(shape=(2, 3, 4), seed=1)])
        ref = net.parameters[0].copy()
        save_parameters(net, path)
        net.parameters[0][...] = 0.0
        load_parameters(net, path)
        np.testing.assert_allclose(net.parameters[0], ref, atol=1e-6)

    def test_mixed_ndim_round_trip(self, tmp_path):
        path = tmp_path / "mixed.npz"
        net = Network([Conv3D(seed=2)] + mlp(3, (5,), 2, seed=3).layers)
        refs = [p.copy() for p in net.parameters]
        save_parameters(net, path)
        for p in net.parameters:
            p[...] = 0.0
        load_parameters(net, path)
        for p, ref in zip(net.parameters, refs):
            np.testing.assert_allclose(p, ref, atol=1e-6)


class TestManifestValidation:
    def test_rejects_mismatched_geometry_same_count(self, tmp_path):
        """Same total parameter count, different layer shapes: the old
        loader scrambled the weights silently; now it must refuse."""
        path = tmp_path / "other.npz"
        donor = mlp(4, (6,), 2, seed=0)
        target = mlp(3, (7,), 2, seed=0)
        assert parameter_count(donor) == parameter_count(target)
        save_parameters(donor, path)
        with pytest.raises(ConfigurationError, match="geometry"):
            load_parameters(target, path)

    def test_rejects_missing_manifest(self, tmp_path):
        path = tmp_path / "bare.npz"
        net = mlp(4, (6,), 2, seed=0)
        np.savez(path, flat=flatten_parameters(net))
        with pytest.raises(ConfigurationError, match="manifest"):
            load_parameters(net, path)

    def test_rejects_non_artifact(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ConfigurationError, match="not a parameter artifact"):
            load_parameters(mlp(4, (6,), 2), path)

    def test_rejects_truncated_flat_vector(self, tmp_path):
        path = tmp_path / "trunc.npz"
        net = mlp(4, (6,), 2, seed=0)
        save_parameters(net, path)
        with np.load(path) as data:
            flat, shapes, ndims = data["flat"], data["shapes"], data["ndims"]
        np.savez(path, flat=flat[:-5], shapes=shapes, ndims=ndims)
        with pytest.raises(ConfigurationError, match="corrupted"):
            load_parameters(net, path)

    def test_rejects_corrupt_ndims(self, tmp_path):
        path = tmp_path / "badnd.npz"
        net = mlp(4, (6,), 2, seed=0)
        save_parameters(net, path)
        with np.load(path) as data:
            flat, shapes, ndims = data["flat"], data["shapes"], data["ndims"]
        ndims = ndims.copy()
        ndims[0] = shapes.shape[1] + 3  # points past the padded row
        np.savez(path, flat=flat, shapes=shapes, ndims=ndims)
        with pytest.raises(ConfigurationError, match="corrupted"):
            load_parameters(net, path)

    def test_rejects_ragged_manifest(self, tmp_path):
        path = tmp_path / "ragged.npz"
        net = mlp(4, (6,), 2, seed=0)
        save_parameters(net, path)
        with np.load(path) as data:
            flat, shapes, ndims = data["flat"], data["shapes"], data["ndims"]
        np.savez(path, flat=flat, shapes=shapes[:-1], ndims=ndims)
        with pytest.raises(ConfigurationError, match="corrupted"):
            load_parameters(net, path)


class TestPolicyBundle:
    """load_policy_bundle: cross-artifact geometry validation before stacking."""

    def _save(self, tmp_path, name, net):
        path = tmp_path / name
        save_parameters(net, path)
        return path

    def test_bundle_roundtrip(self, tmp_path):
        from repro.nn.serialize import load_policy_bundle

        nets = [mlp(6, (8,), 4, seed=i) for i in range(3)]
        paths = [self._save(tmp_path, f"p{i}.npz", n) for i, n in enumerate(nets)]
        bundle = load_policy_bundle(paths)
        assert len(bundle) == 3
        assert bundle.shapes == tuple(p.shape for p in nets[0].parameters)
        for i, net in enumerate(nets):
            np.testing.assert_array_equal(
                bundle.flats[i], flatten_parameters(net)
            )
            target = mlp(6, (8,), 4, seed=99)
            bundle.load_into(i, target)
            probe = np.linspace(-1, 1, 6)
            # float32 artifact round-trip, same as load_parameters
            np.testing.assert_array_equal(
                target.predict(probe),
                _roundtrip(net).predict(probe),
            )

    def test_mismatched_artifact_names_offending_path(self, tmp_path):
        from repro.nn.serialize import load_policy_bundle

        good = [self._save(tmp_path, f"g{i}.npz", mlp(6, (8,), 4, seed=i)) for i in range(2)]
        bad = self._save(tmp_path, "odd-one.npz", mlp(6, (9,), 4, seed=0))
        with pytest.raises(ConfigurationError, match="odd-one"):
            load_policy_bundle([*good, bad])

    def test_empty_bundle_rejected(self):
        from repro.nn.serialize import load_policy_bundle

        with pytest.raises(ConfigurationError, match="at least one"):
            load_policy_bundle([])

    def test_corrupted_member_rejected(self, tmp_path):
        from repro.nn.serialize import load_policy_bundle

        path = self._save(tmp_path, "ok.npz", mlp(6, (8,), 4, seed=0))
        broken = tmp_path / "broken.npz"
        with np.load(path) as data:
            np.savez(
                broken,
                flat=data["flat"][:-3],
                shapes=data["shapes"],
                ndims=data["ndims"],
            )
        with pytest.raises(ConfigurationError, match="corrupted"):
            load_policy_bundle([path, broken])

    def test_load_into_wrong_network_rejected(self, tmp_path):
        from repro.nn.serialize import load_policy_bundle

        path = self._save(tmp_path, "p.npz", mlp(6, (8,), 4, seed=0))
        bundle = load_policy_bundle([path])
        with pytest.raises(ConfigurationError, match="does not match"):
            bundle.load_into(0, mlp(6, (10,), 4, seed=0))


def _roundtrip(net):
    """A copy of ``net`` whose weights went through the float32 artifact."""
    from repro.nn.serialize import unflatten_parameters

    clone = net.clone()
    unflatten_parameters(clone, flatten_parameters(net))
    return clone
