"""Tests for the sequential network, MLP factory and serialisation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    Adam,
    HuberLoss,
    MeanSquaredError,
    Network,
    SGD,
    load_parameters,
    mlp,
    parameter_count,
    save_parameters,
)
from repro.nn.serialize import (
    artifact_size_bytes,
    flatten_parameters,
    unflatten_parameters,
)


class TestNetwork:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Network([])

    def test_predict_1d_and_2d(self):
        net = mlp(4, (8,), 3, seed=0)
        single = net.predict(np.zeros(4))
        batch = net.predict(np.zeros((5, 4)))
        assert single.shape == (3,)
        assert batch.shape == (5, 3)
        np.testing.assert_allclose(batch[0], single)

    def test_deterministic_given_seed(self):
        a = mlp(4, (8,), 2, seed=42)
        b = mlp(4, (8,), 2, seed=42)
        x = np.ones(4)
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_different_seeds_differ(self):
        a = mlp(4, (8,), 2, seed=1)
        b = mlp(4, (8,), 2, seed=2)
        assert not np.allclose(a.predict(np.ones(4)), b.predict(np.ones(4)))

    def test_num_parameters(self):
        net = mlp(4, (8,), 2, seed=0)
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_paper_architecture_size(self):
        # I = 5, C = 16, P_L = 10, hidden 48x48: the deployable artifact is
        # in the ballpark the paper reports (10664 floats / 42.7 KB).
        net = mlp(15, (48, 48), 160, seed=0)
        assert net.num_parameters() == 10_960
        assert artifact_size_bytes(net) == 43_840

    def test_clone_is_independent(self):
        net = mlp(3, (4,), 2, seed=0)
        clone = net.clone()
        x = np.ones(3)
        np.testing.assert_allclose(clone.predict(x), net.predict(x))
        net.parameters[0][...] += 1.0
        assert not np.allclose(clone.predict(x), net.predict(x))

    def test_copy_weights_from(self):
        a = mlp(3, (4,), 2, seed=0)
        b = mlp(3, (4,), 2, seed=9)
        b.copy_weights_from(a)
        x = np.ones(3)
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_set_weights_validation(self):
        net = mlp(3, (4,), 2, seed=0)
        with pytest.raises(ConfigurationError):
            net.set_weights([np.zeros((3, 4))])
        weights = net.get_weights()
        weights[0] = np.zeros((5, 5))
        with pytest.raises(ConfigurationError):
            net.set_weights(weights)


class TestTraining:
    def test_learns_linear_map(self):
        rng = np.random.default_rng(0)
        true_w = rng.standard_normal((3, 2))
        x = rng.standard_normal((256, 3))
        y = x @ true_w
        net = mlp(3, (32,), 2, seed=1)
        opt = Adam(learning_rate=1e-2)
        loss = MeanSquaredError()
        for _ in range(400):
            idx = rng.integers(0, 256, 32)
            net.train_step(x[idx], y[idx], loss, opt)
        final = loss.value(net.forward(x), y)
        assert final < 1e-2

    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, (512, 1))
        y = np.abs(x)  # needs the ReLU nonlinearity
        net = mlp(1, (32, 32), 1, seed=2)
        opt = Adam(learning_rate=3e-3)
        loss = MeanSquaredError()
        for _ in range(800):
            idx = rng.integers(0, 512, 64)
            net.train_step(x[idx], y[idx], loss, opt)
        assert loss.value(net.forward(x), y) < 5e-3

    def test_grad_mask_restricts_updates(self):
        net = mlp(2, (8,), 3, seed=3)
        x = np.ones((1, 2))
        before = net.predict(np.ones(2)).copy()
        target = before.copy()[None, :]
        target[0, 1] += 10.0  # ask only output 1 to move
        mask = np.zeros((1, 3))
        mask[0, 1] = 1.0
        opt = SGD(learning_rate=0.05)
        for _ in range(200):
            net.train_step(x, target, MeanSquaredError(), opt, grad_mask=mask)
        after = net.predict(np.ones(2))
        assert abs(after[1] - target[0, 1]) < 0.5

    def test_grad_mask_shape_check(self):
        net = mlp(2, (4,), 2, seed=0)
        with pytest.raises(ConfigurationError):
            net.train_step(
                np.ones((1, 2)),
                np.ones((1, 2)),
                HuberLoss(),
                SGD(0.1),
                grad_mask=np.ones((2, 2)),
            )

    def test_mlp_factory_validation(self):
        with pytest.raises(ConfigurationError):
            mlp(0, (4,), 2)
        with pytest.raises(ConfigurationError):
            mlp(2, (), 2)


class TestSerialization:
    def test_flatten_roundtrip(self):
        net = mlp(5, (7,), 3, seed=4)
        flat = flatten_parameters(net)
        assert flat.size == parameter_count(net)
        other = mlp(5, (7,), 3, seed=5)
        unflatten_parameters(other, flat)
        x = np.ones(5)
        np.testing.assert_allclose(other.predict(x), net.predict(x), atol=1e-6)

    def test_save_load_file(self, tmp_path):
        net = mlp(4, (6,), 2, seed=6)
        path = tmp_path / "weights.npz"
        save_parameters(net, path)
        other = mlp(4, (6,), 2, seed=7)
        load_parameters(other, path)
        x = np.full(4, 0.5)
        np.testing.assert_allclose(other.predict(x), net.predict(x), atol=1e-6)

    def test_size_mismatch_rejected(self):
        net = mlp(4, (6,), 2, seed=0)
        with pytest.raises(ConfigurationError):
            unflatten_parameters(net, np.zeros(3))

    def test_float32_artifact(self):
        net = mlp(4, (6,), 2, seed=0)
        assert flatten_parameters(net).dtype == np.float32
