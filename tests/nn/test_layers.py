"""Tests for network layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, ReLU


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 7, seed=0)
        assert layer.forward(np.zeros((3, 4))).shape == (3, 7)

    def test_linearity(self):
        layer = Dense(5, 2, seed=1)
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((2, 5)), rng.standard_normal((2, 5))
        np.testing.assert_allclose(
            layer.forward(x + y) + layer.bias,
            layer.forward(x) + layer.forward(y),
            atol=1e-12,
        )

    def test_bad_input_shape(self):
        with pytest.raises(ConfigurationError):
            Dense(4, 2).forward(np.zeros((3, 5)))

    def test_bad_dims(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 2)

    def test_unknown_init(self):
        with pytest.raises(ConfigurationError):
            Dense(4, 2, init="magic")

    def test_backward_before_forward(self):
        with pytest.raises(ConfigurationError):
            Dense(4, 2).backward(np.zeros((1, 2)))

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, seed=3)
        x = rng.standard_normal((5, 4))
        w_target = rng.standard_normal((5, 3))

        def loss():
            out = x @ layer.weight + layer.bias
            return 0.5 * np.sum((out - w_target) ** 2)

        layer.forward(x)
        out = x @ layer.weight + layer.bias
        layer.backward(out - w_target)
        num = numerical_gradient(loss, layer.weight)
        np.testing.assert_allclose(layer.grad_weight, num, atol=1e-5)

    def test_bias_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        layer = Dense(3, 2, seed=5)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            out = x @ layer.weight + layer.bias
            return 0.5 * np.sum((out - target) ** 2)

        layer.forward(x)
        layer.backward((x @ layer.weight + layer.bias) - target)
        num = numerical_gradient(loss, layer.bias)
        np.testing.assert_allclose(layer.grad_bias, num, atol=1e-5)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(6)
        layer = Dense(3, 2, seed=7)
        x = rng.standard_normal((2, 3))
        target = rng.standard_normal((2, 2))

        def loss():
            out = x @ layer.weight + layer.bias
            return 0.5 * np.sum((out - target) ** 2)

        layer.forward(x)
        grad_in = layer.backward((x @ layer.weight + layer.bias) - target)
        num = numerical_gradient(loss, x)
        np.testing.assert_allclose(grad_in, num, atol=1e-5)

    def test_gradients_accumulate(self):
        layer = Dense(2, 2, seed=8)
        x = np.ones((1, 2))
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        first = layer.grad_weight.copy()
        layer.forward(x)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.grad_weight, 2 * first)

    def test_he_scale(self):
        rng_layers = [Dense(1000, 10, seed=s) for s in range(3)]
        stds = [l.weight.std() for l in rng_layers]
        expected = np.sqrt(2.0 / 1000)
        for s in stds:
            assert s == pytest.approx(expected, rel=0.15)


class TestReLU:
    def test_forward_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        assert out.tolist() == [[0.0, 0.0, 2.0]]

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0]]

    def test_backward_before_forward(self):
        with pytest.raises(ConfigurationError):
            ReLU().backward(np.zeros((1, 2)))

    def test_no_parameters(self):
        assert ReLU().parameters == []
        assert ReLU().gradients == []
