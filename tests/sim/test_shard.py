"""Determinism and equivalence tests for the sharded field grid.

The contract under test: sharding, worker fan-out, batching and record
retention are *pure performance knobs* — none of them may change a single
bit of the simulation. And a grid of N networks is exactly N solo
:class:`FieldExperiment` runs on derived seeds, coupled only through
delivery-time interference.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.dqn import DQNAgent, DQNConfig
from repro.errors import ConfigurationError
from repro.sim.field import (
    DQNPolicyAdapter,
    FieldConfig,
    FieldExperiment,
)
from repro.sim.scenario import field_jammer_config, paper_defaults
from repro.sim.shard import (
    FieldGrid,
    GridConfig,
    InterferenceModel,
    SchemeAdapterFactory,
    network_positions,
    network_seed,
    resolve_shards,
)

SLOTS = 40


def _field_config(sampling: str = "aggregate") -> FieldConfig:
    defaults = paper_defaults()
    return FieldConfig(
        mdp=defaults.mdp,
        jammer=field_jammer_config(defaults),
        sampling=sampling,
    )


def _grid_config(sampling: str = "aggregate", **kwargs) -> GridConfig:
    return GridConfig(field=_field_config(sampling), **kwargs)


def _solo_result(sampling: str, seed: int, index: int, slots: int = SLOTS):
    """Network ``index`` of a grid replayed as a standalone experiment."""
    cfg = _field_config(sampling)
    net = network_seed(seed, index)
    adapter = SchemeAdapterFactory("optimal")(cfg.mdp, net)
    return FieldExperiment(cfg, adapter, seed=net).run_experiment(slots)


class TestResolveShards:
    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards() == 1
        monkeypatch.setenv("REPRO_SHARDS", "")
        assert resolve_shards() == 1

    def test_env_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert resolve_shards() == 3
        assert resolve_shards(5) == 5
        assert resolve_shards("auto") >= 1

    def test_rejects_garbage(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_shards("many")
        with pytest.raises(ConfigurationError):
            resolve_shards(0)
        monkeypatch.setenv("REPRO_SHARDS", "-2")
        with pytest.raises(ConfigurationError):
            resolve_shards()


class TestGridConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _grid_config(num_networks=0)
        with pytest.raises(ConfigurationError):
            _grid_config(width_m=0.0)
        with pytest.raises(ConfigurationError):
            _grid_config(scheme="nonesuch")
        with pytest.raises(ConfigurationError):
            InterferenceModel(radius_m=-1.0)

    def test_positions_deterministic(self):
        a = network_positions(7, 10, 100.0, 50.0)
        b = network_positions(7, 10, 100.0, 50.0)
        assert np.array_equal(a, b)
        assert a.shape == (10, 2)
        assert a[:, 0].max() <= 100.0 and a[:, 1].max() <= 50.0


class TestSoloEquivalence:
    """A 1-network grid is bit-identical to a solo FieldExperiment."""

    @pytest.mark.parametrize("sampling", ["packet", "aggregate"])
    def test_single_network_matches_solo(self, sampling):
        seed = 11
        grid = FieldGrid(
            _grid_config(sampling, num_networks=1, keep_records=True),
            seed=seed,
        )
        got = grid.run(SLOTS)
        want = _solo_result(sampling, seed, 0)
        assert got.goodput_pkts_per_slot[0] == want.goodput_pkts_per_slot
        assert got.utilization[0] == want.utilization
        assert got.metrics[0] == want.metrics
        assert len(got.records[0]) == len(want.records)
        for mine, ref in zip(got.records[0], want.records):
            assert dataclasses.astuple(mine) == dataclasses.astuple(ref)

    @pytest.mark.parametrize("sampling", ["packet", "aggregate"])
    def test_network_in_grid_matches_solo(self, sampling):
        # Without interference the networks are independent: any network of
        # a multi-network grid replays alone on its derived seed.
        seed, index = 3, 4
        grid = FieldGrid(_grid_config(sampling, num_networks=6), seed=seed)
        got = grid.run(SLOTS).network_result(index)
        want = _solo_result(sampling, seed, index)
        assert got.goodput_pkts_per_slot == want.goodput_pkts_per_slot
        assert got.utilization == want.utilization
        assert got.metrics == want.metrics


class TestKnobInvariance:
    """Shards, workers, batching, records: zero effect on results."""

    @pytest.mark.parametrize("sampling", ["packet", "aggregate"])
    def test_shard_count_invariance(self, sampling):
        cfg = _grid_config(
            sampling,
            num_networks=10,
            width_m=30.0,
            height_m=30.0,
            interference=InterferenceModel(radius_m=15.0),
        )
        slots = 20 if sampling == "packet" else SLOTS
        base = FieldGrid(cfg, seed=5, shards=1).run(slots)
        for shards in (2, 3, 8):
            got = FieldGrid(cfg, seed=5, shards=shards).run(slots)
            # Empty strips are skipped, so the effective count may be lower.
            assert 1 <= got.shards <= min(shards, cfg.num_networks)
            assert np.array_equal(
                got.goodput_pkts_per_slot, base.goodput_pkts_per_slot
            )
            assert np.array_equal(got.utilization, base.utilization)
            assert got.metrics == base.metrics

    def test_worker_count_invariance(self):
        cfg = _grid_config(
            num_networks=8,
            width_m=30.0,
            height_m=30.0,
            interference=InterferenceModel(radius_m=12.0),
        )
        one = FieldGrid(cfg, seed=2, shards=4, workers=1).run(SLOTS)
        two = FieldGrid(cfg, seed=2, shards=4, workers=2).run(SLOTS)
        assert np.array_equal(
            one.goodput_pkts_per_slot, two.goodput_pkts_per_slot
        )
        assert one.metrics == two.metrics

    def test_field_batch_invariance(self):
        cfg = _grid_config(num_networks=4)
        small = FieldGrid(cfg, seed=9, field_batch=1).run(SLOTS)
        large = FieldGrid(cfg, seed=9, field_batch=256).run(SLOTS)
        assert np.array_equal(
            small.goodput_pkts_per_slot, large.goodput_pkts_per_slot
        )

    def test_keep_records_invariance(self):
        cfg = _grid_config(num_networks=4)
        lean = FieldGrid(cfg, seed=1).run(SLOTS)
        full = FieldGrid(
            dataclasses.replace(cfg, keep_records=True), seed=1
        ).run(SLOTS)
        assert lean.records is None
        assert len(full.records) == 4
        assert all(len(r) == SLOTS for r in full.records)
        assert np.array_equal(
            lean.goodput_pkts_per_slot, full.goodput_pkts_per_slot
        )

    def test_repeated_run_identical(self):
        grid = FieldGrid(_grid_config(num_networks=3), seed=4)
        first = grid.run(SLOTS)
        second = grid.run(SLOTS)
        assert np.array_equal(
            first.goodput_pkts_per_slot, second.goodput_pkts_per_slot
        )
        assert first.metrics == second.metrics


class TestInterference:
    def test_interference_reduces_goodput(self):
        # A dense field: everyone inside everyone's interference radius.
        quiet = _grid_config(num_networks=8, width_m=10.0, height_m=10.0)
        noisy = dataclasses.replace(
            quiet, interference=InterferenceModel(radius_m=20.0)
        )
        clean = FieldGrid(quiet, seed=6).run(SLOTS)
        contested = FieldGrid(noisy, seed=6).run(SLOTS)
        assert contested.mean_goodput < clean.mean_goodput

    def test_out_of_range_networks_unaffected(self):
        # Interference with a tiny radius on a sparse field is a no-op.
        sparse = _grid_config(num_networks=4, width_m=1000.0, height_m=1000.0)
        wired = dataclasses.replace(
            sparse, interference=InterferenceModel(radius_m=0.5)
        )
        assert np.array_equal(
            FieldGrid(sparse, seed=8).run(SLOTS).goodput_pkts_per_slot,
            FieldGrid(wired, seed=8).run(SLOTS).goodput_pkts_per_slot,
        )


class _DQNFactory:
    """Picklable factory: every network shares one trained-ish agent."""

    def __init__(self, agent):
        self.agent = agent

    def __call__(self, mdp, net_seed):
        from repro.rng import derive

        return DQNPolicyAdapter(
            self.agent, mdp, seed=derive(net_seed, "grid-adapter")
        )


class TestDQNGrid:
    def test_batched_greedy_matches_solo(self):
        defaults = paper_defaults()
        mdp = defaults.mdp
        cfg = DQNConfig(
            observation_size=15,  # the adapter's default 3 * 5 history
            num_actions=mdp.num_channels * mdp.num_power_levels,
            hidden_sizes=(16,),
        )
        factory = _DQNFactory(DQNAgent(cfg, seed=0))
        grid_cfg = _grid_config(num_networks=3, adapter_factory=factory)
        got = FieldGrid(grid_cfg, seed=13).run(SLOTS)
        for i in range(3):
            net = network_seed(13, i)
            solo = FieldExperiment(
                _field_config("aggregate"),
                factory(mdp, net),
                seed=net,
            ).run_experiment(SLOTS)
            assert got.goodput_pkts_per_slot[i] == solo.goodput_pkts_per_slot
            assert got.metrics[i] == solo.metrics


class TestAdversaryGrids:
    """The harder adversaries ride the same shard-invariance contract."""

    def _adversary_grid(self, adversary: str, scheme: str) -> GridConfig:
        from repro.jamming.jammer import (
            FollowerJammerConfig,
            ReactiveJammerConfig,
        )

        defaults = paper_defaults()
        jammer = field_jammer_config(
            defaults,
            adversary=adversary,
            reactive=ReactiveJammerConfig(
                duty_cycle=0.7, response_latency_s=0.2, decoy_discrimination=0.25
            ),
            follower=FollowerJammerConfig(lag_slots=1),
        )
        return GridConfig(
            field=FieldConfig(mdp=defaults.mdp, jammer=jammer),
            num_networks=6,
            width_m=30.0,
            height_m=30.0,
            scheme=scheme,
        )

    @pytest.mark.parametrize("adversary", ["reactive", "follower"])
    @pytest.mark.parametrize("scheme", ["optimal", "deception"])
    def test_shard_count_invariance(self, adversary, scheme):
        cfg = self._adversary_grid(adversary, scheme)
        base = FieldGrid(cfg, seed=5, shards=1).run(SLOTS)
        split = FieldGrid(cfg, seed=5, shards=3).run(SLOTS)
        assert np.array_equal(
            base.goodput_pkts_per_slot, split.goodput_pkts_per_slot
        )
        assert np.array_equal(base.utilization, split.utilization)
        assert base.metrics == split.metrics

    def test_deception_is_a_known_scheme(self):
        cfg = self._adversary_grid("reactive", "deception")
        result = FieldGrid(cfg, seed=1).run(SLOTS)
        assert result.mean_goodput > 0.0

    def test_unknown_scheme_still_rejected(self):
        with pytest.raises(ConfigurationError):
            GridConfig(field=_field_config(), scheme="wishful")


class TestTelemetryInvariance:
    """Telemetry is an observer: zero effect on results, and its merged
    series/labelled counters are bit-identical for any decomposition."""

    def _telem_grid(self) -> GridConfig:
        from repro.jamming.jammer import ReactiveJammerConfig

        defaults = paper_defaults()
        jammer = field_jammer_config(
            defaults,
            adversary="reactive",
            reactive=ReactiveJammerConfig(
                duty_cycle=0.7, response_latency_s=0.2, decoy_discrimination=0.25
            ),
        )
        return GridConfig(
            field=FieldConfig(mdp=defaults.mdp, jammer=jammer),
            num_networks=9,
            width_m=30.0,
            height_m=30.0,
            scheme="deception",
        )

    def _run_with_telemetry(
        self, monkeypatch, tmp_path, name, *, shards, workers, env=()
    ):
        from repro.obs import telemetry
        from repro.obs.metrics import METRICS

        path = tmp_path / f"TELEM_{name}.jsonl"
        monkeypatch.setenv(telemetry.TELEM_ENV, str(path))
        monkeypatch.setenv(telemetry.TELEM_INTERVAL_ENV, "10")
        for key, value in env:
            monkeypatch.setenv(key, value)
        telemetry.reset()
        METRICS.reset()
        try:
            result = FieldGrid(
                self._telem_grid(), seed=5, shards=shards, workers=workers
            ).run(SLOTS)
            telemetry.finish_run()
        finally:
            for key, _ in env:
                monkeypatch.delenv(key, raising=False)
            monkeypatch.delenv(telemetry.TELEM_ENV, raising=False)
            monkeypatch.delenv(telemetry.TELEM_INTERVAL_ENV, raising=False)
            telemetry.reset()
            METRICS.reset()
        doc = telemetry.load_telemetry(path)
        merged = telemetry.merge_frames(doc)
        labelled = {
            k: v
            for k, v in (doc.metrics or {}).get("counters", {}).items()
            if k.startswith(("jam.", "defense."))
        }
        return result, merged, labelled

    def test_merged_series_invariant_across_decompositions(
        self, monkeypatch, tmp_path
    ):
        base_result, base_series, base_counters = self._run_with_telemetry(
            monkeypatch, tmp_path, "s1w1", shards=1, workers=1
        )
        assert base_series["field"], "no field frames recorded"
        assert len(base_series["field"]) == SLOTS // 10
        assert base_counters, "no labelled jam/defense counters flushed"
        for name, shards, workers in (("s3w1", 3, 1), ("s3w2", 3, 2)):
            result, series, counters = self._run_with_telemetry(
                monkeypatch, tmp_path, name, shards=shards, workers=workers
            )
            assert np.array_equal(
                base_result.goodput_pkts_per_slot, result.goodput_pkts_per_slot
            )
            assert series == base_series
            assert counters == base_counters

    def test_engine_bit_identical_with_telemetry_on_or_off(
        self, monkeypatch, tmp_path
    ):
        off = FieldGrid(self._telem_grid(), seed=5, shards=3).run(SLOTS)
        on, _, _ = self._run_with_telemetry(
            monkeypatch, tmp_path, "onoff", shards=3, workers=1
        )
        assert np.array_equal(off.goodput_pkts_per_slot, on.goodput_pkts_per_slot)
        assert np.array_equal(off.utilization, on.utilization)
        assert off.metrics == on.metrics

    def test_fault_retries_do_not_double_count(self, monkeypatch, tmp_path):
        _, base_series, base_counters = self._run_with_telemetry(
            monkeypatch, tmp_path, "clean", shards=3, workers=2
        )
        _, series, counters = self._run_with_telemetry(
            monkeypatch,
            tmp_path,
            "faulty",
            shards=3,
            workers=2,
            env=(
                ("REPRO_ON_ERROR", "retry"),
                ("REPRO_MAX_RETRIES", "4"),
                ("REPRO_FAULT_RATE", "0.4"),
                ("REPRO_FAULT_SEED", "11"),
            ),
        )
        assert series == base_series
        assert counters == base_counters

    def test_frames_carry_duty_tokens_and_labels(self, monkeypatch, tmp_path):
        _, series, counters = self._run_with_telemetry(
            monkeypatch, tmp_path, "tok", shards=3, workers=1
        )
        window = series["field"][0]
        assert window["labels"] == {"adversary": "reactive", "scheme": "deception"}
        assert window["networks"] == list(range(9))
        assert len(window.get("tokens", ())) == 9
        # the deception adapter's decoys were flushed per network
        assert any(k.startswith("defense.decoys{") for k in counters)


class TestChannelTierGrids:
    """The fidelity tier composes with sharding without breaking invariance."""

    def _cfg(self, sampling, channel, **kwargs):
        defaults = paper_defaults()
        fld = FieldConfig(
            mdp=defaults.mdp,
            jammer=field_jammer_config(defaults),
            sampling=sampling,
            channel=channel,
        )
        return GridConfig(field=fld, **kwargs)

    @pytest.mark.parametrize("sampling", ["packet", "aggregate"])
    def test_shard_invariance_under_hybrid(self, sampling):
        cfg = self._cfg(sampling, "hybrid", num_networks=6)
        slots = 20 if sampling == "packet" else SLOTS
        base = FieldGrid(cfg, seed=5, shards=1).run(slots)
        got = FieldGrid(cfg, seed=5, shards=3).run(slots)
        assert np.array_equal(
            got.goodput_pkts_per_slot, base.goodput_pkts_per_slot
        )
        assert got.metrics == base.metrics

    @pytest.mark.parametrize("sampling", ["packet", "aggregate"])
    def test_hybrid_network_matches_solo(self, sampling):
        # The vectorised aggregate adjudication must draw exactly the
        # uniforms a solo replay of each network draws.
        seed, index = 3, 2
        cfg = self._cfg(sampling, "hybrid", num_networks=4)
        got = FieldGrid(cfg, seed=seed).run(SLOTS).network_result(index)
        net = network_seed(seed, index)
        adapter = SchemeAdapterFactory("optimal")(cfg.field.mdp, net)
        want = FieldExperiment(cfg.field, adapter, seed=net).run_experiment(
            SLOTS
        )
        assert got.goodput_pkts_per_slot == want.goodput_pkts_per_slot
        assert got.utilization == want.utilization
        assert got.metrics == want.metrics

    def test_analytic_grid_bit_identical_to_default(self):
        base = FieldGrid(
            _grid_config("aggregate", num_networks=5), seed=7
        ).run(SLOTS)
        tiered = FieldGrid(
            self._cfg("aggregate", "analytic", num_networks=5), seed=7
        ).run(SLOTS)
        assert np.array_equal(
            tiered.goodput_pkts_per_slot, base.goodput_pkts_per_slot
        )
        assert tiered.metrics == base.metrics
