"""Worker-count invariance of the ported Monte-Carlo consumers.

Every consumer on the execution layer must produce identical aggregate
results for ``REPRO_WORKERS=1`` and ``REPRO_WORKERS=4`` (small budgets
here; the full-budget versions run in ``benchmarks/``).
"""

import pytest

from repro.analysis import figures as F
from repro.sim.testbed import Testbed, TestbedConfig


def _with_workers(monkeypatch, workers, fn):
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    return fn()


class TestDistanceSweep:
    def test_worker_count_invariance(self, monkeypatch):
        def sweep():
            tb = Testbed(TestbedConfig(num_peripherals=2), seed=11)
            return tb.distance_sweep((2, 6, 12), frames_per_node=8)

        serial = _with_workers(monkeypatch, 1, sweep)
        pooled = _with_workers(monkeypatch, 4, sweep)
        assert serial == pooled

    def test_explicit_workers_argument(self):
        tb = Testbed(TestbedConfig(num_peripherals=2), seed=11)
        a = tb.distance_sweep((2, 12), frames_per_node=8, workers=1)
        b = tb.distance_sweep((2, 12), frames_per_node=8, workers=2)
        assert a == b

    def test_rows_cover_distances(self):
        tb = Testbed(seed=0)
        rows = tb.distance_sweep((1, 5), frames_per_node=4, workers=1)
        assert [r[0] for r in rows] == [1.0, 5.0]
        for _, per, tput in rows:
            assert 0.0 <= per <= 100.0
            assert tput >= 0.0

    def test_deterministic_given_seed(self):
        a = Testbed(seed=3).distance_sweep((4, 9), frames_per_node=6, workers=1)
        b = Testbed(seed=3).distance_sweep((4, 9), frames_per_node=6, workers=1)
        assert a == b


class TestParameterSweeps:
    AXES = dict(
        lj_values=(10.0, 60.0),
        cycle_values=(3, 6),
        lh_values=(0.0, 50.0),
        lp_lower_values=(6, 9),
    )

    def test_worker_count_invariance(self, monkeypatch):
        def sweeps():
            F.parameter_sweeps.cache_clear()
            return F.parameter_sweeps("max", 300, 0, *[
                self.AXES[k]
                for k in ("lj_values", "cycle_values", "lh_values", "lp_lower_values")
            ])

        serial = _with_workers(monkeypatch, 1, sweeps)
        pooled = _with_workers(monkeypatch, 4, sweeps)
        assert set(serial) == set(pooled)
        for name in serial:
            assert serial[name] == pooled[name], name
        F.parameter_sweeps.cache_clear()

    def test_stable_across_processes_seeding(self):
        """Sweep streams no longer depend on PYTHONHASHSEED (builtin hash)."""
        from repro.core.mdp import MDPConfig
        from repro.rng import stable_hash

        cfg = MDPConfig(loss_jam=50.0, jammer_mode="max")
        assert stable_hash(cfg) == stable_hash(
            MDPConfig(loss_jam=50.0, jammer_mode="max")
        )
        assert stable_hash(cfg) != stable_hash(
            MDPConfig(loss_jam=60.0, jammer_mode="max")
        )


class TestFig11Parallel:
    def test_fig11a_worker_count_invariance(self, monkeypatch):
        serial = _with_workers(
            monkeypatch, 1, lambda: F.fig11a_scheme_comparison(slots=40, seed=0)
        )
        pooled = _with_workers(
            monkeypatch, 4, lambda: F.fig11a_scheme_comparison(slots=40, seed=0)
        )
        assert serial == pooled
        assert set(serial) == {"PSV FH", "Rand FH", "RL FH (optimal)", "w/o Jx"}

    def test_fig11b_worker_count_invariance(self, monkeypatch):
        call = lambda: F.fig11b_jammer_timeslot(
            durations=(0.5, 3.0), slots=30, seed=0
        )
        assert _with_workers(monkeypatch, 1, call) == _with_workers(
            monkeypatch, 4, call
        )
