"""Worker-count invariance of the ported Monte-Carlo consumers.

Every consumer on the execution layer must produce identical aggregate
results for ``REPRO_WORKERS=1`` and ``REPRO_WORKERS=4`` (small budgets
here; the full-budget versions run in ``benchmarks/``).
"""

from repro.analysis import figures as F
from repro.sim.testbed import Testbed, TestbedConfig


def _with_workers(monkeypatch, workers, fn):
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    return fn()


class TestDistanceSweep:
    def test_worker_count_invariance(self, monkeypatch):
        def sweep():
            tb = Testbed(TestbedConfig(num_peripherals=2), seed=11)
            return tb.distance_sweep((2, 6, 12), frames_per_node=8)

        serial = _with_workers(monkeypatch, 1, sweep)
        pooled = _with_workers(monkeypatch, 4, sweep)
        assert serial == pooled

    def test_explicit_workers_argument(self):
        tb = Testbed(TestbedConfig(num_peripherals=2), seed=11)
        a = tb.distance_sweep((2, 12), frames_per_node=8, workers=1)
        b = tb.distance_sweep((2, 12), frames_per_node=8, workers=2)
        assert a == b

    def test_rows_cover_distances(self):
        tb = Testbed(seed=0)
        rows = tb.distance_sweep((1, 5), frames_per_node=4, workers=1)
        assert [r[0] for r in rows] == [1.0, 5.0]
        for _, per, tput in rows:
            assert 0.0 <= per <= 100.0
            assert tput >= 0.0

    def test_deterministic_given_seed(self):
        a = Testbed(seed=3).distance_sweep((4, 9), frames_per_node=6, workers=1)
        b = Testbed(seed=3).distance_sweep((4, 9), frames_per_node=6, workers=1)
        assert a == b


class TestParameterSweeps:
    AXES = dict(
        lj_values=(10.0, 60.0),
        cycle_values=(3, 6),
        lh_values=(0.0, 50.0),
        lp_lower_values=(6, 9),
    )

    def test_worker_count_invariance(self, monkeypatch):
        def sweeps():
            F.parameter_sweeps.cache_clear()
            return F.parameter_sweeps("max", 300, 0, *[
                self.AXES[k]
                for k in ("lj_values", "cycle_values", "lh_values", "lp_lower_values")
            ])

        serial = _with_workers(monkeypatch, 1, sweeps)
        pooled = _with_workers(monkeypatch, 4, sweeps)
        assert set(serial) == set(pooled)
        for name in serial:
            assert serial[name] == pooled[name], name
        F.parameter_sweeps.cache_clear()

    def test_stable_across_processes_seeding(self):
        """Sweep streams no longer depend on PYTHONHASHSEED (builtin hash)."""
        from repro.core.mdp import MDPConfig
        from repro.rng import stable_hash

        cfg = MDPConfig(loss_jam=50.0, jammer_mode="max")
        assert stable_hash(cfg) == stable_hash(
            MDPConfig(loss_jam=50.0, jammer_mode="max")
        )
        assert stable_hash(cfg) != stable_hash(
            MDPConfig(loss_jam=60.0, jammer_mode="max")
        )


class TestFig11Parallel:
    def test_fig11a_worker_count_invariance(self, monkeypatch):
        serial = _with_workers(
            monkeypatch, 1, lambda: F.fig11a_scheme_comparison(slots=40, seed=0)
        )
        pooled = _with_workers(
            monkeypatch, 4, lambda: F.fig11a_scheme_comparison(slots=40, seed=0)
        )
        assert serial == pooled
        assert set(serial) == {"PSV FH", "Rand FH", "RL FH (optimal)", "w/o Jx"}

    def test_fig11b_worker_count_invariance(self, monkeypatch):
        def call():
            return F.fig11b_jammer_timeslot(durations=(0.5, 3.0), slots=30, seed=0)

        assert _with_workers(monkeypatch, 1, call) == _with_workers(
            monkeypatch, 4, call
        )


class TestFaultInjectedConsumers:
    """Injected worker crashes must not change (retry) or sink (skip) a sweep."""

    DISTANCES = (2, 6, 12)

    def _sweep(self, **kwargs):
        tb = Testbed(TestbedConfig(num_peripherals=2), seed=11)
        return tb.distance_sweep(self.DISTANCES, frames_per_node=8, **kwargs)

    def _clear_fault_env(self, monkeypatch):
        for name in (
            "REPRO_FAULT_RATE",
            "REPRO_FAULT_SEED",
            "REPRO_ON_ERROR",
            "REPRO_MAX_RETRIES",
            "REPRO_WORKERS",
        ):
            monkeypatch.delenv(name, raising=False)

    def test_retry_matches_fault_free_run(self, monkeypatch):
        self._clear_fault_env(monkeypatch)
        clean = self._sweep(workers=1)
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.4")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        for workers in (1, 2):
            faulty = self._sweep(
                workers=workers, on_error="retry", max_retries=6
            )
            assert faulty == clean

    def test_skip_salvages_surviving_rows(self, monkeypatch):
        self._clear_fault_env(monkeypatch)
        clean = self._sweep(workers=1)
        # fault_seed=2 at rate 0.5 fails exactly index 0 on its only attempt.
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.5")
        monkeypatch.setenv("REPRO_FAULT_SEED", "2")
        rows = self._sweep(workers=1, on_error="skip", max_retries=0)
        assert rows == clean[1:]

    def test_all_faults_skip_yields_empty_sweep(self, monkeypatch):
        self._clear_fault_env(monkeypatch)
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        rows = self._sweep(workers=1, on_error="skip", max_retries=1)
        assert rows == []
