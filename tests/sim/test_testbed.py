"""Tests for the packet-level micro-testbed (Fig. 2(b) as an experiment)."""

import pytest

from repro.channel.link import JammerSignalType
from repro.constants import WIFI_TX_POWER_DBM, ZIGBEE_TX_POWER_DBM
from repro.errors import ConfigurationError
from repro.sim.testbed import Testbed, TestbedConfig


class TestConfig:
    def test_defaults_valid(self):
        cfg = TestbedConfig()
        assert cfg.frame_airtime_s == pytest.approx((6 + 60 + 2) * 8 / 250e3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TestbedConfig(num_peripherals=0)
        with pytest.raises(ConfigurationError):
            TestbedConfig(link_distance_m=0.0)
        with pytest.raises(ConfigurationError):
            TestbedConfig(zigbee_channel=5)
        with pytest.raises(ConfigurationError):
            TestbedConfig(frame_payload_octets=200)
        with pytest.raises(ConfigurationError):
            TestbedConfig(jammer_reaction_probability=1.5)


class TestGeometry:
    def test_nodes_placed_at_link_distance(self):
        tb = Testbed(TestbedConfig(num_peripherals=4, link_distance_m=5.0), seed=0)
        for node_id in tb.node_ids:
            assert tb.medium.distance_between(node_id, "hub") == pytest.approx(5.0)

    def test_jammer_moves(self):
        tb = Testbed(seed=0)
        tb.set_jammer_distance(7.5)
        assert tb.medium.distance_between("jammer", "hub") == 7.5

    def test_bad_jammer_distance(self):
        with pytest.raises(ConfigurationError):
            Testbed(seed=0).set_jammer_distance(0.0)


class TestWindows:
    def test_ledger_counts(self):
        tb = Testbed(TestbedConfig(num_peripherals=2), seed=1)
        stats = tb.run_window(frames_per_node=10)
        assert stats.attempts == 20
        assert 0 <= stats.delivered <= 20
        assert stats.air_time_s > 0

    def test_no_jammer_reaction_means_clean_link(self):
        tb = Testbed(
            TestbedConfig(jammer_reaction_probability=0.0), seed=2
        )
        tb.set_jammer_distance(1.0)
        stats = tb.run_window(frames_per_node=20)
        assert stats.packet_error_rate < 0.05
        assert stats.throughput_kbps > 50

    def test_point_blank_jammer_destroys_window(self):
        tb = Testbed(
            TestbedConfig(jammer_reaction_probability=1.0), seed=3
        )
        tb.set_jammer_distance(0.5)
        stats = tb.run_window(frames_per_node=20)
        assert stats.packet_error_rate > 0.9
        assert stats.throughput_kbps < 10

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            Testbed(seed=0).run_window(0)


class TestFig2bShape:
    """The paper's jamming-effect experiment, frame by frame."""

    def sweep(self, signal, tx_dbm, seed):
        tb = Testbed(
            TestbedConfig(jammer_signal=signal, jammer_tx_dbm=tx_dbm), seed=seed
        )
        return tb.distance_sweep((1, 4, 8, 12, 15), frames_per_node=30)

    def test_per_falls_throughput_rises(self):
        rows = self.sweep(JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM, seed=4)
        pers = [r[1] for r in rows]
        tputs = [r[2] for r in rows]
        # Broad trend (MAC retries add noise): endpoints clearly ordered.
        assert pers[0] > pers[-1] + 20
        assert tputs[-1] > tputs[0] * 2

    def test_ranking_emubee_over_zigbee_over_wifi(self):
        emu = dict((r[0], r[1]) for r in self.sweep(
            JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM, seed=5))
        zig = dict((r[0], r[1]) for r in self.sweep(
            JammerSignalType.ZIGBEE, ZIGBEE_TX_POWER_DBM, seed=5))
        wifi = dict((r[0], r[1]) for r in self.sweep(
            JammerSignalType.WIFI, WIFI_TX_POWER_DBM, seed=5))
        # Mid-to-long range: the cross-technology jammer dominates.
        for d in (8.0, 12.0):
            assert emu[d] >= zig[d] - 5
            assert emu[d] >= wifi[d] - 5
        assert emu[8.0] > wifi[8.0] + 20

    def test_matches_analytic_figure_ordering(self):
        # The packet-level experiment and the analytic Fig. 2(b) generator
        # agree on who is dangerous at 10 m.
        from repro.analysis.figures import fig2b_jamming_effect

        analytic = {r.distance_m: r.per for r in fig2b_jamming_effect((10,))}[10.0]
        emu = self.sweep(JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM, seed=6)
        emu_10ish = [r[1] for r in emu if r[0] in (8.0, 12.0)]
        assert analytic["EmuBee"] > analytic["WiFi"]
        assert max(emu_10ish) > 10.0  # EmuBee still biting near 10 m


class TestShadowingPaths:
    def test_precompute_skipped_with_shadowing(self):
        # Shadowed paths resample per frame, so the PER grid would never
        # be re-hit; the testbed must not burn work filling it.
        tb = Testbed(TestbedConfig(shadowing_sigma_db=3.0), seed=0)
        assert len(tb.medium.link_table) == 0

    def test_precompute_fills_and_window_runs_all_hits(self):
        tb = Testbed(
            TestbedConfig(num_peripherals=2, shadowing_sigma_db=0.0), seed=0
        )
        table = tb.medium.link_table
        assert len(table) > 0
        misses = table.misses
        tb.run_window(3)
        # Deterministic geometry: every frame outcome is a cache hit.
        assert table.misses == misses

    def test_shadowed_window_memoises_and_replays(self):
        cfg = TestbedConfig(num_peripherals=2, shadowing_sigma_db=3.0)
        a = Testbed(cfg, seed=7)
        sa = a.run_window(3)
        assert a.medium.link_table.misses > 0
        b = Testbed(cfg, seed=7)
        sb = b.run_window(3)
        # Same seed -> same shadowing draws -> identical ledger, even
        # though each frame's key is a fresh shadowing realisation.
        assert (sa.attempts, sa.delivered, sa.cca_blocked) == (
            sb.attempts,
            sb.delivered,
            sb.cca_blocked,
        )
