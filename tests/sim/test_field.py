"""Tests for the field-experiment simulator and scenario factories."""

import dataclasses

import pytest

from repro.core.dqn import DQNAgent, DQNConfig
from repro.core.mdp import MDPConfig
from repro.errors import ChannelError, ConfigurationError, SimulationError
from repro.jamming.jammer import FieldJammerConfig
from repro.sim.engine import SlottedSimulation
from repro.sim.field import (
    DQNPolicyAdapter,
    FieldConfig,
    FieldExperiment,
    StatePolicyAdapter,
)
from repro.sim.scenario import (
    SCHEMES,
    field_jammer_config,
    paper_defaults,
    scheme_policy,
)


class TestEngine:
    def test_abstract_loop(self):
        class Counter(SlottedSimulation[int]):
            def run_slot(self, slot_index, start_time):
                assert start_time == pytest.approx(slot_index * self.slot_duration_s)
                return slot_index

        sim = Counter(2.0, seed=0)
        out = sim.run(5)
        assert out == [0, 1, 2, 3, 4]
        assert sim.now == 10.0
        sim.reset_records()
        assert sim.records == []

    def test_validation(self):
        class Noop(SlottedSimulation[int]):
            def run_slot(self, slot_index, start_time):
                return 0

        with pytest.raises(SimulationError):
            Noop(0.0)
        with pytest.raises(SimulationError):
            Noop(1.0).run(0)


class TestScenario:
    def test_paper_defaults(self):
        d = paper_defaults()
        assert d.mdp.loss_jam == 100.0
        assert d.mdp.loss_hop == 50.0
        assert d.mdp.sweep_cycle == 4
        assert d.mdp.tx_power_levels == tuple(range(6, 16))
        assert d.tx_slot_duration_s == 3.0

    def test_scheme_factories(self):
        d = paper_defaults()
        for name in SCHEMES:
            policy = scheme_policy(name, d.mdp, seed=0)
            action = policy.action(1)
            assert hasattr(action, "hop")

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            scheme_policy("dqn-magic", paper_defaults().mdp)

    def test_field_jammer_matches_geometry(self):
        d = paper_defaults()
        cfg = field_jammer_config(d, slot_duration_s=1.5)
        assert cfg.slot_duration_s == 1.5
        assert cfg.num_channels == d.mdp.num_channels
        assert cfg.mode == d.mdp.jammer_mode


class TestFieldConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FieldConfig(tx_slot_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            FieldConfig(num_peripherals=0)
        with pytest.raises(ConfigurationError):
            FieldConfig(jam_state_threshold=0.0)
        with pytest.raises(ConfigurationError):
            FieldConfig(
                mdp=MDPConfig(num_channels=8),
                jammer=FieldJammerConfig(num_channels=16),
            )


class TestAdapters:
    def test_state_adapter_hops_within_hop_set(self):
        d = paper_defaults()
        policy = scheme_policy("rand", d.mdp, seed=0)
        adapter = StatePolicyAdapter(
            policy, d.mdp, hop_channels=(1, 5, 9), seed=1
        )
        seen = set()
        for _ in range(100):
            channel, _ = adapter.decide(1)
            seen.add(channel)
        assert seen <= {1, 5, 9}

    def test_hop_set_validation(self):
        d = paper_defaults()
        policy = scheme_policy("rand", d.mdp, seed=0)
        with pytest.raises(ConfigurationError):
            StatePolicyAdapter(policy, d.mdp, hop_channels=(3,))
        with pytest.raises(ConfigurationError):
            StatePolicyAdapter(policy, d.mdp, hop_channels=(3, 99))

    def test_dqn_adapter_geometry_checks(self):
        d = paper_defaults()
        wrong_obs = DQNAgent(
            DQNConfig(observation_size=9, num_actions=160), seed=0
        )
        with pytest.raises(ConfigurationError):
            DQNPolicyAdapter(wrong_obs, d.mdp, history_length=5)
        wrong_actions = DQNAgent(
            DQNConfig(observation_size=15, num_actions=80), seed=0
        )
        with pytest.raises(ConfigurationError):
            DQNPolicyAdapter(wrong_actions, d.mdp, history_length=5)

    def test_dqn_adapter_decides(self):
        d = paper_defaults()
        agent = DQNAgent(DQNConfig(observation_size=15, num_actions=160), seed=1)
        adapter = DQNPolicyAdapter(agent, d.mdp, seed=2)
        channel, power = adapter.decide(1)
        assert 0 <= channel < 16 and 0 <= power < 10
        adapter.observe(1, channel, power)  # history update must not raise


class TestFieldExperiment:
    def run_scheme(self, name, slots=150, jammer=True, seed=5):
        d = paper_defaults()
        policy = scheme_policy(name, d.mdp, seed=seed)
        cfg = FieldConfig(
            mdp=d.mdp, jammer=field_jammer_config(d) if jammer else None
        )
        exp = FieldExperiment(
            cfg, StatePolicyAdapter(policy, d.mdp, seed=seed + 1), seed=seed + 2
        )
        return exp.run_experiment(slots)

    def test_result_fields(self):
        res = self.run_scheme("optimal")
        assert res.slots == 150
        assert len(res.records) == 150
        assert res.goodput_pkts_per_slot > 0
        assert 0.0 < res.utilization <= 1.0
        assert res.metrics.slots == 150

    def test_no_jammer_is_clean(self):
        res = self.run_scheme("optimal", jammer=False)
        assert res.metrics.success_rate == 1.0
        assert res.metrics.jam_attempt_rate == 0.0

    def test_fig11a_ordering(self):
        # The paper's headline: RL FH > Rand FH > PSV FH under jamming, all
        # below the no-jammer ceiling.
        psv = self.run_scheme("psv").goodput_pkts_per_slot
        rand = self.run_scheme("rand").goodput_pkts_per_slot
        optimal = self.run_scheme("optimal").goodput_pkts_per_slot
        clean = self.run_scheme("optimal", jammer=False).goodput_pkts_per_slot
        assert optimal > rand > psv
        assert clean > optimal

    def test_jammed_slots_lose_packets(self):
        res = self.run_scheme("psv")
        jammed = [r for r in res.records if r.state == "J"]
        clean = [r for r in res.records if r.state not in ("J", "TJ")]
        assert jammed and clean
        mean_jammed = sum(r.packets_delivered for r in jammed) / len(jammed)
        mean_clean = sum(r.packets_delivered for r in clean) / len(clean)
        assert mean_jammed < mean_clean * 0.5

    def test_run_experiment_validation(self):
        d = paper_defaults()
        policy = scheme_policy("psv", d.mdp)
        exp = FieldExperiment(
            FieldConfig(mdp=d.mdp),
            StatePolicyAdapter(policy, d.mdp, seed=0),
            seed=1,
        )
        with pytest.raises(SimulationError):
            exp.run_experiment(0)

    def test_reproducible_given_seed(self):
        a = self.run_scheme("optimal", slots=80, seed=9)
        b = self.run_scheme("optimal", slots=80, seed=9)
        assert a.goodput_pkts_per_slot == b.goodput_pkts_per_slot


class TestSamplingModes:
    def _experiment(self, sampling, seed=21):
        d = paper_defaults()
        cfg = FieldConfig(
            mdp=d.mdp, jammer=field_jammer_config(d), sampling=sampling
        )
        policy = scheme_policy("optimal", d.mdp)
        return FieldExperiment(
            cfg, StatePolicyAdapter(policy, d.mdp, seed=seed), seed=seed
        )

    def test_sampling_validation(self):
        d = paper_defaults()
        with pytest.raises(ConfigurationError):
            FieldConfig(mdp=d.mdp, sampling="bogus")

    def test_aggregate_tracks_packet_statistics(self):
        # The renewal-CLT data phase is an approximation of the per-packet
        # loop, not a reskin — but their goodput must agree closely.
        packet = self._experiment("packet").run_experiment(200)
        aggregate = self._experiment("aggregate").run_experiment(200)
        assert aggregate.goodput_pkts_per_slot == pytest.approx(
            packet.goodput_pkts_per_slot, rel=0.05
        )
        assert aggregate.utilization == pytest.approx(
            packet.utilization, rel=0.05
        )

    def test_aggregate_reproducible(self):
        a = self._experiment("aggregate").run_experiment(60)
        b = self._experiment("aggregate").run_experiment(60)
        assert a.goodput_pkts_per_slot == b.goodput_pkts_per_slot
        assert a.metrics == b.metrics


class TestRepeatedRuns:
    def _experiment(self, seed=17):
        d = paper_defaults()
        cfg = FieldConfig(mdp=d.mdp, jammer=field_jammer_config(d))
        policy = scheme_policy("optimal", d.mdp)
        return FieldExperiment(
            cfg, StatePolicyAdapter(policy, d.mdp, seed=seed), seed=seed
        )

    def test_windows_continue_where_left_off(self):
        # Two 40-slot calls replay exactly as one 80-slot call: the
        # experiment resumes mid-stream rather than restarting.
        split = self._experiment()
        first = split.run_experiment(40)
        second = split.run_experiment(40)
        whole = self._experiment().run_experiment(80)
        assert [r.slot for r in second.records] == list(range(40, 80))
        combined = list(first.records) + list(second.records)
        assert len(combined) == len(whole.records)
        for mine, ref in zip(combined, whole.records):
            assert mine == ref

    def test_per_call_summaries_and_accumulated_records(self):
        exp = self._experiment()
        first = exp.run_experiment(30)
        second = exp.run_experiment(30)
        # Each FieldResult covers only its own window...
        assert first.metrics.slots == 30
        assert second.metrics.slots == 30
        assert len(second.records) == 30
        # ...while the experiment-level record list accumulates.
        assert len(exp.records) == 60
        whole_goodput = sum(
            r.packets_delivered for r in exp.records
        ) / len(exp.records)
        assert whole_goodput == pytest.approx(
            (first.goodput_pkts_per_slot + second.goodput_pkts_per_slot) / 2
        )


class TestUniformStream:
    def test_block_size_invariance(self):
        from repro.rng import make_rng
        from repro.sim.engine import UniformStream

        small = UniformStream(make_rng(3), 5, block_slots=1)
        large = UniformStream(make_rng(3), 5, block_slots=64)
        for _ in range(10):
            assert list(small.next_slot()) == list(large.next_slot())

    def test_matches_sequential_draws(self):
        from repro.rng import make_rng
        from repro.sim.engine import UniformStream

        stream = UniformStream(make_rng(4), 3, block_slots=7)
        reference = make_rng(4)
        for _ in range(20):
            got = list(stream.next_slot())
            assert got == list(reference.random(3))

    def test_validation(self):
        from repro.rng import make_rng
        from repro.sim.engine import UniformStream

        with pytest.raises(ConfigurationError):
            UniformStream(make_rng(0), 0)
        with pytest.raises(ConfigurationError):
            UniformStream(make_rng(0), 3, block_slots=0)


class TestFieldBatchResolution:
    def test_default_and_override(self, monkeypatch):
        from repro.sim.engine import resolve_field_batch

        monkeypatch.delenv("REPRO_FIELD_BATCH", raising=False)
        assert resolve_field_batch() == 64
        monkeypatch.setenv("REPRO_FIELD_BATCH", "8")
        assert resolve_field_batch() == 8
        assert resolve_field_batch(2) == 2

    def test_rejects_garbage(self, monkeypatch):
        from repro.sim.engine import resolve_field_batch

        monkeypatch.setenv("REPRO_FIELD_BATCH", "zero")
        with pytest.raises(ConfigurationError):
            resolve_field_batch()
        with pytest.raises(ConfigurationError):
            resolve_field_batch(0)


class TestDeceptionAdapter:
    def _adapter(self, **kwargs):
        from repro.sim.field import DeceptionAdapter

        d = paper_defaults()
        policy = scheme_policy("optimal", d.mdp)
        base = StatePolicyAdapter(policy, d.mdp, seed=1)
        return DeceptionAdapter(
            base, d.mdp, jam_width=d.mdp.jam_width, seed=2, **kwargs
        )

    def test_decoy_lands_in_a_different_block(self):
        from repro.jamming.jammer import block_index, channel_blocks

        adapter = self._adapter()
        d = paper_defaults()
        blocks = channel_blocks(d.mdp.num_channels, d.mdp.jam_width)
        for _ in range(50):
            channel, _ = adapter.decide(1)
            assert adapter.active_decoy is not None
            assert block_index(blocks, adapter.active_decoy) != block_index(
                blocks, channel
            )
            adapter.observe(1, channel, 0)

    def test_zero_rate_emits_no_decoys(self):
        adapter = self._adapter(decoy_rate=0.0)
        for _ in range(20):
            adapter.decide(1)
            assert adapter.active_decoy is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._adapter(decoy_rate=1.5)
        with pytest.raises(ConfigurationError):
            self._adapter(decoy_airtime_s=-0.1)

    def test_experiment_runs_against_reactive_jammer(self):
        from repro.jamming.jammer import ReactiveJammerConfig
        from repro.sim.field import DeceptionAdapter

        d = paper_defaults()
        jammer = field_jammer_config(
            d,
            adversary="reactive",
            reactive=ReactiveJammerConfig(duty_cycle=0.7, decoy_discrimination=0.25),
        )
        cfg = FieldConfig(mdp=d.mdp, jammer=jammer)
        policy = scheme_policy("optimal", d.mdp)
        base = StatePolicyAdapter(policy, d.mdp, seed=3)
        adapter = DeceptionAdapter(base, d.mdp, jam_width=d.mdp.jam_width, seed=4)
        result = FieldExperiment(cfg, adapter, seed=5).run_experiment(30)
        # The decoy airtime comes out of the data phase, so utilisation
        # stays strictly below an undefended slot's.
        assert 0.0 < result.utilization < 1.0
        assert result.goodput_pkts_per_slot > 0.0


class TestChannelTiers:
    def run_channel(self, channel, slots=120, seed=5):
        d = paper_defaults()
        cfg = FieldConfig(
            mdp=d.mdp, jammer=field_jammer_config(d), channel=channel
        )
        policy = scheme_policy("optimal", d.mdp, seed=seed)
        exp = FieldExperiment(
            cfg, StatePolicyAdapter(policy, d.mdp, seed=seed + 1), seed=seed + 2
        )
        return exp.run_experiment(slots)

    def test_analytic_default_bit_identical(self):
        # The tiered channel must not move a single draw on the default
        # path: tier resolution happens outside the experiment's streams.
        base = self.run_channel(None)
        explicit = self.run_channel("analytic")
        assert base.goodput_pkts_per_slot == explicit.goodput_pkts_per_slot
        assert base.metrics == explicit.metrics
        for mine, ref in zip(base.records, explicit.records):
            assert dataclasses.astuple(mine) == dataclasses.astuple(ref)

    def test_hybrid_reproducible_and_plausible(self):
        a = self.run_channel("hybrid")
        b = self.run_channel("hybrid")
        assert a.goodput_pkts_per_slot == b.goodput_pkts_per_slot
        assert a.metrics == b.metrics
        assert a.goodput_pkts_per_slot > 0

    def test_config_validates_tier(self):
        d = paper_defaults()
        with pytest.raises(ChannelError):
            FieldConfig(mdp=d.mdp, channel="exact")
