"""Tests for statistics helpers and table rendering."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bernoulli_interval,
    mean_confidence_interval,
    summarize,
)
from repro.analysis.tables import format_float, render_table
from repro.errors import SimulationError


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize([])

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"n", "mean", "std", "min", "max"}


class TestConfidenceIntervals:
    def test_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, 200)
        mean, lo, hi = mean_confidence_interval(samples)
        assert lo < mean < hi
        assert lo < 10.0 < hi

    def test_tighter_with_more_samples(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, 10)
        large = rng.normal(0, 1, 1000)
        _, lo_s, hi_s = mean_confidence_interval(small)
        _, lo_l, hi_l = mean_confidence_interval(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_degenerate_sample(self):
        mean, lo, hi = mean_confidence_interval([3.0, 3.0, 3.0])
        assert mean == lo == hi == 3.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            mean_confidence_interval([1.0])
        with pytest.raises(SimulationError):
            mean_confidence_interval([1.0, 2.0], confidence=1.5)

    def test_wilson_interval(self):
        p, lo, hi = bernoulli_interval(50, 100)
        assert lo < p == 0.5 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_extremes(self):
        p, lo, hi = bernoulli_interval(0, 50)
        assert p == 0.0 and lo == pytest.approx(0.0, abs=1e-12) and hi > 0.0
        with pytest.raises(SimulationError):
            bernoulli_interval(5, 0)
        with pytest.raises(SimulationError):
            bernoulli_interval(5, 4)


class TestTables:
    def test_render_basic(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.500" in text

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(SimulationError):
            render_table(["a", "b"], [[1]])

    def test_no_headers(self):
        with pytest.raises(SimulationError):
            render_table([], [])

    def test_empty_rows_ok(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text

    def test_format_float(self):
        assert format_float(1.23456, 2) == "1.23"
        assert format_float(7) == "7"
        assert format_float("x") == "x"
        assert format_float(float("nan")) == "nan"
        assert format_float(True) == "True"
