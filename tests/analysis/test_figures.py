"""Shape tests for the figure-data generators (small budgets).

The full-budget versions run in ``benchmarks/``; here each generator is
exercised at reduced slot counts to assert the qualitative shapes the paper
reports.
"""

import numpy as np
import pytest

from repro.analysis import figures as F

SLOTS = 4000  # sweep evaluation budget for tests (paper uses 20 000)


@pytest.fixture(scope="module")
def sweeps_max():
    return F.parameter_sweeps("max", SLOTS, 0)


@pytest.fixture(scope="module")
def sweeps_random():
    return F.parameter_sweeps("random", SLOTS, 0)


class TestFig2b:
    def test_rows_cover_distances(self):
        rows = F.fig2b_jamming_effect()
        assert [r.distance_m for r in rows] == [float(d) for d in range(1, 16)]

    def test_per_decreases_with_distance(self):
        rows = F.fig2b_jamming_effect()
        for name in ("EmuBee", "WiFi", "ZigBee"):
            pers = [r.per[name] for r in rows]
            assert all(a >= b - 1e-6 for a, b in zip(pers, pers[1:])), name

    def test_throughput_complements_per(self):
        for row in F.fig2b_jamming_effect():
            for name in row.per:
                expected = F.FIG2B_OFFERED_KBPS * (1 - row.per[name] / 100)
                assert row.throughput_kbps[name] == pytest.approx(expected)

    def test_emubee_dominates_at_long_range(self):
        rows = F.fig2b_jamming_effect()
        long_range = [r for r in rows if r.distance_m >= 10]
        for r in long_range:
            assert r.per["EmuBee"] >= r.per["ZigBee"] >= r.per["WiFi"]
        # And strictly dominant somewhere in that regime.
        assert any(r.per["EmuBee"] > r.per["ZigBee"] + 10 for r in long_range)


class TestParameterSweeps:
    def test_keys(self, sweeps_max):
        assert set(sweeps_max) == {
            "loss_jam",
            "sweep_cycle",
            "loss_hop",
            "power_floor",
        }

    def test_cache_hit(self):
        a = F.parameter_sweeps("max", SLOTS, 0)
        b = F.parameter_sweeps("max", SLOTS, 0)
        assert a is b

    def test_unknown_mode(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            F.parameter_sweeps("stealth", 100, 0)


class TestFig6Shapes:
    """Fig. 6: S_T trends."""

    def test_low_lj_gives_zero_st(self, sweeps_max):
        points = dict((p.x, p.metrics.success_rate) for p in sweeps_max["loss_jam"])
        assert points[10.0] == pytest.approx(0.0, abs=0.01)

    def test_high_lj_plateaus_near_paper_value(self, sweeps_max):
        points = dict((p.x, p.metrics.success_rate) for p in sweeps_max["loss_jam"])
        # Paper: stabilises around 78 %; we accept the 65-85 % band.
        for lj in (60.0, 80.0, 100.0):
            assert 0.6 < points[lj] < 0.85

    def test_random_mode_rises_earlier(self, sweeps_max, sweeps_random):
        maxp = dict((p.x, p.metrics.success_rate) for p in sweeps_max["loss_jam"])
        rndp = dict((p.x, p.metrics.success_rate) for p in sweeps_random["loss_jam"])
        # Paper Fig. 6(a): between L_J = 15 and 50 the random mode's S_T
        # increases earlier than the max mode's.
        assert rndp[30.0] > maxp[30.0] or rndp[20.0] > maxp[20.0]

    def test_st_increases_with_sweep_cycle(self, sweeps_max):
        ys = [p.metrics.success_rate for p in sweeps_max["sweep_cycle"]]
        assert ys[-1] > ys[0]
        # Broadly increasing: Spearman correlation strongly positive.
        xs = np.arange(len(ys))
        assert np.corrcoef(xs, ys)[0, 1] > 0.8

    def test_st_decreases_with_lh(self, sweeps_random):
        ys = [p.metrics.success_rate for p in sweeps_random["loss_hop"]]
        assert ys[0] > ys[-1]

    def test_st_saturates_with_power_floor_random(self, sweeps_random):
        # Fig. 6(d): once the victim's floor reaches the jammer's ceiling
        # the success rate hits ~100 %.
        points = dict(
            (p.x, p.metrics.success_rate) for p in sweeps_random["power_floor"]
        )
        assert points[15.0] > 0.9
        assert points[15.0] > points[6.0]

    def test_fig6_selector(self):
        data = F.fig6_success_rate("max", slots=SLOTS, seed=0)
        assert set(data) == {"loss_jam", "sweep_cycle", "loss_hop", "power_floor"}
        assert all(len(v) > 0 for v in data.values())


class TestFig7Shapes:
    """Fig. 7: adoption rates."""

    def test_ah_zero_below_inflection(self, sweeps_max):
        points = dict(
            (p.x, p.metrics.fh_adoption_rate) for p in sweeps_max["loss_jam"]
        )
        assert points[10.0] == pytest.approx(0.0, abs=0.01)
        assert points[100.0] > 0.2

    def test_ap_higher_in_random_mode(self, sweeps_max, sweeps_random):
        # Paper: "the PC adoption rate is usually higher in the random mode
        # instead of the max mode".
        maxp = dict((p.x, p.metrics.pc_adoption_rate) for p in sweeps_max["loss_jam"])
        rndp = dict(
            (p.x, p.metrics.pc_adoption_rate) for p in sweeps_random["loss_jam"]
        )
        higher = sum(rndp[x] >= maxp[x] for x in rndp)
        assert higher >= 0.7 * len(rndp)

    def test_adoption_falls_with_sweep_cycle(self, sweeps_max):
        ys = [p.metrics.fh_adoption_rate for p in sweeps_max["sweep_cycle"]]
        assert ys[0] > ys[-1]

    def test_ah_falls_with_lh(self, sweeps_random):
        ys = [p.metrics.fh_adoption_rate for p in sweeps_random["loss_hop"]]
        assert ys[0] >= ys[-1]

    def test_ap_rises_with_power_floor(self, sweeps_random):
        ys = [p.metrics.pc_adoption_rate for p in sweeps_random["power_floor"]]
        assert ys[-1] >= ys[0]

    def test_fig7_selector(self):
        data = F.fig7_adoption_rates("max", slots=SLOTS, seed=0)
        assert set(data) == {"A_H", "A_P"}


class TestFig8Shapes:
    """Fig. 8: usefulness of FH and PC."""

    def test_sp_zero_in_max_mode(self, sweeps_max):
        # PC can never defeat a max-power jammer whose ceiling exceeds the
        # victim's: S_P stays at 0 (paper: PC "has no effect" in max mode).
        for p in sweeps_max["loss_jam"]:
            assert p.metrics.pc_success_rate == pytest.approx(0.0, abs=0.01)

    def test_sp_positive_in_random_mode(self, sweeps_random):
        points = [p.metrics.pc_success_rate for p in sweeps_random["loss_jam"]]
        assert max(points) > 0.1

    def test_sh_falls_with_sweep_cycle(self, sweeps_max):
        # Paper Fig. 8(c): S_H decreases as the sweep cycle grows (fewer
        # attacks make more hops preventative/unnecessary).
        ys = [p.metrics.fh_success_rate for p in sweeps_max["sweep_cycle"]]
        nonzero = [y for y in ys if y > 0]
        assert nonzero[0] > nonzero[-1]

    def test_fig8_selector(self):
        data = F.fig8_action_success_rates("max", slots=SLOTS, seed=0)
        assert set(data) == {"S_H", "S_P"}


class TestFig9:
    def test_fig9a_sample_counts_and_means(self):
        samples = F.fig9a_time_consumption(trials=100, seed=0)
        assert set(samples) == {"DQN", "ACK", "Proc", "Polling"}
        assert all(len(v) == 100 for v in samples.values())
        assert samples["DQN"].mean() == pytest.approx(9e-3, rel=0.15)
        assert samples["Polling"].mean() == pytest.approx(13.1e-3, rel=0.15)

    def test_fig9b_grows_with_nodes(self):
        rows = F.fig9b_negotiation_time(max_nodes=8, trials=25, seed=0)
        assert [r[0] for r in rows] == list(range(1, 9))
        assert rows[-1][1] > rows[0][1]
        # "In some cases, it can be several seconds."
        assert max(r[3] for r in rows) > 2.0


class TestFig10:
    def test_goodput_range_matches_paper(self):
        rows = F.fig10_goodput_vs_duration(slots=30, seed=0)
        durations = [r[0] for r in rows]
        goodputs = [r[1] for r in rows]
        utils = [r[2] for r in rows]
        assert durations == [1.0, 2.0, 3.0, 4.0, 5.0]
        # Paper: 148 -> 806 pkts/slot, utilisation 91.75 % -> 98.58 %.
        assert goodputs[0] == pytest.approx(148, rel=0.12)
        assert goodputs[-1] == pytest.approx(806, rel=0.08)
        assert goodputs == sorted(goodputs)
        assert utils == sorted(utils)
        assert 0.88 < utils[0] < 0.95
        assert 0.96 < utils[-1] < 1.0


class TestFig11:
    def test_fig11a_ordering_and_ratios(self):
        res = F.fig11a_scheme_comparison(slots=250, seed=0)
        assert set(res) == {"PSV FH", "Rand FH", "RL FH (optimal)", "w/o Jx"}
        psv = res["PSV FH"]["goodput"]
        rand = res["Rand FH"]["goodput"]
        rl = res["RL FH (optimal)"]["goodput"]
        clean = res["w/o Jx"]["goodput"]
        assert rl > rand > psv
        # Paper ratios: RL ~2x PSV and ~1.39x Rand; accept generous bands.
        assert 1.5 < rl / psv < 3.5
        assert 1.1 < rl / rand < 2.0
        # Paper: RL retains ~78 % of the no-jammer goodput (PSV 37.6 %,
        # Rand 54.1 %).
        assert 0.55 < rl / clean < 0.9
        assert 0.25 < psv / clean < 0.5

    def test_fig11b_fast_jammer_hurts(self):
        rows = F.fig11b_jammer_timeslot(durations=(0.5, 3.0), slots=200, seed=0)
        fast = rows[0][1]
        matched = rows[1][1]
        assert fast < matched * 0.8
