"""Tests for the process-pool Monte-Carlo runner."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import ParallelRunner, parallel_map, resolve_workers
from repro.exec.timing import TimingRegistry

from tests.exec import tasks


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_auto_means_cpu_count(self):
        assert resolve_workers("auto") >= 1

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) == resolve_workers("auto")

    def test_empty_env_means_unset(self, monkeypatch):
        # `REPRO_WORKERS= python ...` must behave like the var was absent,
        # not die with "invalid literal for int()".
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert resolve_workers() == 1

    def test_whitespace_env_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "   ")
        assert resolve_workers() == 1

    def test_invalid_string(self):
        with pytest.raises(ConfigurationError):
            resolve_workers("many")

    def test_negative(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)


class TestMap:
    def test_serial_results_ordered(self):
        runner = ParallelRunner(1)
        assert runner.map(tasks.square, range(10)) == [i * i for i in range(10)]

    def test_pool_results_ordered(self):
        runner = ParallelRunner(4)
        assert runner.map(tasks.square, range(25)) == [i * i for i in range(25)]

    def test_pool_matches_serial(self):
        specs = list(range(17))
        serial = ParallelRunner(1).map(tasks.square, specs)
        pooled = ParallelRunner(4).map(tasks.square, specs)
        assert serial == pooled

    def test_empty_specs(self):
        assert ParallelRunner(4).map(tasks.square, []) == []

    def test_single_spec_stays_serial(self):
        # One spec never warrants a pool; lambda would fail to pickle.
        assert ParallelRunner(4).map(lambda s: s + 1, [41]) == [42]

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="exploded"):
            ParallelRunner(2).map(tasks.explode, range(4))

    def test_exceptions_propagate_serial(self):
        with pytest.raises(ValueError, match="exploded"):
            ParallelRunner(1).map(tasks.explode, range(4))

    def test_chunk_size_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(2, chunk_size=0)

    def test_explicit_chunk_size(self):
        runner = ParallelRunner(2, chunk_size=3)
        assert runner.map(tasks.square, range(10)) == [i * i for i in range(10)]

    def test_parallel_map_convenience(self):
        assert parallel_map(tasks.square, range(5), workers=2) == [0, 1, 4, 9, 16]


class TestSeededMap:
    def test_worker_count_invariance(self):
        """Same seed -> identical aggregates for 1 vs 4 workers."""
        specs = list(range(12))
        serial = ParallelRunner(1).map_seeded(
            tasks.pair_with_draw, specs, seed=123, stream="inv"
        )
        pooled = ParallelRunner(4).map_seeded(
            tasks.pair_with_draw, specs, seed=123, stream="inv"
        )
        assert serial == pooled

    def test_streams_are_independent(self):
        rows = ParallelRunner(1).map_seeded(
            tasks.pair_with_draw, range(8), seed=0, stream="ind"
        )
        draws = [draw for _, draw in rows]
        assert len(set(draws)) == len(draws)

    def test_different_seeds_differ(self):
        a = ParallelRunner(1).map_seeded(tasks.pair_with_draw, range(4), seed=1)
        b = ParallelRunner(1).map_seeded(tasks.pair_with_draw, range(4), seed=2)
        assert a != b

    def test_stream_name_partitions(self):
        a = ParallelRunner(1).map_seeded(
            tasks.pair_with_draw, range(4), seed=1, stream="a"
        )
        b = ParallelRunner(1).map_seeded(
            tasks.pair_with_draw, range(4), seed=1, stream="b"
        )
        assert a != b


class TestRunnerTiming:
    def test_map_records_stage(self):
        registry = TimingRegistry()
        runner = ParallelRunner(1, name="unit-stage", registry=registry)
        runner.map(tasks.square, range(7))
        stats = registry.stages["unit-stage"]
        assert stats.calls == 1
        assert stats.items == 7
        assert stats.seconds >= 0.0
