"""Tests for the fault-tolerance layer (retry, timeout, skip, degradation)."""

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    MAX_RETRIES_ENV,
    ON_ERROR_ENV,
    TIMEOUT_ENV,
    FaultCounters,
    FaultPolicy,
    InjectedFault,
    ParallelRunner,
    TaskFailure,
    maybe_inject_fault,
    run_with_faults,
)
from repro.exec.timing import TimingRegistry

from tests.exec import tasks

#: Verified against a fault-free run: rate 0.4 under seed 7 recovers every
#: task within 6 retries for the 10-spec sweeps used below.
FAULTY_RETRY = dict(
    on_error="retry", max_retries=6, backoff_s=0.0, fault_rate=0.4, fault_seed=7
)


class TestFaultPolicy:
    def test_defaults_are_passthrough(self):
        policy = FaultPolicy()
        assert policy.on_error == "raise"
        assert policy.is_passthrough
        assert policy.max_attempts == 1

    def test_raise_ignores_retry_budget(self):
        assert FaultPolicy(on_error="raise", max_retries=5).max_attempts == 1

    def test_retry_attempts(self):
        assert FaultPolicy(on_error="retry", max_retries=2).max_attempts == 3
        assert FaultPolicy(on_error="skip", max_retries=0).max_attempts == 1

    def test_injection_defeats_passthrough(self):
        assert not FaultPolicy(fault_rate=0.1).is_passthrough
        assert not FaultPolicy(timeout_s=1.0).is_passthrough
        assert not FaultPolicy(on_error="skip").is_passthrough

    def test_backoff_schedule(self):
        policy = FaultPolicy(on_error="retry", backoff_s=0.1, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(on_error="explode"),
            dict(max_retries=-1),
            dict(timeout_s=0.0),
            dict(timeout_s=-2.0),
            dict(backoff_s=-0.1),
            dict(backoff_factor=0.5),
            dict(fault_rate=1.5),
            dict(fault_rate=-0.1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPolicy(**kwargs)


class TestFaultPolicyFromEnv:
    def test_unset_env_is_default(self, monkeypatch):
        for name in (
            ON_ERROR_ENV,
            MAX_RETRIES_ENV,
            TIMEOUT_ENV,
            FAULT_RATE_ENV,
            FAULT_SEED_ENV,
        ):
            monkeypatch.delenv(name, raising=False)
        assert FaultPolicy.from_env() == FaultPolicy()

    def test_env_values(self, monkeypatch):
        monkeypatch.setenv(ON_ERROR_ENV, "skip")
        monkeypatch.setenv(MAX_RETRIES_ENV, "4")
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        monkeypatch.setenv(FAULT_RATE_ENV, "0.25")
        monkeypatch.setenv(FAULT_SEED_ENV, "9")
        policy = FaultPolicy.from_env()
        assert policy.on_error == "skip"
        assert policy.max_retries == 4
        assert policy.timeout_s == 2.5
        assert policy.fault_rate == 0.25
        assert policy.fault_seed == 9

    def test_empty_env_is_unset(self, monkeypatch):
        monkeypatch.setenv(ON_ERROR_ENV, "")
        monkeypatch.setenv(MAX_RETRIES_ENV, "   ")
        monkeypatch.setenv(TIMEOUT_ENV, "\t")
        assert FaultPolicy.from_env() == FaultPolicy()

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ON_ERROR_ENV, "skip")
        monkeypatch.setenv(MAX_RETRIES_ENV, "9")
        policy = FaultPolicy.from_env(on_error="retry", max_retries=1)
        assert policy.on_error == "retry"
        assert policy.max_retries == 1

    @pytest.mark.parametrize(
        ("name", "value"),
        [
            (ON_ERROR_ENV, "explode"),
            (MAX_RETRIES_ENV, "many"),
            (TIMEOUT_ENV, "soon"),
            (FAULT_RATE_ENV, "often"),
            (FAULT_SEED_ENV, "x"),
        ],
    )
    def test_invalid_env_values(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ConfigurationError):
            FaultPolicy.from_env()


class TestInjector:
    def test_zero_rate_never_fires(self):
        for i in range(50):
            maybe_inject_fault(i, 1, 0.0, seed=0)

    def test_unit_rate_always_fires(self):
        with pytest.raises(InjectedFault):
            maybe_inject_fault(0, 1, 1.0, seed=0)

    def test_deterministic_per_index_and_attempt(self):
        def fires(index, attempt):
            try:
                maybe_inject_fault(index, attempt, 0.5, seed=3)
            except InjectedFault:
                return True
            return False

        pattern = [(i, a, fires(i, a)) for i in range(8) for a in (1, 2)]
        assert pattern == [(i, a, fires(i, a)) for i in range(8) for a in (1, 2)]
        # Both outcomes occur somewhere in the grid.
        outcomes = {fired for _, _, fired in pattern}
        assert outcomes == {True, False}


class TestRetry:
    def test_flaky_task_recovers(self, tmp_path):
        registry = TimingRegistry()
        policy = FaultPolicy(on_error="retry", max_retries=3, backoff_s=0.0)
        runner = ParallelRunner(1, name="flaky", registry=registry, policy=policy)
        specs = [(i, str(tmp_path / f"counter{i}"), 2) for i in range(4)]
        assert runner.map(tasks.flaky_file, specs) == [0, 10, 20, 30]
        stats = registry.stages["flaky"]
        assert stats.retries == 8  # 2 planned failures per task
        assert stats.failures == 0

    def test_retry_exhausted_raises_original(self):
        policy = FaultPolicy(on_error="retry", max_retries=2, backoff_s=0.0)
        runner = ParallelRunner(1, policy=policy)
        with pytest.raises(ValueError, match="exploded"):
            runner.map(tasks.explode, range(3))

    def test_injected_faults_do_not_change_results_serial(self):
        clean = ParallelRunner(1).map_seeded(
            tasks.pair_with_draw, range(10), seed=42, stream="x"
        )
        runner = ParallelRunner(1, policy=FaultPolicy(**FAULTY_RETRY))
        faulty = runner.map_seeded(tasks.pair_with_draw, range(10), seed=42, stream="x")
        assert faulty == clean

    def test_injected_faults_do_not_change_results_pooled(self):
        clean = ParallelRunner(1).map_seeded(
            tasks.pair_with_draw, range(10), seed=42, stream="x"
        )
        runner = ParallelRunner(4, policy=FaultPolicy(**FAULTY_RETRY))
        faulty = runner.map_seeded(tasks.pair_with_draw, range(10), seed=42, stream="x")
        assert faulty == clean

    def test_retry_counts_reach_registry(self):
        registry = TimingRegistry()
        runner = ParallelRunner(
            1, name="inj", registry=registry, policy=FaultPolicy(**FAULTY_RETRY)
        )
        runner.map_seeded(tasks.pair_with_draw, range(10), seed=42, stream="x")
        assert registry.stages["inj"].retries > 0
        assert registry.stages["inj"].failures == 0


class TestSkip:
    def test_completed_results_salvaged(self):
        registry = TimingRegistry()
        policy = FaultPolicy(on_error="skip", max_retries=1, backoff_s=0.0)
        runner = ParallelRunner(1, name="skip", registry=registry, policy=policy)
        rows = runner.map(tasks.explode_odd, range(6))
        assert [rows[i] for i in (0, 2, 4)] == [0, 4, 16]
        for i in (1, 3, 5):
            failure = rows[i]
            assert isinstance(failure, TaskFailure)
            assert failure.index == i
            assert failure.error_type == "ValueError"
            assert f"task {i} exploded" in failure.message
            assert "ValueError" in failure.traceback
            assert failure.attempts == 2  # 1 try + 1 retry
            assert not failure.timed_out
        stats = registry.stages["skip"]
        assert stats.failures == 3
        assert stats.retries == 3

    def test_skip_salvage_pooled(self):
        policy = FaultPolicy(on_error="skip", max_retries=0, backoff_s=0.0)
        rows = ParallelRunner(4, policy=policy).map(tasks.explode_odd, range(8))
        assert [r for r in rows if not isinstance(r, TaskFailure)] == [0, 4, 16, 36]
        assert [r.index for r in rows if isinstance(r, TaskFailure)] == [1, 3, 5, 7]


class TestTimeout:
    def test_serial_post_hoc_timeout(self):
        registry = TimingRegistry()
        policy = FaultPolicy(
            on_error="skip", max_retries=0, timeout_s=0.05, backoff_s=0.0
        )
        runner = ParallelRunner(1, name="slow", registry=registry, policy=policy)
        rows = runner.map(tasks.sleeper, [(1, 0.0), (2, 0.2)])
        assert rows[0] == 1
        assert isinstance(rows[1], TaskFailure)
        assert rows[1].timed_out
        assert registry.stages["slow"].timeouts == 1

    def test_pool_timeout_salvages(self):
        policy = FaultPolicy(
            on_error="skip", max_retries=0, timeout_s=0.3, backoff_s=0.0
        )
        rows = ParallelRunner(2, policy=policy).map(
            tasks.sleeper, [(1, 0.0), (2, 5.0), (3, 0.0)]
        )
        assert rows[0] == 1 and rows[2] == 3
        assert isinstance(rows[1], TaskFailure)
        assert rows[1].timed_out
        assert rows[1].error_type == "TimeoutError"

    def test_timeout_exhaustion_raises_execution_error(self):
        policy = FaultPolicy(on_error="raise", timeout_s=0.05)
        with pytest.raises(ExecutionError, match="timed out"):
            ParallelRunner(1, policy=policy).map(tasks.sleeper, [(1, 0.2)])


class TestPoolDegradation:
    def test_broken_pool_degrades_to_serial(self, tmp_path):
        marker = str(tmp_path / "killed")
        policy = FaultPolicy(on_error="skip", max_retries=1, backoff_s=0.0)
        counters = FaultCounters()
        results = run_with_faults(
            tasks.kill_worker_once,
            [(i, marker) for i in range(6)],
            workers=2,
            policy=policy,
            counters=counters,
        )
        assert results == [i * 2 for i in range(6)]
        assert counters.pool_breaks == 1
        assert counters.failures == 0

    def test_broken_pool_keeps_completed_results(self, tmp_path):
        # Under retry the rescue must also yield a complete, correct sweep.
        marker = str(tmp_path / "killed")
        policy = FaultPolicy(on_error="retry", max_retries=2, backoff_s=0.0)
        rows = ParallelRunner(2, policy=policy).map(
            tasks.kill_worker_once, [(i, marker) for i in range(4)]
        )
        assert rows == [0, 2, 4, 6]


class TestWorkerCountInvariance:
    def test_faulty_pooled_equals_clean_serial(self):
        clean = ParallelRunner(1).map_seeded(
            tasks.pair_with_draw, range(12), seed=5, stream="inv"
        )
        policy = FaultPolicy(**FAULTY_RETRY)
        for workers in (1, 4):
            faulty = ParallelRunner(workers, policy=policy).map_seeded(
                tasks.pair_with_draw, range(12), seed=5, stream="inv"
            )
            assert faulty == clean
