"""Module-level task functions for runner tests (pool workers pickle by
reference, so these cannot live inside test functions)."""

import os
import time


def square(spec):
    return spec * spec


def pair_with_draw(spec, rng):
    """Seeded task: returns the spec and one draw from its private stream."""
    return (spec, float(rng.random()))


def explode(spec):
    raise ValueError(f"task {spec} exploded")


def explode_odd(spec):
    """Fails permanently for odd specs, succeeds for even ones."""
    if spec % 2:
        raise ValueError(f"task {spec} exploded")
    return spec * spec


def sleeper(spec):
    """Sleeps ``spec[1]`` seconds, then returns ``spec[0]``."""
    value, duration = spec
    time.sleep(duration)
    return value


def flaky_file(spec):
    """Fails the first ``fail_times`` attempts, tallied in a counter file.

    ``spec`` is ``(value, counter_path, fail_times)``; attempts append one
    byte to the counter file, so the function recovers exactly after the
    requested number of failures — across processes.
    """
    value, counter_path, fail_times = spec
    with open(counter_path, "ab") as fh:
        fh.write(b".")
    if os.path.getsize(counter_path) <= fail_times:
        raise RuntimeError(f"flaky task {value} (planned failure)")
    return value * 10


def kill_worker_once(spec):
    """First caller hard-kills its worker process; later callers succeed.

    ``spec`` is ``(value, marker_path)``. Marker creation is atomic
    (O_EXCL), so exactly one task across the whole pool dies — simulating
    an OOM-killed worker that breaks the ProcessPoolExecutor.
    """
    value, marker_path = spec
    try:
        fd = os.open(marker_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value * 2
    os.close(fd)
    os._exit(13)
