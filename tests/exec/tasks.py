"""Module-level task functions for runner tests (pool workers pickle by
reference, so these cannot live inside test functions)."""


def square(spec):
    return spec * spec


def pair_with_draw(spec, rng):
    """Seeded task: returns the spec and one draw from its private stream."""
    return (spec, float(rng.random()))


def explode(spec):
    raise ValueError(f"task {spec} exploded")
