"""Tests for the timing registry and BENCH_*.json artifacts."""

import json
import time
from datetime import datetime, timedelta, timezone

from repro.exec import timing
from repro.exec.timing import TimingRegistry
from repro.obs.metrics import MetricsRegistry


class TestRegistry:
    def test_record_accumulates(self):
        reg = TimingRegistry()
        reg.record("sweep", 1.5, items=10)
        reg.record("sweep", 0.5, items=5)
        stats = reg.stages["sweep"]
        assert stats.seconds == 2.0
        assert stats.calls == 2
        assert stats.items == 15

    def test_record_fault_counts(self):
        reg = TimingRegistry()
        reg.record("sweep", 1.0, items=4, retries=2, failures=1, timeouts=1)
        reg.record("sweep", 1.0, retries=1)
        stats = reg.stages["sweep"]
        assert stats.retries == 3
        assert stats.failures == 1
        assert stats.timeouts == 1

    def test_stage_context_times_block(self):
        reg = TimingRegistry()
        with reg.stage("nap"):
            time.sleep(0.01)
        assert reg.total_seconds("nap") >= 0.01
        assert reg.stages["nap"].calls == 1

    def test_stage_records_on_exception(self):
        reg = TimingRegistry()
        try:
            with reg.stage("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert reg.stages["boom"].calls == 1

    def test_total_seconds_missing_stage(self):
        assert TimingRegistry().total_seconds("ghost") == 0.0

    def test_reset(self):
        reg = TimingRegistry()
        reg.record("x", 1.0)
        reg.reset()
        assert reg.stages == {}


class TestBenchArtifacts:
    def test_write_bench_contents(self, tmp_path):
        reg = TimingRegistry()
        reg.record("parameter_sweeps", 2.25, items=44)
        path = reg.write_bench("fig6", directory=tmp_path)
        assert path == tmp_path / "BENCH_fig6.json"
        doc = json.loads(path.read_text())
        assert doc["name"] == "fig6"
        assert doc["stages"]["parameter_sweeps"]["seconds"] == 2.25
        assert doc["stages"]["parameter_sweeps"]["items"] == 44
        assert "python" in doc and "cpu_count" in doc

    def test_fault_counts_reach_bench_json(self, tmp_path):
        reg = TimingRegistry()
        reg.record("sweep", 1.0, items=8, retries=3, failures=1, timeouts=2)
        doc = json.loads(reg.write_bench("faults", directory=tmp_path).read_text())
        stage = doc["stages"]["sweep"]
        assert stage["retries"] == 3
        assert stage["failures"] == 1
        assert stage["timeouts"] == 2

    def test_timestamp_is_utc_iso8601(self, tmp_path):
        reg = TimingRegistry()
        doc = json.loads(reg.write_bench("ts", directory=tmp_path).read_text())
        stamp = datetime.fromisoformat(doc["timestamp"])
        assert stamp.tzinfo is not None
        assert stamp.utcoffset() == timedelta(0)
        assert abs(datetime.now(timezone.utc) - stamp) < timedelta(minutes=1)

    def test_metrics_section_snapshots_registry(self, tmp_path, monkeypatch):
        from repro.obs import metrics as obs_metrics

        fresh = MetricsRegistry()
        monkeypatch.setattr(obs_metrics, "METRICS", fresh)
        monkeypatch.setattr(timing, "METRICS", fresh)
        fresh.inc("phy.crc_failures", 7)
        fresh.observe("sim.window_per", 0.25, buckets=(0.5, 1.0))
        doc = json.loads(
            TimingRegistry().write_bench("m", directory=tmp_path).read_text()
        )
        assert doc["metrics"]["counters"]["phy.crc_failures"] == 7
        assert doc["metrics"]["histograms"]["sim.window_per"]["count"] == 1

    def test_write_bench_extra_fields(self, tmp_path):
        reg = TimingRegistry()
        path = reg.write_bench("x", directory=tmp_path, extra={"slots": 2000})
        assert json.loads(path.read_text())["slots"] == 2000

    def test_env_dir_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(timing.BENCH_DIR_ENV, str(tmp_path / "out"))
        assert timing.bench_dir() == tmp_path / "out"
        reg = TimingRegistry()
        reg.record("s", 0.1)
        path = reg.write_bench("envtest")
        assert path.parent == tmp_path / "out"
        assert path.exists()

    def test_global_helpers(self, tmp_path, monkeypatch):
        monkeypatch.setenv(timing.BENCH_DIR_ENV, str(tmp_path))
        timing.REGISTRY.reset()
        with timing.stage("global-stage", items=3):
            pass
        timing.record("global-stage", 0.5)
        path = timing.write_bench("global")
        doc = json.loads(path.read_text())
        assert doc["stages"]["global-stage"]["calls"] == 2
        timing.REGISTRY.reset()
