"""Tests for the 2.4 GHz band geometry."""

import pytest

from repro.channel import spectrum as S
from repro.errors import ChannelError


class TestFrequencies:
    def test_zigbee_channel_11(self):
        assert S.zigbee_channel_frequency_mhz(11) == 2405.0

    def test_zigbee_channel_26(self):
        assert S.zigbee_channel_frequency_mhz(26) == 2480.0

    def test_wifi_channel_1(self):
        assert S.wifi_channel_frequency_mhz(1) == 2412.0

    def test_wifi_channel_6(self):
        assert S.wifi_channel_frequency_mhz(6) == 2437.0

    @pytest.mark.parametrize("ch", [10, 27, 0, -1])
    def test_bad_zigbee_channel(self, ch):
        with pytest.raises(ChannelError):
            S.zigbee_channel_frequency_mhz(ch)

    @pytest.mark.parametrize("ch", [0, 14])
    def test_bad_wifi_channel(self, ch):
        with pytest.raises(ChannelError):
            S.wifi_channel_frequency_mhz(ch)


class TestFootprint:
    @pytest.mark.parametrize("w", S.WIFI_CHANNELS)
    def test_every_wifi_channel_covers_at_most_four(self, w):
        # Paper §II-B: "a WiFi jammer can scan and jam up to 4 ZigBee
        # channels at a time". Edge Wi-Fi channels cover fewer because the
        # ZigBee band stops at channel 11/26.
        fp = S.wifi_footprint(w)
        assert 1 <= len(fp) <= 4

    def test_central_channels_cover_exactly_four(self):
        for w in (1, 6, 11):
            assert len(S.wifi_footprint(w)) == 4

    def test_wifi_1_footprint(self):
        assert S.wifi_footprint(1) == (11, 12, 13, 14)

    def test_wifi_6_footprint(self):
        assert S.wifi_footprint(6) == (16, 17, 18, 19)

    def test_footprints_are_consecutive(self):
        for w in S.WIFI_CHANNELS:
            fp = S.wifi_footprint(w)
            assert list(fp) == list(range(fp[0], fp[0] + len(fp)))

    def test_inverse_mapping(self):
        for z in S.ZIGBEE_CHANNELS:
            for w in S.wifi_channels_covering(z):
                assert z in S.wifi_footprint(w)


class TestOffsets:
    def test_offset_inside_band(self):
        # ZigBee 11 at 2405 inside Wi-Fi 1 at 2412: offset -7 MHz.
        assert S.zigbee_offset_in_wifi_hz(11, 1) == pytest.approx(-7e6)

    def test_offset_out_of_band_rejected(self):
        with pytest.raises(ChannelError):
            S.zigbee_offset_in_wifi_hz(26, 1)

    def test_offsets_fit_in_ofdm_band(self):
        # Every covered ZigBee channel plus its 1 MHz half-band must fit
        # inside the ±10 MHz OFDM band.
        for w in S.WIFI_CHANNELS:
            for z in S.wifi_footprint(w):
                off = S.zigbee_offset_in_wifi_hz(z, w)
                assert abs(off) + 1e6 <= 10e6


class TestOverlap:
    def test_full_overlap(self):
        assert S.overlap_fraction_mhz(2412, 20, 2412, 2) == 2.0

    def test_no_overlap(self):
        assert S.overlap_fraction_mhz(2412, 20, 2480, 2) == 0.0

    def test_partial_overlap(self):
        assert S.overlap_fraction_mhz(2412, 20, 2421.5, 2) == pytest.approx(1.5)

    def test_bad_bandwidth(self):
        with pytest.raises(ChannelError):
            S.overlap_fraction_mhz(2412, 0, 2412, 2)

    def test_inband_fraction_wifi_into_zigbee(self):
        # Co-located: 2 of 20 MHz -> 10 %.
        assert S.inband_power_fraction(0.0, 20, 0.0, 2) == pytest.approx(0.1)

    def test_inband_fraction_off_channel(self):
        assert S.inband_power_fraction(0.0, 20, 30.0, 2) == 0.0


class TestSweepBlocks:
    def test_default_partition(self):
        blocks = S.sweep_blocks(16, 4)
        assert len(blocks) == 4
        assert blocks[0] == (0, 1, 2, 3)
        assert blocks[-1] == (12, 13, 14, 15)

    def test_uneven_partition(self):
        blocks = S.sweep_blocks(16, 5)
        assert len(blocks) == 4
        assert blocks[-1] == (15,)

    def test_all_channels_covered_once(self):
        for width in range(1, 17):
            blocks = S.sweep_blocks(16, width)
            flat = [c for b in blocks for c in b]
            assert sorted(flat) == list(range(16))

    def test_bad_width(self):
        with pytest.raises(ChannelError):
            S.sweep_blocks(16, 0)
        with pytest.raises(ChannelError):
            S.sweep_blocks(16, 17)
