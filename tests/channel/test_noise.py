"""Tests for noise-floor and dB conversion helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import noise as N
from repro.errors import ChannelError


class TestConversions:
    def test_db_to_linear(self):
        assert N.db_to_linear(10.0) == pytest.approx(10.0)
        assert N.db_to_linear(0.0) == 1.0
        assert N.db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_dbm_watts(self):
        assert N.dbm_to_watts(30.0) == pytest.approx(1.0)
        assert N.dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert N.watts_to_dbm(0.1) == pytest.approx(20.0)

    @given(st.floats(min_value=-120, max_value=60))
    @settings(max_examples=30)
    def test_roundtrip(self, dbm):
        assert N.watts_to_dbm(N.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_invalid_inputs(self):
        with pytest.raises(ChannelError):
            N.linear_to_db(0.0)
        with pytest.raises(ChannelError):
            N.watts_to_dbm(-1.0)


class TestNoiseFloor:
    def test_zigbee_channel_floor(self):
        # -174 + 10log10(2e6) + 10 = -101 dBm.
        assert N.thermal_noise_dbm(2e6, 10.0) == pytest.approx(-100.99, abs=0.01)

    def test_wifi_channel_floor(self):
        assert N.thermal_noise_dbm(20e6, 10.0) == pytest.approx(-90.99, abs=0.01)

    def test_wider_band_noisier(self):
        assert N.thermal_noise_dbm(20e6) > N.thermal_noise_dbm(2e6)

    def test_bad_bandwidth(self):
        with pytest.raises(ChannelError):
            N.thermal_noise_dbm(0.0)


class TestCombine:
    def test_empty_is_silent(self):
        assert N.combine_powers_dbm([]) == float("-inf")

    def test_single(self):
        assert N.combine_powers_dbm([-50.0]) == pytest.approx(-50.0)

    def test_two_equal_add_3db(self):
        assert N.combine_powers_dbm([-50.0, -50.0]) == pytest.approx(-46.99, abs=0.01)

    def test_dominated_by_strongest(self):
        assert N.combine_powers_dbm([-50.0, -90.0]) == pytest.approx(-50.0, abs=0.01)
