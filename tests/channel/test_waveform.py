"""Waveform-level validation of the analytic interference models.

These tests superpose *real* baseband waveforms and run the genuine
ZigBee receiver, then check that the analytic models in
``repro.channel.link`` describe what actually happens — the central
asymmetry of the paper at sample level.
"""

import numpy as np
import pytest

from repro.channel.link import JammerSignalType, chip_flip_probability
from repro.channel.waveform import (
    awgn,
    empirical_chip_flip_rate,
    jam_trial,
    make_jamming_waveform,
    mix,
    scale_to_power,
)
from repro.errors import ChannelError


class TestPrimitives:
    def test_scale_to_power(self):
        rng = np.random.default_rng(0)
        wf = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        out = scale_to_power(wf, -10.0)
        assert np.mean(np.abs(out) ** 2) == pytest.approx(0.1, rel=1e-9)

    def test_scale_validation(self):
        with pytest.raises(ChannelError):
            scale_to_power(np.zeros(0, complex), 0.0)
        with pytest.raises(ChannelError):
            scale_to_power(np.zeros(8, complex), 0.0)

    def test_awgn_power(self):
        noise = awgn(20000, -3.0, rng=1)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.501, rel=0.05)

    def test_awgn_validation(self):
        with pytest.raises(ChannelError):
            awgn(-1, 0.0)

    def test_mix_pads_shorter(self):
        a = np.ones(4, complex)
        b = np.ones(2, complex)
        out = mix(a, b)
        assert out.tolist() == [2, 2, 1, 1]

    def test_mix_validation(self):
        with pytest.raises(ChannelError):
            mix()


class TestJammingWaveforms:
    @pytest.mark.parametrize("sig", list(JammerSignalType))
    def test_unit_power_and_length(self, sig):
        wf = make_jamming_waveform(sig, 4000, rng=0)
        assert wf.size == 4000
        assert np.mean(np.abs(wf) ** 2) == pytest.approx(1.0, rel=1e-6)

    def test_offset_shifts_spectrum(self):
        wf0 = make_jamming_waveform(JammerSignalType.ZIGBEE, 4000, rng=0)
        wf1 = make_jamming_waveform(
            JammerSignalType.ZIGBEE, 4000, rng=0, offset_hz=5e6
        )
        f0 = np.argmax(np.abs(np.fft.fft(wf0)))
        f1 = np.argmax(np.abs(np.fft.fft(wf1)))
        assert f0 != f1

    def test_validation(self):
        with pytest.raises(ChannelError):
            make_jamming_waveform(JammerSignalType.WIFI, 0)


class TestJamTrial:
    def test_clean_delivery_without_jamming(self):
        res = jam_trial(
            b"hello!", signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=-40.0, rng=0,
        )
        assert res.packet_delivered
        assert res.chip_error_rate < 0.01
        assert res.decoded == b"hello!"

    def test_strong_zigbee_jam_destroys_packet(self):
        res = jam_trial(
            b"payload!", signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=15.0, rng=1,
        )
        assert not res.packet_delivered
        assert res.symbol_error_rate > 0.3

    def test_validation(self):
        with pytest.raises(ChannelError):
            jam_trial(b"", signal_type=JammerSignalType.WIFI, jam_to_signal_db=0.0)


class TestModelValidation:
    """The analytic models vs sample-level ground truth."""

    def test_dsss_asymmetry_at_equal_power(self):
        # The paper's core claim at waveform level: at J/S = 0 dB a genuine
        # ZigBee chip stream corrupts ~25 % of chips while a Wi-Fi OFDM
        # frame of the same received power is despread away.
        zig = empirical_chip_flip_rate(
            JammerSignalType.ZIGBEE, 0.0, trials=6, rng=2
        )
        wifi = empirical_chip_flip_rate(
            JammerSignalType.WIFI, 0.0, trials=6, rng=3
        )
        assert zig > 0.15
        assert wifi < 0.03
        assert zig > wifi + 0.15

    def test_chip_flip_model_tracks_waveform_truth(self):
        # The logistic chip-capture model matches genuine-chip jamming to
        # within ~0.1 across the transition region.
        for margin in (-10.0, 0.0, 10.0):
            measured = empirical_chip_flip_rate(
                JammerSignalType.ZIGBEE, margin, trials=6, rng=int(margin) + 50
            )
            predicted = chip_flip_probability(margin)
            assert abs(measured - predicted) < 0.12, (margin, measured, predicted)

    def test_chip_errors_monotone_in_jam_power(self):
        rates = [
            empirical_chip_flip_rate(
                JammerSignalType.ZIGBEE, m, trials=5, rng=7
            )
            for m in (-10.0, 0.0, 10.0)
        ]
        assert rates[0] < rates[1] < rates[2] + 1e-9

    def test_emubee_needs_margin_but_converges(self):
        # Imperfect emulation costs some effective power (the
        # EMULATION_LOSS_DB penalty is a lower bound), but at high power the
        # forged chips capture the receiver like genuine ones.
        emu_low = empirical_chip_flip_rate(
            JammerSignalType.EMUBEE, 0.0, trials=5, rng=8
        )
        zig_low = empirical_chip_flip_rate(
            JammerSignalType.ZIGBEE, 0.0, trials=5, rng=9
        )
        emu_high = empirical_chip_flip_rate(
            JammerSignalType.EMUBEE, 18.0, trials=5, rng=10
        )
        assert emu_low < zig_low  # fidelity penalty
        assert emu_high > 0.3  # but still a lethal jammer when strong

    def test_emubee_beats_wifi_at_equal_power(self):
        # The reason cross-technology jamming wins: same radio, same power,
        # but the emulated chips bypass the DSSS protection.
        emu = empirical_chip_flip_rate(
            JammerSignalType.EMUBEE, 10.0, trials=5, rng=11
        )
        wifi = empirical_chip_flip_rate(
            JammerSignalType.WIFI, 10.0, trials=5, rng=12
        )
        assert emu > wifi + 0.1
