"""Equivalence and behaviour tests for the memoised PER fast path."""

import pytest

from repro.channel.link import (
    DEFAULT_PER_CACHE_CAPACITY,
    PER_CACHE_ENV,
    Interferer,
    JammerSignalType,
    LinkBudget,
    LinkTable,
    resolve_per_cache_capacity,
)
from repro.errors import ChannelError
from repro.obs.metrics import METRICS

WIFI = Interferer(power_dbm=-40.0, signal_type=JammerSignalType.WIFI)
EMUBEE = Interferer(power_dbm=-45.0, signal_type=JammerSignalType.EMUBEE)
ZIGBEE = Interferer(power_dbm=-60.0, signal_type=JammerSignalType.ZIGBEE)

SIGNALS = [-90.0, -80.0, -70.0, -55.0, -40.0]
OCTETS = [16, 60, 127]
INTERFERER_SETS = [(), (WIFI,), (EMUBEE,), (ZIGBEE,), (WIFI, ZIGBEE)]


class TestCapacityResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(PER_CACHE_ENV, raising=False)
        assert resolve_per_cache_capacity() == DEFAULT_PER_CACHE_CAPACITY

    def test_empty_env_is_default(self, monkeypatch):
        monkeypatch.setenv(PER_CACHE_ENV, "")
        assert resolve_per_cache_capacity() == DEFAULT_PER_CACHE_CAPACITY

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(PER_CACHE_ENV, "128")
        assert resolve_per_cache_capacity() == 128

    @pytest.mark.parametrize("word", ["off", "none", " OFF ", "None"])
    def test_disable_words(self, word):
        assert resolve_per_cache_capacity(word) == 0

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(PER_CACHE_ENV, "128")
        assert resolve_per_cache_capacity(4) == 4

    @pytest.mark.parametrize("bad", ["soon", "1.5", -1])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ChannelError):
            resolve_per_cache_capacity(bad)


class TestExactEquivalence:
    """The tentpole contract: memoised PER == direct PER, bit for bit."""

    def test_full_grid_matches_direct(self):
        budget = LinkBudget()
        table = LinkTable(budget)
        for _ in range(2):  # second sweep exercises the hit path
            for signal in SIGNALS:
                for octets in OCTETS:
                    for combo in INTERFERER_SETS:
                        direct = budget.packet_error_rate(
                            signal, octets, list(combo)
                        )
                        assert table.packet_error_rate(signal, octets, combo) == direct

    def test_jamming_per_matches_direct(self):
        budget = LinkBudget()
        table = LinkTable(budget)
        for dist in (1.0, 5.0, 20.0):
            for sig in JammerSignalType:
                kwargs = dict(
                    link_distance_m=10.0,
                    jammer_distance_m=dist,
                    signal_type=sig,
                    victim_tx_dbm=0.0,
                    jammer_tx_dbm=15.0,
                )
                direct = budget.jamming_per(**kwargs)
                assert table.jamming_per(**kwargs) == direct
                # Second call is a whole-result hit with the same float.
                assert table.jamming_per(**kwargs) == direct

    def test_list_and_tuple_interferers_share_a_key(self):
        table = LinkTable()
        a = table.packet_error_rate(-70.0, 60, [WIFI])
        b = table.packet_error_rate(-70.0, 60, (WIFI,))
        assert a == b
        assert table.hits == 1 and table.misses == 1


class TestCacheMechanics:
    def test_hits_misses_and_rate(self):
        table = LinkTable()
        assert table.hit_rate == 0.0
        table.packet_error_rate(-70.0, 60, ())
        table.packet_error_rate(-70.0, 60, ())
        table.packet_error_rate(-71.0, 60, ())
        assert table.misses == 2 and table.hits == 1
        assert table.hit_rate == pytest.approx(1 / 3)
        stats = table.stats()
        assert stats["entries"] == 2
        assert stats["capacity"] == DEFAULT_PER_CACHE_CAPACITY

    def test_metrics_registry_counters(self):
        before_hits = METRICS.counter("link.per_cache_hits").value
        before_misses = METRICS.counter("link.per_cache_misses").value
        table = LinkTable()
        table.packet_error_rate(-70.0, 60, ())
        table.packet_error_rate(-70.0, 60, ())
        assert METRICS.counter("link.per_cache_hits").value == before_hits + 1
        assert METRICS.counter("link.per_cache_misses").value == before_misses + 1

    def test_lru_eviction_bounds_entries(self):
        table = LinkTable(capacity=3)
        for i in range(6):
            table.packet_error_rate(-70.0 - i, 60, ())
        assert len(table) == 3
        # The oldest key was evicted: looking it up is a fresh miss.
        misses = table.misses
        table.packet_error_rate(-70.0, 60, ())
        assert table.misses == misses + 1
        # The newest key is still resident.
        hits = table.hits
        table.packet_error_rate(-75.0, 60, ())
        assert table.hits == hits + 1

    def test_disabled_is_transparent(self):
        budget = LinkBudget()
        table = LinkTable(budget, capacity="off")
        assert not table.enabled
        direct = budget.packet_error_rate(-70.0, 60, [WIFI])
        assert table.packet_error_rate(-70.0, 60, (WIFI,)) == direct
        assert table.jamming_per(
            link_distance_m=10.0,
            jammer_distance_m=5.0,
            signal_type=JammerSignalType.WIFI,
            victim_tx_dbm=0.0,
            jammer_tx_dbm=15.0,
        ) == budget.jamming_per(
            link_distance_m=10.0,
            jammer_distance_m=5.0,
            signal_type=JammerSignalType.WIFI,
            victim_tx_dbm=0.0,
            jammer_tx_dbm=15.0,
        )
        assert len(table) == 0
        assert table.hits == 0 and table.misses == 0
        assert table.precompute(SIGNALS, OCTETS, INTERFERER_SETS) == 0

    def test_clear(self):
        table = LinkTable()
        table.packet_error_rate(-70.0, 60, ())
        table.clear()
        assert len(table) == 0
        assert table.hits == 0 and table.misses == 0


class TestPrecompute:
    def test_precompute_then_all_hits(self):
        budget = LinkBudget()
        table = LinkTable(budget)
        n = table.precompute(SIGNALS, OCTETS, INTERFERER_SETS)
        assert n == len(SIGNALS) * len(OCTETS) * len(INTERFERER_SETS)
        # Re-running is free.
        assert table.precompute(SIGNALS, OCTETS, INTERFERER_SETS) == 0
        for signal in SIGNALS:
            for octets in OCTETS:
                for combo in INTERFERER_SETS:
                    expect = budget.packet_error_rate(signal, octets, list(combo))
                    assert table.packet_error_rate(signal, octets, combo) == expect
        assert table.misses == 0
        assert table.hit_rate == 1.0

    def test_precompute_respects_capacity(self):
        table = LinkTable(capacity=4)
        table.precompute(SIGNALS, [60], [()])
        assert len(table) == 4


class TestShadowedJamming:
    """``jamming_per`` under log-normal shadowing memoises bit-exactly.

    With ``shadowing_sigma_db > 0`` the quadrature averages 15 per-point
    PERs; the table must return the direct budget's float, serve repeats
    from the whole-result cache, and key the sigma so different spreads
    never alias.
    """

    KW = dict(
        link_distance_m=10.0,
        jammer_distance_m=5.0,
        signal_type=JammerSignalType.EMUBEE,
        victim_tx_dbm=0.0,
        jammer_tx_dbm=15.0,
        shadowing_sigma_db=6.0,
    )

    def test_matches_direct_and_memoises(self):
        budget = LinkBudget()
        table = LinkTable(budget)
        direct = budget.jamming_per(**self.KW)
        assert table.jamming_per(**self.KW) == direct
        hits = table.hits
        assert table.jamming_per(**self.KW) == direct
        # Whole-result hit: the 15-node quadrature does not re-run.
        assert table.hits == hits + 1

    def test_quadrature_points_fill_the_per_cache(self):
        table = LinkTable()
        table.jamming_per(**self.KW)
        # 15 Gauss–Hermite nodes land as per-point entries alongside the
        # single whole-result entry, so later calls at overlapping
        # geometries reuse them.
        assert table.stats()["entries"] == 16

    def test_sigma_is_part_of_the_key(self):
        table = LinkTable()
        a = table.jamming_per(**{**self.KW, "shadowing_sigma_db": 4.0})
        b = table.jamming_per(**{**self.KW, "shadowing_sigma_db": 6.0})
        assert a != b
