"""The batched waveform trial engine is bit-identical to the serial path.

``jam_trials`` stacks N trials into ``(N, samples)`` tensors; these tests
pin every row against :func:`repro.channel.waveform.jam_trial` run with
the same per-trial child stream, across all jammer signal types and
frequency offsets, and pin the chunked campaign driver against every
batch size and worker count.
"""

import numpy as np
import pytest

from repro.channel.link import JammerSignalType
from repro.channel.trials import (
    DEFAULT_BANK_SAMPLES,
    DEFAULT_TRIAL_BATCH,
    JAMMER_BANK_ENV,
    TRIAL_BATCH_ENV,
    BatchTrialResult,
    JammerBank,
    default_bank,
    jam_trials,
    resolve_bank_samples,
    resolve_trial_batch,
    run_chip_flip_trials,
    trial_base,
    trial_stream,
)
from repro.channel.waveform import jam_trial
from repro.errors import ChannelError, ConfigurationError
from repro.exec.runner import ParallelRunner
from repro.obs.metrics import METRICS
from repro.rng import make_rng

BANK = JammerBank(1 << 14, seed=3)


def _serial_reference(n, payload_bytes, base, *, signal_type,
                      jam_to_signal_db, noise_to_signal_db, offset_hz, bank,
                      first_trial=0):
    """Per-trial serial ground truth, drawing payloads the driver's way:
    each trial's stream yields its payload first, then feeds the trial."""
    payloads, results = [], []
    for i in range(n):
        s = trial_stream(base, first_trial + i)
        payload = bytes(s.integers(0, 256, payload_bytes, dtype=np.uint8))
        payloads.append(payload)
        results.append(
            jam_trial(
                payload,
                signal_type=signal_type,
                jam_to_signal_db=jam_to_signal_db,
                noise_to_signal_db=noise_to_signal_db,
                offset_hz=offset_hz,
                bank=bank,
                rng=s,
            )
        )
    return payloads, results


class TestBatchBitIdentity:
    @pytest.mark.parametrize("signal_type", list(JammerSignalType))
    @pytest.mark.parametrize("offset_hz", [0.0, 5e6])
    def test_rows_match_serial_trials(self, signal_type, offset_hz):
        base = trial_base(99)
        streams = [trial_stream(base, i) for i in range(4)]
        payloads = [
            bytes(s.integers(0, 256, 6, dtype=np.uint8)) for s in streams
        ]
        batch = jam_trials(
            payloads,
            signal_type=signal_type,
            jam_to_signal_db=2.0,
            noise_to_signal_db=-25.0,
            offset_hz=offset_hz,
            rngs=streams,
            bank=BANK,
        )
        ref_payloads, refs = _serial_reference(
            4,
            6,
            base,
            signal_type=signal_type,
            jam_to_signal_db=2.0,
            noise_to_signal_db=-25.0,
            offset_hz=offset_hz,
            bank=BANK,
        )
        assert ref_payloads == payloads
        for i, ref in enumerate(refs):
            assert batch.chip_error_rate[i] == ref.chip_error_rate
            assert batch.symbol_error_rate[i] == ref.symbol_error_rate
            assert bool(batch.packet_delivered[i]) == ref.packet_delivered
            assert batch.decoded[i] == ref.decoded
            assert batch.trial(i) == ref

    def test_no_bank_path_matches_serial(self):
        base = trial_base(7)
        streams = [trial_stream(base, i) for i in range(3)]
        payloads = [
            bytes(s.integers(0, 256, 4, dtype=np.uint8)) for s in streams
        ]
        batch = jam_trials(
            payloads,
            signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=0.0,
            rngs=streams,
        )
        ref_payloads, refs = _serial_reference(
            3,
            4,
            base,
            signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=0.0,
            noise_to_signal_db=-30.0,
            offset_hz=0.0,
            bank=None,
        )
        assert ref_payloads == payloads
        for i, ref in enumerate(refs):
            assert batch.trial(i) == ref

    def test_derived_streams_match_explicit_streams(self):
        # jam_trials(rng=..., first_trial=...) derives the same per-trial
        # streams as handing them over explicitly via rngs=.
        payloads = [b"\x11\x22\x33\x44"] * 3
        derived = jam_trials(
            payloads,
            signal_type=JammerSignalType.EMUBEE,
            jam_to_signal_db=3.0,
            rng=41,
            first_trial=5,
            bank=BANK,
        )
        explicit = jam_trials(
            payloads,
            signal_type=JammerSignalType.EMUBEE,
            jam_to_signal_db=3.0,
            rngs=[trial_stream(trial_base(41), 5 + i) for i in range(3)],
            bank=BANK,
        )
        assert np.array_equal(explicit.chip_error_rate, derived.chip_error_rate)
        assert np.array_equal(
            explicit.symbol_error_rate, derived.symbol_error_rate
        )

    def test_batch_size_invariance(self):
        base = trial_base(13)
        streams = [trial_stream(base, i) for i in range(6)]
        payloads = [
            bytes(s.integers(0, 256, 5, dtype=np.uint8)) for s in streams
        ]
        whole = jam_trials(
            payloads,
            signal_type=JammerSignalType.WIFI,
            jam_to_signal_db=4.0,
            rngs=[trial_stream(base, i) for i in range(6)],
            bank=BANK,
        )
        halves = [
            jam_trials(
                payloads[k : k + 3],
                signal_type=JammerSignalType.WIFI,
                jam_to_signal_db=4.0,
                rngs=[trial_stream(base, k + i) for i in range(3)],
                bank=BANK,
            )
            for k in (0, 3)
        ]
        merged = np.concatenate(
            [h.chip_error_rate for h in halves]
        )
        assert np.array_equal(whole.chip_error_rate, merged)

    def test_result_shapes(self):
        payloads = [b"\x01\x02", b"\x03\x04"]
        res = jam_trials(
            payloads,
            signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=-20.0,
            rng=0,
            bank=BANK,
        )
        assert isinstance(res, BatchTrialResult)
        assert len(res) == 2
        assert res.chip_error_rate.shape == (2,)
        assert res.packet_delivered.dtype == bool
        # At -20 dB J/S the link is clean: packets decode.
        assert res.packet_delivered.all()
        assert res.decoded == tuple(payloads)


class TestCampaignInvariance:
    def test_trial_batch_invariance(self):
        vals = [
            run_chip_flip_trials(
                JammerSignalType.EMUBEE, 3.0, trials=11, rng=42,
                trial_batch=tb,
            )
            for tb in (1, 2, 5, 11, 64)
        ]
        assert all(v == vals[0] for v in vals)

    def test_worker_invariance(self):
        serial = run_chip_flip_trials(
            JammerSignalType.ZIGBEE, 1.0, trials=8, rng=4, trial_batch=3
        )
        runner = ParallelRunner(workers=2)
        parallel = run_chip_flip_trials(
            JammerSignalType.ZIGBEE, 1.0, trials=8, rng=4, trial_batch=3,
            runner=runner,
        )
        assert parallel == serial

    def test_matches_per_trial_references(self):
        base = trial_base(17)
        bank = default_bank()
        got = run_chip_flip_trials(
            JammerSignalType.ZIGBEE, 0.0, trials=5, payload_bytes=4, rng=17,
            trial_batch=2,
        )
        total = 0.0
        for i in range(5):
            s = trial_stream(base, i)
            payload = bytes(s.integers(0, 256, 4, dtype=np.uint8))
            total += jam_trial(
                payload,
                signal_type=JammerSignalType.ZIGBEE,
                jam_to_signal_db=0.0,
                rng=s,
                bank=bank,
            ).chip_error_rate
        assert got == total / 5

    def test_generator_seed_reproducible(self):
        a = run_chip_flip_trials(
            JammerSignalType.WIFI, 2.0, trials=4, rng=make_rng(8)
        )
        b = run_chip_flip_trials(
            JammerSignalType.WIFI, 2.0, trials=4, rng=make_rng(8)
        )
        assert a == b

    def test_validation(self):
        with pytest.raises(ChannelError):
            run_chip_flip_trials(JammerSignalType.WIFI, 0.0, trials=0)
        with pytest.raises(ChannelError):
            run_chip_flip_trials(
                JammerSignalType.WIFI, 0.0, trials=1, payload_bytes=0
            )


class TestJammerBank:
    def test_bursts_deterministic_across_instances(self):
        a = JammerBank(4096, seed=1)
        b = JammerBank(4096, seed=1)
        for sig in JammerSignalType:
            assert np.array_equal(a.burst(sig), b.burst(sig))

    def test_seed_changes_burst(self):
        a = JammerBank(4096, seed=1)
        b = JammerBank(4096, seed=2)
        assert not np.array_equal(
            a.burst(JammerSignalType.WIFI), b.burst(JammerSignalType.WIFI)
        )

    def test_bursts_are_cached_and_readonly(self):
        bank = JammerBank(4096)
        METRICS.reset()
        first = bank.burst(JammerSignalType.ZIGBEE)
        again = bank.burst(JammerSignalType.ZIGBEE)
        assert first is again
        snap = METRICS.snapshot()
        assert snap["counters"]["waveform.bank_misses"] == 1
        assert snap["counters"]["waveform.bank_hits"] == 1
        with pytest.raises(ValueError):
            first[0] = 0.0

    def test_slices_have_unit_power(self):
        bank = JammerBank(4096, seed=5)
        wf = bank.waveform(JammerSignalType.EMUBEE, 700, rng=3)
        assert wf.size == 700
        assert np.isclose(np.mean(np.abs(wf) ** 2), 1.0)

    def test_slice_consumes_one_draw(self):
        bank = JammerBank(4096, seed=5)
        r1, r2 = make_rng(9), make_rng(9)
        bank.waveform(JammerSignalType.WIFI, 100, rng=r1)
        r2.integers(0, 4096 // 20)
        assert r1.integers(0, 1 << 30) == r2.integers(0, 1 << 30)

    def test_alpha_ablation_changes_emubee_burst(self):
        sharp = JammerBank(4096, alpha=None)
        clipped = JammerBank(4096, alpha=10.0)
        assert not np.array_equal(
            sharp.burst(JammerSignalType.EMUBEE),
            clipped.burst(JammerSignalType.EMUBEE),
        )
        # Non-EmuBee bursts ignore alpha entirely.
        assert np.array_equal(
            sharp.burst(JammerSignalType.WIFI),
            JammerBank(4096, alpha=10.0).burst(JammerSignalType.WIFI),
        )

    def test_zero_size_bank_rejected(self):
        with pytest.raises(ChannelError):
            JammerBank(0)


class TestEnvResolution:
    def test_bank_default(self, monkeypatch):
        monkeypatch.delenv(JAMMER_BANK_ENV, raising=False)
        assert resolve_bank_samples() == DEFAULT_BANK_SAMPLES

    def test_bank_env_and_disable(self, monkeypatch):
        monkeypatch.setenv(JAMMER_BANK_ENV, "2048")
        assert resolve_bank_samples() == 2048
        for off in ("0", "off", "none"):
            monkeypatch.setenv(JAMMER_BANK_ENV, off)
            assert resolve_bank_samples() == 0
            assert default_bank() is None
        monkeypatch.setenv(JAMMER_BANK_ENV, "")
        assert resolve_bank_samples() == DEFAULT_BANK_SAMPLES

    def test_bank_invalid(self, monkeypatch):
        monkeypatch.setenv(JAMMER_BANK_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_bank_samples()
        with pytest.raises(ConfigurationError):
            resolve_bank_samples(-1)

    def test_trial_batch_default_and_env(self, monkeypatch):
        monkeypatch.delenv(TRIAL_BATCH_ENV, raising=False)
        assert resolve_trial_batch() == DEFAULT_TRIAL_BATCH
        monkeypatch.setenv(TRIAL_BATCH_ENV, "16")
        assert resolve_trial_batch() == 16
        monkeypatch.setenv(TRIAL_BATCH_ENV, "off")
        assert resolve_trial_batch() == 1
        assert resolve_trial_batch(8) == 8

    def test_trial_batch_invalid(self, monkeypatch):
        monkeypatch.setenv(TRIAL_BATCH_ENV, "zero")
        with pytest.raises(ConfigurationError):
            resolve_trial_batch()
        with pytest.raises(ConfigurationError):
            resolve_trial_batch(0)

    def test_whitespace_env_counts_as_unset(self, monkeypatch):
        # A stray "export REPRO_JAMMER_BANK=' '" must behave like the
        # variable being absent, not like an invalid literal.
        monkeypatch.setenv(JAMMER_BANK_ENV, "   ")
        assert resolve_bank_samples() == DEFAULT_BANK_SAMPLES
        monkeypatch.setenv(TRIAL_BATCH_ENV, "\t ")
        assert resolve_trial_batch() == DEFAULT_TRIAL_BATCH

    def test_padded_env_values_parse(self, monkeypatch):
        monkeypatch.setenv(JAMMER_BANK_ENV, " 2048 ")
        assert resolve_bank_samples() == 2048
        monkeypatch.setenv(JAMMER_BANK_ENV, " OFF ")
        assert resolve_bank_samples() == 0
        monkeypatch.setenv(TRIAL_BATCH_ENV, " 16 ")
        assert resolve_trial_batch() == 16


class TestValidationAndMetrics:
    def test_rejects_bad_batches(self):
        kwargs = dict(
            signal_type=JammerSignalType.WIFI, jam_to_signal_db=0.0, rng=0
        )
        with pytest.raises(ChannelError):
            jam_trials([], **kwargs)
        with pytest.raises(ChannelError):
            jam_trials([b""], **kwargs)
        with pytest.raises(ChannelError):
            jam_trials([b"\x01", b"\x02\x03"], **kwargs)
        with pytest.raises(ChannelError):
            jam_trials(
                [b"\x01"], rngs=[make_rng(0), make_rng(1)],
                signal_type=JammerSignalType.WIFI, jam_to_signal_db=0.0,
            )

    def test_trial_counters(self):
        METRICS.reset()
        jam_trials(
            [b"\x01\x02", b"\x03\x04", b"\x05\x06"],
            signal_type=JammerSignalType.ZIGBEE,
            jam_to_signal_db=-10.0,
            rng=0,
            bank=BANK,
        )
        snap = METRICS.snapshot()["counters"]
        assert snap["waveform.trials"] == 3
        assert snap["waveform.trial_batches"] == 1


class TestTrialStreams:
    def test_trial_base_coercions(self):
        assert trial_base(None) == 0
        assert trial_base(17) == 17
        gen_a, gen_b = make_rng(3), make_rng(3)
        assert trial_base(gen_a) == trial_base(gen_b)
        seq = np.random.SeedSequence(5)
        assert trial_base(seq) == trial_base(np.random.SeedSequence(5))

    def test_streams_independent_of_batch_geometry(self):
        base = trial_base(12)
        a = trial_stream(base, 4).integers(0, 1 << 30, 8)
        b = trial_stream(base, 4).integers(0, 1 << 30, 8)
        c = trial_stream(base, 5).integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
