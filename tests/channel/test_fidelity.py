"""Channel-fidelity tiers: resolution, calibration, caching, adjudication.

Pins the three guarantees of the fidelity subsystem: the ``analytic``
default stays bit-identical to the plain link budget, the ``hybrid``
correction table matches waveform Monte-Carlo truth within the gated
tolerance on the calibration grid, and the ``waveform`` tier's seeded
trial cache makes results independent of lookup order while counting its
traffic into the metrics registry.
"""

import math

import pytest

from repro.channel.fidelity import (
    CALIBRATION_TOLERANCE,
    CHANNEL_BIN_ENV,
    CHANNEL_ENV,
    CHANNEL_TIERS,
    CHANNEL_TRIALS_ENV,
    DEFAULT_CHANNEL_TRIALS,
    DEFAULT_MARGIN_BIN_DB,
    OFFSET_BIN_MHZ,
    CalibrationTable,
    HybridLinkBudget,
    JamAdjudicator,
    WaveformLinkBudget,
    calibrate,
    clear_trial_cache,
    load_default_calibration,
    make_channel,
    monotone_fit,
    offset_bin_index,
    raw_jam_to_signal_db,
    resolve_channel_tier,
    resolve_channel_trials,
    resolve_margin_bin_db,
    trial_cache_stats,
)
from repro.channel.link import (
    Interferer,
    JammerSignalType,
    LinkBudget,
    LinkTable,
    chip_flip_probability,
)
from repro.channel.trials import run_chip_flip_trials
from repro.core.mdp import MDPConfig
from repro.errors import ChannelError, ConfigurationError
from repro.obs.metrics import METRICS
from repro.rng import derive

EMUBEE = JammerSignalType.EMUBEE
ZIGBEE = JammerSignalType.ZIGBEE


class TestTierResolution:
    def test_default_is_analytic(self, monkeypatch):
        monkeypatch.delenv(CHANNEL_ENV, raising=False)
        assert resolve_channel_tier() == "analytic"

    def test_empty_and_whitespace_count_as_unset(self, monkeypatch):
        for raw in ("", "  ", "\t"):
            monkeypatch.setenv(CHANNEL_ENV, raw)
            assert resolve_channel_tier() == "analytic"

    def test_env_and_argument(self, monkeypatch):
        monkeypatch.setenv(CHANNEL_ENV, " Hybrid ")
        assert resolve_channel_tier() == "hybrid"
        # Explicit argument beats the environment.
        assert resolve_channel_tier("waveform") == "waveform"

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.delenv(CHANNEL_ENV, raising=False)
        with pytest.raises(ChannelError):
            resolve_channel_tier("exact")

    def test_all_tiers_resolve(self):
        for tier in CHANNEL_TIERS:
            assert resolve_channel_tier(tier) == tier

    def test_trials_resolver(self, monkeypatch):
        monkeypatch.delenv(CHANNEL_TRIALS_ENV, raising=False)
        assert resolve_channel_trials() == DEFAULT_CHANNEL_TRIALS
        monkeypatch.setenv(CHANNEL_TRIALS_ENV, " 8 ")
        assert resolve_channel_trials() == 8
        assert resolve_channel_trials(4) == 4
        monkeypatch.setenv(CHANNEL_TRIALS_ENV, "   ")
        assert resolve_channel_trials() == DEFAULT_CHANNEL_TRIALS
        with pytest.raises(ConfigurationError):
            resolve_channel_trials("lots")
        with pytest.raises(ConfigurationError):
            resolve_channel_trials(0)

    def test_bin_resolver(self, monkeypatch):
        monkeypatch.delenv(CHANNEL_BIN_ENV, raising=False)
        assert resolve_margin_bin_db() == DEFAULT_MARGIN_BIN_DB
        monkeypatch.setenv(CHANNEL_BIN_ENV, "1.0")
        assert resolve_margin_bin_db() == 1.0
        with pytest.raises(ConfigurationError):
            resolve_margin_bin_db("-1")
        with pytest.raises(ConfigurationError):
            resolve_margin_bin_db("wide")


class TestMarginTransforms:
    def test_zigbee_margin_is_raw(self):
        assert raw_jam_to_signal_db(ZIGBEE, -3.0) == -3.0

    def test_emubee_inverts_fraction_and_loss(self):
        b = LinkBudget()
        raw = raw_jam_to_signal_db(EMUBEE, 0.0, budget=b)
        # Effective = raw + 10log10(inband) − loss, so pushing the raw
        # value back through the budget must recover the margin.
        eff = (
            raw
            + 10.0 * math.log10(b.emubee_inband_fraction)
            - b.emulation_loss_db
        )
        assert eff == pytest.approx(0.0)

    def test_wifi_has_no_correlated_margin(self):
        with pytest.raises(ChannelError):
            raw_jam_to_signal_db(JammerSignalType.WIFI, 0.0)

    def test_offset_bins(self):
        assert offset_bin_index(0.0) == 0
        assert offset_bin_index(OFFSET_BIN_MHZ) == 1
        assert offset_bin_index(-1.1) == -2


class TestMonotoneFit:
    def test_already_monotone_unchanged(self):
        vals = [0.0, 0.1, 0.1, 0.4]
        assert monotone_fit(vals) == vals

    def test_violations_pooled(self):
        assert monotone_fit([0.3, 0.1]) == [0.2, 0.2]
        fitted = monotone_fit([0.0, 0.25, 0.2, 0.5])
        assert fitted == [0.0, 0.225, 0.225, 0.5]

    def test_result_is_non_decreasing(self):
        fitted = monotone_fit([0.5, 0.1, 0.3, 0.2, 0.45, 0.0])
        assert all(b >= a for a, b in zip(fitted, fitted[1:]))


CAL_KW = dict(margins_db=(-6.0, 0.0, 6.0), trials=6, seed=3)


class TestCalibration:
    def test_deterministic_and_round_trips(self, tmp_path):
        table = calibrate(**CAL_KW)
        again = calibrate(**CAL_KW)
        assert table.to_payload() == again.to_payload()
        path = table.save(tmp_path / "cal.json")
        loaded = CalibrationTable.load(path)
        assert loaded.to_payload() == table.to_payload()

    def test_entries_cover_correlated_signals(self):
        table = calibrate(**CAL_KW)
        assert set(table.entries) == {("zigbee", 0), ("emubee", 0)}
        for entry in table.entries.values():
            corrected = entry["corrected"]
            assert all(0.0 <= v <= 0.5 for v in corrected)
            assert all(b >= a for a, b in zip(corrected, corrected[1:]))

    def test_payload_validation(self):
        payload = calibrate(**CAL_KW).to_payload()
        bad_format = {**payload, "format": "policy-bundle"}
        with pytest.raises(ConfigurationError):
            CalibrationTable.from_payload(bad_format, source="t")
        bad_version = {**payload, "version": 99}
        with pytest.raises(ConfigurationError):
            CalibrationTable.from_payload(bad_version, source="t")
        broken = {**payload, "entries": [{"signal": "zigbee"}]}
        with pytest.raises(ConfigurationError):
            CalibrationTable.from_payload(broken, source="t")

    def test_constructor_validation(self):
        ok = dict(seed=0, trials=4, payload_bytes=8)
        entry = {"measured": [0.0, 0.1], "corrected": [0.0, 0.1]}
        with pytest.raises(ConfigurationError):
            CalibrationTable(margins_db=(0.0,), entries={("zigbee", 0): entry}, **ok)
        with pytest.raises(ConfigurationError):
            CalibrationTable(
                margins_db=(0.0, 0.0), entries={("zigbee", 0): entry}, **ok
            )
        with pytest.raises(ConfigurationError):
            CalibrationTable(margins_db=(0.0, 1.0), entries={}, **ok)
        non_monotone = {"measured": [0.0, 0.1], "corrected": [0.2, 0.1]}
        with pytest.raises(ConfigurationError):
            CalibrationTable(
                margins_db=(0.0, 1.0), entries={("zigbee", 0): non_monotone}, **ok
            )

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CalibrationTable.load(tmp_path / "nope.json")

    def test_env_override_selects_artifact(self, tmp_path, monkeypatch):
        custom = calibrate(**CAL_KW)
        path = custom.save(tmp_path / "cal.json")
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        assert load_default_calibration().to_payload() == custom.to_payload()


class TestHybridBudget:
    def test_interpolates_the_corrected_curve(self):
        margins = (-6.0, 0.0, 6.0)
        entry = {"measured": [0.0, 0.2, 0.4], "corrected": [0.0, 0.2, 0.4]}
        table = CalibrationTable(
            margins_db=margins,
            entries={("emubee", 0): entry},
            seed=0,
            trials=4,
            payload_bytes=8,
        )
        budget = HybridLinkBudget(calibration=table)
        itf = Interferer(power_dbm=0.0, signal_type=EMUBEE)
        # On a grid point, between points, and clamped outside the grid.
        assert budget.correlated_chip_flip(0.0, itf) == pytest.approx(0.2)
        assert budget.correlated_chip_flip(3.0, itf) == pytest.approx(0.3)
        assert budget.correlated_chip_flip(-40.0, itf) == 0.0
        assert budget.correlated_chip_flip(40.0, itf) == pytest.approx(0.4)

    def test_uncalibrated_signal_falls_back_to_analytic(self):
        table = CalibrationTable(
            margins_db=(-6.0, 6.0),
            entries={("emubee", 0): {"measured": [0.0, 0.4], "corrected": [0.0, 0.4]}},
            seed=0,
            trials=4,
            payload_bytes=8,
        )
        budget = HybridLinkBudget(calibration=table)
        itf = Interferer(power_dbm=0.0, signal_type=ZIGBEE)
        assert budget.correlated_chip_flip(-2.0, itf) == chip_flip_probability(-2.0)

    def test_nearest_offset_bin_fallback(self):
        entries = {
            ("emubee", 0): {"measured": [0.0, 0.2], "corrected": [0.0, 0.2]},
            ("emubee", 4): {"measured": [0.0, 0.4], "corrected": [0.0, 0.4]},
        }
        table = CalibrationTable(
            margins_db=(-6.0, 6.0), entries=entries, seed=0, trials=4, payload_bytes=8
        )
        near = table.chip_flip(EMUBEE, 6.0, offset_mhz=0.4)
        far = table.chip_flip(EMUBEE, 6.0, offset_mhz=1.8)
        assert near == pytest.approx(0.2)
        assert far == pytest.approx(0.4)


class TestHybridMatchesWaveformTruth:
    """The acceptance gate: hybrid ≈ waveform ground truth on the grid."""

    def test_committed_artifact_within_tolerance(self):
        table = load_default_calibration()
        assert table.max_fit_residual <= CALIBRATION_TOLERANCE
        # And the interpolant reproduces the corrected values exactly on
        # the grid, so hybrid lookups inherit that tolerance.
        for (name, obin), entry in table.entries.items():
            sig = JammerSignalType(name)
            for margin, corrected, measured in zip(
                table.margins_db, entry["corrected"], entry["measured"]
            ):
                got = table.chip_flip(
                    sig, margin, offset_mhz=obin * OFFSET_BIN_MHZ
                )
                assert got == pytest.approx(corrected)
                assert abs(got - measured) <= CALIBRATION_TOLERANCE

    def test_committed_grid_point_reproduces_bit_exactly(self):
        # Re-run the waveform trials for one committed grid point with the
        # artifact's stored parameters; the stored measurement must match
        # to the last bit (the calibration stream depends only on the key).
        table = load_default_calibration()
        entry = table.entries[("zigbee", 0)]
        idx = table.margins_db.index(0.0)
        margin = table.margins_db[idx]
        q = run_chip_flip_trials(
            ZIGBEE,
            raw_jam_to_signal_db(ZIGBEE, margin),
            trials=table.trials,
            payload_bytes=table.payload_bytes,
            noise_to_signal_db=table.noise_to_signal_db,
            offset_hz=0.0,
            rng=derive(table.seed, f"calibrate/zigbee/0/{margin}"),
        )
        assert min(max(float(q), 0.0), 0.5) == entry["measured"][idx]


class TestWaveformTrialCache:
    def test_cached_and_deterministic(self):
        clear_trial_cache()
        budget = WaveformLinkBudget(seed=0, trials=4, margin_bin_db=1.0)
        itf = Interferer(power_dbm=0.0, signal_type=EMUBEE)
        before = trial_cache_stats()
        first = budget.correlated_chip_flip(2.2, itf)
        mid = trial_cache_stats()
        assert mid["misses"] == before["misses"] + 1
        # Same margin bin (floor(2.7) == floor(2.2) at 1 dB bins) → hit,
        # and the exact same float comes back.
        assert budget.correlated_chip_flip(2.7, itf) == first
        after = trial_cache_stats()
        assert after["hits"] == mid["hits"] + 1
        assert after["misses"] == mid["misses"]
        # A fresh budget with the same seed reproduces the value even
        # after the cache is dropped.
        clear_trial_cache()
        again = WaveformLinkBudget(seed=0, trials=4, margin_bin_db=1.0)
        assert again.correlated_chip_flip(2.2, itf) == first

    def test_seed_and_trials_partition_the_cache(self):
        clear_trial_cache()
        itf = Interferer(power_dbm=0.0, signal_type=EMUBEE)
        a = WaveformLinkBudget(seed=0, trials=4, margin_bin_db=1.0)
        b = WaveformLinkBudget(seed=1, trials=4, margin_bin_db=1.0)
        c = WaveformLinkBudget(seed=0, trials=8, margin_bin_db=1.0)
        a.correlated_chip_flip(2.2, itf)
        b.correlated_chip_flip(2.2, itf)
        c.correlated_chip_flip(2.2, itf)
        assert trial_cache_stats()["size"] == 3

    def test_metrics_registry_counters(self):
        clear_trial_cache()
        hits0 = METRICS.counter("channel.cache_hits").value
        misses0 = METRICS.counter("channel.cache_misses").value
        budget = WaveformLinkBudget(seed=0, trials=4, margin_bin_db=1.0)
        itf = Interferer(power_dbm=0.0, signal_type=ZIGBEE)
        budget.correlated_chip_flip(-1.2, itf)
        budget.correlated_chip_flip(-1.2, itf)
        assert METRICS.counter("channel.cache_misses").value == misses0 + 1
        assert METRICS.counter("channel.cache_hits").value == hits0 + 1
        rate = METRICS.gauge("channel.cache_hit_rate").value
        assert 0.0 <= rate <= 1.0


class TestMakeChannel:
    def test_analytic_is_the_plain_table(self):
        base = LinkBudget()
        table = make_channel("analytic", budget=base)
        assert type(table) is LinkTable
        assert table.budget is base

    def test_tier_dispatch(self):
        hybrid = make_channel("hybrid", calibration=calibrate(**CAL_KW))
        assert isinstance(hybrid.budget, HybridLinkBudget)
        waveform = make_channel("waveform", seed=5, trials=4)
        assert isinstance(waveform.budget, WaveformLinkBudget)
        assert waveform.budget.seed == 5

    def test_base_parameters_carry_over(self):
        base = LinkBudget(emulation_loss_db=3.5)
        table = make_channel("hybrid", budget=base, calibration=calibrate(**CAL_KW))
        assert table.budget.emulation_loss_db == 3.5

    def test_link_table_layers_on_waveform(self):
        clear_trial_cache()
        table = make_channel("waveform", seed=0, trials=4, margin_bin_db=1.0)
        itf = (Interferer(power_dbm=-50.0, signal_type=EMUBEE),)
        first = table.packet_error_rate(-60.0, 60, itf)
        trial_misses = trial_cache_stats()["misses"]
        # The exact-key LRU absorbs the repeat before the trial cache.
        assert table.packet_error_rate(-60.0, 60, itf) == first
        assert trial_cache_stats()["misses"] == trial_misses
        assert table.hits >= 1


def _cfg(tx, jam, mode="max"):
    return MDPConfig(
        tx_power_levels=tuple(float(p) for p in tx),
        jammer_power_levels=tuple(float(p) for p in jam),
        jammer_mode=mode,
    )


class TestJamAdjudicator:
    def test_analytic_threshold_without_randomness(self):
        adj = JamAdjudicator("analytic")
        assert adj.analytic
        # No uniform, no rng: the threshold rule needs neither.
        assert adj.defeats(10.0, 10.0)
        assert not adj.defeats(9.0, 10.0)
        assert adj.survival_probability(10.0, 10.0) == 1.0
        assert adj.survival_probability(9.0, 10.0) == 0.0

    def test_analytic_matches_mdp_config(self):
        adj = JamAdjudicator("analytic")
        for mode in ("max", "random"):
            cfg = _cfg((6, 9, 12, 15), (8, 11, 14), mode)
            for i in range(len(cfg.tx_power_levels)):
                assert adj.jam_success_probability(cfg, i) == (
                    cfg.jam_success_probability(i)
                )

    def test_hybrid_survival_is_monotone_and_memoised(self):
        adj = JamAdjudicator("hybrid", calibration=calibrate(**CAL_KW))
        jam = 10.0
        probs = [adj.survival_probability(tx, jam) for tx in (4.0, 8.0, 12.0, 16.0)]
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert all(b >= a for a, b in zip(probs, probs[1:]))
        assert adj.survival_probability(8.0, jam) == probs[1]  # cached float

    def test_hybrid_defeats_needs_randomness(self):
        adj = JamAdjudicator("hybrid", calibration=calibrate(**CAL_KW))
        with pytest.raises(ChannelError):
            adj.defeats(10.0, 10.0)
        # The uniform decides: survival in (0, 1) flips with the draw.
        s = adj.survival_probability(11.4, 10.0)
        assert 0.0 < s < 1.0
        assert adj.defeats(11.4, 10.0, uniform=s * 0.5)
        assert not adj.defeats(11.4, 10.0, uniform=min(s * 1.5, 0.999))

    def test_survival_array_matches_scalar(self):
        adj = JamAdjudicator("hybrid", calibration=calibrate(**CAL_KW))
        tx = [6.0, 11.4, 15.0]
        jam = [10.0, 10.0, 10.0]
        arr = adj.survival_array(tx, jam)
        assert arr.shape == (3,)
        for t, j, got in zip(tx, jam, arr):
            assert got == adj.survival_probability(t, j)

    def test_hybrid_jam_success_probability_modes(self):
        adj = JamAdjudicator(
            "hybrid", calibration=calibrate(**CAL_KW), packet_octets=4
        )
        cfg_max = _cfg((11.0, 11.4, 12.0), (8.0, 10.0), "max")
        p = adj.jam_success_probability(cfg_max, 1)
        assert p == pytest.approx(1.0 - adj.survival_probability(11.4, 10.0))
        cfg_rand = _cfg((11.0, 11.4, 12.0), (8.0, 10.0), "random")
        expected = (
            (1.0 - adj.survival_probability(11.4, 8.0))
            + (1.0 - adj.survival_probability(11.4, 10.0))
        ) / 2.0
        assert adj.jam_success_probability(cfg_rand, 1) == pytest.approx(expected)

    def test_waveform_tier_deterministic(self):
        clear_trial_cache()
        a = JamAdjudicator("waveform", seed=2, trials=4)
        pa = a.survival_probability(11.4, 10.0)
        clear_trial_cache()
        b = JamAdjudicator("waveform", seed=2, trials=4)
        assert b.survival_probability(11.4, 10.0) == pa
