"""Tests for the shared-medium arbitration layer."""

import pytest

from repro.channel.link import JammerSignalType
from repro.channel.medium import ActiveTransmission, Medium
from repro.errors import ChannelError


def make_medium(seed=0):
    m = Medium(seed=seed)
    m.place("hub", 0.0, 0.0)
    m.place("node1", 3.0, 0.0)
    m.place("jammer", 0.0, 5.0)
    return m


class TestGeometry:
    def test_place_and_distance(self):
        m = make_medium()
        assert m.distance_between("hub", "node1") == 3.0

    def test_replace_moves_node(self):
        m = make_medium()
        m.place("node1", 6.0, 0.0)
        assert m.distance_between("hub", "node1") == 6.0

    def test_unknown_node(self):
        with pytest.raises(ChannelError):
            make_medium().placement("ghost")

    def test_rx_power_declines_with_distance(self):
        m = make_medium()
        m.place("far", 30.0, 0.0)
        near = m.rx_power_dbm("node1", "hub", 0.0)
        far = m.rx_power_dbm("far", "hub", 0.0)
        assert near > far

    def test_self_reception_rejected(self):
        with pytest.raises(ChannelError):
            make_medium().rx_power_dbm("hub", "hub", 0.0)


class TestCca:
    def test_idle_channel(self):
        m = make_medium()
        assert not m.channel_busy("hub", 15, [])

    def test_nearby_transmitter_sensed(self):
        m = make_medium()
        active = [ActiveTransmission("node1", 15, 0.0)]
        assert m.channel_busy("hub", 15, active)

    def test_far_off_frequency_not_sensed(self):
        m = make_medium()
        active = [ActiveTransmission("node1", 26, 0.0)]
        assert not m.channel_busy("hub", 11, active)

    def test_weak_signal_below_threshold(self):
        m = Medium(busy_threshold_dbm=-60.0)
        m.place("hub", 0.0, 0.0)
        m.place("far", 100.0, 0.0)
        active = [ActiveTransmission("far", 15, 0.0)]
        assert not m.channel_busy("hub", 15, active)


class TestFrameOutcome:
    def test_clean_link_delivers(self):
        m = make_medium()
        ok, per = m.frame_outcome(
            "node1", "hub", zigbee_channel=15, tx_power_dbm=0.0, packet_octets=60
        )
        assert ok and per < 1e-6

    def test_point_blank_jammer_kills(self):
        m = make_medium()
        m.place("jammer", 0.5, 0.0)
        active = [
            ActiveTransmission(
                "jammer", 15, 20.0, signal_type=JammerSignalType.EMUBEE
            )
        ]
        ok, per = m.frame_outcome(
            "node1",
            "hub",
            zigbee_channel=15,
            tx_power_dbm=0.0,
            packet_octets=60,
            active=active,
        )
        assert per > 0.99 and not ok

    def test_off_channel_jammer_harmless(self):
        m = make_medium()
        active = [
            ActiveTransmission(
                "jammer", 26, 20.0, signal_type=JammerSignalType.EMUBEE
            )
        ]
        ok, per = m.frame_outcome(
            "node1",
            "hub",
            zigbee_channel=11,
            tx_power_dbm=0.0,
            packet_octets=60,
            active=active,
        )
        assert ok and per < 1e-6

    def test_transmitter_excluded_from_interference(self):
        m = make_medium()
        active = [ActiveTransmission("node1", 15, 0.0)]
        ok, per = m.frame_outcome(
            "node1",
            "hub",
            zigbee_channel=15,
            tx_power_dbm=0.0,
            packet_octets=60,
            active=active,
        )
        assert ok and per < 1e-6

    def test_outcome_reproducible_with_seed(self):
        def run(seed):
            m = make_medium(seed=seed)
            m.place("jammer", 4.0, 0.0)
            active = [
                ActiveTransmission(
                    "jammer", 15, 0.0, signal_type=JammerSignalType.ZIGBEE
                )
            ]
            return [
                m.frame_outcome(
                    "node1",
                    "hub",
                    zigbee_channel=15,
                    tx_power_dbm=0.0,
                    packet_octets=60,
                    active=active,
                )[0]
                for _ in range(20)
            ]

        assert run(7) == run(7)


class TestChannelTiers:
    @staticmethod
    def _outcomes(channel, seed=7):
        m = Medium(seed=seed, channel=channel)
        m.place("hub", 0.0, 0.0)
        m.place("node1", 3.0, 0.0)
        m.place("jammer", 4.0, 0.0)
        active = [
            ActiveTransmission("jammer", 15, 5.0, signal_type=JammerSignalType.EMUBEE)
        ]
        return [
            m.frame_outcome(
                "node1",
                "hub",
                zigbee_channel=15,
                tx_power_dbm=0.0,
                packet_octets=60,
                active=active,
            )
            for _ in range(20)
        ]

    def test_default_is_analytic_and_bit_identical(self):
        m = Medium(seed=0)
        assert m.channel_tier == "analytic"
        assert self._outcomes(None) == self._outcomes("analytic")

    def test_hybrid_budget_installed_and_reproducible(self):
        from repro.channel.fidelity import HybridLinkBudget

        m = Medium(seed=0, channel="hybrid")
        assert m.channel_tier == "hybrid"
        assert isinstance(m.link_budget, HybridLinkBudget)
        assert m.link_table.budget is m.link_budget
        assert self._outcomes("hybrid") == self._outcomes("hybrid")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ChannelError):
            Medium(seed=0, channel="exact")
