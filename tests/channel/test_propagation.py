"""Tests for the path-loss model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.propagation import LogDistancePathLoss, distance
from repro.errors import ChannelError


class TestLossValues:
    def test_reference_loss(self):
        model = LogDistancePathLoss(ref_loss_db=40.0, exponent=2.0)
        assert model.loss_db(1.0) == pytest.approx(40.0)

    def test_decade_slope(self):
        model = LogDistancePathLoss(ref_loss_db=40.0, exponent=2.5)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(25.0)

    def test_received_power(self):
        model = LogDistancePathLoss(ref_loss_db=40.0, exponent=2.0)
        assert model.received_power_dbm(20.0, 1.0) == pytest.approx(-20.0)

    def test_near_field_clamped(self):
        model = LogDistancePathLoss()
        assert model.loss_db(0.01) == model.loss_db(1.0)

    def test_zero_distance_rejected(self):
        with pytest.raises(ChannelError):
            LogDistancePathLoss().loss_db(0.0)

    @given(st.floats(min_value=1.0, max_value=1000.0))
    @settings(max_examples=30)
    def test_monotone_in_distance(self, d):
        model = LogDistancePathLoss()
        assert model.loss_db(d * 1.5) > model.loss_db(d)


class TestShadowing:
    def test_deterministic_without_sigma(self):
        model = LogDistancePathLoss()
        assert model.loss_db(5.0) == model.loss_db(5.0)

    def test_shadowing_varies(self):
        model = LogDistancePathLoss(shadowing_sigma_db=4.0)
        rng = np.random.default_rng(0)
        samples = {round(model.loss_db(5.0, rng), 6) for _ in range(10)}
        assert len(samples) > 1

    def test_shadowing_mean(self):
        model = LogDistancePathLoss(shadowing_sigma_db=3.0)
        base = LogDistancePathLoss().loss_db(5.0)
        rng = np.random.default_rng(1)
        mean = np.mean([model.loss_db(5.0, rng) for _ in range(4000)])
        assert mean == pytest.approx(base, abs=0.3)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ChannelError):
            LogDistancePathLoss(shadowing_sigma_db=-1.0)


class TestValidation:
    def test_bad_ref_distance(self):
        with pytest.raises(ChannelError):
            LogDistancePathLoss(ref_distance_m=0.0)

    def test_bad_exponent(self):
        with pytest.raises(ChannelError):
            LogDistancePathLoss(exponent=0.0)


class TestRangeInversion:
    @given(st.floats(min_value=1.5, max_value=500.0))
    @settings(max_examples=30)
    def test_range_inverts_power(self, d):
        model = LogDistancePathLoss()
        rx = model.received_power_dbm(20.0, d)
        assert model.range_for_rx_power(20.0, rx) == pytest.approx(d, rel=1e-9)

    def test_within_reference(self):
        model = LogDistancePathLoss(ref_loss_db=40.0)
        # A target louder than the reference loss allows is clamped to 1 m.
        assert model.range_for_rx_power(20.0, 0.0) == 1.0


class TestDistance:
    def test_pythagoras(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_zero(self):
        assert distance((1, 1), (1, 1)) == 0.0
