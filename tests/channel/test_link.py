"""Tests for the link-level error models, including the Fig. 2(b) ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel import link as L
from repro.constants import WIFI_TX_POWER_DBM, ZIGBEE_TX_POWER_DBM
from repro.errors import ChannelError


class TestBerCurve:
    def test_high_snr_error_free(self):
        assert L.zigbee_ber_awgn(10.0) < 1e-12

    def test_zero_snr_is_half(self):
        assert L.zigbee_ber_awgn(0.0) == pytest.approx(0.5, abs=0.01)

    def test_monotone_decreasing(self):
        values = [L.zigbee_ber_awgn(s) for s in (0.0, 0.1, 0.3, 0.5, 1.0, 2.0)]
        assert values == sorted(values, reverse=True)

    def test_negative_snr_rejected(self):
        with pytest.raises(ChannelError):
            L.zigbee_ber_awgn(-0.1)

    def test_bounded(self):
        for s in (0.0, 0.01, 0.5, 5.0):
            assert 0.0 <= L.zigbee_ber_awgn(s) <= 0.5


class TestChipCapture:
    def test_dominant_jammer_saturates_at_half(self):
        assert L.chip_flip_probability(40.0) == pytest.approx(0.5, abs=1e-6)

    def test_dominant_victim_no_flips(self):
        assert L.chip_flip_probability(-40.0) == pytest.approx(0.0, abs=1e-6)

    def test_equal_power_quarter(self):
        assert L.chip_flip_probability(0.0) == pytest.approx(0.25)

    @given(st.floats(min_value=-30, max_value=30))
    @settings(max_examples=30)
    def test_monotone(self, margin):
        assert L.chip_flip_probability(margin + 1.0) > L.chip_flip_probability(margin)

    def test_bad_slope(self):
        with pytest.raises(ChannelError):
            L.chip_flip_probability(0.0, slope_db=0.0)

    def test_symbol_error_endpoints(self):
        assert L.symbol_error_from_chip_flips(0.0) == 0.0
        assert L.symbol_error_from_chip_flips(0.5) > 0.99

    def test_symbol_error_validates(self):
        with pytest.raises(ChannelError):
            L.symbol_error_from_chip_flips(0.9)

    def test_per_accumulates_over_length(self):
        se = 0.01
        assert L.packet_error_rate(se, 10) < L.packet_error_rate(se, 100)

    def test_per_validates(self):
        with pytest.raises(ChannelError):
            L.packet_error_rate(0.1, 0)


class TestEffectiveInterference:
    def setup_method(self):
        self.budget = L.LinkBudget()

    def test_wifi_pays_band_and_dsss(self):
        itf = L.Interferer(0.0, L.JammerSignalType.WIFI)
        eff = self.budget.effective_interference_dbm(itf)
        assert eff == pytest.approx(0.0 - 10.0 - self.budget.dsss_gain_db)

    def test_zigbee_full_power(self):
        itf = L.Interferer(0.0, L.JammerSignalType.ZIGBEE)
        assert self.budget.effective_interference_dbm(itf) == 0.0

    def test_emubee_pays_fraction_and_fidelity(self):
        itf = L.Interferer(0.0, L.JammerSignalType.EMUBEE)
        eff = self.budget.effective_interference_dbm(itf)
        assert eff == pytest.approx(
            10.0 * __import__("math").log10(self.budget.emubee_inband_fraction)
            - self.budget.emulation_loss_db
        )

    def test_off_channel_zigbee_ignored(self):
        itf = L.Interferer(0.0, L.JammerSignalType.ZIGBEE, center_offset_mhz=5.0)
        assert self.budget.effective_interference_dbm(itf) == float("-inf")

    def test_far_off_channel_wifi_ignored(self):
        itf = L.Interferer(0.0, L.JammerSignalType.WIFI, center_offset_mhz=30.0)
        assert self.budget.effective_interference_dbm(itf) == float("-inf")

    def test_partially_overlapping_wifi_weaker(self):
        on = L.Interferer(0.0, L.JammerSignalType.WIFI, center_offset_mhz=0.0)
        edge = L.Interferer(0.0, L.JammerSignalType.WIFI, center_offset_mhz=10.0)
        assert self.budget.effective_interference_dbm(
            edge
        ) < self.budget.effective_interference_dbm(on)


class TestFig2bOrdering:
    """The paper's jamming-effect ranking: EmuBee > ZigBee > Wi-Fi."""

    def setup_method(self):
        self.budget = L.LinkBudget()
        self.kw = dict(
            link_distance_m=3.0,
            victim_tx_dbm=ZIGBEE_TX_POWER_DBM,
            packet_octets=60,
        )

    def per(self, signal_type, d, jammer_tx):
        return self.budget.jamming_per(
            jammer_distance_m=d,
            signal_type=signal_type,
            jammer_tx_dbm=jammer_tx,
            **self.kw,
        )

    def test_all_jammers_lethal_point_blank(self):
        for st_, p in (
            (L.JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM),
            (L.JammerSignalType.WIFI, WIFI_TX_POWER_DBM),
            (L.JammerSignalType.ZIGBEE, ZIGBEE_TX_POWER_DBM),
        ):
            assert self.per(st_, 1.0, p) > 0.95

    def test_per_decreases_with_distance(self):
        for st_, p in (
            (L.JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM),
            (L.JammerSignalType.WIFI, WIFI_TX_POWER_DBM),
            (L.JammerSignalType.ZIGBEE, ZIGBEE_TX_POWER_DBM),
        ):
            pers = [self.per(st_, d, p) for d in (1, 3, 6, 10, 15, 30)]
            assert all(a >= b - 1e-9 for a, b in zip(pers, pers[1:])), (st_, pers)

    def test_ranking_at_long_range(self):
        # Paper: "This superiority is more significant when the jamming
        # distance is long (>= 10m)".
        for d in (8.0, 10.0, 12.0):
            emu = self.per(L.JammerSignalType.EMUBEE, d, WIFI_TX_POWER_DBM)
            zig = self.per(L.JammerSignalType.ZIGBEE, d, ZIGBEE_TX_POWER_DBM)
            wifi = self.per(L.JammerSignalType.WIFI, d, WIFI_TX_POWER_DBM)
            assert emu > zig >= wifi, (d, emu, zig, wifi)

    def test_emubee_effective_at_10m(self):
        assert self.per(L.JammerSignalType.EMUBEE, 10.0, WIFI_TX_POWER_DBM) > 0.5

    def test_wifi_ineffective_at_10m(self):
        assert self.per(L.JammerSignalType.WIFI, 10.0, WIFI_TX_POWER_DBM) < 0.3

    def test_no_jammer_baseline_clean(self):
        signal = self.budget.propagation.received_power_dbm(0.0, 3.0)
        assert self.budget.packet_error_rate(signal, 60) < 1e-6
