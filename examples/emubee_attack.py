#!/usr/bin/env python3
"""The attack side: forge ZigBee waveforms with a Wi-Fi transmitter.

Walks the full EmuBee pipeline of paper §II-A / Fig. 1:

1. design a target ZigBee waveform (O-QPSK chips for a chosen payload);
2. invert the Wi-Fi PHY — FFT, α-scaled 64-QAM quantization (Eqs. 1–2),
   deinterleave, Viterbi, descramble — to recover the Wi-Fi payload whose
   transmission emulates the design;
3. re-run the forward Wi-Fi chain and hand the emitted waveform to a real
   ZigBee receiver to measure how faithfully the chips survive;
4. compare the paper's optimised quantization against naive fixed scales;
5. show the stealthiness property: the victim radio decodes the burst,
   burns receiver time, and never flags it as jamming.

Run:  python examples/emubee_attack.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.channel.link import JammerSignalType
from repro.jamming.detector import stealth_assessment
from repro.phy import zigbee
from repro.phy.emulation import WaveformEmulator, optimize_alpha
from repro.phy.packet import FrameListener


def main() -> None:
    emulator = WaveformEmulator()
    payload = bytes.fromhex("00000000deadbeefcafe")  # preamble + garbage

    # 1-3) Full pipeline with the optimised quantization.
    designed, chips = emulator.design_from_bytes(payload)
    optimum = emulator.emulate(designed, target_chips=chips)
    print("EmuBee pipeline (optimised alpha)")
    print(f"  target chips          : {chips.size}")
    print(f"  OFDM symbols used     : {designed.size // 80}")
    print(f"  optimal alpha (Eq. 2) : {optimum.alpha:.4f}")
    print(f"  E(alpha*) (Eq. 1)     : {optimum.quantization_error:.2f}")
    print(f"  chip error rate       : {optimum.chip_error_rate:.1%}")
    print(f"  Wi-Fi payload to send : {len(optimum.payload)} bytes")

    # 4) The paper's point about quantization: an arbitrary scale wastes the
    #    64-QAM constellation and degrades the emulation.
    rows = []
    for scale in (0.25, 0.5, 1.0, 2.0, 4.0):
        alpha = optimum.alpha * scale
        res = emulator.emulate(designed, target_chips=chips, alpha=alpha)
        rows.append(
            [
                f"{scale:.2f} x alpha*",
                alpha,
                res.quantization_error,
                res.evm,
                res.chip_error_rate,
            ]
        )
    print()
    print(
        render_table(
            ["scale", "alpha", "E(alpha)", "EVM", "chip errors"],
            rows,
            title="Quantization-scale ablation (Eqs. 1-2)",
        )
    )
    best = min(rows, key=lambda r: r[2])
    assert best[0] == "1.00 x alpha*", "optimised alpha must minimise E(alpha)"

    # Sanity: alpha* really is the argmin over a dense grid.
    targets = emulator.designed_points(designed).ravel()
    grid_alpha = optimize_alpha(targets)
    print(f"\nbracket search alpha* = {grid_alpha:.4f} (matches pipeline)")

    # 5) What the victim sees: its correlator despreads the EmuBee chips
    #    into symbols, the frame decoder chews on them and finds nothing.
    rx_chips = zigbee.oqpsk_demodulate(optimum.emulated)
    usable = rx_chips.size - rx_chips.size % zigbee.CHIPS_PER_SYMBOL
    symbols, _ = zigbee.despread(rx_chips[:usable])
    decoded = zigbee.symbols_to_bytes(symbols[: len(payload) * 2])
    print(f"victim decodes bytes  : {decoded.hex()}")
    agreement = np.mean(
        np.frombuffer(decoded, np.uint8) == np.frombuffer(payload, np.uint8)
    )
    print(f"byte-level agreement  : {agreement:.0%}")

    report = FrameListener().listen(decoded)
    print(f"frame decoder verdict : {report.outcome.value} ({report.error})")
    print(f"receiver time burned  : {report.busy_octets} octet-times")

    stealth = stealth_assessment(JammerSignalType.EMUBEE, [decoded] * 20)
    noise = stealth_assessment(
        JammerSignalType.WIFI, [b"\x5a\xc3" * 16] * 20
    )
    print(
        f"\nwatchdog detection rate: EmuBee {stealth.detection_rate:.0%} "
        f"vs plain Wi-Fi noise {noise.detection_rate:.0%} "
        "(the stealthiness argument of paper §II-B)"
    )


if __name__ == "__main__":
    main()
