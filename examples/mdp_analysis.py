#!/usr/bin/env python3
"""Analysis of the anti-jamming MDP: the structural results of §III-B.

Numerically demonstrates, on exactly-solved MDPs:

* Lemma III.2 — Q*(n, (stay, p)) decreases in the streak n;
* Lemma III.3 — Q*(n, (hop, p)) increases in n;
* Theorem III.4 — the optimal policy is a threshold policy with some n*;
* Theorem III.5 — n* falls as L_J grows, rises with L_H and with the
  sweep cycle ⌈K/m⌉;
* Theorem III.1 — value iteration contracts geometrically (Banach).

Run:  python examples/mdp_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import render_table
from repro.core.mdp import AntiJammingMDP, MDPConfig
from repro.core.solver import (
    hop_q_profile,
    is_threshold_policy,
    stay_q_profile,
    value_iteration,
)


def q_profiles() -> None:
    mdp = AntiJammingMDP(MDPConfig(sweep_cycle_override=8, jammer_mode="max"))
    solution = value_iteration(mdp)
    rows = []
    for i, n in enumerate(mdp.streak_states):
        rows.append(
            [
                n,
                stay_q_profile(solution, 0)[i],
                hop_q_profile(solution, 0)[i],
                "hop" if solution.action(n).hop else "stay",
            ]
        )
    print(
        render_table(
            ["streak n", "Q*(n, stay)", "Q*(n, hop)", "pi*(n)"],
            rows,
            title="Lemmas III.2/III.3: monotone Q profiles (sweep cycle 8)",
            digits=2,
        )
    )
    assert is_threshold_policy(solution)
    print(f"threshold policy confirmed; n* = {solution.hop_threshold()}\n")


def threshold_trends() -> None:
    print("Theorem III.5: movement of the threshold n*\n")

    rows = []
    for lj in (10, 50, 100, 200, 400):
        sol = value_iteration(AntiJammingMDP(MDPConfig(loss_jam=float(lj))))
        rows.append([f"L_J = {lj}", sol.hop_threshold()])
    print(render_table(["increasing L_J", "n*"], rows))
    print("  -> n* decreases: a costlier jam makes the victim hop sooner.\n")

    rows = []
    for lh in (1, 25, 50, 100, 300):
        sol = value_iteration(AntiJammingMDP(MDPConfig(loss_hop=float(lh))))
        rows.append([f"L_H = {lh}", sol.hop_threshold()])
    print(render_table(["increasing L_H", "n*"], rows))
    print("  -> n* increases: costlier hops are postponed.\n")

    rows = []
    for cycle in (3, 5, 8, 12, 15):
        sol = value_iteration(
            AntiJammingMDP(MDPConfig(sweep_cycle_override=cycle))
        )
        rows.append([f"ceil(K/m) = {cycle}", sol.hop_threshold()])
    print(render_table(["increasing sweep cycle", "n*"], rows))
    print("  -> n* increases: a slower sweep lets the victim linger.\n")


def contraction() -> None:
    mdp = AntiJammingMDP()
    P = mdp.kernel_matrix()
    R = mdp.reward_matrix()
    gamma = mdp.config.discount
    V = np.zeros(mdp.num_states)
    residuals = []
    for _ in range(60):
        V_new = (R + gamma * (P @ V)).max(axis=1)
        residuals.append(float(np.max(np.abs(V_new - V))))
        V = V_new
    ratios = [b / a for a, b in zip(residuals[5:], residuals[6:]) if a > 0]
    print("Theorem III.1: Banach contraction of the Bellman operator")
    print(f"  empirical contraction factor ~ {np.mean(ratios):.4f}")
    print(f"  discount factor gamma        = {gamma}")
    assert max(ratios) <= gamma + 1e-6
    print("  residual shrinks by at most gamma per sweep, as proved.\n")


def main() -> None:
    q_profiles()
    threshold_trends()
    contraction()
    print("All structural results verified numerically.")


if __name__ == "__main__":
    main()
