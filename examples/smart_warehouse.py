#!/usr/bin/env python3
"""Smart-warehouse scenario: a dense heterogeneous deployment under attack.

The paper's introduction motivates the threat with "future warehouses for
smart manufacturing": dense ZigBee sensor networks sharing 2.4 GHz with
Wi-Fi equipment, where a single compromised Wi-Fi device can jam four
ZigBee channels at a time. This example builds that scene with the field
simulator:

* a ZigBee star network of inventory sensors streaming to a hub on 3 s
  time slots, with the calibrated CC26X2-class timing model;
* a Wi-Fi EmuBee jammer sweeping the band, in both attack modes
  (high-performance max-power and hidden random-power);
* three defences — Passive FH, Random FH, and the exact MDP-optimal
  hybrid FH+PC strategy — measured by goodput and Table-I metrics;
* a link-budget view of how far the jammer can stand and still matter.

Run:  python examples/smart_warehouse.py  [--slots 400]
"""

from __future__ import annotations

import argparse

from repro.analysis.tables import render_table
from repro.channel.link import JammerSignalType, LinkBudget
from repro.constants import WIFI_TX_POWER_DBM, ZIGBEE_TX_POWER_DBM
from repro.sim.field import FieldConfig, FieldExperiment, StatePolicyAdapter
from repro.sim.scenario import field_jammer_config, paper_defaults, scheme_policy


def jammer_reach() -> None:
    """How close must the rogue Wi-Fi forklift scanner be to matter?"""
    budget = LinkBudget()
    rows = []
    for d in (2, 5, 8, 12, 20, 30):
        per = {
            name: budget.jamming_per(
                link_distance_m=3.0,
                jammer_distance_m=float(d),
                signal_type=sig,
                victim_tx_dbm=ZIGBEE_TX_POWER_DBM,
                jammer_tx_dbm=tx,
            )
            for name, (sig, tx) in {
                "EmuBee": (JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM),
                "plain Wi-Fi": (JammerSignalType.WIFI, WIFI_TX_POWER_DBM),
            }.items()
        }
        rows.append([d, per["EmuBee"], per["plain Wi-Fi"]])
    print(
        render_table(
            ["jammer distance (m)", "PER, EmuBee", "PER, plain Wi-Fi"],
            rows,
            title="Reach of a rogue Wi-Fi device against a 3 m sensor link",
        )
    )
    print(
        "  The emulated attack stays lethal an order of magnitude farther\n"
        "  than raw Wi-Fi interference (paper Fig. 2(b)).\n"
    )


def defend(jammer_mode: str, slots: int, seed: int) -> None:
    defaults = paper_defaults(jammer_mode=jammer_mode)
    mdp = defaults.mdp
    schemes = {
        "undefended hub": None,
        "Passive FH": scheme_policy("psv", mdp),
        "Random FH": scheme_policy("rand", mdp, seed=seed),
        "hybrid FH+PC (optimal)": scheme_policy("optimal", mdp),
    }
    rows = []
    baseline_goodput = None
    for name, policy in schemes.items():
        if policy is None:
            # Undefended: fixed channel, minimum power.
            from repro.core.baselines import NoDefensePolicy

            policy = NoDefensePolicy()
        adapter = StatePolicyAdapter(policy, mdp, seed=seed + hash(name) % 1000)
        cfg = FieldConfig(
            mdp=mdp,
            jammer=field_jammer_config(defaults),
            num_peripherals=6,  # a denser warehouse cell
        )
        result = FieldExperiment(cfg, adapter, seed=seed).run_experiment(slots)
        rows.append(
            [
                name,
                result.goodput_pkts_per_slot,
                result.metrics.success_rate,
                result.metrics.fh_adoption_rate,
                result.metrics.pc_adoption_rate,
            ]
        )
        if baseline_goodput is None:
            baseline_goodput = result.goodput_pkts_per_slot
    print(
        render_table(
            ["defence", "goodput (pkts/slot)", "S_T", "A_H", "A_P"],
            rows,
            title=f"Warehouse cell vs {jammer_mode}-power EmuBee jammer "
            f"({slots} slots, 6 sensors)",
        )
    )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=400)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    jammer_reach()
    for mode in ("max", "random"):
        defend(mode, args.slots, args.seed)
    print(
        "Against the hidden (random-power) jammer, power control starts\n"
        "paying off — the hybrid strategy leans on PC, exactly the trade\n"
        "the paper's Figs. 7-8 chart."
    )


if __name__ == "__main__":
    main()
