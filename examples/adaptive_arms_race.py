#!/usr/bin/env python3
"""Arms race: smarter jammers vs smarter victims, with the energy bill.

The paper's jammer sweeps channels uniformly at random. What if it
doesn't? This example pits three sweep strategies (the paper's random
search, a naive rotation, and a memory-guided adaptive search) against
two victims (the unpredictable MDP optimum and a creature-of-habit victim
that ping-pongs between favourite channels), then prices each defence in
millijoules per successfully delivered slot — the §IV-C-2 energy view.

Run:  python examples/adaptive_arms_race.py  [--slots 8000]
"""

from __future__ import annotations

import argparse

from repro.analysis.tables import render_table
from repro.core.envs import SweepJammingEnv
from repro.core.mdp import AntiJammingMDP, MDPConfig
from repro.core.metrics import SlotLog
from repro.core.policy import ThresholdPolicy, policy_from_solution_map
from repro.core.solver import value_iteration
from repro.jamming.strategies import make_strategy, strategy_options
from repro.net.energy import energy_of_run

STRATEGIES = ("random", "sequential", "adaptive")


def make_sweep(name: str, num_blocks: int, seed: int):
    """Seed the randomised strategies; sequential rejects a seed."""
    seeded = "seed" in strategy_options(name)
    return make_strategy(name, num_blocks, seed=seed if seeded else None)


def run_uniform_victim(strategy_name: str, slots: int, seed: int):
    """The exact MDP optimum, hopping uniformly (nothing to learn from)."""
    cfg = MDPConfig(jammer_mode="max")
    policy = policy_from_solution_map(
        value_iteration(AntiJammingMDP(cfg)).policy_map()
    )
    env = SweepJammingEnv(
        cfg,
        seed=seed,
        sweep_strategy=make_sweep(strategy_name, cfg.sweep_cycle, seed),
    )
    log = SlotLog(keep_history=True)
    for _ in range(slots):
        _, _, info = env.step_action(policy.action(env.state))
        log.record(info)
    return log


def run_habitual_victim(strategy_name: str, slots: int, seed: int):
    """A victim that alternates between two favourite channels when hopping."""
    cfg = MDPConfig(jammer_mode="max")
    policy = ThresholdPolicy(threshold=3, stay_power_index=0, hop_power_index=0)
    env = SweepJammingEnv(
        cfg,
        seed=seed,
        sweep_strategy=make_sweep(strategy_name, cfg.sweep_cycle, seed),
    )
    log = SlotLog(keep_history=True)
    favourites = (2, 10)
    current = favourites[0]
    for _ in range(slots):
        action = policy.action(env.state)
        if action.hop:
            current = favourites[(favourites.index(current) + 1) % 2]
        _, _, info = env.step_index(
            env.channel_power_to_action(current, action.power_index)
        )
        log.record(info)
    return log


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slots", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    rows = []
    for strategy in STRATEGIES:
        uniform = run_uniform_victim(strategy, args.slots, args.seed)
        habitual = run_habitual_victim(strategy, args.slots, args.seed)
        rows.append(
            [
                strategy,
                uniform.summary().success_rate,
                habitual.summary().success_rate,
            ]
        )
    print(
        render_table(
            ["jammer sweep", "S_T vs unpredictable victim",
             "S_T vs habitual victim"],
            rows,
            title="Arms race: sweep strategy vs victim predictability",
        )
    )
    print(
        "\nThe adaptive jammer only profits from predictability — random\n"
        "hopping (what the MDP optimum and a well-trained DQN do) is the\n"
        "defence's real armour.\n"
    )

    # The energy ledger of the defended victim under the adaptive attacker.
    log = run_uniform_victim("adaptive", args.slots, args.seed)
    energy = energy_of_run(log.history)
    summary = log.summary()
    print(
        render_table(
            ["metric", "value"],
            [
                ["S_T under adaptive jamming", summary.success_rate],
                ["energy per slot (mJ)", energy.mean_mj_per_slot],
                ["energy per useful slot (mJ)", energy.mj_per_successful_slot],
                ["coin-cell lifetime (days)", energy.lifetime_days()],
            ],
            title="Energy bill of the optimal defence (CR2032-class cell)",
        )
    )


if __name__ == "__main__":
    main()
