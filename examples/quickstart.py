#!/usr/bin/env python3
"""Quickstart: defend a ZigBee network against a cross-technology jammer.

Reproduces the paper's headline loop end to end:

1. build the anti-jamming MDP with the paper's §IV-A parameters;
2. solve it exactly (value iteration) to see the threshold structure of
   Theorem III.4;
3. train the DQN of §III-C against the mechanistic sweeping jammer;
4. evaluate both, plus the Passive-FH and Random-FH baselines, over
   20 000 time slots and print the Table-I metrics.

Run:  python examples/quickstart.py  [--fast]
"""

from __future__ import annotations

import argparse

from repro.analysis.tables import render_table
from repro.core import (
    AntiJammingMDP,
    MDPConfig,
    PassiveFHPolicy,
    RandomFHPolicy,
    SweepJammingEnv,
    TrainerConfig,
    evaluate_dqn,
    evaluate_policy,
    policy_from_solution_map,
    train_dqn,
    value_iteration,
)
from repro.nn.serialize import artifact_size_bytes, parameter_count


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="shorter training/eval budgets"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    slots = 4_000 if args.fast else 20_000
    episodes = 40 if args.fast else 100

    # 1) The competition MDP with the paper's defaults: K = 16 channels,
    #    Wi-Fi jammer covering m = 4 at a time, L_H = 50, L_J = 100,
    #    victim powers 6..15 vs jammer powers 11..20.
    config = MDPConfig(jammer_mode="max")
    mdp = AntiJammingMDP(config)
    print(mdp.describe())

    # 2) Exact solution: the optimal policy is a threshold policy in the
    #    streak (stay while fresh, hop when the sweep closes in).
    solution = value_iteration(mdp)
    print("\nOptimal policy (value iteration):")
    for state in mdp.states:
        print(f"  state {state!s:>2}: {solution.action(state).describe(config)}")
    print(f"  hop threshold n* = {solution.hop_threshold()}")

    # 3) Train the DQN on the mechanistic sweep-jammer environment.
    print("\nTraining the DQN (this takes a minute or two) ...")
    result = train_dqn(
        config,
        trainer=TrainerConfig(episodes=episodes, steps_per_episode=400),
        seed=args.seed,
    )
    net = result.agent.network()
    print(
        f"  {result.steps} environment steps, "
        f"mean reward {result.reward_history[:3].mean():.1f} -> "
        f"{result.reward_history[-3:].mean():.1f}"
    )
    print(
        f"  deployable artifact: {parameter_count(net)} floats "
        f"({artifact_size_bytes(net) / 1024:.1f} KB) — the paper ships 10 664"
    )

    # 4) Evaluate everything on identical environments.
    rows = []
    dqn_metrics = evaluate_dqn(result.agent, config, slots=slots, seed=args.seed + 1)
    rows.append(["DQN (RL FH)", *_metric_row(dqn_metrics)])

    optimal = policy_from_solution_map(solution.policy_map())
    for name, policy in [
        ("exact optimum", optimal),
        ("Passive FH", PassiveFHPolicy(config)),
        ("Random FH", RandomFHPolicy(config, seed=args.seed)),
    ]:
        env = SweepJammingEnv(config, seed=args.seed + 1)
        rows.append([name, *_metric_row(evaluate_policy(env, policy, slots=slots))])

    print()
    print(
        render_table(
            ["scheme", "S_T", "A_H", "S_H", "A_P", "S_P"],
            rows,
            title=f"Table-I metrics over {slots} slots (max-power jammer)",
        )
    )
    print(
        "\nThe paper reports the RL scheme sustaining ~78% transmission "
        "success against the sweeping cross-technology jammer, versus ~38%/"
        "~54% for the passive/random baselines (Fig. 11a)."
    )


def _metric_row(m) -> list[float]:
    return [
        m.success_rate,
        m.fh_adoption_rate,
        m.fh_success_rate,
        m.pc_adoption_rate,
        m.pc_success_rate,
    ]


if __name__ == "__main__":
    main()
