"""repro — reproduction of "Defending against Cross-Technology Jamming in
Heterogeneous IoT Systems" (Yu, Lin, Zhang, Guo — IEEE ICDCS 2022).

The library implements, from scratch:

* the cross-technology jamming attack: a full 802.11 OFDM PHY, a full
  802.15.4 O-QPSK/DSSS PHY, and the EmuBee waveform emulator with the
  paper's optimised α-scaled 64-QAM quantization (:mod:`repro.phy`);
* the RF substrate that ranks jamming signals the way Fig. 2(b) does
  (:mod:`repro.channel`) and the time-domain sweeping jammer
  (:mod:`repro.jamming`);
* the defence: the anti-jamming MDP with its exact solvers and structural
  theorems, and the DQN that learns the hybrid frequency-hopping +
  power-control strategy (:mod:`repro.core`, :mod:`repro.nn`);
* the evaluation harness: the slotted ZigBee star network with calibrated
  hardware timings and the field-experiment simulator behind Figs. 9–11
  (:mod:`repro.net`, :mod:`repro.sim`, :mod:`repro.analysis`).

Quickstart::

    from repro.core import MDPConfig, train_dqn, evaluate_dqn

    config = MDPConfig(jammer_mode="max")     # paper §IV-A defaults
    result = train_dqn(config, seed=0)
    metrics = evaluate_dqn(result.agent, config, slots=20_000)
    print(f"success rate under jamming: {metrics.success_rate:.1%}")
"""

from repro.core.dqn import DQNAgent, DQNConfig
from repro.core.mdp import Action, AntiJammingMDP, JammerMode, MDPConfig
from repro.core.metrics import MetricSummary
from repro.core.solver import value_iteration
from repro.core.trainer import TrainerConfig, evaluate_dqn, train_dqn
from repro.errors import ReproError
from repro.phy.emulation import WaveformEmulator
from repro.phy.wifi import WifiPhy, WifiPhyConfig
from repro.phy.zigbee import ZigBeePhy, ZigBeePhyConfig

__version__ = "1.0.0"

#: Citation for the reproduced paper.
PAPER = (
    "S. Yu, C. Lin, X. Zhang, L. Guo, "
    '"Defending against Cross-Technology Jamming in Heterogeneous IoT '
    'Systems", IEEE ICDCS 2022, DOI 10.1109/ICDCS54860.2022.00073'
)

__all__ = [
    "DQNAgent",
    "DQNConfig",
    "Action",
    "AntiJammingMDP",
    "JammerMode",
    "MDPConfig",
    "MetricSummary",
    "value_iteration",
    "TrainerConfig",
    "evaluate_dqn",
    "train_dqn",
    "ReproError",
    "WaveformEmulator",
    "WifiPhy",
    "WifiPhyConfig",
    "ZigBeePhy",
    "ZigBeePhyConfig",
    "PAPER",
    "__version__",
]
