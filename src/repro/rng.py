"""Deterministic random-number management.

Every stochastic component in the library takes either a seed or a
:class:`numpy.random.Generator`. This module centralises the coercion logic
and provides independent child streams so that, e.g., the jammer's sweep
order and the victim's exploration noise never share a stream (which would
make results depend on call ordering).
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can be
    wired to share a stream when a caller explicitly wants that.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators of ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive(seed: SeedLike, stream: str) -> np.random.Generator:
    """Derive a named, reproducible stream from ``seed``.

    Unlike :func:`spawn`, the result depends only on ``seed`` and ``stream``
    (never on how many other streams were derived first), which keeps
    experiment components reproducible when new components are added.
    """
    if isinstance(seed, np.random.Generator):
        # Generators carry no recoverable seed; fall back to drawing one.
        base = int(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    elif seed is None:
        base = 0
    else:
        base = int(seed)
    tag = np.frombuffer(stream.encode("utf-8"), dtype=np.uint8)
    mix = np.random.SeedSequence([base, *tag.tolist()])
    return np.random.default_rng(mix)


def stable_hash(*parts: object) -> str:
    """Deterministic short digest of the ``repr`` of ``parts``.

    Unlike builtin :func:`hash`, the result does not depend on
    ``PYTHONHASHSEED`` or the process, so stream tags built from it are
    reproducible across runs and across pool workers. Only use with
    objects whose ``repr`` is deterministic (numbers, strings, tuples,
    dataclasses of those).
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()[:16]


def check_probability(p: float, name: str = "probability") -> float:
    """Validate that ``p`` lies in [0, 1] and return it as a float."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p


__all__ = [
    "SeedLike",
    "make_rng",
    "spawn",
    "derive",
    "stable_hash",
    "check_probability",
]
