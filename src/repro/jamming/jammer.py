"""Time-domain cross-technology jammer for the field simulator.

Unlike the slot-aligned jammer inside :mod:`repro.core.envs`, this jammer
runs on its own clock: every ``slot_duration_s`` it makes one decision —
sweep the next unvisited block of ZigBee channels, camp on the victim, or
spend the interval re-acquiring a lost victim. Fig. 11(b) varies this
duration against a fixed victim slot to show both faster *and* slower
jammers degrade the defence differently.

The adversary model is pluggable (:attr:`FieldJammerConfig.adversary`):
beyond the paper's proactive sweep/camp jammer this module carries the
*configs* for the harder adversaries of :mod:`repro.jamming.adversary` —
a reactive jammer with a sense→classify→transmit budget
(:class:`ReactiveJammerConfig`) and a follower that chases hops with a
lag (:class:`FollowerJammerConfig`).

Clock contract
--------------

:meth:`FieldJammer.attack_profile` advances a monotone clock: every call
must start at or after the previous window's end (gaps are fine — the
jammer simply makes its next decision late). Handing it a window that
starts *before* the last advanced time would replay decisions against
stale ``_active_block``/``_next_decision`` state, so it raises
:class:`~repro.errors.ConfigurationError` instead. :meth:`FieldJammer.reset`
rewinds the clock to zero along with all attack state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DEFAULT_JAMMER_POWER_LEVELS,
    NUM_ZIGBEE_CHANNELS,
    ZIGBEE_CHANNELS_PER_WIFI,
)
from repro.core.mdp import JammerMode
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng

#: Adversary models :func:`repro.jamming.adversary.make_field_jammer`
#: understands. ``sweep`` is the paper's proactive jammer.
ADVERSARIES = ("sweep", "reactive", "follower", "learning")

#: Tolerance for float jitter when validating the monotone clock.
_CLOCK_EPS = 1e-9


def channel_blocks(num_channels: int, jam_width: int) -> list[tuple[int, ...]]:
    """Partition ``num_channels`` into ``ceil(C/m)`` contiguous jam blocks."""
    num_blocks = -(-num_channels // jam_width)
    bounds = np.linspace(0, num_channels, num_blocks + 1).astype(int)
    return [tuple(range(bounds[i], bounds[i + 1])) for i in range(num_blocks)]


def block_index(blocks: list[tuple[int, ...]], channel: int) -> int:
    """Index of the block containing ``channel``."""
    for i, block in enumerate(blocks):
        if channel in block:
            return i
    raise ConfigurationError(f"channel {channel} is in no block")


@dataclass(frozen=True)
class ReactiveJammerConfig:
    """Sense→classify→transmit budget of a reactive jammer.

    The defaults describe an *ideal* reactive jammer — perfect detection,
    zero turnaround, unbounded duty cycle — which behaves bit-for-bit like
    the paper's proactive sweep/camp jammer (the acquisition sweep still
    transmits, per ``transmit_on_sweep``). Every knob away from the
    defaults weakens or sharpens it:

    * ``sensitivity_dbm`` / ``victim_rx_dbm`` — the energy-detection
      threshold and how loud the victim appears at the jammer. A victim
      below the threshold is never classified, so the jammer never camps.
    * ``detection_probability`` — per-sense chance that an audible victim
      in the sensed block is actually noticed.
    * ``response_latency_s`` — sensing + classification + TX turnaround
      paid at the start of every attacking decision, shaving that much off
      each jamming burst.
    * ``duty_cycle`` — transmit-time budget as a fraction of wall time
      (token bucket, one jammer slot of burst capacity). Exhausted budget
      forces idle decisions — the resource deception defences drain.
    * ``eavesdrop_probability`` — chance of overhearing the FH negotiation
      when the victim escapes (the ACK side-channel), re-acquiring the new
      block without sweeping for it.
    * ``decoy_discrimination`` — per-sense chance of unmasking a decoy
      transmission; below 1.0 the jammer can be baited into camping on
      (and burning duty against) a decoy's block.
    * ``transmit_on_sweep`` — ``True`` is the paper's sweep-and-jam
      acquisition; ``False`` is a classic sense-only reactive jammer that
      transmits nothing until it has classified a target.
    """

    sensitivity_dbm: float = -85.0
    victim_rx_dbm: float = -60.0
    detection_probability: float = 1.0
    response_latency_s: float = 0.0
    duty_cycle: float = 1.0
    eavesdrop_probability: float = 0.0
    decoy_discrimination: float = 0.0
    transmit_on_sweep: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_probability <= 1.0:
            raise ConfigurationError("detection probability must be in [0, 1]")
        if self.response_latency_s < 0.0:
            raise ConfigurationError("response latency cannot be negative")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty cycle must lie in (0, 1]")
        if not 0.0 <= self.eavesdrop_probability <= 1.0:
            raise ConfigurationError("eavesdrop probability must be in [0, 1]")
        if not 0.0 <= self.decoy_discrimination <= 1.0:
            raise ConfigurationError("decoy discrimination must be in [0, 1]")

    @property
    def is_ideal(self) -> bool:
        """Whether this config degenerates to the proactive sweep/camp jammer."""
        return (
            self.detection_probability >= 1.0
            and self.response_latency_s == 0.0
            and self.duty_cycle >= 1.0
            and self.eavesdrop_probability == 0.0
            and self.transmit_on_sweep
            and self.victim_rx_dbm >= self.sensitivity_dbm
        )


@dataclass(frozen=True)
class FollowerJammerConfig:
    """A follower jammer chasing the victim's hops with a processing lag.

    Each jammer slot it wideband-senses the victim's current channel (if
    audible above ``sensitivity_dbm``) and attacks the block the victim
    occupied ``lag_slots`` decisions ago. ``lag_slots=0`` is a perfect
    follower; against per-slot FHSS a lag of 1 only connects when the
    victim *stays*.
    """

    lag_slots: int = 1
    sensitivity_dbm: float = -85.0
    victim_rx_dbm: float = -60.0

    def __post_init__(self) -> None:
        if self.lag_slots < 0:
            raise ConfigurationError("follower lag cannot be negative")


@dataclass(frozen=True)
class FieldJammerConfig:
    """Parameters of the time-domain jammer."""

    slot_duration_s: float = 3.0
    num_channels: int = NUM_ZIGBEE_CHANNELS
    jam_width: int = ZIGBEE_CHANNELS_PER_WIFI
    power_levels: tuple[float, ...] = DEFAULT_JAMMER_POWER_LEVELS
    mode: str = JammerMode.MAX
    #: Which adversary model drives the clock (see :data:`ADVERSARIES`);
    #: anything beyond ``sweep`` is built by
    #: :func:`repro.jamming.adversary.make_field_jammer`.
    adversary: str = "sweep"
    #: Sweep-order strategy name (see :func:`repro.jamming.strategies.make_strategy`).
    sweep_strategy: str = "random"
    #: Extra strategy options as (name, value) pairs — kept as a tuple so
    #: the config stays frozen/hashable/picklable for shard dispatch.
    strategy_options: tuple[tuple[str, object], ...] = ()
    reactive: ReactiveJammerConfig | None = None
    follower: FollowerJammerConfig | None = None
    #: Trained jammer DQN for ``adversary="learning"`` (self-play output).
    learning_agent: object | None = None

    def __post_init__(self) -> None:
        if self.slot_duration_s <= 0:
            raise ConfigurationError("jammer slot duration must be positive")
        if not 1 <= self.jam_width <= self.num_channels:
            raise ConfigurationError("jam width out of range")
        if not self.power_levels:
            raise ConfigurationError("jammer needs at least one power level")
        if self.mode not in JammerMode.ALL:
            raise ConfigurationError(f"unknown jammer mode {self.mode!r}")
        if self.adversary not in ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary {self.adversary!r}; expected one of "
                f"{ADVERSARIES}"
            )

    @property
    def num_blocks(self) -> int:
        return -(-self.num_channels // self.jam_width)


@dataclass(frozen=True)
class AttackProfile:
    """What the jammer did to a victim's slot window."""

    jammed_fraction: float  # fraction of the window under attack
    attempted: bool  # any overlap between attack and window
    max_power: float  # strongest jamming level seen in the window

    @property
    def clean(self) -> bool:
        return not self.attempted


class FieldJammer:
    """Sweep/camp jammer advanced lazily along the time axis.

    The sweep order is pluggable (see :mod:`repro.jamming.strategies`);
    the default :class:`~repro.jamming.strategies.RandomSweep` is the
    paper's uniform without-replacement search. Subclasses implement the
    harder adversaries by overriding :meth:`_decide` — the window/segment
    accounting (including attacks that start mid-decision via
    ``_active_from``) lives here.
    """

    def __init__(
        self,
        config: FieldJammerConfig | None = None,
        *,
        seed: SeedLike = None,
        strategy=None,
    ) -> None:
        from repro.jamming.strategies import make_strategy, strategy_options

        self.config = config or FieldJammerConfig()
        self._rng = make_rng(seed)
        cfg = self.config
        self.blocks: list[tuple[int, ...]] = channel_blocks(
            cfg.num_channels, cfg.jam_width
        )
        if strategy is None:
            # The default strategy shares the jammer's rng stream (the
            # paper's jammer interleaves sweep and power draws on one
            # source); seedless strategies just don't get one.
            seeded = "seed" in strategy_options(cfg.sweep_strategy)
            strategy = make_strategy(
                cfg.sweep_strategy,
                len(self.blocks),
                seed=self._rng if seeded else None,
                **dict(cfg.strategy_options),
            )
        self.strategy = strategy
        if self.strategy.num_blocks != len(self.blocks):
            raise ConfigurationError(
                f"strategy expects {self.strategy.num_blocks} blocks; "
                f"geometry has {len(self.blocks)}"
            )
        self._jam_counters: dict[str, float] = {}
        self.reset()

    def reset(self) -> None:
        """Restart the search and rewind the clock to time zero."""
        self.strategy.reset()
        self._camping: int | None = None
        self._active_block: tuple[int, ...] = ()
        self._active_power: float = 0.0
        self._active_from: float = 0.0
        self._next_decision: float = 0.0
        self._clock: float = 0.0

    def block_of(self, channel: int) -> int:
        """Index of the jam block containing ``channel``."""
        return block_index(self.blocks, channel)

    # -- instrumentation ---------------------------------------------------------

    def _count(self, key: str, amount: float = 1.0) -> None:
        """Bump a local adversary counter (flushed via :meth:`drain_counters`)."""
        self._jam_counters[key] = self._jam_counters.get(key, 0.0) + amount

    def drain_counters(self) -> dict[str, float]:
        """Return and clear the adversary counters accumulated so far.

        Counters are process-local and survive :meth:`reset` — the field
        engines drain them once per run into the metrics registry under
        ``jam.<key>{adversary=...}`` labels. The base sweep jammer counts
        nothing; subclasses record duty spend/starvation, lock/loss
        transitions, and decoy baits here.
        """
        counters = self._jam_counters
        self._jam_counters = {}
        return counters

    # -- decision making --------------------------------------------------------

    def _power(self) -> float:
        levels = self.config.power_levels
        if self.config.mode == JammerMode.MAX:
            return levels[-1]
        return levels[int(self._rng.integers(len(levels)))]

    def _decide(self, t: float, victim_channel: int) -> None:
        """One jammer slot's decision given where the victim currently is."""
        if self._camping is not None:
            block = self.blocks[self._camping]
            if victim_channel in block:
                self._active_block = block
                self._active_power = self._power()
                self._active_from = t
                return
            # Victim escaped: burn this jammer slot re-acquiring.
            stale = self._camping
            self._camping = None
            self.strategy.notify_lost(stale)
            self._idle(t)
            return
        pick = self.strategy.next_block()
        block = self.blocks[pick]
        self._active_block = block
        self._active_power = self._power()
        self._active_from = t
        if victim_channel in block:
            self._camping = pick
            self.strategy.notify_found(pick)

    def _idle(self, t: float) -> None:
        """Transmit nothing for this decision."""
        self._active_block = ()
        self._active_power = 0.0
        self._active_from = t

    def observe_decoy(self, channel: int | None) -> None:
        """Note a decoy transmission heard during the coming window.

        The proactive jammer never senses, so this is a no-op; reactive
        subclasses can be baited by it. ``None`` clears any prior decoy.
        """

    # -- querying ------------------------------------------------------------------

    def attack_profile(
        self, window_start: float, window_end: float, victim_channel: int
    ) -> AttackProfile:
        """Advance the jammer across ``[window_start, window_end)``.

        The victim's channel is constant over the window (one victim slot).
        Returns how much of the window was attacked and at what power.

        Windows must move forward in time: ``window_start`` may not fall
        before the end of the last advanced window (see the module's clock
        contract). Use :meth:`reset` to rewind to time zero.
        """
        if window_end <= window_start:
            raise ConfigurationError("window must have positive length")
        if window_start < self._clock - _CLOCK_EPS:
            raise ConfigurationError(
                f"window starting at {window_start} begins before the jammer "
                f"clock ({self._clock}); attack_profile windows must be "
                "monotone — call reset() to rewind to time zero"
            )
        if not 0 <= victim_channel < self.config.num_channels:
            raise ConfigurationError(f"victim channel {victim_channel} out of range")
        t = window_start
        jammed = 0.0
        attempted = False
        max_power = 0.0
        while t < window_end:
            if t >= self._next_decision:
                self._decide(t, victim_channel)
                self._next_decision = (
                    max(t, self._next_decision) + self.config.slot_duration_s
                )
            seg_end = min(window_end, self._next_decision)
            if victim_channel in self._active_block and self._active_power > 0:
                covered = seg_end - max(t, self._active_from)
                if covered > 0:
                    attempted = True
                    jammed += covered
                    max_power = max(max_power, self._active_power)
            t = seg_end
        self._clock = window_end
        return AttackProfile(
            jammed_fraction=jammed / (window_end - window_start),
            attempted=attempted,
            max_power=max_power,
        )

    @property
    def is_camping(self) -> bool:
        return self._camping is not None

    @property
    def active_channels(self) -> tuple[int, ...]:
        """Channels under attack as of the last window advanced.

        Empty before the first :meth:`attack_profile` call and while the
        jammer is burning a slot re-acquiring a lost victim (or, for a
        latency-bound reactive jammer, before its turnaround completes).
        """
        attacking = self._active_power > 0 and self._active_from < self._clock
        return self._active_block if attacking else ()

    def is_attacking(self, channel: int) -> bool:
        """Whether ``channel`` sits inside the currently active attack block.

        Reflects the jammer's state as of the last window advanced by
        :meth:`attack_profile` — the query the field engines use to decide
        whether a hop vacated an attacked channel.
        """
        if not 0 <= channel < self.config.num_channels:
            raise ConfigurationError(f"channel {channel} out of range")
        return channel in self.active_channels


__all__ = [
    "ADVERSARIES",
    "channel_blocks",
    "block_index",
    "ReactiveJammerConfig",
    "FollowerJammerConfig",
    "FieldJammerConfig",
    "AttackProfile",
    "FieldJammer",
]
