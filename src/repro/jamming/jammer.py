"""Time-domain cross-technology jammer for the field simulator.

Unlike the slot-aligned jammer inside :mod:`repro.core.envs`, this jammer
runs on its own clock: every ``slot_duration_s`` it makes one decision —
sweep the next unvisited block of ZigBee channels, camp on the victim, or
spend the interval re-acquiring a lost victim. Fig. 11(b) varies this
duration against a fixed victim slot to show both faster *and* slower
jammers degrade the defence differently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DEFAULT_JAMMER_POWER_LEVELS,
    NUM_ZIGBEE_CHANNELS,
    ZIGBEE_CHANNELS_PER_WIFI,
)
from repro.core.mdp import JammerMode
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class FieldJammerConfig:
    """Parameters of the time-domain jammer."""

    slot_duration_s: float = 3.0
    num_channels: int = NUM_ZIGBEE_CHANNELS
    jam_width: int = ZIGBEE_CHANNELS_PER_WIFI
    power_levels: tuple[float, ...] = DEFAULT_JAMMER_POWER_LEVELS
    mode: str = JammerMode.MAX

    def __post_init__(self) -> None:
        if self.slot_duration_s <= 0:
            raise ConfigurationError("jammer slot duration must be positive")
        if not 1 <= self.jam_width <= self.num_channels:
            raise ConfigurationError("jam width out of range")
        if not self.power_levels:
            raise ConfigurationError("jammer needs at least one power level")
        if self.mode not in JammerMode.ALL:
            raise ConfigurationError(f"unknown jammer mode {self.mode!r}")

    @property
    def num_blocks(self) -> int:
        return -(-self.num_channels // self.jam_width)


@dataclass(frozen=True)
class AttackProfile:
    """What the jammer did to a victim's slot window."""

    jammed_fraction: float  # fraction of the window under attack
    attempted: bool  # any overlap between attack and window
    max_power: float  # strongest jamming level seen in the window

    @property
    def clean(self) -> bool:
        return not self.attempted


class FieldJammer:
    """Sweep/camp jammer advanced lazily along the time axis.

    The sweep order is pluggable (see :mod:`repro.jamming.strategies`);
    the default :class:`~repro.jamming.strategies.RandomSweep` is the
    paper's uniform without-replacement search.
    """

    def __init__(
        self,
        config: FieldJammerConfig | None = None,
        *,
        seed: SeedLike = None,
        strategy=None,
    ) -> None:
        from repro.jamming.strategies import RandomSweep

        self.config = config or FieldJammerConfig()
        self._rng = make_rng(seed)
        cfg = self.config
        bounds = np.linspace(0, cfg.num_channels, cfg.num_blocks + 1).astype(int)
        self.blocks: list[tuple[int, ...]] = [
            tuple(range(bounds[i], bounds[i + 1])) for i in range(cfg.num_blocks)
        ]
        self.strategy = strategy or RandomSweep(len(self.blocks), seed=self._rng)
        if self.strategy.num_blocks != len(self.blocks):
            raise ConfigurationError(
                f"strategy expects {self.strategy.num_blocks} blocks; "
                f"geometry has {len(self.blocks)}"
            )
        self.reset()

    def reset(self) -> None:
        self.strategy.reset()
        self._camping: int | None = None
        self._active_block: tuple[int, ...] = ()
        self._active_power: float = 0.0
        self._next_decision: float = 0.0

    # -- decision making --------------------------------------------------------

    def _power(self) -> float:
        levels = self.config.power_levels
        if self.config.mode == JammerMode.MAX:
            return levels[-1]
        return levels[int(self._rng.integers(len(levels)))]

    def _decide(self, victim_channel: int) -> None:
        """One jammer slot's decision given where the victim currently is."""
        if self._camping is not None:
            block = self.blocks[self._camping]
            if victim_channel in block:
                self._active_block = block
                self._active_power = self._power()
                return
            # Victim escaped: burn this jammer slot re-acquiring.
            stale = self._camping
            self._camping = None
            self.strategy.notify_lost(stale)
            self._active_block = ()
            self._active_power = 0.0
            return
        pick = self.strategy.next_block()
        block = self.blocks[pick]
        self._active_block = block
        self._active_power = self._power()
        if victim_channel in block:
            self._camping = pick
            self.strategy.notify_found(pick)

    # -- querying ------------------------------------------------------------------

    def attack_profile(
        self, window_start: float, window_end: float, victim_channel: int
    ) -> AttackProfile:
        """Advance the jammer across ``[window_start, window_end)``.

        The victim's channel is constant over the window (one victim slot).
        Returns how much of the window was attacked and at what power.
        """
        if window_end <= window_start:
            raise ConfigurationError("window must have positive length")
        if not 0 <= victim_channel < self.config.num_channels:
            raise ConfigurationError(f"victim channel {victim_channel} out of range")
        t = window_start
        jammed = 0.0
        attempted = False
        max_power = 0.0
        while t < window_end:
            if t >= self._next_decision:
                self._decide(victim_channel)
                self._next_decision = (
                    max(t, self._next_decision) + self.config.slot_duration_s
                )
            seg_end = min(window_end, self._next_decision)
            if victim_channel in self._active_block and self._active_power > 0:
                attempted = True
                jammed += seg_end - t
                max_power = max(max_power, self._active_power)
            t = seg_end
        return AttackProfile(
            jammed_fraction=jammed / (window_end - window_start),
            attempted=attempted,
            max_power=max_power,
        )

    @property
    def is_camping(self) -> bool:
        return self._camping is not None

    @property
    def active_channels(self) -> tuple[int, ...]:
        """Channels under attack as of the last window advanced.

        Empty before the first :meth:`attack_profile` call and while the
        jammer is burning a slot re-acquiring a lost victim.
        """
        return self._active_block if self._active_power > 0 else ()

    def is_attacking(self, channel: int) -> bool:
        """Whether ``channel`` sits inside the currently active attack block.

        Reflects the jammer's state as of the last window advanced by
        :meth:`attack_profile` — the query the field engines use to decide
        whether a hop vacated an attacked channel.
        """
        if not 0 <= channel < self.config.num_channels:
            raise ConfigurationError(f"channel {channel} out of range")
        return channel in self._active_block and self._active_power > 0


__all__ = ["FieldJammerConfig", "AttackProfile", "FieldJammer"]
