"""Victim detection (jammer side) and jamming detection (victim side).

The jammer finds its victim two ways (paper §II-C-1): energy sensing on the
swept channels, and passively eavesdropping feedback traffic (ACK/NACK).
Conversely, the victim may try to *recognise* it is being jammed; the
paper's stealthiness argument (§II-B) is that EmuBee bursts look like
legitimate-but-broken ZigBee traffic, so a format-based watchdog cannot
separate them from ordinary collisions, while a plain-noise jammer is
obvious. :func:`stealth_assessment` quantifies exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.link import JammerSignalType
from repro.errors import ConfigurationError
from repro.phy.packet import FrameListener, ListenOutcome
from repro.rng import SeedLike, make_rng


class EnergyDetector:
    """Jammer-side energy sensing over a block of channels."""

    def __init__(self, sensitivity_dbm: float = -85.0) -> None:
        self.sensitivity_dbm = sensitivity_dbm

    def detects(self, rx_power_dbm: float) -> bool:
        """Whether a victim transmission at this received power is seen."""
        return rx_power_dbm >= self.sensitivity_dbm


class AckEavesdropper:
    """Jammer-side feedback sniffing.

    The jammer "can passively listen to the feedback information, such as
    ACK/NACK" to learn whether its attack succeeded. Each victim slot
    produces feedback the eavesdropper overhears with some probability
    (it must be on the right channel at the right instant).
    """

    def __init__(self, overhear_probability: float = 0.9, *, seed: SeedLike = None) -> None:
        if not 0.0 <= overhear_probability <= 1.0:
            raise ConfigurationError("overhear probability must be in [0, 1]")
        self.overhear_probability = overhear_probability
        self._rng = make_rng(seed)

    def observe(self, victim_transmitted: bool) -> bool | None:
        """Returns the victim's slot outcome, or ``None`` when missed."""
        if self._rng.random() >= self.overhear_probability:
            return None
        return victim_transmitted


@dataclass(frozen=True)
class StealthReport:
    """How a victim-side watchdog perceives a jamming campaign."""

    signal_type: JammerSignalType
    bursts: int
    flagged_as_jamming: int
    radio_busy_octets: int

    @property
    def detection_rate(self) -> float:
        if self.bursts == 0:
            return 0.0
        return self.flagged_as_jamming / self.bursts


def stealth_assessment(
    signal_type: JammerSignalType,
    bursts: list[bytes],
) -> StealthReport:
    """Run a format-based jamming watchdog over received bursts.

    The watchdog flags a burst as jamming when it is *recognisably alien*:
    plain Wi-Fi energy carries no ZigBee preamble at all and is flagged
    immediately. EmuBee bursts synchronise the radio and decode as broken
    ZigBee frames — indistinguishable from ordinary collisions, hence
    stealthy — and standard-ZigBee jamming bursts likewise parse as (or
    decode into) plausible traffic.
    """
    listener = FrameListener()
    flagged = 0
    busy = 0
    for burst in bursts:
        report = listener.listen(burst)
        busy += report.busy_octets
        if (
            report.outcome is ListenOutcome.OCCUPIED
            and report.error == "no preamble"
        ):
            # Energy with no chip-level structure: clearly not ZigBee.
            flagged += 1
    return StealthReport(
        signal_type=signal_type,
        bursts=len(bursts),
        flagged_as_jamming=flagged,
        radio_busy_octets=busy,
    )


__all__ = [
    "EnergyDetector",
    "AckEavesdropper",
    "StealthReport",
    "stealth_assessment",
]
