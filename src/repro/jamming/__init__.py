"""The cross-technology attacker.

:mod:`repro.jamming.jammer` implements the time-domain sweeping jammer used
by the field-experiment simulator — it runs on its *own* slot cadence,
which may differ from the victim's (the Fig. 11(b) study). The slot-level
abstraction used for DQN training lives in :mod:`repro.core.envs`.

:mod:`repro.jamming.detector` models how the jammer finds its victim
(energy sensing, ACK eavesdropping) and how hard the EmuBee signal is for
the victim to recognise as jamming (stealthiness).
"""

from repro.jamming.detector import AckEavesdropper, EnergyDetector, StealthReport, stealth_assessment
from repro.jamming.jammer import AttackProfile, FieldJammer, FieldJammerConfig
from repro.jamming.strategies import (
    AdaptiveSweep,
    RandomSweep,
    SequentialSweep,
    SweepStrategy,
    make_strategy,
)

__all__ = [
    "AckEavesdropper",
    "EnergyDetector",
    "StealthReport",
    "stealth_assessment",
    "AttackProfile",
    "FieldJammer",
    "FieldJammerConfig",
    "AdaptiveSweep",
    "RandomSweep",
    "SequentialSweep",
    "SweepStrategy",
    "make_strategy",
]
