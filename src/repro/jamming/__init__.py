"""The cross-technology attacker.

:mod:`repro.jamming.jammer` implements the time-domain sweeping jammer used
by the field-experiment simulator — it runs on its *own* slot cadence,
which may differ from the victim's (the Fig. 11(b) study). The slot-level
abstraction used for DQN training lives in :mod:`repro.core.envs`.

:mod:`repro.jamming.detector` models how the jammer finds its victim
(energy sensing, ACK eavesdropping) and how hard the EmuBee signal is for
the victim to recognise as jamming (stealthiness).

:mod:`repro.jamming.adversary` goes beyond the paper's threat model with
reactive, follower, and learning jammers for both timing models.
"""

from repro.jamming.adversary import (
    FollowerFieldJammer,
    FollowerSlotJammer,
    JammerMemory,
    LearningFieldJammer,
    LearningSlotJammer,
    ReactiveFieldJammer,
    ReactiveSlotJammer,
    make_field_jammer,
    make_slot_jammer_factory,
)
from repro.jamming.detector import AckEavesdropper, EnergyDetector, StealthReport, stealth_assessment
from repro.jamming.jammer import (
    ADVERSARIES,
    AttackProfile,
    FieldJammer,
    FieldJammerConfig,
    FollowerJammerConfig,
    ReactiveJammerConfig,
    channel_blocks,
)
from repro.jamming.strategies import (
    STRATEGY_NAMES,
    AdaptiveSweep,
    RandomSweep,
    SequentialSweep,
    SweepStrategy,
    make_strategy,
    strategy_options,
)

__all__ = [
    "AckEavesdropper",
    "EnergyDetector",
    "StealthReport",
    "stealth_assessment",
    "ADVERSARIES",
    "AttackProfile",
    "FieldJammer",
    "FieldJammerConfig",
    "FollowerJammerConfig",
    "ReactiveJammerConfig",
    "channel_blocks",
    "JammerMemory",
    "ReactiveFieldJammer",
    "FollowerFieldJammer",
    "LearningFieldJammer",
    "make_field_jammer",
    "ReactiveSlotJammer",
    "FollowerSlotJammer",
    "LearningSlotJammer",
    "make_slot_jammer_factory",
    "AdaptiveSweep",
    "RandomSweep",
    "SequentialSweep",
    "SweepStrategy",
    "STRATEGY_NAMES",
    "strategy_options",
    "make_strategy",
]
