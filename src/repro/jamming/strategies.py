"""Jammer sweep strategies — how the attacker orders its search.

The paper's jammer sweeps blocks uniformly at random without replacement
(that is what induces the 1/(S-n) hazard of Eqs. 6-8). This module makes
the sweep order a pluggable strategy and adds two stronger attackers that
probe the defence beyond the paper's model:

* :class:`SequentialSweep` — a naive fixed rotation (the paper notes a
  2-slot cycle "is degraded into an alternate sweep, which is easier to
  be predicted"; this generalises that observation);
* :class:`AdaptiveSweep` — a memory-guided attacker that revisits blocks
  where it found the victim before. Victims that favour channels (as a
  lightly-trained DQN does) are punished; the uniform-hopping optimum is
  not — a counter-adaptation study the paper leaves open.
"""

from __future__ import annotations

import abc
import inspect

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


class SweepStrategy(abc.ABC):
    """Chooses which block to sweep next."""

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ConfigurationError("need at least one block")
        self.num_blocks = num_blocks

    @abc.abstractmethod
    def next_block(self) -> int:
        """Block to sweep this slot."""

    def notify_found(self, block: int) -> None:
        """The victim was found in ``block`` (camping starts)."""

    def notify_lost(self, block: int) -> None:
        """The victim left ``block`` (camping ends)."""

    def reset(self) -> None:
        """Restart the search from scratch."""


class RandomSweep(SweepStrategy):
    """The paper's jammer: uniform order without replacement per cycle."""

    def __init__(self, num_blocks: int, *, seed: SeedLike = None) -> None:
        super().__init__(num_blocks)
        self._rng = make_rng(seed)
        self._unvisited: list[int] = []

    def next_block(self) -> int:
        if not self._unvisited:
            self._unvisited = list(range(self.num_blocks))
        pick = int(self._unvisited.pop(int(self._rng.integers(len(self._unvisited)))))
        return pick

    def notify_lost(self, block: int) -> None:
        # Fresh cycle excluding the block the victim just left.
        self._unvisited = [b for b in range(self.num_blocks) if b != block]

    def reset(self) -> None:
        self._unvisited = []


class SequentialSweep(SweepStrategy):
    """Deterministic rotation 0, 1, 2, ... — trivially predictable."""

    def __init__(self, num_blocks: int, *, start: int = 0) -> None:
        super().__init__(num_blocks)
        if not 0 <= start < num_blocks:
            raise ConfigurationError("start block out of range")
        self._start = start
        self._next = start

    def next_block(self) -> int:
        pick = self._next
        self._next = (self._next + 1) % self.num_blocks
        return pick

    def notify_lost(self, block: int) -> None:
        self._next = (block + 1) % self.num_blocks

    def reset(self) -> None:
        self._next = self._start


class AdaptiveSweep(SweepStrategy):
    """Memory-guided search: prefer blocks that hosted the victim before.

    Keeps an exponentially-discounted count of past sightings per block
    and, with probability ``exploit_probability``, sweeps the
    highest-scoring not-yet-visited block of the current cycle; otherwise
    it explores uniformly. Against a victim with channel preferences this
    finds the target much faster than 1/(S-n).
    """

    def __init__(
        self,
        num_blocks: int,
        *,
        exploit_probability: float = 0.7,
        memory_decay: float = 0.9,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(num_blocks)
        if not 0.0 <= exploit_probability <= 1.0:
            raise ConfigurationError("exploit probability must be in [0, 1]")
        if not 0.0 < memory_decay <= 1.0:
            raise ConfigurationError("memory decay must lie in (0, 1]")
        self.exploit_probability = exploit_probability
        self.memory_decay = memory_decay
        self._rng = make_rng(seed)
        self._scores = np.zeros(num_blocks)
        self._unvisited: list[int] = []

    def next_block(self) -> int:
        if not self._unvisited:
            self._unvisited = list(range(self.num_blocks))
        if self._rng.random() < self.exploit_probability:
            best = max(self._unvisited, key=lambda b: (self._scores[b], -b))
            self._unvisited.remove(best)
            return int(best)
        pick = int(self._unvisited.pop(int(self._rng.integers(len(self._unvisited)))))
        return pick

    def notify_found(self, block: int) -> None:
        self._scores *= self.memory_decay
        self._scores[block] += 1.0

    def notify_lost(self, block: int) -> None:
        self._unvisited = [b for b in range(self.num_blocks) if b != block]

    def reset(self) -> None:
        self._scores[...] = 0.0
        self._unvisited = []

    def block_scores(self) -> np.ndarray:
        """Current sighting scores (diagnostics)."""
        return self._scores.copy()


_STRATEGY_CLASSES: dict[str, type[SweepStrategy]] = {
    "random": RandomSweep,
    "sequential": SequentialSweep,
    "adaptive": AdaptiveSweep,
}

#: Names :func:`make_strategy` understands, in stable order.
STRATEGY_NAMES = tuple(_STRATEGY_CLASSES)


def _lookup(name: str) -> type[SweepStrategy]:
    try:
        return _STRATEGY_CLASSES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep strategy {name!r}; expected one of "
            f"{'/'.join(STRATEGY_NAMES)}"
        ) from None


def strategy_options(name: str) -> tuple[str, ...]:
    """Keyword options the named strategy accepts (besides ``num_blocks``).

    ``"seed" in strategy_options(name)`` tells a caller whether the
    strategy is randomised at all — :class:`SequentialSweep` is not.
    """
    params = inspect.signature(_lookup(name).__init__).parameters
    return tuple(p for p in params if p not in ("self", "num_blocks"))


def make_strategy(
    name: str, num_blocks: int, *, seed: SeedLike = None, **options
) -> SweepStrategy:
    """Factory: ``random`` (paper), ``sequential``, or ``adaptive``.

    Extra keyword ``options`` are forwarded to the strategy constructor
    (e.g. ``exploit_probability``/``memory_decay`` for ``adaptive``,
    ``start`` for ``sequential``). ``seed`` is validated like any other
    option: passing one to a strategy that cannot use it (``sequential``)
    raises :class:`~repro.errors.ConfigurationError` instead of silently
    discarding it.
    """
    cls = _lookup(name)
    accepted = strategy_options(name)
    if seed is not None:
        options = {**options, "seed": seed}
    unknown = sorted(set(options) - set(accepted))
    if unknown:
        raise ConfigurationError(
            f"sweep strategy {name!r} does not accept option(s) "
            f"{', '.join(unknown)}; it takes {', '.join(accepted) or 'none'}"
        )
    return cls(num_blocks, **options)


__all__ = [
    "SweepStrategy",
    "RandomSweep",
    "SequentialSweep",
    "AdaptiveSweep",
    "STRATEGY_NAMES",
    "strategy_options",
    "make_strategy",
]
