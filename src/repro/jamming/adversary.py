"""The adversarial jammer suite — harder attackers than the paper's.

The paper's threat model is a proactive sweep/camp jammer. Related work
(reactive jammers with a sense→classify→transmit budget, follower jammers
against FHSS, learning jammers, and deception defences that bait them)
motivates four further adversaries, each available in *both* timing
models the repo simulates:

==============  =============================  ==============================
adversary       slot-aligned (``core.envs``)   time-domain (``sim.field``)
==============  =============================  ==============================
``sweep``       ``_SweepingJammer`` (paper)    :class:`~repro.jamming.jammer.FieldJammer`
``reactive``    :class:`ReactiveSlotJammer`    :class:`ReactiveFieldJammer`
``follower``    :class:`FollowerSlotJammer`    :class:`FollowerFieldJammer`
``learning``    :class:`LearningSlotJammer`    :class:`LearningFieldJammer`
==============  =============================  ==============================

:func:`make_field_jammer` dispatches on
:attr:`~repro.jamming.jammer.FieldJammerConfig.adversary`, which is how
the field experiment, the sharded grid engine, and the CLI sweeps select
an adversary; :func:`make_slot_jammer_factory` does the same for
:class:`~repro.core.envs.SweepJammingEnv`.

An *ideal* reactive jammer (perfect detection, zero latency, unbounded
duty cycle — the :class:`~repro.jamming.jammer.ReactiveJammerConfig`
defaults) consumes the same rng draws and makes the same decisions as the
proactive jammer, so its episode traces are bit-for-bit identical — the
equivalence the test suite pins. Every non-default knob changes it in a
measurable, documented way.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.constants import DEFAULT_HISTORY_LENGTH
from repro.core.envs import _SweepingJammer
from repro.core.mdp import MDPConfig
from repro.errors import ConfigurationError
from repro.jamming.detector import AckEavesdropper, EnergyDetector
from repro.jamming.jammer import (
    FieldJammer,
    FieldJammerConfig,
    FollowerJammerConfig,
    ReactiveJammerConfig,
    block_index,
)
from repro.rng import SeedLike, derive, make_rng


class JammerMemory:
    """The learning jammer's observation history — its side of the 3·I story.

    Per slot the jammer records ``(outcome, block, streak)``: whether its
    burst found the victim, which block it jammed (normalised), and how
    long the current contact streak has lasted (normalised by the block
    count). This is information a real jammer can obtain from its own
    energy sensing — it never sees the victim's internal state.
    """

    def __init__(
        self, num_blocks: int, history_length: int = DEFAULT_HISTORY_LENGTH
    ) -> None:
        if num_blocks < 1 or history_length < 1:
            raise ConfigurationError("need at least one block and history slot")
        self.num_blocks = num_blocks
        self.history_length = history_length
        self.reset()

    def reset(self) -> None:
        self._streak = 0
        self._history: list[tuple[float, float, float]] = [
            (0.0, 0.0, 0.0)
        ] * self.history_length

    def update(self, *, hit: bool, block: int) -> None:
        self._streak = self._streak + 1 if hit else 0
        self._history.pop(0)
        self._history.append(
            (
                1.0 if hit else 0.0,
                block / max(self.num_blocks - 1, 1),
                min(self._streak, self.num_blocks) / self.num_blocks,
            )
        )

    def observation(self) -> np.ndarray:
        return np.array(self._history, dtype=np.float64).reshape(-1)

    @property
    def observation_size(self) -> int:
        return 3 * self.history_length


def _check_learning_agent(agent, num_blocks: int, history_length: int) -> None:
    if agent is None:
        raise ConfigurationError(
            "the learning adversary needs a trained jammer agent "
            "(train one with repro.core.selfplay.train_selfplay)"
        )
    if agent.config.observation_size != 3 * history_length:
        raise ConfigurationError(
            f"jammer agent expects {agent.config.observation_size} inputs; "
            f"history length {history_length} provides {3 * history_length}"
        )
    if agent.config.num_actions != num_blocks:
        raise ConfigurationError(
            f"jammer agent has {agent.config.num_actions} outputs; geometry "
            f"has {num_blocks} blocks"
        )


# ---------------------------------------------------------------------------
# Time-domain adversaries (the FieldJammer clock)
# ---------------------------------------------------------------------------


class ReactiveFieldJammer(FieldJammer):
    """Sense→classify→transmit jammer on the field clock.

    Each decision starts with a sensing pass over one block (the camped
    block, or the next sweep pick). A classified target is attacked after
    ``response_latency_s`` of turnaround, for as long as the duty-cycle
    token bucket allows. Decoy transmissions
    (:class:`~repro.sim.field.DeceptionAdapter`) read as victims unless
    unmasked, baiting the jammer into camping on — and burning duty
    against — an empty block. Configured by
    :class:`~repro.jamming.jammer.ReactiveJammerConfig` (``config.reactive``).
    """

    def __init__(
        self,
        config: FieldJammerConfig | None = None,
        *,
        seed: SeedLike = None,
        strategy=None,
    ) -> None:
        cfg = config or FieldJammerConfig()
        self._rc = cfg.reactive or ReactiveJammerConfig()
        self._detector = EnergyDetector(self._rc.sensitivity_dbm)
        super().__init__(cfg, seed=seed, strategy=strategy)

    def reset(self) -> None:
        super().reset()
        rc = self._rc
        # Token bucket: one jammer slot of burst capacity, refilled at
        # ``duty_cycle`` seconds of TX per second of wall time.
        self._budget_cap = self.config.slot_duration_s
        self._budget = self._budget_cap
        self._budget_mark = 0.0
        self._tip: int | None = None
        self._decoy: int | None = None
        self._camped_decoy = False
        # Lazily created so the ideal configuration consumes no extra
        # draws from the shared stream (bit-for-bit with FieldJammer).
        self._sense_rng: np.random.Generator | None = None
        self._eavesdropper: AckEavesdropper | None = None

    def observe_decoy(self, channel: int | None) -> None:
        if channel is not None and not 0 <= channel < self.config.num_channels:
            raise ConfigurationError(f"decoy channel {channel} out of range")
        self._decoy = channel

    # -- sensing ---------------------------------------------------------------

    def _sense(self) -> np.random.Generator:
        if self._sense_rng is None:
            self._sense_rng = make_rng(int(self._rng.integers(2**63 - 1)))
        return self._sense_rng

    def _detects(self, victim_channel: int, block: tuple[int, ...]) -> bool:
        """Whether the sensing pass classifies the victim inside ``block``."""
        if victim_channel not in block:
            return False
        if not self._detector.detects(self._rc.victim_rx_dbm):
            return False
        if self._rc.detection_probability >= 1.0:
            return True
        return self._sense().random() < self._rc.detection_probability

    def _lured(self, block: tuple[int, ...]) -> bool:
        """Whether a decoy in ``block`` passes for a victim this sense."""
        if self._decoy is None or self._decoy not in block:
            return False
        if self._rc.decoy_discrimination <= 0.0:
            return True
        return self._sense().random() >= self._rc.decoy_discrimination

    def _overhears_escape(self, victim_channel: int) -> None:
        """ACK/negotiation sniffing on escape: maybe learn the new block."""
        if self._rc.eavesdrop_probability <= 0.0:
            return
        if self._eavesdropper is None:
            self._eavesdropper = AckEavesdropper(
                self._rc.eavesdrop_probability,
                seed=derive(self._sense(), "reactive-eavesdrop"),
            )
        if self._eavesdropper.observe(True) is not None:
            self._tip = self.block_of(victim_channel)

    # -- decisions -------------------------------------------------------------

    def _transmit(self, t: float, block: tuple[int, ...]) -> None:
        rc = self._rc
        if rc.duty_cycle < 1.0:
            self._budget = min(
                self._budget_cap,
                self._budget + (t - self._budget_mark) * rc.duty_cycle,
            )
            self._budget_mark = t
            cost = max(self.config.slot_duration_s - rc.response_latency_s, 0.0)
            if self._budget + 1e-12 < cost:
                self._count("duty_starved")
                self._idle(t)  # budget exhausted: sit this decision out
                return
            self._budget -= cost
            self._count("duty_spent_s", cost)
        self._active_block = block
        self._active_power = self._power()
        self._active_from = t + rc.response_latency_s

    @property
    def duty_tokens(self) -> float:
        """Remaining transmit budget in seconds (the token bucket level)."""
        return self._budget

    def _decide(self, t: float, victim_channel: int) -> None:
        rc = self._rc
        if self._camping is not None:
            block = self.blocks[self._camping]
            if self._detects(victim_channel, block) or (
                self._camped_decoy and self._lured(block)
            ):
                self._transmit(t, block)
                return
            # The camped signal vanished (victim hopped / decoy unmasked):
            # burn this decision noticing, maybe sniff where it went.
            stale = self._camping
            self._camping = None
            self._camped_decoy = False
            self._count("lock_losses")
            self.strategy.notify_lost(stale)
            self._idle(t)
            self._overhears_escape(victim_channel)
            return
        if self._tip is not None:
            pick, self._tip = self._tip, None
        else:
            pick = self.strategy.next_block()
        block = self.blocks[pick]
        detected = self._detects(victim_channel, block)
        lured = False if detected else self._lured(block)
        if detected or lured:
            self._camping = pick
            self._camped_decoy = lured
            self._count("locks")
            if lured:
                self._count("decoy_baits")
            self.strategy.notify_found(pick)
            self._transmit(t, block)
        elif rc.transmit_on_sweep:
            self._transmit(t, block)
        else:
            self._idle(t)


class FollowerFieldJammer(FieldJammer):
    """Chases the victim's hops with a configurable processing lag.

    Wideband-senses the victim's channel every jammer slot and attacks the
    block it occupied ``lag_slots`` decisions ago — the measurement →
    retune pipeline delay of follower jammers against FHSS. Idles until
    the trail is deep enough (or the victim is inaudible). Configured by
    :class:`~repro.jamming.jammer.FollowerJammerConfig` (``config.follower``).
    """

    def __init__(
        self,
        config: FieldJammerConfig | None = None,
        *,
        seed: SeedLike = None,
        strategy=None,
    ) -> None:
        cfg = config or FieldJammerConfig()
        self._fc = cfg.follower or FollowerJammerConfig()
        self._detector = EnergyDetector(self._fc.sensitivity_dbm)
        super().__init__(cfg, seed=seed, strategy=strategy)

    def reset(self) -> None:
        super().reset()
        self._trail: deque[int] = deque(maxlen=self._fc.lag_slots + 1)
        self._on_target = False

    def _mark_target(self, on_target: bool) -> None:
        """Count lock/loss transitions of the chase (trail hits victim)."""
        if on_target and not self._on_target:
            self._count("locks")
        elif not on_target and self._on_target:
            self._count("lock_losses")
        self._on_target = on_target

    def _decide(self, t: float, victim_channel: int) -> None:
        fc = self._fc
        heard = self._detector.detects(fc.victim_rx_dbm)
        self._trail.append(victim_channel if heard else -1)
        if len(self._trail) <= fc.lag_slots:
            self._mark_target(False)
            self._idle(t)
            return
        target = self._trail[0]
        if target < 0:
            self._mark_target(False)
            self._idle(t)
            return
        block = self.blocks[self.block_of(target)]
        self._mark_target(victim_channel in block)
        self._active_block = block
        self._active_power = self._power()
        self._active_from = t


class LearningFieldJammer(FieldJammer):
    """Deploys a self-play-trained jammer DQN greedily on the field clock.

    Per decision it appends the previous burst's outcome to its
    :class:`JammerMemory`, runs one greedy forward pass, and jams the
    chosen block. Greedy action selection consumes no rng, so deployment
    stays deterministic under the jammer seed.
    """

    def __init__(
        self,
        config: FieldJammerConfig | None = None,
        *,
        seed: SeedLike = None,
        strategy=None,
        history_length: int = DEFAULT_HISTORY_LENGTH,
    ) -> None:
        cfg = config or FieldJammerConfig()
        _check_learning_agent(cfg.learning_agent, cfg.num_blocks, history_length)
        self._agent = cfg.learning_agent
        self._memory = JammerMemory(cfg.num_blocks, history_length)
        super().__init__(cfg, seed=seed, strategy=strategy)

    def reset(self) -> None:
        super().reset()
        self._memory.reset()

    def _decide(self, t: float, victim_channel: int) -> None:
        action = int(self._agent.act(self._memory.observation(), greedy=True))
        block = self.blocks[action]
        hit = victim_channel in block
        self._memory.update(hit=hit, block=action)
        self._active_block = block
        self._active_power = self._power()
        self._active_from = t


def make_field_jammer(
    config: FieldJammerConfig, *, seed: SeedLike = None, strategy=None
) -> FieldJammer:
    """Build the time-domain jammer ``config.adversary`` selects."""
    if config.adversary == "sweep":
        return FieldJammer(config, seed=seed, strategy=strategy)
    if config.adversary == "reactive":
        return ReactiveFieldJammer(config, seed=seed, strategy=strategy)
    if config.adversary == "follower":
        return FollowerFieldJammer(config, seed=seed, strategy=strategy)
    if config.adversary == "learning":
        return LearningFieldJammer(config, seed=seed, strategy=strategy)
    raise ConfigurationError(f"unknown adversary {config.adversary!r}")


# ---------------------------------------------------------------------------
# Slot-aligned adversaries (SweepJammingEnv)
# ---------------------------------------------------------------------------


class ReactiveSlotJammer(_SweepingJammer):
    """Slot-aligned reactive jammer for :class:`~repro.core.envs.SweepJammingEnv`.

    Same sensing/camping logic as :class:`ReactiveFieldJammer`, quantised
    to victim slots: the duty-cycle token bucket accrues per slot, and a
    burst only counts as an attack when the post-latency transmission
    still covers at least half the slot (``slot_duration_s`` converts the
    time-domain latency knob).
    """

    def __init__(
        self,
        config: MDPConfig,
        rng: np.random.Generator,
        strategy=None,
        *,
        reactive: ReactiveJammerConfig | None = None,
        slot_duration_s: float = 3.0,
    ) -> None:
        if slot_duration_s <= 0:
            raise ConfigurationError("slot duration must be positive")
        self._rc = reactive or ReactiveJammerConfig()
        self._slot_s = slot_duration_s
        self._detector = EnergyDetector(self._rc.sensitivity_dbm)
        # Transmissions land as slot attacks only when the post-latency
        # burst covers at least half the slot (the field engine's
        # jam_state_threshold, collapsed to the binary slot world).
        self._effective = self._rc.response_latency_s < 0.5 * slot_duration_s
        self._jam_counters: dict[str, float] = {}
        super().__init__(config, rng, strategy)

    def reset(self) -> None:
        super().reset()
        self._budget = 1.0  # slots of burst capacity
        self._tip: int | None = None
        self._decoy: int | None = None
        self._camped_decoy = False
        self._sense_rng: np.random.Generator | None = None
        self._eavesdropper: AckEavesdropper | None = None

    def block_of(self, channel: int) -> int:
        return block_index(self.blocks, channel)

    def observe_decoy(self, channel: int | None) -> None:
        self._decoy = channel

    _sense = ReactiveFieldJammer._sense
    _detects = ReactiveFieldJammer._detects
    _lured = ReactiveFieldJammer._lured
    _overhears_escape = ReactiveFieldJammer._overhears_escape
    _count = FieldJammer._count
    drain_counters = FieldJammer.drain_counters

    def _burst(
        self, victim_channel: int, block: tuple[int, ...]
    ) -> tuple[bool, float, tuple[int, ...]]:
        """Transmit on ``block`` for this slot if latency/duty allow."""
        if not self._effective:
            return False, 0.0, ()
        if self._rc.duty_cycle < 1.0:
            if self._budget + 1e-12 < 1.0:
                self._count("duty_starved")
                return False, 0.0, ()
            self._budget -= 1.0
            self._count("duty_spent_slots")
        hit = victim_channel in block
        return (hit, self._power() if hit else 0.0, block)

    def observe_and_attack(
        self, victim_channel: int
    ) -> tuple[bool, float, tuple[int, ...]]:
        rc = self._rc
        if rc.duty_cycle < 1.0:
            self._budget = min(1.0, self._budget + rc.duty_cycle)
        if self._camping is not None:
            block = self.blocks[self._camping]
            if self._detects(victim_channel, block) or (
                self._camped_decoy and self._lured(block)
            ):
                return self._burst(victim_channel, block)
            stale = self._camping
            self._camping = None
            self._camped_decoy = False
            self._count("lock_losses")
            self.strategy.notify_lost(stale)
            self._overhears_escape(victim_channel)
            return False, 0.0, ()
        if self._tip is not None:
            pick, self._tip = self._tip, None
        else:
            pick = self.strategy.next_block()
        block = self.blocks[pick]
        detected = self._detects(victim_channel, block)
        lured = False if detected else self._lured(block)
        if detected or lured:
            self._camping = pick
            self._camped_decoy = lured
            self._count("locks")
            if lured:
                self._count("decoy_baits")
            self.strategy.notify_found(pick)
            return self._burst(victim_channel, block)
        if rc.transmit_on_sweep:
            return self._burst(victim_channel, block)
        return False, 0.0, ()


class FollowerSlotJammer(_SweepingJammer):
    """Slot-aligned follower: attacks the victim's channel from ``lag`` slots ago."""

    def __init__(
        self,
        config: MDPConfig,
        rng: np.random.Generator,
        strategy=None,
        *,
        follower: FollowerJammerConfig | None = None,
    ) -> None:
        self._fc = follower or FollowerJammerConfig()
        self._detector = EnergyDetector(self._fc.sensitivity_dbm)
        self._jam_counters: dict[str, float] = {}
        super().__init__(config, rng, strategy)

    def reset(self) -> None:
        super().reset()
        self._trail: deque[int] = deque(maxlen=self._fc.lag_slots + 1)
        self._on_target = False

    _count = FieldJammer._count
    drain_counters = FieldJammer.drain_counters
    _mark_target = FollowerFieldJammer._mark_target

    def observe_and_attack(
        self, victim_channel: int
    ) -> tuple[bool, float, tuple[int, ...]]:
        fc = self._fc
        heard = self._detector.detects(fc.victim_rx_dbm)
        self._trail.append(victim_channel if heard else -1)
        if len(self._trail) <= fc.lag_slots:
            self._mark_target(False)
            return False, 0.0, ()
        target = self._trail[0]
        if target < 0:
            self._mark_target(False)
            return False, 0.0, ()
        block = self.blocks[block_index(self.blocks, target)]
        hit = victim_channel in block
        self._mark_target(hit)
        return (hit, self._power() if hit else 0.0, block)


class LearningSlotJammer(_SweepingJammer):
    """Deploys a trained jammer DQN greedily inside the slot-aligned env."""

    def __init__(
        self,
        config: MDPConfig,
        rng: np.random.Generator,
        *,
        agent,
        history_length: int = DEFAULT_HISTORY_LENGTH,
    ) -> None:
        super().__init__(config, rng)
        _check_learning_agent(agent, len(self.blocks), history_length)
        self._agent = agent
        self._memory = JammerMemory(len(self.blocks), history_length)

    def reset(self) -> None:
        super().reset()
        # reset() runs from the base __init__ before _memory exists.
        if hasattr(self, "_memory"):
            self._memory.reset()

    def observe_and_attack(
        self, victim_channel: int
    ) -> tuple[bool, float, tuple[int, ...]]:
        action = int(self._agent.act(self._memory.observation(), greedy=True))
        block = self.blocks[action]
        hit = victim_channel in block
        self._memory.update(hit=hit, block=action)
        return (hit, self._power() if hit else 0.0, block)


def make_slot_jammer_factory(
    adversary: str = "sweep",
    *,
    reactive: ReactiveJammerConfig | None = None,
    follower: FollowerJammerConfig | None = None,
    agent=None,
    slot_duration_s: float = 3.0,
    history_length: int = DEFAULT_HISTORY_LENGTH,
):
    """A ``jammer_factory`` for :class:`~repro.core.envs.SweepJammingEnv`.

    Returns ``None`` for ``"sweep"`` so callers can pass the result
    straight through (the env then builds the paper's jammer itself).
    """
    if adversary == "sweep":
        return None
    if adversary == "reactive":
        return lambda config, rng: ReactiveSlotJammer(
            config, rng, reactive=reactive, slot_duration_s=slot_duration_s
        )
    if adversary == "follower":
        return lambda config, rng: FollowerSlotJammer(
            config, rng, follower=follower
        )
    if adversary == "learning":
        return lambda config, rng: LearningSlotJammer(
            config, rng, agent=agent, history_length=history_length
        )
    raise ConfigurationError(f"unknown adversary {adversary!r}")


__all__ = [
    "JammerMemory",
    "ReactiveFieldJammer",
    "FollowerFieldJammer",
    "LearningFieldJammer",
    "make_field_jammer",
    "ReactiveSlotJammer",
    "FollowerSlotJammer",
    "LearningSlotJammer",
    "make_slot_jammer_factory",
]
