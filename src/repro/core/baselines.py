"""Baseline anti-jamming schemes compared against RL FH in Fig. 11(a).

The paper implements two comparison schemes distilled from common
anti-jamming designs (e.g. Hanawal et al., Chang et al.):

* **Passive FH (PSV FH)** — react only: keep channel and power until the
  communication is actually jammed, then hop (and/or raise power).
* **Random FH (Rand FH)** — at the start of every slot pick frequency
  hopping or power control at random, regardless of what the jammer does.

Both are expressed as state policies over the same MDP interface so every
scheme runs on identical environments.
"""

from __future__ import annotations

from repro.core.mdp import J, Action, MDPConfig, State
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


class PassiveFHPolicy:
    """Hop (or escalate power) only after the communication has been jammed.

    Paper §II-C-2: the victim reacts "once the error rate exceeds a certain
    threshold" — modelled as ``react_after`` consecutive jammed slots before
    the hop is triggered. Until then it transmits at the minimum power on
    the current channel; a TJ slot (attacked but survived) is not even
    noticed. The policy is stateful: it counts failures between hops.
    """

    def __init__(
        self,
        config: MDPConfig,
        *,
        react_after: int = 3,
        escalate_power: bool = False,
    ) -> None:
        if react_after < 1:
            raise ConfigurationError("react_after must be >= 1")
        self.config = config
        self.react_after = react_after
        self.escalate_power = escalate_power
        self._consecutive_failures = 0

    def reset(self) -> None:
        self._consecutive_failures = 0

    def action(self, state: State) -> Action:
        top = self.config.num_power_levels - 1
        if state == J:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.react_after:
                self._consecutive_failures = 0
                return Action(
                    hop=True, power_index=top if self.escalate_power else 0
                )
            return Action(hop=False, power_index=0)
        self._consecutive_failures = 0
        return Action(hop=False, power_index=0)


class RandomFHPolicy:
    """Pick FH or PC uniformly at random at the start of every slot.

    A PC slot keeps the channel and draws a uniformly random power level; an
    FH slot hops and transmits at the minimum power.
    """

    def __init__(
        self,
        config: MDPConfig,
        *,
        hop_probability: float = 0.5,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 <= hop_probability <= 1.0:
            raise ConfigurationError(
                f"hop probability must be in [0, 1], got {hop_probability}"
            )
        self.config = config
        self.hop_probability = hop_probability
        self._rng = make_rng(seed)

    def action(self, state: State) -> Action:
        del state
        if self._rng.random() < self.hop_probability:
            return Action(hop=True, power_index=0)
        power = int(self._rng.integers(self.config.num_power_levels))
        return Action(hop=False, power_index=power)


class NoDefensePolicy:
    """Never hop, never raise power — the undefended lower bound."""

    def action(self, state: State) -> Action:
        del state
        return Action(hop=False, power_index=0)


class MaxPowerPolicy:
    """Always transmit at the top power level without hopping.

    Isolates the power-control arm: against a max-power jammer this is as
    futile as the paper's analysis predicts, against the random-power
    (hidden) jammer it wins whenever the jammer draws a lower level.
    """

    def __init__(self, config: MDPConfig) -> None:
        self.config = config

    def action(self, state: State) -> Action:
        del state
        return Action(hop=False, power_index=self.config.num_power_levels - 1)


__all__ = [
    "PassiveFHPolicy",
    "RandomFHPolicy",
    "NoDefensePolicy",
    "MaxPowerPolicy",
]
