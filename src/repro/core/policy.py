"""Policy abstractions: tabular, threshold-structured, and random.

The MDP's optimal policy has the threshold structure of Theorem III.4 —
stay while the streak is short, hop once it reaches n*. These classes give
that structure (and arbitrary tabular policies) a uniform callable
interface used by the environments and the metric harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol

from repro.core.mdp import TJ, J, Action, AntiJammingMDP, MDPConfig, State
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


class Policy(Protocol):
    """Anything that maps an MDP state to an action."""

    def action(self, state: State) -> Action:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class TabularPolicy:
    """A policy given explicitly as a state -> action table."""

    table: Mapping[State, Action]

    def action(self, state: State) -> Action:
        try:
            return self.table[state]
        except KeyError:
            raise ConfigurationError(f"policy has no action for state {state!r}") from None


@dataclass(frozen=True)
class ThresholdPolicy:
    """The structured optimal policy of Theorem III.4.

    Stay (with ``stay_power_index``) while the streak n < ``threshold``;
    hop (with ``hop_power_index``) at n >= threshold and from TJ/J.
    """

    threshold: int
    stay_power_index: int
    hop_power_index: int
    #: Whether to hop out of the jammed states; the paper's optimum always
    #: does once L_J is meaningful, but a degenerate stay-forever policy is
    #: useful as a worst-case baseline.
    hop_when_jammed: bool = True

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigurationError("threshold must be >= 1")

    def action(self, state: State) -> Action:
        if state in (TJ, J):
            return Action(hop=self.hop_when_jammed, power_index=self.hop_power_index)
        n = int(state)
        if n < self.threshold:
            return Action(hop=False, power_index=self.stay_power_index)
        return Action(hop=True, power_index=self.hop_power_index)


class RandomPolicy:
    """Uniformly random action each slot (the exploration floor)."""

    def __init__(self, mdp: AntiJammingMDP, seed: SeedLike = None) -> None:
        self._actions = mdp.actions
        self._rng = make_rng(seed)

    def action(self, state: State) -> Action:
        del state
        return self._actions[int(self._rng.integers(len(self._actions)))]


def policy_from_solution_map(table: Mapping[State, Action]) -> TabularPolicy:
    """Wrap a solved policy map in the common interface."""
    return TabularPolicy(dict(table))


def extract_threshold(
    policy: Policy, config: MDPConfig
) -> int:
    """Read the hop threshold n* off any policy (Theorem III.4's statistic).

    Returns ``sweep_cycle`` when the policy never hops from a streak state.
    """
    for n in range(1, config.sweep_cycle):
        if policy.action(n).hop:
            return n
    return config.sweep_cycle


def policy_power_profile(policy: Policy, config: MDPConfig) -> dict[State, float]:
    """The transmit power the policy uses in each state (diagnostics)."""
    states: list[State] = [*range(1, config.sweep_cycle), TJ, J]
    return {
        x: config.tx_power_levels[policy.action(x).power_index] for x in states
    }


__all__ = [
    "Policy",
    "TabularPolicy",
    "ThresholdPolicy",
    "RandomPolicy",
    "policy_from_solution_map",
    "extract_threshold",
    "policy_power_profile",
]
