"""Slotted anti-jamming environments.

Two implementations of the victim/jammer competition:

* :class:`AnalyticJammingEnv` samples next states *exactly* from the MDP
  kernel of Eqs. (6)–(14). It is the ground truth for the parameter-sweep
  figures (Figs. 6–8), because the paper's own simulations are built on the
  same kernel.
* :class:`SweepJammingEnv` simulates the mechanics the kernel abstracts: a
  jammer sweeping m-channel blocks without replacement, camping on the
  victim once found, losing a slot when the victim escapes. A property test
  verifies its empirical transition frequencies approach the analytic
  kernel. Its observation is the 3·I history vector the paper's DQN
  consumes (state/channel/power of the previous I slots, §III-C).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, fields

import numpy as np

from repro.channel.fidelity import JamAdjudicator
from repro.constants import DEFAULT_HISTORY_LENGTH
from repro.core.mdp import TJ, J, Action, AntiJammingMDP, JammerMode, MDPConfig, State
from repro.errors import ConfigurationError, SimulationError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True, eq=False)
class _ChannelMDPConfig(MDPConfig):
    """MDP config whose jam-success law comes from a channel-tier adjudicator.

    Built by the envs when a non-analytic ``REPRO_CHANNEL`` tier is
    selected; every other field (and the kernel built on top of it) is a
    verbatim copy of the wrapped config.
    """

    adjudicator: JamAdjudicator | None = None

    def jam_success_probability(self, power_index: int) -> float:
        if self.adjudicator is None:
            return super().jam_success_probability(power_index)
        return self.adjudicator.jam_success_probability(self, power_index)


@dataclass(frozen=True)
class StepInfo:
    """Everything the metrics harness needs to know about one slot."""

    state: State  # MDP-style label of the landing state
    success: bool  # the slot's transmission got through
    hopped: bool
    power_index: int
    power_raised: bool  # transmitted above the minimum level (PC engaged)
    jam_attempted: bool  # the jammer attacked the victim's channel
    jam_defeated: bool  # attacked, but the victim's power level won
    avoided_jam: bool  # hopped, succeeded, and the old channel was attacked
    reward: float
    channel: int | None = None  # mechanistic env only


class AnalyticJammingEnv:
    """Samples the competition directly from the paper's transition kernel.

    ``channel`` (default ``REPRO_CHANNEL``) selects the fidelity tier of
    the jam-success law: the analytic default keeps the exact threshold
    kernel, while ``hybrid``/``waveform`` replace
    :meth:`MDPConfig.jam_success_probability` with the tier's calibrated
    packet-survival contest via :class:`_ChannelMDPConfig`.
    """

    def __init__(
        self,
        mdp: AntiJammingMDP | MDPConfig | None = None,
        *,
        seed: SeedLike = None,
        channel: str | None = None,
    ) -> None:
        if isinstance(mdp, MDPConfig):
            mdp = AntiJammingMDP(mdp)
        self.mdp = mdp or AntiJammingMDP()
        self._adjudicator = JamAdjudicator(channel)
        if not self._adjudicator.analytic:
            base = self.mdp.config
            self.mdp = AntiJammingMDP(
                _ChannelMDPConfig(
                    **{f.name: getattr(base, f.name) for f in fields(MDPConfig)},
                    adjudicator=self._adjudicator,
                )
            )
        self._rng = make_rng(seed)
        self.state: State = 1

    def reset(self, *, seed: SeedLike = None) -> State:
        if seed is not None:
            self._rng = make_rng(seed)
        self.state = 1
        return self.state

    def step(self, action: Action) -> tuple[State, float, StepInfo]:
        """Advance one slot; returns (next_state, reward, info)."""
        mdp = self.mdp
        dist = mdp.transitions(self.state, action)
        states = list(dist)
        probs = np.array([dist[x] for x in states])
        next_state = states[int(self._rng.choice(len(states), p=probs))]
        reward = mdp.reward(self.state, action, next_state)

        jam_attempted = next_state in (TJ, J)
        avoided = False
        if action.hop and next_state not in (TJ, J):
            # Coupled counterfactual: would staying have been attacked?
            if self.state in (TJ, J):
                avoided = True  # the camping jammer kept attacking that channel
            else:
                s = mdp.config.sweep_cycle
                n = int(self.state)
                avoided = bool(self._rng.random() < 1.0 / (s - n))
        info = StepInfo(
            state=next_state,
            success=next_state != J,
            hopped=action.hop,
            power_index=action.power_index,
            power_raised=action.power_index > 0,
            jam_attempted=jam_attempted,
            jam_defeated=next_state == TJ,
            avoided_jam=avoided,
            reward=reward,
        )
        self.state = next_state
        return next_state, reward, info


class _SweepingJammer:
    """The mechanistic cross-technology jammer (paper §II-C).

    Sweeps blocks of ``jam_width`` consecutive channels, one block per slot,
    without replacement; camps on the victim's block once found; spends one
    slot re-acquiring when the victim escapes.
    """

    def __init__(
        self,
        config: MDPConfig,
        rng: np.random.Generator,
        strategy=None,
    ) -> None:
        from repro.jamming.strategies import RandomSweep

        self.config = config
        self._rng = rng
        s = config.sweep_cycle
        # Block partition by index; with an overridden sweep cycle we just
        # split the channel space into that many (near-)equal blocks.
        bounds = np.linspace(0, config.num_channels, s + 1).astype(int)
        self.blocks: list[tuple[int, ...]] = [
            tuple(range(bounds[i], bounds[i + 1])) for i in range(s)
        ]
        if any(len(b) == 0 for b in self.blocks):
            raise ConfigurationError(
                f"cannot split {config.num_channels} channels into "
                f"{s} non-empty sweep blocks"
            )
        self.strategy = strategy or RandomSweep(len(self.blocks), seed=rng)
        if self.strategy.num_blocks != len(self.blocks):
            raise ConfigurationError(
                f"strategy expects {self.strategy.num_blocks} blocks; "
                f"geometry has {len(self.blocks)}"
            )
        self.reset()

    def reset(self) -> None:
        self.strategy.reset()
        self._camping: int | None = None

    def _power(self) -> float:
        levels = self.config.jammer_power_levels
        if self.config.jammer_mode == JammerMode.MAX:
            return levels[-1]
        return levels[int(self._rng.integers(len(levels)))]

    def observe_and_attack(self, victim_channel: int) -> tuple[bool, float, tuple[int, ...]]:
        """Advance the jammer one slot.

        Returns ``(attacked, jam_power, attacked_channels)`` where
        ``attacked`` says whether the victim's channel was inside the
        attacked block this slot (an empty tuple means the jammer spent the
        slot re-acquiring).
        """
        if self._camping is not None:
            block = self.blocks[self._camping]
            if victim_channel in block:
                return True, self._power(), block
            # Victim escaped: burn this slot noticing; the strategy learns
            # which stale block to exclude from the next sweep.
            stale = self._camping
            self._camping = None
            self.strategy.notify_lost(stale)
            return False, 0.0, ()
        pick = self.strategy.next_block()
        block = self.blocks[pick]
        if victim_channel in block:
            self._camping = pick
            self.strategy.notify_found(pick)
            return True, self._power(), block
        return False, 0.0, block


class SweepJammingEnv:
    """Mechanistic slotted environment with the 3·I history observation.

    Action space: the paper's DQN output — one action per (channel, power)
    pair, ``index = channel * num_powers + power_index``. Abstract MDP
    actions are also accepted via :meth:`step_action` (a hop draws a uniform
    random different channel), so exact-MDP policies and baselines run on
    the same mechanics the DQN is trained on.
    """

    def __init__(
        self,
        config: MDPConfig | None = None,
        *,
        history_length: int = DEFAULT_HISTORY_LENGTH,
        seed: SeedLike = None,
        sweep_strategy=None,
        jammer_factory=None,
        channel: str | None = None,
    ) -> None:
        self.config = config or MDPConfig()
        # Fidelity tier of jam adjudication (default REPRO_CHANNEL). The
        # analytic tier keeps the deterministic threshold contest and
        # consumes no randomness, so default trajectories are unchanged.
        self._adjudicator = JamAdjudicator(channel)
        if history_length < 1:
            raise ConfigurationError("history length must be >= 1")
        if sweep_strategy is not None and jammer_factory is not None:
            raise ConfigurationError(
                "pass either sweep_strategy or jammer_factory, not both "
                "(a custom jammer owns its own strategy)"
            )
        self.history_length = history_length
        self._rng = make_rng(seed)
        # Kept pristine as a template: every seeded reset deep-copies it so
        # two reset(seed=k) calls start from identical strategy state.
        self._sweep_strategy = sweep_strategy
        self._jammer_factory = jammer_factory
        self._jammer = self._build_jammer()
        self.reset()

    def _build_jammer(self) -> _SweepingJammer:
        if self._jammer_factory is not None:
            return self._jammer_factory(self.config, self._rng)
        return _SweepingJammer(
            self.config, self._rng, copy.deepcopy(self._sweep_strategy)
        )

    # -- space geometry --------------------------------------------------------

    @property
    def num_actions(self) -> int:
        return self.config.num_channels * self.config.num_power_levels

    @property
    def observation_size(self) -> int:
        return 3 * self.history_length

    def action_to_channel_power(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self.num_actions:
            raise SimulationError(f"action index {index} out of range")
        return divmod(index, self.config.num_power_levels)

    def channel_power_to_action(self, channel: int, power_index: int) -> int:
        if not 0 <= channel < self.config.num_channels:
            raise SimulationError(f"channel {channel} out of range")
        if not 0 <= power_index < self.config.num_power_levels:
            raise SimulationError(f"power index {power_index} out of range")
        return channel * self.config.num_power_levels + power_index

    # -- lifecycle ---------------------------------------------------------------

    def reset(self, *, seed: SeedLike = None) -> np.ndarray:
        if seed is not None:
            self._rng = make_rng(seed)
            self._jammer = self._build_jammer()
        else:
            self._jammer.reset()
        self.channel = int(self._rng.integers(self.config.num_channels))
        self.state: State = 1
        self._streak = 1
        self._history: list[tuple[float, float, float]] = [
            (1.0, self.channel / max(self.config.num_channels - 1, 1), 0.0)
        ] * self.history_length
        return self.observation()

    def observation(self) -> np.ndarray:
        """The DQN input: (outcome, channel, power) of the last I slots."""
        return np.array(self._history, dtype=np.float64).reshape(-1)

    # -- stepping ---------------------------------------------------------------

    def step_index(self, action_index: int) -> tuple[np.ndarray, float, StepInfo]:
        channel, power_index = self.action_to_channel_power(action_index)
        return self._advance(channel, power_index)

    def step_action(self, action: Action) -> tuple[np.ndarray, float, StepInfo]:
        if action.hop:
            others = [
                c for c in range(self.config.num_channels) if c != self.channel
            ]
            channel = int(others[int(self._rng.integers(len(others)))])
        else:
            channel = self.channel
        return self._advance(channel, action.power_index)

    def _advance(
        self, channel: int, power_index: int
    ) -> tuple[np.ndarray, float, StepInfo]:
        cfg = self.config
        if not 0 <= power_index < cfg.num_power_levels:
            raise SimulationError(f"power index {power_index} out of range")
        if not 0 <= channel < cfg.num_channels:
            raise SimulationError(f"channel {channel} out of range")
        hopped = channel != self.channel
        previous_channel = self.channel
        previous_state = self.state
        self.channel = channel

        attacked, jam_power, attacked_channels = self._jammer.observe_and_attack(
            channel
        )
        tx_power = cfg.tx_power_levels[power_index]
        if attacked:
            defeated = bool(
                self._adjudicator.defeats(tx_power, jam_power, rng=self._rng)
            )
            next_state: State = TJ if defeated else J
            self._streak = 0
        else:
            defeated = False
            if hopped or previous_state in (TJ, J):
                self._streak = 1
            else:
                self._streak = min(self._streak + 1, cfg.sweep_cycle - 1)
            next_state = self._streak

        success = next_state != J
        avoided = (
            hopped and success and previous_channel in attacked_channels
        )
        reward = -float(tx_power)
        if hopped:
            reward -= cfg.loss_hop
        if next_state == J:
            reward -= cfg.loss_jam
        self.state = next_state

        outcome = 1.0 if next_state not in (TJ, J) else (0.5 if next_state == TJ else 0.0)
        self._history.pop(0)
        self._history.append(
            (
                outcome,
                channel / max(cfg.num_channels - 1, 1),
                power_index / max(cfg.num_power_levels - 1, 1),
            )
        )
        info = StepInfo(
            state=next_state,
            success=success,
            hopped=hopped,
            power_index=power_index,
            power_raised=power_index > 0,
            jam_attempted=attacked,
            jam_defeated=attacked and defeated,
            avoided_jam=avoided,
            reward=reward,
            channel=channel,
        )
        return self.observation(), reward, info


__all__ = ["StepInfo", "AnalyticJammingEnv", "SweepJammingEnv"]
