"""The paper's primary contribution: the hybrid FH + PC anti-jamming scheme.

* :mod:`repro.core.mdp` — the competition MDP (states, actions, rewards,
  transition kernel, Eqs. 3–14).
* :mod:`repro.core.solver` — exact solvers and the structural results of
  §III-B (monotone Q profiles, threshold policies).
* :mod:`repro.core.envs` — analytic and mechanistic slotted environments.
* :mod:`repro.core.dqn` / :mod:`repro.core.trainer` — the DQN of §III-C and
  its training loop.
* :mod:`repro.core.baselines` — Passive FH and Random FH (Fig. 11(a)).
* :mod:`repro.core.metrics` — the Table-I metrics.
"""

from repro.core.baselines import (
    MaxPowerPolicy,
    NoDefensePolicy,
    PassiveFHPolicy,
    RandomFHPolicy,
)
from repro.core.dqn import DQNAgent, DQNConfig, EpsilonSchedule, GreedyDQNPolicy
from repro.core.envs import AnalyticJammingEnv, StepInfo, SweepJammingEnv
from repro.core.mdp import TJ, J, Action, AntiJammingMDP, JammerMode, MDPConfig
from repro.core.metrics import MetricSummary, SlotLog, evaluate_policy
from repro.core.qlearning import QLearningConfig, TabularQLearning
from repro.core.policy import (
    Policy,
    RandomPolicy,
    TabularPolicy,
    ThresholdPolicy,
    extract_threshold,
    policy_from_solution_map,
)
from repro.core.replay import Batch, ReplayBuffer
from repro.core.selfplay import (
    SelfPlayConfig,
    SelfPlayEnv,
    SelfPlayResult,
    train_selfplay,
)
from repro.core.solver import (
    Solution,
    bellman_residual,
    hop_q_profile,
    is_threshold_policy,
    policy_iteration,
    stay_q_profile,
    value_iteration,
)
from repro.core.trainer import (
    MultiSeedResult,
    TrainerConfig,
    TrainingResult,
    evaluate_dqn,
    train_dqn,
    train_dqn_multi_seed,
)
from repro.core.vecenv import VectorEnv, resolve_env_batch, train_dqn_batch

__all__ = [
    "MaxPowerPolicy",
    "NoDefensePolicy",
    "PassiveFHPolicy",
    "RandomFHPolicy",
    "DQNAgent",
    "DQNConfig",
    "EpsilonSchedule",
    "GreedyDQNPolicy",
    "AnalyticJammingEnv",
    "StepInfo",
    "SweepJammingEnv",
    "TJ",
    "J",
    "Action",
    "AntiJammingMDP",
    "JammerMode",
    "MDPConfig",
    "MetricSummary",
    "SlotLog",
    "evaluate_policy",
    "Policy",
    "RandomPolicy",
    "TabularPolicy",
    "ThresholdPolicy",
    "extract_threshold",
    "policy_from_solution_map",
    "QLearningConfig",
    "TabularQLearning",
    "Batch",
    "ReplayBuffer",
    "SelfPlayConfig",
    "SelfPlayEnv",
    "SelfPlayResult",
    "train_selfplay",
    "Solution",
    "bellman_residual",
    "hop_q_profile",
    "is_threshold_policy",
    "policy_iteration",
    "stay_q_profile",
    "value_iteration",
    "MultiSeedResult",
    "TrainerConfig",
    "TrainingResult",
    "evaluate_dqn",
    "train_dqn",
    "train_dqn_multi_seed",
    "VectorEnv",
    "resolve_env_batch",
    "train_dqn_batch",
]
