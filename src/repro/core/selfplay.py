"""DQN-vs-DQN self-play: training the learning jammer.

The paper trains a victim DQN against a *fixed* sweep/camp jammer. Here
both sides learn: the victim picks (channel, power) as usual while a
jammer DQN picks which block to jam each slot, observing only what a real
jammer can sense (its own hit/miss history — :class:`JammerMemory`). The
two populations train in lock-step on the :class:`VectorEnv` stacked
tensors: ``pairs`` independent victim/jammer couples share two stacked
forward/backward chains per slot instead of ``2 * pairs`` serial ones.

The trained jammer deploys against *any* defence via
``FieldJammerConfig(adversary="learning", learning_agent=...)`` (field
clock) or :func:`repro.jamming.adversary.make_slot_jammer_factory`
(slot envs) — greedy deployment consumes no rng, so evaluation stays
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_HISTORY_LENGTH
from repro.core.dqn import DQNAgent, DQNConfig, EpsilonSchedule
from repro.core.envs import StepInfo, SweepJammingEnv, _SweepingJammer
from repro.core.mdp import MDPConfig
from repro.core.vecenv import _batched_act, _batched_train_step, _StackedMLP
from repro.errors import ConfigurationError
from repro.jamming.adversary import JammerMemory
from repro.obs import telemetry as obs_telemetry
from repro.rng import SeedLike, derive


class _PuppetJammer(_SweepingJammer):
    """A slot jammer whose block choice is commanded by an external agent."""

    def __init__(self, config: MDPConfig, rng: np.random.Generator) -> None:
        super().__init__(config, rng)
        self.commanded = 0

    def observe_and_attack(
        self, victim_channel: int
    ) -> tuple[bool, float, tuple[int, ...]]:
        block = self.blocks[self.commanded]
        hit = victim_channel in block
        return (hit, self._power() if hit else 0.0, block)


class SelfPlayEnv:
    """A :class:`SweepJammingEnv` where both sides are agents.

    ``step`` takes the victim's action index *and* the jammer's block
    choice and returns both observations and both rewards. The jammer is
    rewarded for jammed slots (with partial credit when the victim's power
    control defeats the attack) — the zero-sum-ish shaping that makes
    self-play pressure the victim's hop pattern.
    """

    #: Jammer reward: full credit for a jammed slot, partial credit when
    #: the attack landed but the victim's power level won.
    JAM_REWARD = 1.0
    DEFEATED_REWARD = 0.2

    def __init__(
        self,
        config: MDPConfig | None = None,
        *,
        history_length: int = DEFAULT_HISTORY_LENGTH,
        seed: SeedLike = None,
    ) -> None:
        self._puppet: _PuppetJammer | None = None

        def factory(cfg: MDPConfig, rng: np.random.Generator) -> _PuppetJammer:
            self._puppet = _PuppetJammer(cfg, rng)
            return self._puppet

        self.env = SweepJammingEnv(
            config,
            history_length=history_length,
            seed=seed,
            jammer_factory=factory,
        )
        self.memory = JammerMemory(self.num_blocks, history_length)

    @property
    def num_blocks(self) -> int:
        return len(self._puppet.blocks)

    @property
    def num_victim_actions(self) -> int:
        return self.env.num_actions

    @property
    def observation_size(self) -> int:
        return self.env.observation_size

    def reset(self, *, seed: SeedLike = None) -> tuple[np.ndarray, np.ndarray]:
        victim_obs = self.env.reset(seed=seed)
        self.memory.reset()
        return victim_obs, self.memory.observation()

    def step(
        self, victim_action: int, jammer_block: int
    ) -> tuple[np.ndarray, np.ndarray, float, float, StepInfo]:
        if not 0 <= jammer_block < self.num_blocks:
            raise ConfigurationError(f"jammer block {jammer_block} out of range")
        self._puppet.commanded = int(jammer_block)
        victim_obs, victim_reward, info = self.env.step_index(int(victim_action))
        self.memory.update(hit=info.jam_attempted, block=int(jammer_block))
        if not info.success:
            jammer_reward = self.JAM_REWARD
        elif info.jam_defeated:
            jammer_reward = self.DEFEATED_REWARD
        else:
            jammer_reward = 0.0
        return (
            victim_obs,
            self.memory.observation(),
            victim_reward,
            jammer_reward,
            info,
        )


@dataclass(frozen=True)
class SelfPlayConfig:
    """Budget of a self-play run."""

    env: MDPConfig = field(default_factory=MDPConfig)
    pairs: int = 4
    episodes: int = 30
    steps_per_episode: int = 200
    history_length: int = DEFAULT_HISTORY_LENGTH

    def __post_init__(self) -> None:
        if self.pairs < 1 or self.episodes < 1 or self.steps_per_episode < 1:
            raise ConfigurationError(
                "pairs, episodes, and steps_per_episode must all be positive"
            )

    @property
    def total_steps(self) -> int:
        return self.episodes * self.steps_per_episode


@dataclass
class SelfPlayResult:
    """Everything a self-play run produced."""

    victim_agents: list[DQNAgent]
    jammer_agents: list[DQNAgent]
    victim_returns: np.ndarray  # (pairs, episodes) summed victim reward
    jammer_returns: np.ndarray  # (pairs, episodes) summed jammer reward
    jam_rates: np.ndarray  # (pairs, episodes) fraction of slots jammed

    @property
    def best_pair(self) -> int:
        """Pair whose jammer jammed the most over the final quarter."""
        tail = max(1, self.jam_rates.shape[1] // 4)
        return int(self.jam_rates[:, -tail:].mean(axis=1).argmax())

    @property
    def best_jammer(self) -> DQNAgent:
        """The strongest trained jammer — what deployment should use."""
        return self.jammer_agents[self.best_pair]


def _default_dqn(
    observation_size: int, num_actions: int, total_steps: int
) -> DQNConfig:
    """A DQNConfig whose warmup/exploration fit the self-play budget."""
    warmup = 500 if total_steps >= 2000 else max(64, total_steps // 4)
    return DQNConfig(
        observation_size=observation_size,
        num_actions=num_actions,
        warmup_transitions=warmup,
        epsilon=EpsilonSchedule(decay_steps=max(1, int(total_steps * 0.6))),
    )


def train_selfplay(
    config: SelfPlayConfig | None = None,
    *,
    seed: SeedLike = 0,
    victim_dqn: DQNConfig | None = None,
    jammer_dqn: DQNConfig | None = None,
) -> SelfPlayResult:
    """Train ``pairs`` victim/jammer couples in lock-step self-play.

    Deterministic in ``seed``. Returns every trained agent plus per-pair
    learning curves; :attr:`SelfPlayResult.best_jammer` is the adversary
    the comparison sweeps deploy.
    """
    cfg = config or SelfPlayConfig()
    envs = [
        SelfPlayEnv(
            cfg.env,
            history_length=cfg.history_length,
            seed=derive(seed, f"selfplay-env[{i}]"),
        )
        for i in range(cfg.pairs)
    ]
    obs_size = envs[0].observation_size
    if victim_dqn is None:
        victim_dqn = _default_dqn(
            obs_size, envs[0].num_victim_actions, cfg.total_steps
        )
    if jammer_dqn is None:
        jammer_dqn = _default_dqn(obs_size, envs[0].num_blocks, cfg.total_steps)
    victims = [
        DQNAgent(victim_dqn, seed=derive(seed, f"selfplay-victim[{i}]"))
        for i in range(cfg.pairs)
    ]
    jammers = [
        DQNAgent(jammer_dqn, seed=derive(seed, f"selfplay-jammer[{i}]"))
        for i in range(cfg.pairs)
    ]
    v_stack = _StackedMLP(victims)
    j_stack = _StackedMLP(jammers)

    victim_returns = np.zeros((cfg.pairs, cfg.episodes))
    jammer_returns = np.zeros((cfg.pairs, cfg.episodes))
    jam_rates = np.zeros((cfg.pairs, cfg.episodes))
    telem = obs_telemetry.FlightRecorder(
        "selfplay", labels={"pairs": str(cfg.pairs)}
    )
    for episode in range(cfg.episodes):
        pairs = [env.reset() for env in envs]
        v_obs = np.stack([p[0] for p in pairs])
        j_obs = np.stack([p[1] for p in pairs])
        for _ in range(cfg.steps_per_episode):
            v_actions = _batched_act(v_stack, victims, v_obs)
            j_actions = _batched_act(j_stack, jammers, j_obs)
            for i, env in enumerate(envs):
                next_v, next_j, v_reward, j_reward, info = env.step(
                    int(v_actions[i]), int(j_actions[i])
                )
                victims[i].replay.push(
                    v_obs[i], int(v_actions[i]), v_reward, next_v
                )
                victims[i].env_steps += 1
                jammers[i].replay.push(
                    j_obs[i], int(j_actions[i]), j_reward, next_j
                )
                jammers[i].env_steps += 1
                v_obs[i] = next_v
                j_obs[i] = next_j
                victim_returns[i, episode] += v_reward
                jammer_returns[i, episode] += j_reward
                jam_rates[i, episode] += float(not info.success)
            # Replays grow one transition per slot for every pair, so the
            # warm-up gate flips for all pairs on the same slot (the
            # alignment _batched_train_step relies on).
            if len(victims[0].replay) >= victim_dqn.warmup_transitions:
                _batched_train_step(v_stack, victims)
            if len(jammers[0].replay) >= jammer_dqn.warmup_transitions:
                _batched_train_step(j_stack, jammers)
        telem.tick(
            episodes=1.0,
            jam_rate=float(jam_rates[:, episode].mean())
            / cfg.steps_per_episode,
            victim_return=float(victim_returns[:, episode].mean()),
            jammer_return=float(jammer_returns[:, episode].mean()),
        )
    telem.flush()
    jam_rates /= cfg.steps_per_episode
    for i in range(cfg.pairs):
        v_stack.write_back(i, victims[i])
        j_stack.write_back(i, jammers[i])
    return SelfPlayResult(
        victim_agents=victims,
        jammer_agents=jammers,
        victim_returns=victim_returns,
        jammer_returns=jammer_returns,
        jam_rates=jam_rates,
    )


__all__ = [
    "SelfPlayEnv",
    "SelfPlayConfig",
    "SelfPlayResult",
    "train_selfplay",
]
