"""Exact MDP solvers: value iteration, policy iteration, Bellman residuals.

Theorem III.1 of the paper (via Banach's fixed-point theorem) guarantees the
Bellman operator is a γ-contraction with a unique fixed point V*, so value
iteration converges geometrically; :func:`value_iteration` also reports the
final residual so callers can verify the contraction numerically. The
structural results of §III-B — Q(n,(s,p)) decreasing in n (Lemma III.2),
Q(n,(h,p)) increasing (Lemma III.3), and the threshold policy they imply
(Theorem III.4) — are exposed as checkable predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mdp import Action, AntiJammingMDP, State
from repro.errors import SolverError


@dataclass(frozen=True)
class Solution:
    """Solved MDP: optimal values, Q-function and greedy policy."""

    mdp: AntiJammingMDP
    values: np.ndarray  # (num_states,)
    q_values: np.ndarray  # (num_states, num_actions)
    policy_indices: np.ndarray  # (num_states,) action index per state
    iterations: int
    residual: float

    def value(self, state: State) -> float:
        return float(self.values[self.mdp.state_index(state)])

    def q_value(self, state: State, action: Action) -> float:
        return float(
            self.q_values[self.mdp.state_index(state), self.mdp.action_index(action)]
        )

    def action(self, state: State) -> Action:
        return self.mdp.actions[int(self.policy_indices[self.mdp.state_index(state)])]

    def policy_map(self) -> dict[State, Action]:
        return {x: self.action(x) for x in self.mdp.states}

    def hop_threshold(self) -> int:
        """The n* of Theorem III.4: smallest streak at which the policy hops.

        Returns ``sweep_cycle`` when the policy never hops from any streak
        state (the "stay everywhere" extreme the theorem allows).
        """
        for n in self.mdp.streak_states:
            if self.action(n).hop:
                return n
        return self.mdp.config.sweep_cycle


def _q_from_values(
    mdp: AntiJammingMDP, values: np.ndarray, P: np.ndarray, R: np.ndarray
) -> np.ndarray:
    return R + mdp.config.discount * (P @ values)


def value_iteration(
    mdp: AntiJammingMDP,
    *,
    tol: float = 1e-10,
    max_iter: int = 100_000,
) -> Solution:
    """Solve the MDP by value iteration to sup-norm residual ``tol``."""
    if tol <= 0:
        raise SolverError("tolerance must be positive")
    P = mdp.kernel_matrix()
    R = mdp.reward_matrix()
    V = np.zeros(mdp.num_states)
    residual = np.inf
    for it in range(1, max_iter + 1):
        Q = _q_from_values(mdp, V, P, R)
        V_new = Q.max(axis=1)
        residual = float(np.max(np.abs(V_new - V)))
        V = V_new
        if residual < tol:
            break
    else:
        raise SolverError(
            f"value iteration did not reach tol={tol} in {max_iter} "
            f"iterations (residual {residual:.3e})"
        )
    Q = _q_from_values(mdp, V, P, R)
    return Solution(
        mdp=mdp,
        values=V,
        q_values=Q,
        policy_indices=Q.argmax(axis=1),
        iterations=it,
        residual=residual,
    )


def policy_iteration(
    mdp: AntiJammingMDP, *, max_iter: int = 1_000
) -> Solution:
    """Solve the MDP by Howard policy iteration (exact policy evaluation)."""
    P = mdp.kernel_matrix()
    R = mdp.reward_matrix()
    n, gamma = mdp.num_states, mdp.config.discount
    policy = np.zeros(n, dtype=np.int64)
    for it in range(1, max_iter + 1):
        # Policy evaluation: solve (I - gamma * P_pi) V = R_pi.
        P_pi = P[np.arange(n), policy]
        R_pi = R[np.arange(n), policy]
        V = np.linalg.solve(np.eye(n) - gamma * P_pi, R_pi)
        Q = _q_from_values(mdp, V, P, R)
        new_policy = Q.argmax(axis=1)
        if np.array_equal(new_policy, policy):
            residual = float(np.max(np.abs(Q.max(axis=1) - V)))
            return Solution(
                mdp=mdp,
                values=V,
                q_values=Q,
                policy_indices=policy,
                iterations=it,
                residual=residual,
            )
        policy = new_policy
    raise SolverError(f"policy iteration did not converge in {max_iter} sweeps")


def bellman_residual(solution: Solution) -> float:
    """Sup-norm Bellman residual of a solution — 0 at the true fixed point."""
    mdp = solution.mdp
    Q = _q_from_values(
        mdp, solution.values, mdp.kernel_matrix(), mdp.reward_matrix()
    )
    return float(np.max(np.abs(Q.max(axis=1) - solution.values)))


def stay_q_profile(solution: Solution, power_index: int) -> list[float]:
    """Q*(n, (stay, p_i)) across streak states — Lemma III.2 says decreasing."""
    mdp = solution.mdp
    a = Action(hop=False, power_index=power_index)
    return [solution.q_value(n, a) for n in mdp.streak_states]


def hop_q_profile(solution: Solution, power_index: int) -> list[float]:
    """Q*(n, (hop, p_i)) across streak states — Lemma III.3 says increasing."""
    mdp = solution.mdp
    a = Action(hop=True, power_index=power_index)
    return [solution.q_value(n, a) for n in mdp.streak_states]


def is_threshold_policy(solution: Solution, *, tol: float = 1e-7) -> bool:
    """Theorem III.4: hop decisions over streak states form a threshold.

    True when a strict preference for hopping at some streak n is never
    followed by a strict preference for staying at a larger streak. States
    where the best hop and best stay Q-values tie within ``tol`` are
    compatible with either choice (the degenerate L_J = L_H = 0 case makes
    every state such a tie).
    """
    mdp = solution.mdp
    hop_pref: list[int] = []  # +1 strictly hop, -1 strictly stay, 0 tie
    for n in mdp.streak_states:
        best_hop = max(
            solution.q_value(n, a) for a in mdp.actions if a.hop
        )
        best_stay = max(
            solution.q_value(n, a) for a in mdp.actions if not a.hop
        )
        if best_hop > best_stay + tol:
            hop_pref.append(1)
        elif best_stay > best_hop + tol:
            hop_pref.append(-1)
        else:
            hop_pref.append(0)
    seen_hop = False
    for pref in hop_pref:
        if pref == 1:
            seen_hop = True
        elif pref == -1 and seen_hop:
            return False
    return True


__all__ = [
    "Solution",
    "value_iteration",
    "policy_iteration",
    "bellman_residual",
    "stay_q_profile",
    "hop_q_profile",
    "is_threshold_policy",
]
