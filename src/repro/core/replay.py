"""Experience replay buffer for the DQN."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Batch:
    """A sampled mini-batch of transitions."""

    observations: np.ndarray  # (batch, obs_dim)
    actions: np.ndarray  # (batch,) int
    rewards: np.ndarray  # (batch,)
    next_observations: np.ndarray  # (batch, obs_dim)

    @property
    def size(self) -> int:
        return self.actions.size


class ReplayBuffer:
    """Fixed-capacity ring buffer of (o, a, r, o') transitions.

    The competition is a continuing task (no terminal states), so no done
    flags are stored.
    """

    def __init__(
        self, capacity: int, observation_size: int, *, seed: SeedLike = None
    ) -> None:
        if capacity < 1:
            raise TrainingError("replay capacity must be positive")
        if observation_size < 1:
            raise TrainingError("observation size must be positive")
        self.capacity = capacity
        self._obs = np.zeros((capacity, observation_size))
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity)
        self._next_obs = np.zeros((capacity, observation_size))
        self._rng = make_rng(seed)
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def push(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        next_observation: np.ndarray,
    ) -> None:
        """Store one transition, evicting the oldest when full."""
        i = self._cursor
        self._obs[i] = observation
        self._actions[i] = action
        self._rewards[i] = reward
        self._next_obs[i] = next_observation
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int) -> Batch:
        """Sample uniformly with replacement."""
        if batch_size < 1:
            raise TrainingError("batch size must be positive")
        if self._size == 0:
            raise TrainingError("cannot sample from an empty replay buffer")
        idx = self._rng.integers(0, self._size, size=batch_size)
        return Batch(
            observations=self._obs[idx].copy(),
            actions=self._actions[idx].copy(),
            rewards=self._rewards[idx].copy(),
            next_observations=self._next_obs[idx].copy(),
        )

    def clear(self) -> None:
        self._size = 0
        self._cursor = 0


__all__ = ["Batch", "ReplayBuffer"]
