"""Experience replay buffer for the DQN."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Batch:
    """A sampled mini-batch of transitions."""

    observations: np.ndarray  # (batch, obs_dim)
    actions: np.ndarray  # (batch,) int
    rewards: np.ndarray  # (batch,)
    next_observations: np.ndarray  # (batch, obs_dim)

    @property
    def size(self) -> int:
        return self.actions.size


class ReplayBuffer:
    """Fixed-capacity ring buffer of (o, a, r, o') transitions.

    The competition is a continuing task (no terminal states), so no done
    flags are stored.
    """

    def __init__(
        self, capacity: int, observation_size: int, *, seed: SeedLike = None
    ) -> None:
        if capacity < 1:
            raise TrainingError("replay capacity must be positive")
        if observation_size < 1:
            raise TrainingError("observation size must be positive")
        self.capacity = capacity
        self._obs = np.zeros((capacity, observation_size))
        self._actions = np.zeros(capacity, dtype=np.int64)
        self._rewards = np.zeros(capacity)
        self._next_obs = np.zeros((capacity, observation_size))
        self._rng = make_rng(seed)
        self._size = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    def push(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        next_observation: np.ndarray,
    ) -> None:
        """Store one transition, evicting the oldest when full."""
        i = self._cursor
        self._obs[i] = observation
        self._actions[i] = action
        self._rewards[i] = reward
        self._next_obs[i] = next_observation
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def push_many(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_observations: np.ndarray,
    ) -> None:
        """Bulk insert; leaves the exact state of pushing each row in order.

        The batched trainer uses this to flush warm-up transitions in one
        vectorised write instead of one :meth:`push` per slot. When more
        rows arrive than the buffer holds, only the trailing ``capacity``
        rows are written (the earlier ones would have been evicted anyway)
        — cursor and size land where sequential pushes would leave them.
        """
        obs = np.asarray(observations, dtype=np.float64)
        acts = np.asarray(actions, dtype=np.int64).reshape(-1)
        rews = np.asarray(rewards, dtype=np.float64).reshape(-1)
        nxt = np.asarray(next_observations, dtype=np.float64)
        n = acts.size
        if not (obs.shape[0] == n == rews.size == nxt.shape[0]):
            raise TrainingError(
                "push_many arrays disagree on the number of transitions"
            )
        if n and (
            obs.shape[1:] != self._obs.shape[1:]
            or nxt.shape[1:] != self._next_obs.shape[1:]
        ):
            raise TrainingError(
                f"observation rows of shape {obs.shape[1:]} do not match "
                f"the buffer's {self._obs.shape[1:]}"
            )
        if n == 0:
            return
        start = max(n - self.capacity, 0)
        idx = (self._cursor + np.arange(start, n)) % self.capacity
        self._obs[idx] = obs[start:]
        self._actions[idx] = acts[start:]
        self._rewards[idx] = rews[start:]
        self._next_obs[idx] = nxt[start:]
        self._cursor = int((self._cursor + n) % self.capacity)
        self._size = min(self._size + n, self.capacity)

    def sample(self, batch_size: int, *, allow_undersized: bool = False) -> Batch:
        """Sample ``batch_size`` transitions uniformly *with* replacement.

        Replacement is the classic DQN contract — duplicates within a batch
        are expected once the buffer is warm. Requesting more rows than the
        buffer holds, however, is almost always a warm-up bug (the batch
        would be mostly duplicates of a tiny population), so it raises
        unless ``allow_undersized=True``. :class:`repro.core.dqn.DQNConfig`
        enforces ``warmup_transitions >= batch_size``, so an agent that
        trains only after warm-up can never trip this guard.
        """
        if batch_size < 1:
            raise TrainingError("batch size must be positive")
        if self._size == 0:
            raise TrainingError("cannot sample from an empty replay buffer")
        if batch_size > self._size and not allow_undersized:
            raise TrainingError(
                f"sampling {batch_size} transitions from only {self._size} "
                "stored would mostly repeat them; raise warmup_transitions "
                "or pass allow_undersized=True"
            )
        idx = self._rng.integers(0, self._size, size=batch_size)
        return Batch(
            observations=self._obs[idx].copy(),
            actions=self._actions[idx].copy(),
            rewards=self._rewards[idx].copy(),
            next_observations=self._next_obs[idx].copy(),
        )

    def clear(self) -> None:
        self._size = 0
        self._cursor = 0


__all__ = ["Batch", "ReplayBuffer"]
