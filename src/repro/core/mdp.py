"""The anti-jamming Markov Decision Process of paper §III-A.

State space (Eq. 3)::

    X = {1, 2, ..., ceil(K/m) - 1, TJ, J}

where ``n`` counts consecutive successful slots on the current channel,
``TJ`` means the slot was attacked but survived (jamming power too low),
and ``J`` means the transmission was jammed. The action space (Eq. 4) pairs
{stay, hop} with a transmit power level; immediate rewards (Eq. 5) charge
the power loss L_p, the hop loss L_H and the jam loss L_J; the transition
kernel implements Cases 1–6 (Eqs. 6–14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Union

import numpy as np

from repro.constants import (
    DEFAULT_DISCOUNT,
    DEFAULT_JAMMER_POWER_LEVELS,
    DEFAULT_LOSS_HOP,
    DEFAULT_LOSS_JAM,
    DEFAULT_TX_POWER_LEVELS,
    NUM_ZIGBEE_CHANNELS,
    ZIGBEE_CHANNELS_PER_WIFI,
)
from repro.errors import ConfigurationError

#: Sentinel state: jammed unsuccessfully (transmission survived the attack).
TJ = "TJ"

#: Sentinel state: jammed successfully (transmission lost).
J = "J"

State = Union[int, str]


@dataclass(frozen=True)
class Action:
    """One MDP action: stay or hop, with a transmit power level index."""

    hop: bool
    power_index: int

    def describe(self, config: "MDPConfig") -> str:
        kind = "hop" if self.hop else "stay"
        return f"({kind}, p={config.tx_power_levels[self.power_index]})"


class JammerMode:
    """The two jammer power policies of paper §II-C-1."""

    MAX = "max"  # high-performance mode: always the largest power level
    RANDOM = "random"  # hidden mode: uniformly random power level

    ALL = (MAX, RANDOM)


@dataclass(frozen=True)
class MDPConfig:
    """Parameters of the competition (paper §IV-A-1 defaults).

    ``tx_power_levels`` double as the per-slot power losses L^T_p; likewise
    ``jammer_power_levels`` are the jammer's L^J_p. A jam attempt succeeds
    iff the jammer's level exceeds the victim's ("the transmission will be
    successful if L^T_p >= L^J_p").
    """

    num_channels: int = NUM_ZIGBEE_CHANNELS
    jam_width: int = ZIGBEE_CHANNELS_PER_WIFI
    tx_power_levels: tuple[float, ...] = DEFAULT_TX_POWER_LEVELS
    jammer_power_levels: tuple[float, ...] = DEFAULT_JAMMER_POWER_LEVELS
    loss_hop: float = DEFAULT_LOSS_HOP
    loss_jam: float = DEFAULT_LOSS_JAM
    jammer_mode: str = JammerMode.MAX
    discount: float = DEFAULT_DISCOUNT
    #: Override the sweep cycle ceil(K/m) directly (used by the Fig. 6(b)
    #: parameter sweep); ``None`` derives it from the channel geometry.
    sweep_cycle_override: int | None = None

    def __post_init__(self) -> None:
        if self.num_channels < 2:
            raise ConfigurationError("need at least 2 channels to hop between")
        if not 1 <= self.jam_width <= self.num_channels:
            raise ConfigurationError(
                f"jam width must be in 1..{self.num_channels}, got {self.jam_width}"
            )
        if not self.tx_power_levels:
            raise ConfigurationError("victim needs at least one power level")
        if not self.jammer_power_levels:
            raise ConfigurationError("jammer needs at least one power level")
        if list(self.tx_power_levels) != sorted(self.tx_power_levels):
            raise ConfigurationError("tx power levels must be sorted ascending")
        if list(self.jammer_power_levels) != sorted(self.jammer_power_levels):
            raise ConfigurationError("jammer power levels must be sorted ascending")
        if self.loss_hop < 0 or self.loss_jam < 0:
            raise ConfigurationError("losses must be non-negative")
        if self.jammer_mode not in JammerMode.ALL:
            raise ConfigurationError(
                f"jammer mode must be one of {JammerMode.ALL}, got "
                f"{self.jammer_mode!r}"
            )
        if not 0.0 <= self.discount < 1.0:
            raise ConfigurationError("discount must lie in [0, 1)")
        if self.sweep_cycle_override is not None and self.sweep_cycle_override < 2:
            raise ConfigurationError("sweep cycle must be at least 2")

    @property
    def sweep_cycle(self) -> int:
        """⌈K/m⌉: slots the jammer needs to sweep every channel."""
        if self.sweep_cycle_override is not None:
            return self.sweep_cycle_override
        return math.ceil(self.num_channels / self.jam_width)

    @property
    def num_power_levels(self) -> int:
        return len(self.tx_power_levels)

    def with_sweep_cycle(self, cycle: int) -> "MDPConfig":
        """Copy of this config with the sweep cycle forced to ``cycle``."""
        return replace(self, sweep_cycle_override=cycle)

    def jam_success_probability(self, power_index: int) -> float:
        """P(p^T_i < τ): probability a jam attempt defeats power level ``i``.

        In max mode the jammer always transmits at its top level; in random
        (hidden) mode it draws uniformly from its levels. The attempt
        succeeds iff the jammer's level strictly exceeds the victim's.
        """
        p = self.tx_power_levels[power_index]
        if self.jammer_mode == JammerMode.MAX:
            return 1.0 if self.jammer_power_levels[-1] > p else 0.0
        wins = sum(1 for pj in self.jammer_power_levels if pj > p)
        return wins / len(self.jammer_power_levels)


class AntiJammingMDP:
    """The finite MDP of paper §III-A with kernel Cases 1–6."""

    def __init__(self, config: MDPConfig | None = None) -> None:
        self.config = config or MDPConfig()
        s = self.config.sweep_cycle
        if s < 2:
            raise ConfigurationError(
                "the MDP needs a sweep cycle of at least 2 (jam width "
                "covering every channel leaves no streak states)"
            )
        self.streak_states: tuple[int, ...] = tuple(range(1, s))
        self.states: tuple[State, ...] = (*self.streak_states, TJ, J)
        self.actions: tuple[Action, ...] = tuple(
            Action(hop=hop, power_index=i)
            for hop in (False, True)
            for i in range(self.config.num_power_levels)
        )
        self._state_index = {x: k for k, x in enumerate(self.states)}
        self._action_index = {a: k for k, a in enumerate(self.actions)}

    # -- indexing ---------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_actions(self) -> int:
        return len(self.actions)

    def state_index(self, state: State) -> int:
        try:
            return self._state_index[state]
        except KeyError:
            raise ConfigurationError(f"unknown state {state!r}") from None

    def action_index(self, action: Action) -> int:
        try:
            return self._action_index[action]
        except KeyError:
            raise ConfigurationError(f"unknown action {action!r}") from None

    # -- rewards (Eq. 5) ----------------------------------------------------------

    def reward(self, state: State, action: Action, next_state: State) -> float:
        """Immediate reward U(x, a, x') of Eq. (5)."""
        del state  # the reward depends only on the action and the landing state
        loss = float(self.config.tx_power_levels[action.power_index])
        if action.hop:
            loss += self.config.loss_hop
        if next_state == J:
            loss += self.config.loss_jam
        return -loss

    def expected_reward(self, state: State, action: Action) -> float:
        """E[U(x, a, ·)] under the transition kernel (Eqs. 23–24)."""
        return sum(
            p * self.reward(state, action, x2)
            for x2, p in self.transitions(state, action).items()
        )

    # -- transition kernel (Eqs. 6-14) ----------------------------------------------

    def transitions(self, state: State, action: Action) -> dict[State, float]:
        """P(· | state, action) as a dict of next-state probabilities."""
        s = self.config.sweep_cycle
        p_jam = self.config.jam_success_probability(action.power_index)
        p_survive = 1.0 - p_jam
        out: dict[State, float] = {}

        if state in (TJ, J):
            if action.hop:
                # Case 6, Eq. (14): a hop from a jammed channel always
                # escapes for one slot.
                out[1] = 1.0
            else:
                # Case 5, Eqs. (12)-(13): the camping jammer attacks again.
                out[TJ] = p_survive
                out[J] = p_jam
            return self._merged(out)

        n = int(state)
        if not 1 <= n <= s - 1:
            raise ConfigurationError(f"streak state {n} outside 1..{s - 1}")
        if action.hop:
            # Cases 3-4, Eqs. (9)-(11).
            q = (s - n - 1) / ((s - 1) * (s - n))
            out[1] = 1.0 - q
            out[TJ] = q * p_survive
            out[J] = q * p_jam
        else:
            # Cases 1-2, Eqs. (6)-(8).
            hit = 1.0 / (s - n)
            if n <= s - 2:
                out[n + 1] = 1.0 - hit
            out[TJ] = hit * p_survive
            out[J] = hit * p_jam
        return self._merged(out)

    @staticmethod
    def _merged(dist: dict[State, float]) -> dict[State, float]:
        out = {x: p for x, p in dist.items() if p > 0.0}
        total = sum(out.values())
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(f"kernel row sums to {total}, not 1")
        return out

    # -- dense matrices for the solver ----------------------------------------------

    def kernel_matrix(self) -> np.ndarray:
        """(num_states, num_actions, num_states) dense transition tensor."""
        P = np.zeros((self.num_states, self.num_actions, self.num_states))
        for xi, x in enumerate(self.states):
            for ai, a in enumerate(self.actions):
                for x2, p in self.transitions(x, a).items():
                    P[xi, ai, self.state_index(x2)] = p
        return P

    def reward_matrix(self) -> np.ndarray:
        """(num_states, num_actions) expected immediate rewards."""
        R = np.zeros((self.num_states, self.num_actions))
        for xi, x in enumerate(self.states):
            for ai, a in enumerate(self.actions):
                R[xi, ai] = self.expected_reward(x, a)
        return R

    # -- introspection helpers --------------------------------------------------

    def successful_states(self) -> tuple[State, ...]:
        """States in which the slot's transmission succeeded (X \\ {J})."""
        return tuple(x for x in self.states if x != J)

    def describe(self) -> str:
        cfg = self.config
        return (
            f"AntiJammingMDP(K={cfg.num_channels}, m={cfg.jam_width}, "
            f"sweep_cycle={cfg.sweep_cycle}, powers={cfg.num_power_levels}, "
            f"L_H={cfg.loss_hop}, L_J={cfg.loss_jam}, mode={cfg.jammer_mode})"
        )


def streak_states(config: MDPConfig) -> Iterable[int]:
    """The streak portion of the state space for ``config``."""
    return range(1, config.sweep_cycle)


__all__ = [
    "TJ",
    "J",
    "State",
    "Action",
    "JammerMode",
    "MDPConfig",
    "AntiJammingMDP",
    "streak_states",
]
