"""Lock-step multi-seed DQN training: N competitions, one set of tensor ops.

:func:`repro.core.trainer.train_dqn` steps one environment and one network
at a time, so a multi-seed study pays N forward/backward passes of batch
size 64 where one pass of stacked shape (N, 64, ...) would do. This module
runs N *independent* seeded competitions in lock-step:

* :class:`VectorEnv` holds N :class:`~repro.core.envs.SweepJammingEnv`
  instances, each with its own rng stream, and steps them together.
* :func:`train_dqn_batch` builds N real :class:`~repro.core.dqn.DQNAgent`
  objects (their rng streams, replay buffers, and counters are the source
  of truth) but mirrors their network parameters and Adam state into
  ``(N, ...)`` stacked tensors, so the ε-greedy ``act`` and the TD update
  run as single 3-D ``matmul`` chains across all seeds.

Bit-identity with the serial path is a hard invariant, not an
approximation: stacked ``matmul``/reductions apply the same IEEE
operations per slice as their 2-D counterparts, every per-seed rng stream
consumes draws in exactly the serial order (streams are independent, so
interleaving across seeds is irrelevant), and the per-seed training
schedules are structurally aligned (replay buffers grow one transition
per slot for every seed, so warm-up, train, and target-sync steps
coincide). Seeds that hit ``reward_goal`` early exit at episode
boundaries exactly like their serial runs: their slices are compacted out
of the stacked tensors and their final weights written back. The
equivalence suite pins per-seed rewards, losses, and final weights
against N serial runs.

The in-process batch width composes with the
:class:`~repro.exec.ParallelRunner` process pool (processes × batch) via
``train_dqn_multi_seed(env_batch=...)`` or ``REPRO_ENV_BATCH``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.dqn import DQNAgent, DQNConfig
from repro.core.envs import StepInfo, SweepJammingEnv
from repro.core.mdp import MDPConfig
from repro.errors import TrainingError
from repro.nn.layers import Dense, ReLU
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.rng import SeedLike, derive

#: Environment variable selecting the in-process seed-batch width used by
#: ``train_dqn_multi_seed``. ``1``/``off`` restores the purely serial path.
ENV_BATCH_ENV = "REPRO_ENV_BATCH"

#: Default seeds trained per process when nothing is configured.
DEFAULT_ENV_BATCH = 8


def resolve_env_batch(value: int | str | None = None) -> int:
    """Resolve the seed-batch width from an override or ``REPRO_ENV_BATCH``.

    ``None`` (and an unset/empty environment) selects
    :data:`DEFAULT_ENV_BATCH`; ``1``, ``off`` or ``none`` disable in-process
    batching.
    """
    if value is None:
        value = os.environ.get(ENV_BATCH_ENV, "")
    if isinstance(value, str):
        text = value.strip().lower()
        if not text:
            return DEFAULT_ENV_BATCH
        if text in ("off", "none"):
            return 1
        try:
            value = int(text)
        except ValueError:
            raise TrainingError(
                f"{ENV_BATCH_ENV} must be an integer or 'off', got {value!r}"
            ) from None
    batch = int(value)
    if batch < 1:
        raise TrainingError(f"env batch must be >= 1, got {batch}")
    return batch


class VectorEnv:
    """N independent seeded environments stepped in lock-step.

    Each wrapped environment keeps its own rng stream, so stepping them
    together produces exactly the trajectories of stepping each alone.
    """

    def __init__(self, envs: list[SweepJammingEnv]) -> None:
        if not envs:
            raise TrainingError("a VectorEnv needs at least one environment")
        first = envs[0]
        for env in envs[1:]:
            if (
                env.observation_size != first.observation_size
                or env.num_actions != first.num_actions
            ):
                raise TrainingError(
                    "all environments in a VectorEnv must share geometry"
                )
        self.envs = list(envs)

    @classmethod
    def from_seeds(
        cls,
        config: MDPConfig | None,
        seeds,
        *,
        history_length: int,
        stream: str = "train-env",
    ) -> "VectorEnv":
        """One env per seed, seeded exactly like the serial trainer."""
        return cls(
            [
                SweepJammingEnv(
                    config or MDPConfig(),
                    history_length=history_length,
                    seed=derive(int(s), stream),
                )
                for s in seeds
            ]
        )

    @property
    def num_envs(self) -> int:
        return len(self.envs)

    @property
    def observation_size(self) -> int:
        return self.envs[0].observation_size

    @property
    def num_actions(self) -> int:
        return self.envs[0].num_actions

    def reset(self) -> np.ndarray:
        """Reset every environment; returns stacked observations (N, obs)."""
        return np.stack([env.reset() for env in self.envs])

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[StepInfo]]:
        """Advance every environment one slot.

        Returns stacked next observations ``(N, obs)``, rewards ``(N,)``,
        and the per-env :class:`StepInfo` records.
        """
        actions = np.asarray(actions).reshape(-1)
        if actions.size != self.num_envs:
            raise TrainingError(
                f"expected {self.num_envs} actions, got {actions.size}"
            )
        obs, rewards, infos = [], [], []
        for env, action in zip(self.envs, actions):
            o, r, info = env.step_index(int(action))
            obs.append(o)
            rewards.append(r)
            infos.append(info)
        return np.stack(obs), np.array(rewards), infos

    def select(self, indices) -> "VectorEnv":
        """A VectorEnv over a subset of the wrapped environments."""
        return VectorEnv([self.envs[i] for i in indices])


class _StackedMLP:
    """(N, ...) stacked mirror of N structurally identical online networks.

    Holds stacked online parameters/gradients, stacked target parameters,
    and stacked Adam state. All math runs as 3-D ``matmul`` + elementwise
    ops, which apply per slice exactly the 2-D operations of the serial
    :class:`repro.nn.network.Network`.
    """

    def __init__(self, agents: list[DQNAgent]) -> None:
        template = agents[0].online.layers
        self.spec: list[str] = []
        for layer in template:
            if isinstance(layer, Dense):
                self.spec.append("dense")
            elif isinstance(layer, ReLU):
                self.spec.append("relu")
            else:
                raise TrainingError(
                    f"batched training supports Dense/ReLU only, got "
                    f"{type(layer).__name__}"
                )
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        self.t_weights: list[np.ndarray] = []
        self.t_biases: list[np.ndarray] = []
        for li, kind in enumerate(self.spec):
            if kind != "dense":
                continue
            self.weights.append(np.stack([a.online.layers[li].weight for a in agents]))
            self.biases.append(np.stack([a.online.layers[li].bias for a in agents]))
            self.t_weights.append(np.stack([a.target.layers[li].weight for a in agents]))
            self.t_biases.append(np.stack([a.target.layers[li].bias for a in agents]))
        self.grad_weights = [np.zeros_like(w) for w in self.weights]
        self.grad_biases = [np.zeros_like(b) for b in self.biases]
        # Adam state, created lazily like repro.nn.optimizers.Adam.
        self.adam_m: list[np.ndarray] | None = None
        self.adam_v: list[np.ndarray] | None = None
        self.adam_t = 0
        self._cache_inputs: list[np.ndarray] = []
        self._cache_masks: list[np.ndarray] = []

    @property
    def num_stacked(self) -> int:
        return self.weights[0].shape[0]

    # -- forward/backward -----------------------------------------------------

    def _forward(
        self,
        x: np.ndarray,
        weights: list[np.ndarray],
        biases: list[np.ndarray],
        *,
        cache: bool,
    ) -> np.ndarray:
        if cache:
            self._cache_inputs.clear()
            self._cache_masks.clear()
        out = x
        dense = 0
        for kind in self.spec:
            if kind == "dense":
                if cache:
                    self._cache_inputs.append(out)
                out = np.matmul(out, weights[dense]) + biases[dense][:, None, :]
                dense += 1
            else:
                mask = out > 0
                if cache:
                    self._cache_masks.append(mask)
                out = np.where(mask, out, 0.0)
        return out

    def forward_online(self, x: np.ndarray, *, cache: bool = False) -> np.ndarray:
        """Online-network forward over stacked input (N, B, obs)."""
        return self._forward(x, self.weights, self.biases, cache=cache)

    def forward_target(self, x: np.ndarray) -> np.ndarray:
        return self._forward(x, self.t_weights, self.t_biases, cache=False)

    def backward(self, grad: np.ndarray) -> None:
        """Accumulate stacked parameter gradients from dL/d(output)."""
        dense = len(self.weights) - 1
        relu = len(self._cache_masks) - 1
        for kind in reversed(self.spec):
            if kind == "dense":
                x = self._cache_inputs[dense]
                self.grad_weights[dense] += np.matmul(x.transpose(0, 2, 1), grad)
                self.grad_biases[dense] += grad.sum(axis=1)
                grad = np.matmul(grad, self.weights[dense].transpose(0, 2, 1))
                dense -= 1
            else:
                grad = grad * self._cache_masks[relu]
                relu -= 1

    def adam_step(self, optimizer) -> None:
        """One stacked Adam update, mirroring ``Adam.step`` exactly."""
        params = []
        grads = []
        for w, b, gw, gb in zip(
            self.weights, self.biases, self.grad_weights, self.grad_biases
        ):
            params += [w, b]
            grads += [gw, gb]
        if self.adam_m is None:
            self.adam_m = [np.zeros_like(p) for p in params]
            self.adam_v = [np.zeros_like(p) for p in params]
        self.adam_t += 1
        beta1, beta2, eps = optimizer.beta1, optimizer.beta2, optimizer.epsilon
        lr = optimizer.learning_rate
        b1t = 1.0 - beta1**self.adam_t
        b2t = 1.0 - beta2**self.adam_t
        for p, g, m, v in zip(params, grads, self.adam_m, self.adam_v):
            m *= beta1
            m += (1.0 - beta1) * g
            v *= beta2
            v += (1.0 - beta2) * g * g
            p -= lr * (m / b1t) / (np.sqrt(v / b2t) + eps)
            g[...] = 0.0

    # -- target sync ----------------------------------------------------------

    def hard_sync(self) -> None:
        for tw, w in zip(self.t_weights, self.weights):
            tw[...] = w
        for tb, b in zip(self.t_biases, self.biases):
            tb[...] = b

    def soft_sync(self, tau: float) -> None:
        for tw, w in zip(self.t_weights, self.weights):
            tw *= 1.0 - tau
            tw += tau * w
        for tb, b in zip(self.t_biases, self.biases):
            tb *= 1.0 - tau
            tb += tau * b

    # -- slice management ------------------------------------------------------

    def compact(self, keep: list[int]) -> None:
        """Drop finished seeds' slices (matmul is per-slice for any N)."""
        self.weights = [w[keep] for w in self.weights]
        self.biases = [b[keep] for b in self.biases]
        self.t_weights = [w[keep] for w in self.t_weights]
        self.t_biases = [b[keep] for b in self.t_biases]
        self.grad_weights = [g[keep] for g in self.grad_weights]
        self.grad_biases = [g[keep] for g in self.grad_biases]
        if self.adam_m is not None:
            self.adam_m = [m[keep] for m in self.adam_m]
            self.adam_v = [v[keep] for v in self.adam_v]
        self._cache_inputs.clear()
        self._cache_masks.clear()

    def write_back(self, position: int, agent: DQNAgent) -> None:
        """Copy slice ``position`` into the agent's real network/optimizer."""
        weights: list[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            weights += [w[position].copy(), b[position].copy()]
        agent.online.set_weights(weights)
        t_weights: list[np.ndarray] = []
        for w, b in zip(self.t_weights, self.t_biases):
            t_weights += [w[position].copy(), b[position].copy()]
        agent.target.set_weights(t_weights)
        if self.adam_t > 0:
            agent.optimizer._m = [m[position].copy() for m in self.adam_m]
            agent.optimizer._v = [v[position].copy() for v in self.adam_v]
            agent.optimizer._t = self.adam_t


class PolicyStack:
    """Inference-only stacked mirror of N structurally identical networks.

    Unlike :class:`_StackedMLP` this holds no gradients, target copies, or
    Adam state — just the stacked online weights — so it is cheap enough
    to keep alive between calls. Staleness is tracked through each source
    :class:`~repro.nn.network.Network`'s ``version`` counter:
    :meth:`refresh` re-copies only the slices whose network mutated since
    the stack was built.

    When every entry is the *same* network object (a shared deployed
    policy), the stack keeps live references to its 2-D arrays instead of
    copying — broadcasting in the forward pass — so it can never go stale.
    Each stacked slice applies the same IEEE operations as the serial
    ``network.predict(obs_i)``, so results are bit-identical to scoring
    one network at a time.
    """

    def __init__(self, networks: list) -> None:
        if not networks:
            raise TrainingError("a PolicyStack needs at least one network")
        self.networks = list(networks)
        first = self.networks[0]
        self.spec: list[str] = []
        for layer in first.layers:
            if isinstance(layer, Dense):
                self.spec.append("dense")
            elif isinstance(layer, ReLU):
                self.spec.append("relu")
            else:
                raise TrainingError(
                    f"stacked inference supports Dense/ReLU only, got "
                    f"{type(layer).__name__}"
                )
        self.shared = all(net is first for net in self.networks)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        if self.shared:
            # Live views of the single network's arrays: every mutation
            # path writes parameters in place, so these never go stale.
            for li, kind in enumerate(self.spec):
                if kind == "dense":
                    self.weights.append(first.layers[li].weight)
                    self.biases.append(first.layers[li].bias)
        else:
            for net in self.networks[1:]:
                if len(net.layers) != len(first.layers) or any(
                    isinstance(a, Dense)
                    and (
                        not isinstance(b, Dense)
                        or a.weight.shape != b.weight.shape
                    )
                    for a, b in zip(first.layers, net.layers)
                ):
                    raise TrainingError("all agents must share geometry")
            for li, kind in enumerate(self.spec):
                if kind == "dense":
                    self.weights.append(
                        np.stack([net.layers[li].weight for net in self.networks])
                    )
                    self.biases.append(
                        np.stack([net.layers[li].bias for net in self.networks])
                    )
        self._versions = [net.version for net in self.networks]

    @property
    def num_stacked(self) -> int:
        return len(self.networks)

    @property
    def observation_size(self) -> int:
        return int(self.weights[0].shape[-2])

    @property
    def num_actions(self) -> int:
        return int(self.weights[-1].shape[-1])

    def refresh(self) -> int:
        """Re-copy slices whose source network mutated; returns the count."""
        if self.shared:
            return 0
        stale = 0
        for i, net in enumerate(self.networks):
            if net.version == self._versions[i]:
                continue
            dense = 0
            for li, kind in enumerate(self.spec):
                if kind == "dense":
                    self.weights[dense][i] = net.layers[li].weight
                    self.biases[dense][i] = net.layers[li].bias
                    dense += 1
            self._versions[i] = net.version
            stale += 1
        return stale

    def forward(self, obs: np.ndarray) -> np.ndarray:
        """Q-values (N, 1, actions) for stacked observations (N, obs)."""
        out = obs[:, None, :]
        dense = 0
        for kind in self.spec:
            if kind == "dense":
                if self.shared:
                    out = np.matmul(out, self.weights[dense]) + self.biases[dense]
                else:
                    out = (
                        np.matmul(out, self.weights[dense])
                        + self.biases[dense][:, None, :]
                    )
                dense += 1
            else:
                out = np.where(out > 0, out, 0.0)
        return out

    def greedy_actions(self, obs: np.ndarray) -> np.ndarray:
        """Greedy action per row; refreshes stale slices first."""
        self.refresh()
        return self.forward(obs).argmax(axis=2)[:, 0]


#: Cached stacks keyed on the identity tuple of their source networks. A
#: cached :class:`PolicyStack` holds strong references to its networks, so
#: an ``id`` in a live key can never be recycled to a different object.
_POLICY_STACK_CACHE: dict[tuple[int, ...], PolicyStack] = {}

#: Distinct network tuples kept stacked at once (FIFO eviction beyond this).
POLICY_STACK_CACHE_LIMIT = 8


def get_policy_stack(networks: list) -> PolicyStack:
    """The cached :class:`PolicyStack` for this exact tuple of networks.

    Repeat calls with the same network objects reuse the stacked arrays
    (refreshing any slices whose parameters mutated) instead of restacking
    from scratch — the former per-call rebuild cost of
    :func:`greedy_policy_actions`.
    """
    key = tuple(id(net) for net in networks)
    stack = _POLICY_STACK_CACHE.get(key)
    if stack is None or any(
        a is not b for a, b in zip(stack.networks, networks)
    ):
        stack = PolicyStack(networks)
        if key not in _POLICY_STACK_CACHE:
            while len(_POLICY_STACK_CACHE) >= POLICY_STACK_CACHE_LIMIT:
                _POLICY_STACK_CACHE.pop(next(iter(_POLICY_STACK_CACHE)))
        _POLICY_STACK_CACHE[key] = stack
    return stack


def clear_policy_stack_cache() -> None:
    """Drop every cached stack (tests and microbenchmarks)."""
    _POLICY_STACK_CACHE.clear()


def greedy_policy_actions(agents: list[DQNAgent], obs: np.ndarray) -> np.ndarray:
    """Greedy actions for N agents from one stacked forward pass.

    ``obs`` has shape (N, observation_size); row i is scored by
    ``agents[i]``. Greedy action selection consumes no rng, and each
    stacked slice applies the same IEEE operations as the serial
    ``agent.act(obs_i, greedy=True)``, so the result is bit-identical to
    acting one agent at a time. When every entry is the *same* agent
    object (a shared deployed policy), its 2-D weights broadcast across
    the stack without copying.

    The stacked weights come from the :func:`get_policy_stack` cache:
    calling this in a loop (as ``sim/shard`` does every slot) rebuilds
    nothing, only refreshing slices whose networks trained in between.
    """
    if not agents:
        raise TrainingError("need at least one agent")
    first = agents[0]
    obs = np.asarray(obs, dtype=np.float64)
    if obs.shape != (len(agents), first.config.observation_size):
        raise TrainingError(
            f"expected observations of shape "
            f"({len(agents)}, {first.config.observation_size}), got {obs.shape}"
        )
    for agent in agents[1:]:
        if (
            agent.config.observation_size != first.config.observation_size
            or agent.config.num_actions != first.config.num_actions
        ):
            raise TrainingError("all agents must share geometry")
    stack = get_policy_stack([agent.online for agent in agents])
    return stack.greedy_actions(obs)


def _batched_act(stack: _StackedMLP, agents: list[DQNAgent], obs: np.ndarray) -> np.ndarray:
    """ε-greedy actions for all seeds from one stacked forward pass.

    One (N, 1, obs) @ (N, obs, H) chain replaces N single-row forwards; the
    exploration draws then run per agent on its own rng, in the exact order
    ``DQNAgent.act`` consumes them.
    """
    q = stack.forward_online(obs[:, None, :])
    best = q.argmax(axis=2)[:, 0]
    actions = np.empty(len(agents), dtype=np.int64)
    for i, agent in enumerate(agents):
        if agent._rng.random() >= agent.epsilon:
            actions[i] = best[i]
        else:
            draw = int(agent._rng.integers(agent.config.num_actions - 1))
            actions[i] = draw + (draw >= best[i])
    return actions


def _batched_train_step(
    stack: _StackedMLP, agents: list[DQNAgent]
) -> np.ndarray:
    """One TD(0) update for every seed; returns per-seed Huber losses.

    Mirrors ``DQNAgent.train_on`` + ``Network.train_step`` operation for
    operation on (N, B, ·) tensors; per-seed replay sampling stays on each
    agent's own rng stream.
    """
    cfg = agents[0].config
    batches = [agent.replay.sample(cfg.batch_size) for agent in agents]
    obs = np.stack([b.observations for b in batches])
    actions = np.stack([b.actions for b in batches])
    rewards = np.stack([b.rewards for b in batches])
    next_obs = np.stack([b.next_observations for b in batches])
    n, batch_size = actions.shape

    next_q_target = stack.forward_target(next_obs)
    if cfg.double_dqn:
        next_q_online = stack.forward_online(next_obs)
        best_next = next_q_online.argmax(axis=2)
        bootstrap = np.take_along_axis(
            next_q_target, best_next[:, :, None], axis=2
        )[:, :, 0]
    else:
        bootstrap = next_q_target.max(axis=2)
    targets_for_actions = rewards + cfg.discount * bootstrap

    prediction = stack.forward_online(obs, cache=True)
    target = prediction.copy()
    rows = np.arange(n)[:, None], np.arange(batch_size)[None, :], actions
    target[rows] = targets_for_actions
    mask = np.zeros_like(target)
    mask[rows] = 1.0

    delta = agents[0].loss.delta
    err = prediction - target
    abs_err = np.abs(err)
    quad = np.minimum(abs_err, delta)
    losses = np.mean(0.5 * quad**2 + delta * (abs_err - quad), axis=(1, 2))
    # Per-slice gradient: divide by the slice's element count (B·A), the
    # ``p.size`` the serial HuberLoss sees, not the stacked size.
    grad = np.clip(err, -delta, delta) / (batch_size * prediction.shape[2]) * mask
    stack.backward(grad)
    stack.adam_step(agents[0].optimizer)

    for agent in agents:
        agent.train_steps += 1
    if cfg.soft_update_tau is not None:
        stack.soft_sync(cfg.soft_update_tau)
    elif agents[0].train_steps % cfg.target_sync_interval == 0:
        stack.hard_sync()
    return losses


def train_dqn_batch(
    env_config: MDPConfig | None = None,
    *,
    seeds,
    trainer=None,
    dqn: DQNConfig | None = None,
    history_length: int = 5,
) -> list:
    """Train one DQN per seed in lock-step; bit-identical to serial runs.

    Returns a list of :class:`repro.core.trainer.TrainingResult`, one per
    seed in order, each exactly equal (weights, histories, rng/replay
    state) to ``train_dqn(..., seed=s)``.
    """
    from repro.core.trainer import TrainerConfig, TrainingResult, train_dqn

    seed_list = [int(s) for s in seeds]
    if not seed_list:
        raise TrainingError("need at least one seed")
    trainer = trainer or TrainerConfig()
    if len(seed_list) == 1:
        return [
            train_dqn(
                env_config,
                trainer=trainer,
                dqn=dqn,
                history_length=history_length,
                seed=seed_list[0],
            )
        ]
    env_config = env_config or MDPConfig()
    vec = VectorEnv.from_seeds(env_config, seed_list, history_length=history_length)
    if dqn is None:
        dqn = DQNConfig(
            observation_size=vec.observation_size,
            num_actions=vec.num_actions,
        )
    elif (
        dqn.observation_size != vec.observation_size
        or dqn.num_actions != vec.num_actions
    ):
        raise TrainingError(
            "DQN geometry does not match the environment: expected "
            f"obs={vec.observation_size}, actions={vec.num_actions}"
        )
    agents = [DQNAgent(dqn, seed=derive(s, "train-agent")) for s in seed_list]
    stack = _StackedMLP(agents)

    n = len(seed_list)
    rewards: list[list[float]] = [[] for _ in range(n)]
    losses: list[list[float]] = [[] for _ in range(n)]
    converged = [False] * n
    episodes_run = [0] * n
    steps = [0] * n
    # Seeds still training, as indices into the original order. The stacked
    # tensors and ``vec`` always cover exactly these, in this order.
    active = list(range(n))
    # Warm-up transitions are buffered per agent and flushed with one
    # push_many right before the first training step (no sampling happens
    # during warm-up, so the deferred write is unobservable).
    pending: list[list[tuple]] = [[] for _ in range(n)]
    warmed_up = False

    with obs_trace.span(
        "train/run_batch",
        seeds=seed_list,
        episodes=trainer.episodes,
        steps_per_episode=trainer.steps_per_episode,
    ):
        METRICS.set("dqn.env_batch", n)
        telem = obs_telemetry.FlightRecorder(
            "dqn",
            labels={"batch": str(n)},
            counters=("link.per_cache_hits", "link.per_cache_misses"),
        )
        for _ in range(trainer.episodes):
            if not active:
                break
            live = [agents[i] for i in active]
            obs = vec.reset()
            ep_rewards = [0.0] * len(active)
            ep_losses: list[list[float]] = [[] for _ in active]
            for _ in range(trainer.steps_per_episode):
                actions = _batched_act(stack, live, obs)
                next_obs, step_rewards, _ = vec.step(actions)
                scaled = step_rewards * trainer.reward_scale
                stored = len(live[0].replay)
                if not warmed_up:
                    for pos, i in enumerate(active):
                        pending[i].append(
                            (obs[pos], int(actions[pos]), scaled[pos], next_obs[pos])
                        )
                    # min(·, capacity) is what len(replay) would read after
                    # sequential pushes — a warmup larger than the buffer
                    # never trains, exactly like the serial path.
                    would_store = min(
                        stored + len(pending[active[0]]), dqn.replay_capacity
                    )
                    if would_store >= dqn.warmup_transitions:
                        for pos, i in enumerate(active):
                            rows = pending[i]
                            live[pos].replay.push_many(
                                np.stack([r[0] for r in rows]),
                                np.array([r[1] for r in rows]),
                                np.array([r[2] for r in rows]),
                                np.stack([r[3] for r in rows]),
                            )
                            pending[i].clear()
                        warmed_up = True
                else:
                    for pos, agent in enumerate(live):
                        agent.replay.push(
                            obs[pos], int(actions[pos]), scaled[pos], next_obs[pos]
                        )
                for agent in live:
                    agent.env_steps += 1
                if warmed_up:
                    step_losses = _batched_train_step(stack, live)
                    for pos in range(len(active)):
                        ep_losses[pos].append(float(step_losses[pos]))
                obs = next_obs
                for pos in range(len(active)):
                    ep_rewards[pos] += float(step_rewards[pos])
                    steps[active[pos]] += 1

            finished = []
            for pos, i in enumerate(active):
                episodes_run[i] += 1
                rewards[i].append(ep_rewards[pos] / trainer.steps_per_episode)
                losses[i].append(
                    float(np.mean(ep_losses[pos])) if ep_losses[pos] else float("nan")
                )
                METRICS.inc("dqn.episodes")
                METRICS.set("dqn.epsilon", live[pos].epsilon)
                if ep_losses[pos]:
                    METRICS.observe("dqn.td_error", losses[i][-1])
                telem.tick(
                    episodes=1.0,
                    reward=rewards[i][-1],
                    loss=losses[i][-1] if ep_losses[pos] else 0.0,
                    epsilon=live[pos].epsilon,
                    env_steps=float(trainer.steps_per_episode),
                )
                obs_trace.event(
                    "dqn.episode",
                    seed=seed_list[i],
                    episode=episodes_run[i] - 1,
                    reward=rewards[i][-1],
                    loss=losses[i][-1],
                    epsilon=live[pos].epsilon,
                    replay=len(live[pos].replay),
                    steps=steps[i],
                )
                if (
                    trainer.reward_goal is not None
                    and len(rewards[i]) >= trainer.goal_window
                ):
                    window = rewards[i][-trainer.goal_window :]
                    if float(np.mean(window)) >= trainer.reward_goal:
                        converged[i] = True
                        finished.append(pos)
            if finished:
                for pos in finished:
                    stack.write_back(pos, agents[active[pos]])
                keep = [p for p in range(len(active)) if p not in finished]
                stack.compact(keep)
                vec = vec.select(keep)
                active = [active[p] for p in keep]
        telem.flush()

    for pos, i in enumerate(active):
        stack.write_back(pos, agents[i])
    results = []
    for i, seed in enumerate(seed_list):
        agents[i].sync_target()
        results.append(
            TrainingResult(
                agent=agents[i],
                steps=steps[i],
                episodes=episodes_run[i],
                converged=converged[i],
                reward_history=np.array(rewards[i]),
                loss_history=np.array(losses[i]),
            )
        )
    return results


def _train_batch_task(spec: tuple) -> list:
    """One lock-step group of seeded training runs (pool-dispatchable)."""
    env_config, trainer, dqn, history_length, chunk = spec
    return train_dqn_batch(
        env_config,
        seeds=chunk,
        trainer=trainer,
        dqn=dqn,
        history_length=history_length,
    )


__all__ = [
    "ENV_BATCH_ENV",
    "DEFAULT_ENV_BATCH",
    "resolve_env_batch",
    "VectorEnv",
    "PolicyStack",
    "POLICY_STACK_CACHE_LIMIT",
    "get_policy_stack",
    "clear_policy_stack_cache",
    "greedy_policy_actions",
    "train_dqn_batch",
]
