"""The five evaluation metrics of paper Table I.

======================  =====================================================
S_T  success rate of Tx  fraction of slots whose transmission succeeded
A_H  adoption rate of FH fraction of slots whose action hopped
S_H  success rate of FH  among FH slots, fraction where the hop was *useful*
                         (the vacated channel was attacked and the slot
                         succeeded); preventative hops don't count
A_P  adoption rate of PC fraction of slots transmitting above the minimum
                         power level
S_P  success rate of PC  among PC slots, fraction where the raised power
                         defeated an actual jam attempt
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.envs import StepInfo
from repro.errors import SimulationError


@dataclass(frozen=True)
class MetricSummary:
    """Point estimates of the Table-I metrics over an evaluation run."""

    slots: int
    success_rate: float  # S_T
    fh_adoption_rate: float  # A_H
    fh_success_rate: float  # S_H
    pc_adoption_rate: float  # A_P
    pc_success_rate: float  # S_P
    mean_reward: float
    jam_attempt_rate: float

    def as_dict(self) -> dict[str, float]:
        return {
            "slots": self.slots,
            "S_T": self.success_rate,
            "A_H": self.fh_adoption_rate,
            "S_H": self.fh_success_rate,
            "A_P": self.pc_adoption_rate,
            "S_P": self.pc_success_rate,
            "mean_reward": self.mean_reward,
            "jam_attempt_rate": self.jam_attempt_rate,
        }


@dataclass
class SlotLog:
    """Accumulates per-slot outcomes and reduces them to Table-I metrics."""

    slots: int = 0
    successes: int = 0
    hops: int = 0
    useful_hops: int = 0
    pc_slots: int = 0
    pc_wins: int = 0
    jam_attempts: int = 0
    total_reward: float = 0.0
    _history: list[StepInfo] = field(default_factory=list, repr=False)
    keep_history: bool = False

    def record(self, info: StepInfo) -> None:
        self.slots += 1
        self.successes += info.success
        self.jam_attempts += info.jam_attempted
        self.total_reward += info.reward
        if info.hopped:
            self.hops += 1
            if info.avoided_jam:
                self.useful_hops += 1
        if info.power_raised:
            self.pc_slots += 1
            if info.jam_defeated:
                self.pc_wins += 1
        if self.keep_history:
            self._history.append(info)

    def extend(self, infos: list[StepInfo]) -> None:
        for info in infos:
            self.record(info)

    @property
    def history(self) -> list[StepInfo]:
        if not self.keep_history:
            raise SimulationError("history was not kept; set keep_history=True")
        return list(self._history)

    def snapshot(self) -> "SlotLog":
        """Counter-only copy of the current totals (history is not carried).

        Pair with :meth:`delta` to aggregate over a window of slots inside
        a log that keeps accumulating — e.g. one ``run_experiment`` call on
        a simulator that has already run.
        """
        return SlotLog(
            slots=self.slots,
            successes=self.successes,
            hops=self.hops,
            useful_hops=self.useful_hops,
            pc_slots=self.pc_slots,
            pc_wins=self.pc_wins,
            jam_attempts=self.jam_attempts,
            total_reward=self.total_reward,
        )

    def delta(self, baseline: "SlotLog") -> "SlotLog":
        """Counters accumulated since ``baseline`` (an earlier snapshot)."""
        if baseline.slots > self.slots:
            raise SimulationError("baseline snapshot is newer than this log")
        return SlotLog(
            slots=self.slots - baseline.slots,
            successes=self.successes - baseline.successes,
            hops=self.hops - baseline.hops,
            useful_hops=self.useful_hops - baseline.useful_hops,
            pc_slots=self.pc_slots - baseline.pc_slots,
            pc_wins=self.pc_wins - baseline.pc_wins,
            jam_attempts=self.jam_attempts - baseline.jam_attempts,
            total_reward=self.total_reward - baseline.total_reward,
        )

    def summary(self) -> MetricSummary:
        if self.slots == 0:
            raise SimulationError("no slots recorded")
        return MetricSummary(
            slots=self.slots,
            success_rate=self.successes / self.slots,
            fh_adoption_rate=self.hops / self.slots,
            fh_success_rate=(self.useful_hops / self.hops) if self.hops else 0.0,
            pc_adoption_rate=self.pc_slots / self.slots,
            pc_success_rate=(self.pc_wins / self.pc_slots) if self.pc_slots else 0.0,
            mean_reward=self.total_reward / self.slots,
            jam_attempt_rate=self.jam_attempts / self.slots,
        )


def evaluate_policy(env, policy, *, slots: int) -> MetricSummary:
    """Run ``policy`` on an environment for ``slots`` slots and summarise.

    Works with both environments: the policy is queried with the current
    MDP-style state label and its abstract action is executed via
    ``step``/``step_action``.
    """
    if slots <= 0:
        raise SimulationError("slots must be positive")
    log = SlotLog()
    step = getattr(env, "step_action", None) or env.step
    for _ in range(slots):
        action = policy.action(env.state)
        _, _, info = step(action)
        log.record(info)
    return log.summary()


__all__ = ["MetricSummary", "SlotLog", "evaluate_policy"]
