"""Tabular Q-learning — the baseline the paper's DQN replaces.

Paper §III-C: "Compared with other RL techniques (such as Q-learning), the
learning speed of DQN will not suffer from the curse of high-
dimensionality." On the *exact* MDP state space (5 states for the default
geometry) tabular Q-learning is perfectly adequate and converges to the
value-iteration optimum — this module implements it both to validate the
solvers against a model-free learner and to make the paper's argument
concrete: the table works only because the oracle state is observable,
whereas the deployed system sees the 3·I-dimensional history the DQN
consumes (a table over that space is the curse the paper avoids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.envs import AnalyticJammingEnv
from repro.core.mdp import Action, AntiJammingMDP, State
from repro.errors import ConfigurationError, TrainingError
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class QLearningConfig:
    """Hyper-parameters of the tabular learner."""

    learning_rate: float = 0.1
    learning_rate_decay: float = 0.9999
    min_learning_rate: float = 0.01
    epsilon: float = 0.2
    epsilon_decay: float = 0.9995
    min_epsilon: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError("learning rate must lie in (0, 1]")
        if not 0.0 < self.learning_rate_decay <= 1.0:
            raise ConfigurationError("learning rate decay must lie in (0, 1]")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError("epsilon must lie in [0, 1]")
        if not 0.0 < self.epsilon_decay <= 1.0:
            raise ConfigurationError("epsilon decay must lie in (0, 1]")
        if self.min_learning_rate <= 0 or self.min_epsilon < 0:
            raise ConfigurationError("floors must be non-negative (lr > 0)")


class TabularQLearning:
    """Model-free Q-learning over the MDP's oracle state space."""

    def __init__(
        self,
        mdp: AntiJammingMDP,
        config: QLearningConfig | None = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        self.mdp = mdp
        self.config = config or QLearningConfig()
        self._rng = make_rng(seed)
        self.q = np.zeros((mdp.num_states, mdp.num_actions))
        self._lr = self.config.learning_rate
        self._eps = self.config.epsilon
        self.updates = 0

    # -- acting -----------------------------------------------------------------

    def act(self, state: State, *, greedy: bool = False) -> Action:
        if not greedy and self._rng.random() < self._eps:
            return self.mdp.actions[int(self._rng.integers(self.mdp.num_actions))]
        row = self.q[self.mdp.state_index(state)]
        return self.mdp.actions[int(np.argmax(row))]

    # -- learning ---------------------------------------------------------------

    def update(
        self, state: State, action: Action, reward: float, next_state: State
    ) -> float:
        """One TD(0) backup; returns the absolute TD error."""
        cfg = self.config
        si = self.mdp.state_index(state)
        ai = self.mdp.action_index(action)
        ni = self.mdp.state_index(next_state)
        target = reward + self.mdp.config.discount * self.q[ni].max()
        td = target - self.q[si, ai]
        self.q[si, ai] += self._lr * td
        self._lr = max(self._lr * cfg.learning_rate_decay, cfg.min_learning_rate)
        self._eps = max(self._eps * cfg.epsilon_decay, cfg.min_epsilon)
        self.updates += 1
        return abs(float(td))

    def train(
        self, env: AnalyticJammingEnv, steps: int
    ) -> np.ndarray:
        """Interact with ``env`` for ``steps`` slots; returns TD errors."""
        if steps < 1:
            raise TrainingError("steps must be positive")
        errors = np.empty(steps)
        for t in range(steps):
            state = env.state
            action = self.act(state)
            next_state, reward, _ = env.step(action)
            errors[t] = self.update(state, action, reward, next_state)
        return errors

    # -- introspection ------------------------------------------------------------

    def greedy_policy_map(self) -> dict[State, Action]:
        return {x: self.act(x, greedy=True) for x in self.mdp.states}

    def policy(self) -> "TabularQPolicy":
        return TabularQPolicy(self)

    def max_q_gap_to(self, values: np.ndarray) -> float:
        """Sup-norm gap between the learned state values and a reference."""
        learned = self.q.max(axis=1)
        ref = np.asarray(values, dtype=np.float64).ravel()
        if ref.size != learned.size:
            raise ConfigurationError("reference values have the wrong size")
        return float(np.max(np.abs(learned - ref)))


class TabularQPolicy:
    """Greedy policy view over a trained table (Policy protocol)."""

    def __init__(self, learner: TabularQLearning) -> None:
        if learner.updates == 0:
            raise TrainingError("refusing to freeze an untrained table")
        self._learner = learner

    def action(self, state: State) -> Action:
        return self._learner.act(state, greedy=True)


def observation_table_size(
    history_length: int, outcome_levels: int = 3, channels: int = 16, powers: int = 10
) -> int:
    """Table rows a *history-observation* learner would need.

    The deployed victim cannot observe the oracle MDP state; it sees the
    last I slots' (outcome, channel, power). A tabular method over that
    observation space needs (3·16·10)^I rows — the curse of dimensionality
    the paper's DQN sidesteps (≈ 2.5e13 rows at the paper's I = 5).
    """
    if history_length < 1:
        raise ConfigurationError("history length must be >= 1")
    return (outcome_levels * channels * powers) ** history_length


__all__ = [
    "QLearningConfig",
    "TabularQLearning",
    "TabularQPolicy",
    "observation_table_size",
]
