"""Deep Q-Network agent (paper §III-C, Fig. 4).

Architecture: 3·I input neurons (success/fail, channel, power of the
previous I slots), two fully connected ReLU hidden layers, C·P_L output
neurons — one Q-value per (channel, power-level) action. Exploration is
ε-greedy: the best action with probability 1−ε, any other feasible action
with probability ε/(C·P_L − 1). Learning uses experience replay and a
periodically synchronised target network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_DISCOUNT, DEFAULT_HIDDEN_WIDTH
from repro.core.replay import Batch, ReplayBuffer
from repro.errors import ConfigurationError, TrainingError
from repro.nn.losses import HuberLoss
from repro.nn.network import Network, mlp
from repro.nn.optimizers import Adam
from repro.rng import SeedLike, derive, make_rng


@dataclass(frozen=True)
class EpsilonSchedule:
    """Linearly decaying exploration rate."""

    start: float = 1.0
    end: float = 0.05
    decay_steps: int = 10_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.end <= self.start <= 1.0:
            raise ConfigurationError(
                f"need 0 <= end <= start <= 1, got start={self.start}, end={self.end}"
            )
        if self.decay_steps < 1:
            raise ConfigurationError("decay_steps must be positive")

    def value(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError("step must be non-negative")
        frac = min(step / self.decay_steps, 1.0)
        return self.start + (self.end - self.start) * frac


@dataclass(frozen=True)
class DQNConfig:
    """Hyper-parameters of the agent."""

    observation_size: int
    num_actions: int
    hidden_sizes: tuple[int, ...] = (DEFAULT_HIDDEN_WIDTH, DEFAULT_HIDDEN_WIDTH)
    discount: float = DEFAULT_DISCOUNT
    learning_rate: float = 1e-3
    batch_size: int = 64
    replay_capacity: int = 20_000
    warmup_transitions: int = 500
    target_sync_interval: int = 250
    epsilon: EpsilonSchedule = EpsilonSchedule()
    #: Double DQN (van Hasselt et al.): select the bootstrap action with the
    #: online network, evaluate it with the target network. Curbs the
    #: max-operator overestimation bias.
    double_dqn: bool = False
    #: Polyak averaging coefficient for soft target updates
    #: (target <- tau * online + (1 - tau) * target every training step);
    #: ``None`` keeps the paper-style hard sync every
    #: ``target_sync_interval`` steps.
    soft_update_tau: float | None = None

    def __post_init__(self) -> None:
        if self.observation_size < 1 or self.num_actions < 2:
            raise ConfigurationError(
                "need a positive observation size and at least 2 actions"
            )
        if not 0.0 <= self.discount < 1.0:
            raise ConfigurationError("discount must lie in [0, 1)")
        if self.batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        if self.warmup_transitions < self.batch_size:
            raise ConfigurationError(
                "warmup must provide at least one full batch"
            )
        if self.target_sync_interval < 1:
            raise ConfigurationError("target sync interval must be positive")
        if self.soft_update_tau is not None and not 0.0 < self.soft_update_tau <= 1.0:
            raise ConfigurationError("soft update tau must lie in (0, 1]")


class DQNAgent:
    """ε-greedy Q-learner over a NumPy MLP with target network and replay."""

    def __init__(self, config: DQNConfig, *, seed: SeedLike = None) -> None:
        self.config = config
        self._rng = make_rng(seed)
        self.online = mlp(
            config.observation_size,
            config.hidden_sizes,
            config.num_actions,
            seed=derive(seed, "dqn-online"),
        )
        self.target = self.online.clone()
        self.replay = ReplayBuffer(
            config.replay_capacity,
            config.observation_size,
            seed=derive(seed, "dqn-replay"),
        )
        self.optimizer = Adam(learning_rate=config.learning_rate)
        self.loss = HuberLoss()
        self.train_steps = 0
        self.env_steps = 0

    # -- acting -------------------------------------------------------------------

    @property
    def epsilon(self) -> float:
        return self.config.epsilon.value(self.env_steps)

    def q_values(self, observation: np.ndarray) -> np.ndarray:
        """Online-network Q-values for one observation."""
        obs = np.asarray(observation, dtype=np.float64).reshape(-1)
        if obs.size != self.config.observation_size:
            raise ConfigurationError(
                f"observation of size {obs.size}; expected "
                f"{self.config.observation_size}"
            )
        return self.online.predict(obs)

    def act(self, observation: np.ndarray, *, greedy: bool = False) -> int:
        """Pick an action; ε-greedy unless ``greedy`` forces exploitation.

        Matches the paper's rule: the best action with probability 1−ε,
        every other action with probability ε/(C·P_L − 1).
        """
        best = int(np.argmax(self.q_values(observation)))
        if greedy or self._rng.random() >= self.epsilon:
            return best
        # Uniform over the num_actions - 1 non-best actions without
        # materialising them: indices >= best shift up by one.
        draw = int(self._rng.integers(self.config.num_actions - 1))
        return draw + (draw >= best)

    # -- learning -----------------------------------------------------------------

    def observe(
        self,
        observation: np.ndarray,
        action: int,
        reward: float,
        next_observation: np.ndarray,
    ) -> float | None:
        """Store a transition and (after warm-up) do one training step.

        Returns the training loss, or ``None`` while warming up.
        """
        self.replay.push(observation, action, reward, next_observation)
        self.env_steps += 1
        if len(self.replay) < self.config.warmup_transitions:
            return None
        return self.train_on(self.replay.sample(self.config.batch_size))

    def train_on(self, batch: Batch) -> float:
        """One TD(0) update on a batch; syncs the target net on schedule."""
        cfg = self.config
        next_q_target = self.target.forward(batch.next_observations)
        if cfg.double_dqn:
            next_q_online = self.online.forward(batch.next_observations)
            best_next = next_q_online.argmax(axis=1)
            bootstrap = next_q_target[np.arange(batch.size), best_next]
        else:
            bootstrap = next_q_target.max(axis=1)
        targets_for_actions = batch.rewards + cfg.discount * bootstrap

        prediction = self.online.forward(batch.observations)
        target = prediction.copy()
        rows = np.arange(batch.size)
        target[rows, batch.actions] = targets_for_actions
        mask = np.zeros_like(target)
        mask[rows, batch.actions] = 1.0

        value = self.online.train_step(
            batch.observations, target, self.loss, self.optimizer, grad_mask=mask
        )
        self.train_steps += 1
        if cfg.soft_update_tau is not None:
            tau = cfg.soft_update_tau
            for t_param, o_param in zip(
                self.target.parameters, self.online.parameters
            ):
                t_param *= 1.0 - tau
                t_param += tau * o_param
        elif self.train_steps % cfg.target_sync_interval == 0:
            self.target.copy_weights_from(self.online)
        return value

    # -- persistence ----------------------------------------------------------------

    def sync_target(self) -> None:
        self.target.copy_weights_from(self.online)

    def network(self) -> Network:
        """The online network (e.g. for serialisation to the hub)."""
        return self.online


class GreedyDQNPolicy:
    """Frozen greedy policy over a trained agent, for evaluation."""

    def __init__(self, agent: DQNAgent) -> None:
        if agent.train_steps == 0:
            raise TrainingError(
                "refusing to freeze an agent that has never been trained"
            )
        self._agent = agent

    def act(self, observation: np.ndarray) -> int:
        return self._agent.act(observation, greedy=True)


__all__ = [
    "EpsilonSchedule",
    "DQNConfig",
    "DQNAgent",
    "GreedyDQNPolicy",
]
