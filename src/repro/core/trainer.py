"""DQN training loop for the anti-jamming environment.

Mirrors the paper's procedure (§IV-B): train on historical interaction
blocks (channel, power level, success/failure), stop when the running
average reward reaches a threshold or the step budget runs out, then freeze
the network and deploy it greedily.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dqn import DQNAgent, DQNConfig
from repro.core.envs import SweepJammingEnv
from repro.core.mdp import MDPConfig
from repro.core.metrics import MetricSummary, SlotLog
from repro.errors import TrainingError
from repro.exec import FaultPolicy, ParallelRunner, TaskFailure
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.rng import SeedLike, derive


@dataclass(frozen=True)
class TrainingResult:
    """Outcome of a training run."""

    agent: DQNAgent
    steps: int
    episodes: int
    converged: bool
    reward_history: np.ndarray  # mean reward per episode
    loss_history: np.ndarray  # mean TD loss per episode (nan during warmup)


@dataclass(frozen=True)
class TrainerConfig:
    """Training-loop knobs."""

    episodes: int = 100
    steps_per_episode: int = 400
    #: Stop early when the mean episode reward reaches this value
    #: ("unless the training goal has been achieved in advance").
    reward_goal: float | None = None
    #: Episodes the running average is taken over for the goal test.
    goal_window: int = 5
    #: Rewards are multiplied by this before entering the replay buffer.
    #: The raw Eq. (5) losses reach -(L_p + L_H + L_J) ~ -165; scaling keeps
    #: TD targets inside the Huber loss's quadratic region. Reported reward
    #: histories stay in raw units.
    reward_scale: float = 0.01

    def __post_init__(self) -> None:
        if self.episodes < 1 or self.steps_per_episode < 1:
            raise TrainingError("episodes and steps_per_episode must be positive")
        if self.goal_window < 1:
            raise TrainingError("goal window must be positive")
        if self.reward_scale <= 0:
            raise TrainingError("reward scale must be positive")


def train_dqn(
    env_config: MDPConfig | None = None,
    *,
    trainer: TrainerConfig | None = None,
    dqn: DQNConfig | None = None,
    history_length: int = 5,
    seed: SeedLike = None,
) -> TrainingResult:
    """Train a DQN against the mechanistic sweep jammer."""
    env_config = env_config or MDPConfig()
    trainer = trainer or TrainerConfig()
    env = SweepJammingEnv(
        env_config, history_length=history_length, seed=derive(seed, "train-env")
    )
    if dqn is None:
        dqn = DQNConfig(
            observation_size=env.observation_size,
            num_actions=env.num_actions,
        )
    elif dqn.observation_size != env.observation_size or dqn.num_actions != env.num_actions:
        raise TrainingError(
            "DQN geometry does not match the environment: expected "
            f"obs={env.observation_size}, actions={env.num_actions}"
        )
    agent = DQNAgent(dqn, seed=derive(seed, "train-agent"))

    rewards: list[float] = []
    losses: list[float] = []
    converged = False
    steps = 0
    episodes_run = 0
    with obs_trace.span(
        "train/run",
        seed=seed,
        episodes=trainer.episodes,
        steps_per_episode=trainer.steps_per_episode,
    ):
        for _ in range(trainer.episodes):
            episodes_run += 1
            obs = env.reset()
            ep_reward = 0.0
            ep_losses: list[float] = []
            for _ in range(trainer.steps_per_episode):
                action = agent.act(obs)
                next_obs, reward, _ = env.step_index(action)
                loss = agent.observe(
                    obs, action, reward * trainer.reward_scale, next_obs
                )
                if loss is not None:
                    ep_losses.append(loss)
                obs = next_obs
                ep_reward += reward
                steps += 1
            rewards.append(ep_reward / trainer.steps_per_episode)
            losses.append(float(np.mean(ep_losses)) if ep_losses else float("nan"))
            METRICS.inc("dqn.episodes")
            METRICS.set("dqn.epsilon", agent.epsilon)
            if ep_losses:
                METRICS.observe("dqn.td_error", losses[-1])
            obs_trace.event(
                "dqn.episode",
                episode=episodes_run - 1,
                reward=rewards[-1],
                loss=losses[-1],
                epsilon=agent.epsilon,
                replay=len(agent.replay),
                steps=steps,
            )
            if trainer.reward_goal is not None and len(rewards) >= trainer.goal_window:
                window = rewards[-trainer.goal_window :]
                if float(np.mean(window)) >= trainer.reward_goal:
                    converged = True
                    break
    agent.sync_target()
    return TrainingResult(
        agent=agent,
        steps=steps,
        episodes=episodes_run,
        converged=converged,
        reward_history=np.array(rewards),
        loss_history=np.array(losses),
    )


@dataclass(frozen=True)
class MultiSeedResult:
    """Per-seed training runs plus cross-seed aggregates.

    ``seeds`` and ``results`` are aligned and hold only the runs that
    completed; seeds lost under ``on_error="skip"`` are recorded in
    ``failures`` as :class:`repro.exec.TaskFailure` sentinels.
    """

    seeds: tuple[int, ...]
    results: tuple[TrainingResult, ...]
    failures: tuple[TaskFailure, ...] = ()

    @property
    def final_rewards(self) -> np.ndarray:
        """Last-episode mean reward of each seed's run."""
        return np.array([r.reward_history[-1] for r in self.results])

    @property
    def mean_final_reward(self) -> float:
        return float(self.final_rewards.mean())

    @property
    def std_final_reward(self) -> float:
        return float(self.final_rewards.std())

    def best(self) -> TrainingResult:
        """The run with the highest final-episode reward."""
        return self.results[int(np.argmax(self.final_rewards))]


def _train_task(spec: tuple) -> TrainingResult:
    """One independently-seeded training run (pool-dispatchable)."""
    env_config, trainer, dqn, history_length, seed = spec
    return train_dqn(
        env_config,
        trainer=trainer,
        dqn=dqn,
        history_length=history_length,
        seed=seed,
    )


def train_dqn_multi_seed(
    env_config: MDPConfig | None = None,
    *,
    seeds=(0, 1, 2, 3),
    trainer: TrainerConfig | None = None,
    dqn: DQNConfig | None = None,
    history_length: int = 5,
    workers: int | str | None = None,
    policy: FaultPolicy | None = None,
    env_batch: int | str | None = None,
) -> MultiSeedResult:
    """Train one DQN per seed, fanning the runs out over a process pool.

    Each run is fully determined by its own seed (environment and agent
    streams both derive from it), so results are identical for any
    ``workers`` setting — ``REPRO_WORKERS=1`` reproduces the serial loop
    bit for bit, and a retried run reproduces a first-try run exactly.

    ``env_batch`` (default: the ``REPRO_ENV_BATCH`` environment, falling
    back to :data:`repro.core.vecenv.DEFAULT_ENV_BATCH`) groups that many
    seeds into one lock-step :func:`repro.core.vecenv.train_dqn_batch`
    task, amortising network forward/backward passes across the group
    while staying bit-identical to the serial runs — so the process pool
    and the in-process batch compose (processes × batch). ``1`` or
    ``"off"`` restores one pool task per seed.

    ``policy`` (default: the ``REPRO_ON_ERROR``/``REPRO_MAX_RETRIES``
    environment) governs worker faults: with ``on_error="skip"`` the runs
    that crashed permanently are dropped from ``seeds``/``results`` and
    reported in :attr:`MultiSeedResult.failures` instead of sinking the
    surviving seeds; all seeds failing raises :class:`TrainingError`.
    Under batching a crash costs the whole ``env_batch`` group, since the
    group shares one pool task.
    """
    from repro.core.vecenv import _train_batch_task, resolve_env_batch

    seed_list = tuple(int(s) for s in seeds)
    if not seed_list:
        raise TrainingError("need at least one seed")
    batch = resolve_env_batch(env_batch)
    runner = ParallelRunner(workers, name="train_dqn_multi_seed.map", policy=policy)
    if batch > 1:
        chunks = [
            seed_list[i : i + batch] for i in range(0, len(seed_list), batch)
        ]
        raw = runner.map(
            _train_batch_task,
            [(env_config, trainer, dqn, history_length, c) for c in chunks],
        )
        failures = tuple(r for r in raw if isinstance(r, TaskFailure))
        kept = [
            (s, result)
            for chunk, group in zip(chunks, raw)
            if not isinstance(group, TaskFailure)
            for s, result in zip(chunk, group)
        ]
    else:
        raw = runner.map(
            _train_task,
            [(env_config, trainer, dqn, history_length, s) for s in seed_list],
        )
        failures = tuple(r for r in raw if isinstance(r, TaskFailure))
        kept = [
            (s, r) for s, r in zip(seed_list, raw) if not isinstance(r, TaskFailure)
        ]
    if not kept:
        raise TrainingError(
            f"all {len(seed_list)} training seeds failed; first failure "
            f"({failures[0].error_type}):\n{failures[0].traceback}"
        )
    return MultiSeedResult(
        seeds=tuple(s for s, _ in kept),
        results=tuple(r for _, r in kept),
        failures=failures,
    )


def evaluate_dqn(
    agent: DQNAgent,
    env_config: MDPConfig | None = None,
    *,
    slots: int = 20_000,
    history_length: int = 5,
    seed: SeedLike = None,
) -> MetricSummary:
    """Greedy evaluation of a trained agent over ``slots`` time slots."""
    if slots < 1:
        raise TrainingError("slots must be positive")
    env = SweepJammingEnv(
        env_config or MDPConfig(),
        history_length=history_length,
        seed=derive(seed, "eval-env"),
    )
    if env.observation_size != agent.config.observation_size:
        raise TrainingError("agent/environment observation size mismatch")
    log = SlotLog()
    with obs_trace.span("train/evaluate", slots=slots):
        obs = env.reset()
        for _ in range(slots):
            action = agent.act(obs, greedy=True)
            obs, _, info = env.step_index(action)
            log.record(info)
    summary = log.summary()
    obs_trace.event(
        "dqn.evaluation",
        slots=summary.slots,
        success_rate=summary.success_rate,
        mean_reward=summary.mean_reward,
    )
    return summary


__all__ = [
    "TrainingResult",
    "TrainerConfig",
    "train_dqn",
    "MultiSeedResult",
    "train_dqn_multi_seed",
    "evaluate_dqn",
]
