"""Sequential network container and the paper's MLP factory."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import Dense, Layer, ReLU
from repro.nn.losses import Loss
from repro.rng import SeedLike, make_rng, spawn


class Network:
    """A sequential stack of layers with train/predict plumbing.

    ``version`` is a monotonically increasing parameter-mutation counter:
    every library path that rewrites the parameters (``train_step``,
    ``set_weights``, ``copy_weights_from``, the serialisation loaders)
    bumps it, so callers holding derived views of the weights — the
    stacked inference bundles of :mod:`repro.core.vecenv` — can detect
    staleness with one integer compare instead of rehashing arrays.
    Code that mutates ``layer.weight``/``layer.bias`` in place directly
    must call :meth:`mark_mutated` itself.
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ConfigurationError("a network needs at least one layer")
        self.layers = list(layers)
        self.version = 0

    def mark_mutated(self) -> None:
        """Record an in-place parameter mutation (invalidates cached stacks)."""
        self.version += 1

    # -- inference ---------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; 1-D inputs yield 1-D outputs."""
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        out = self.forward(x)
        return out[0] if squeeze else out

    # -- training ----------------------------------------------------------------

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def train_step(
        self,
        x: np.ndarray,
        target: np.ndarray,
        loss: Loss,
        optimizer,
        *,
        grad_mask: np.ndarray | None = None,
    ) -> float:
        """One forward/backward/update step; returns the loss value.

        ``grad_mask`` (same shape as the output) zeroes gradient entries —
        the DQN uses it to update only the Q-value of the action taken.
        """
        prediction = self.forward(x)
        value = loss.value(prediction, target)
        grad = loss.gradient(prediction, target)
        if grad_mask is not None:
            mask = np.asarray(grad_mask, dtype=np.float64)
            if mask.shape != grad.shape:
                raise ConfigurationError(
                    f"grad mask shape {mask.shape} does not match output {grad.shape}"
                )
            grad = grad * mask
        self.backward(grad)
        optimizer.step(self.parameters, self.gradients)
        self.version += 1
        return value

    # -- parameters ---------------------------------------------------------------

    @property
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients]

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters))

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.parameters]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        params = self.parameters
        if len(weights) != len(params):
            raise ConfigurationError(
                f"expected {len(params)} arrays, got {len(weights)}"
            )
        for p, w in zip(params, weights):
            w = np.asarray(w, dtype=np.float64)
            if p.shape != w.shape:
                raise ConfigurationError(
                    f"weight shape {w.shape} does not match parameter {p.shape}"
                )
            p[...] = w
        self.version += 1

    def copy_weights_from(self, other: "Network") -> None:
        """Hard target-network sync."""
        self.set_weights(other.get_weights())

    def clone(self) -> "Network":
        """Structural copy with identical weights (for target networks)."""
        clone = Network(
            [
                Dense(l.in_features, l.out_features) if isinstance(l, Dense) else ReLU()
                for l in self.layers
            ]
        )
        clone.set_weights(self.get_weights())
        return clone


def mlp(
    input_size: int,
    hidden_sizes: tuple[int, ...],
    output_size: int,
    *,
    seed: SeedLike = None,
) -> Network:
    """Build the paper's fully-connected architecture.

    With ``hidden_sizes=(48, 48)`` and the default scenario (I = 5 history
    slots, 16 channels x 10 power levels) this is the 4-layer network of
    Fig. 4: 3·I inputs, two hidden ReLU layers, C·P_L outputs.
    """
    if input_size < 1 or output_size < 1:
        raise ConfigurationError("input and output sizes must be positive")
    if not hidden_sizes:
        raise ConfigurationError("at least one hidden layer is required")
    rng = make_rng(seed)
    seeds = spawn(rng, len(hidden_sizes) + 1)
    layers: list[Layer] = []
    prev = input_size
    for size, layer_seed in zip(hidden_sizes, seeds):
        layers.append(Dense(prev, size, init="he", seed=layer_seed))
        layers.append(ReLU())
        prev = size
    layers.append(Dense(prev, output_size, init="xavier", seed=seeds[-1]))
    return Network(layers)


__all__ = ["Network", "mlp"]
