"""Training losses with analytic gradients."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError


def _check_shapes(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(prediction, dtype=np.float64)
    t = np.asarray(target, dtype=np.float64)
    if p.shape != t.shape:
        raise ConfigurationError(
            f"prediction shape {p.shape} does not match target shape {t.shape}"
        )
    if p.size == 0:
        raise ConfigurationError("cannot compute a loss over zero elements")
    return p, t


class Loss(abc.ABC):
    """A scalar loss with its gradient w.r.t. the prediction."""

    @abc.abstractmethod
    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        ...

    @abc.abstractmethod
    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        ...


class MeanSquaredError(Loss):
    """0.5 * mean((p - t)^2); the 0.5 makes the gradient (p - t)/N."""

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = _check_shapes(prediction, target)
        return float(0.5 * np.mean((p - t) ** 2))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        p, t = _check_shapes(prediction, target)
        return (p - t) / p.size


class HuberLoss(Loss):
    """Huber (smooth-L1) loss — the standard DQN choice.

    Quadratic within ``delta`` of the target, linear outside, keeping
    bootstrapped TD errors from exploding gradients.
    """

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = _check_shapes(prediction, target)
        err = p - t
        abs_err = np.abs(err)
        quad = np.minimum(abs_err, self.delta)
        return float(np.mean(0.5 * quad**2 + self.delta * (abs_err - quad)))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        p, t = _check_shapes(prediction, target)
        err = p - t
        return np.clip(err, -self.delta, self.delta) / p.size


__all__ = ["Loss", "MeanSquaredError", "HuberLoss"]
