"""Minimal neural-network substrate for the DQN (no ML frameworks).

Implements exactly what the paper's 4-layer fully-connected DQN needs:
dense layers with ReLU, Huber/MSE losses, SGD and Adam, deterministic
initialisation, and flat-parameter (de)serialisation — the "series of
matrices, 10664 float numbers with 42.7KB memory" artifact the paper loads
onto the IoT hub.
"""

from repro.nn.layers import Dense, Layer, ReLU
from repro.nn.losses import HuberLoss, Loss, MeanSquaredError
from repro.nn.network import Network, mlp
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.serialize import load_parameters, parameter_count, save_parameters

__all__ = [
    "Dense",
    "Layer",
    "ReLU",
    "HuberLoss",
    "Loss",
    "MeanSquaredError",
    "Network",
    "mlp",
    "SGD",
    "Adam",
    "Optimizer",
    "load_parameters",
    "save_parameters",
    "parameter_count",
]
