"""Network layers with explicit forward/backward passes.

Every layer consumes and produces 2-D batches ``(batch, features)``. The
backward pass takes the gradient of the loss w.r.t. the layer's output and
returns the gradient w.r.t. its input, accumulating parameter gradients
internally (cleared by the optimizer after each step).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng


class Layer(abc.ABC):
    """Base class: a differentiable function of a batch."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute outputs and cache whatever backward needs."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate gradients; returns dL/d(input)."""

    @property
    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays (views, mutated in place by optimizers)."""
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        """Accumulated gradients aligned with :attr:`parameters`."""
        return []


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with He/Xavier init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        init: str = "he",
        seed: SeedLike = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ConfigurationError("layer dimensions must be positive")
        rng = make_rng(seed)
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "xavier":
            scale = np.sqrt(1.0 / in_features)
        else:
            raise ConfigurationError(f"unknown init {init!r}; use 'he' or 'xavier'")
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ConfigurationError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.grad_weight += self._input.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Elementwise rectifier, the paper's chosen activation (§III-C)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward called before forward")
        return np.asarray(grad_output) * self._mask


__all__ = ["Layer", "Dense", "ReLU"]
