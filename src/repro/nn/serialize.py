"""Flat-parameter (de)serialisation of networks.

The paper ships its trained policy to the CC26X2R1 hub as "a series of
matrices, which contain 10664 float numbers with 42.7KB memory". These
helpers produce exactly that artifact: a single float32 vector plus a shape
manifest, written with :func:`numpy.savez`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network


def parameter_count(network: Network) -> int:
    """Total number of scalar parameters (the paper's "10664 floats")."""
    return network.num_parameters()


def artifact_size_bytes(network: Network, dtype: str = "float32") -> int:
    """Size of the flat parameter artifact (42.7 KB for the paper's net)."""
    return parameter_count(network) * np.dtype(dtype).itemsize


def flatten_parameters(network: Network, dtype: str = "float32") -> np.ndarray:
    """Concatenate all parameters into one vector."""
    return np.concatenate(
        [p.reshape(-1).astype(dtype) for p in network.parameters]
    )


def unflatten_parameters(network: Network, flat: np.ndarray) -> None:
    """Load a flat vector back into ``network`` (shapes must match)."""
    flat = np.asarray(flat).reshape(-1)
    expected = parameter_count(network)
    if flat.size != expected:
        raise ConfigurationError(
            f"flat vector holds {flat.size} floats; network needs {expected}"
        )
    offset = 0
    for p in network.parameters:
        chunk = flat[offset : offset + p.size]
        p[...] = chunk.reshape(p.shape).astype(np.float64)
        offset += p.size
    network.mark_mutated()


def save_parameters(network: Network, path: str | os.PathLike) -> None:
    """Write the deployable artifact: flat float32 params + shape manifest.

    The manifest pads every shape row to the *maximum* ndim across the
    network's parameters (not a hard-coded 2), so layers with 3-D+
    parameters serialise correctly instead of building a ragged array.
    """
    params = network.parameters
    max_ndim = max((p.ndim for p in params), default=0)
    shapes = np.array(
        [list(p.shape) + [0] * (max_ndim - p.ndim) for p in params],
        dtype=np.int64,
    ).reshape(len(params), max_ndim)
    np.savez(
        path,
        flat=flatten_parameters(network),
        shapes=shapes,
        ndims=np.array([p.ndim for p in params], dtype=np.int64),
    )


def _manifest_shapes(
    shapes: np.ndarray, ndims: np.ndarray, path: str | os.PathLike
) -> list[tuple[int, ...]]:
    """Decode the (padded-row, ndim) manifest back into per-layer shapes."""
    if shapes.ndim != 2 or ndims.ndim != 1 or shapes.shape[0] != ndims.size:
        raise ConfigurationError(
            f"{os.fspath(path)}: corrupted shape manifest "
            f"(shapes {shapes.shape}, ndims {ndims.shape})"
        )
    decoded: list[tuple[int, ...]] = []
    for row, nd in zip(shapes, ndims):
        nd = int(nd)
        if nd < 0 or nd > row.size:
            raise ConfigurationError(
                f"{os.fspath(path)}: corrupted shape manifest "
                f"(ndim {nd} outside padded row of {row.size})"
            )
        decoded.append(tuple(int(v) for v in row[:nd]))
    return decoded


def _read_artifact(
    path: str | os.PathLike,
) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Read and validate one artifact: (flat vector, decoded shape manifest)."""
    with np.load(path) as data:
        if "flat" not in data:
            raise ConfigurationError(f"{path} is not a parameter artifact")
        if "shapes" not in data or "ndims" not in data:
            raise ConfigurationError(
                f"{os.fspath(path)}: parameter artifact is missing its shape "
                "manifest (corrupted or not written by save_parameters)"
            )
        flat = data["flat"]
        manifest = _manifest_shapes(data["shapes"], data["ndims"], path)
        total = sum(int(np.prod(shape, dtype=np.int64)) for shape in manifest)
        if total != flat.size:
            raise ConfigurationError(
                f"{os.fspath(path)}: artifact is corrupted — manifest "
                f"describes {total} floats but the flat vector holds {flat.size}"
            )
        return flat, manifest


def load_parameters(network: Network, path: str | os.PathLike) -> None:
    """Load an artifact written by :func:`save_parameters` into ``network``.

    The saved shape manifest is validated against the target network's
    per-layer geometry, so an artifact trained on a *different*
    architecture that happens to share the total parameter count is
    rejected instead of silently loading scrambled weights.
    """
    flat, manifest = _read_artifact(path)
    expected = [p.shape for p in network.parameters]
    if manifest != expected:
        raise ConfigurationError(
            f"{os.fspath(path)}: artifact geometry does not match the "
            f"target network: artifact {manifest} vs network {expected}"
        )
    unflatten_parameters(network, flat)


@dataclass(frozen=True)
class PolicyBundle:
    """A set of policy artifacts validated to share one geometry.

    ``shapes`` is the per-parameter shape manifest common to every
    artifact; ``flats`` holds one float32 parameter vector per path, in
    the order the paths were given.
    """

    paths: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    flats: tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return len(self.flats)

    def load_into(self, index: int, network: Network) -> None:
        """Load bundle entry ``index`` into ``network`` (shapes must match)."""
        expected = [p.shape for p in network.parameters]
        if list(self.shapes) != expected:
            raise ConfigurationError(
                f"{self.paths[index]}: bundle geometry does not match the "
                f"target network: bundle {list(self.shapes)} vs network {expected}"
            )
        unflatten_parameters(network, self.flats[index])


def load_policy_bundle(paths: list[str | os.PathLike]) -> PolicyBundle:
    """Load several policy artifacts, validating they share one geometry.

    Every artifact's shape manifest is compared against the first's
    *before* anything is stacked, so a mismatched policy fails fast with
    a :class:`ConfigurationError` naming the offending path instead of a
    shape error deep inside a stacked forward pass.
    """
    if not paths:
        raise ConfigurationError("load_policy_bundle needs at least one path")
    flats: list[np.ndarray] = []
    reference: list[tuple[int, ...]] | None = None
    reference_path = ""
    for path in paths:
        flat, manifest = _read_artifact(path)
        if reference is None:
            reference = manifest
            reference_path = os.fspath(path)
        elif manifest != reference:
            raise ConfigurationError(
                f"{os.fspath(path)}: artifact geometry {manifest} does not "
                f"match the bundle geometry {reference} set by {reference_path}"
            )
        flats.append(flat)
    assert reference is not None
    return PolicyBundle(
        paths=tuple(os.fspath(p) for p in paths),
        shapes=tuple(reference),
        flats=tuple(flats),
    )


__all__ = [
    "parameter_count",
    "artifact_size_bytes",
    "flatten_parameters",
    "unflatten_parameters",
    "save_parameters",
    "load_parameters",
    "PolicyBundle",
    "load_policy_bundle",
]
