"""Flat-parameter (de)serialisation of networks.

The paper ships its trained policy to the CC26X2R1 hub as "a series of
matrices, which contain 10664 float numbers with 42.7KB memory". These
helpers produce exactly that artifact: a single float32 vector plus a shape
manifest, written with :func:`numpy.savez`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.network import Network


def parameter_count(network: Network) -> int:
    """Total number of scalar parameters (the paper's "10664 floats")."""
    return network.num_parameters()


def artifact_size_bytes(network: Network, dtype: str = "float32") -> int:
    """Size of the flat parameter artifact (42.7 KB for the paper's net)."""
    return parameter_count(network) * np.dtype(dtype).itemsize


def flatten_parameters(network: Network, dtype: str = "float32") -> np.ndarray:
    """Concatenate all parameters into one vector."""
    return np.concatenate(
        [p.reshape(-1).astype(dtype) for p in network.parameters]
    )


def unflatten_parameters(network: Network, flat: np.ndarray) -> None:
    """Load a flat vector back into ``network`` (shapes must match)."""
    flat = np.asarray(flat).reshape(-1)
    expected = parameter_count(network)
    if flat.size != expected:
        raise ConfigurationError(
            f"flat vector holds {flat.size} floats; network needs {expected}"
        )
    offset = 0
    for p in network.parameters:
        chunk = flat[offset : offset + p.size]
        p[...] = chunk.reshape(p.shape).astype(np.float64)
        offset += p.size


def save_parameters(network: Network, path: str | os.PathLike) -> None:
    """Write the deployable artifact: flat float32 params + shape manifest."""
    shapes = np.array(
        [list(p.shape) + [0] * (2 - p.ndim) for p in network.parameters],
        dtype=np.int64,
    )
    np.savez(
        path,
        flat=flatten_parameters(network),
        shapes=shapes,
        ndims=np.array([p.ndim for p in network.parameters], dtype=np.int64),
    )


def load_parameters(network: Network, path: str | os.PathLike) -> None:
    """Load an artifact written by :func:`save_parameters` into ``network``."""
    with np.load(path) as data:
        if "flat" not in data:
            raise ConfigurationError(f"{path} is not a parameter artifact")
        unflatten_parameters(network, data["flat"])


__all__ = [
    "parameter_count",
    "artifact_size_bytes",
    "flatten_parameters",
    "unflatten_parameters",
    "save_parameters",
    "load_parameters",
]
