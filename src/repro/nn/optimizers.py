"""Gradient-descent optimizers operating on a network's parameter views."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError


class Optimizer(abc.ABC):
    """Updates parameters in place from their accumulated gradients."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning rate must be positive, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)

    @abc.abstractmethod
    def step(
        self, parameters: list[np.ndarray], gradients: list[np.ndarray]
    ) -> None:
        """Apply one update; zeroes the gradients afterwards."""

    @staticmethod
    def _validate(
        parameters: list[np.ndarray], gradients: list[np.ndarray]
    ) -> None:
        if len(parameters) != len(gradients):
            raise ConfigurationError(
                f"{len(parameters)} parameters but {len(gradients)} gradients"
            )
        for p, g in zip(parameters, gradients):
            if p.shape != g.shape:
                raise ConfigurationError(
                    f"parameter shape {p.shape} does not match gradient {g.shape}"
                )

    @staticmethod
    def _zero(gradients: list[np.ndarray]) -> None:
        for g in gradients:
            g[...] = 0.0


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def step(
        self, parameters: list[np.ndarray], gradients: list[np.ndarray]
    ) -> None:
        self._validate(parameters, gradients)
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in parameters]
        for p, g, v in zip(parameters, gradients, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v
        self._zero(gradients)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must lie in [0, 1)")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(
        self, parameters: list[np.ndarray], gradients: list[np.ndarray]
    ) -> None:
        self._validate(parameters, gradients)
        if self._m is None:
            self._m = [np.zeros_like(p) for p in parameters]
            self._v = [np.zeros_like(p) for p in parameters]
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(parameters, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.learning_rate * (m / b1t) / (np.sqrt(v / b2t) + self.epsilon)
        self._zero(gradients)


__all__ = ["Optimizer", "SGD", "Adam"]
