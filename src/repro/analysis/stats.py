"""Small statistics helpers for experiment summaries."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import SimulationError


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(samples) -> SeriesSummary:
    """Summarise a 1-D sample."""
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size == 0:
        raise SimulationError("cannot summarise an empty sample")
    return SeriesSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def mean_confidence_interval(
    samples, confidence: float = 0.95
) -> tuple[float, float, float]:
    """(mean, lower, upper) Student-t confidence interval for the mean."""
    if not 0.0 < confidence < 1.0:
        raise SimulationError("confidence must lie in (0, 1)")
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size < 2:
        raise SimulationError("need at least two samples for an interval")
    mean = float(arr.mean())
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    if sem == 0.0:
        return mean, mean, mean
    half = float(sps.t.ppf(0.5 + confidence / 2.0, arr.size - 1)) * sem
    return mean, mean - half, mean + half


def bernoulli_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float, float]:
    """(rate, lower, upper) Wilson score interval for a proportion."""
    if trials <= 0:
        raise SimulationError("trials must be positive")
    if not 0 <= successes <= trials:
        raise SimulationError("successes out of range")
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    return p, max(0.0, centre - half), min(1.0, centre + half)


__all__ = [
    "SeriesSummary",
    "summarize",
    "mean_confidence_interval",
    "bernoulli_interval",
]
