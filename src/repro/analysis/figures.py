"""Figure-data generators — one entry point per data-bearing paper figure.

Every generator returns plain data structures (lists of rows) so the
benchmark harness can print them, tests can assert on their shape, and the
CLI can dump them as tables. The heavy parameter sweeps of Figs. 6–8 share
one cached computation.

Policy choice for the sweeps: each point evaluates the *exact* value-
iteration optimum of the configured MDP on the mechanistic sweep-jammer
environment (see DESIGN.md, "Sweep-figure policy choice"); Fig. 11 uses the
actually-trained DQN.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.channel.link import JammerSignalType, LinkTable
from repro.constants import WIFI_TX_POWER_DBM, ZIGBEE_TX_POWER_DBM
from repro.core.dqn import DQNAgent
from repro.core.envs import SweepJammingEnv
from repro.core.mdp import AntiJammingMDP, JammerMode, MDPConfig
from repro.core.metrics import MetricSummary, evaluate_policy
from repro.core.policy import policy_from_solution_map
from repro.core.solver import value_iteration
from repro.core.trainer import TrainerConfig, train_dqn
from repro.errors import ConfigurationError
from repro.exec import ParallelRunner, TaskFailure
from repro.net.goodput import GoodputModel
from repro.net.network import StarNetwork
from repro.net.timing import TimingModel
from repro.rng import derive, stable_hash
from repro.jamming.jammer import (
    ADVERSARIES,
    FollowerJammerConfig,
    ReactiveJammerConfig,
)
from repro.sim.field import (
    DeceptionAdapter,
    DQNPolicyAdapter,
    FieldConfig,
    FieldExperiment,
    StatePolicyAdapter,
)
from repro.sim.scenario import field_jammer_config, paper_defaults, scheme_policy

# ---------------------------------------------------------------------------
# Fig. 2(b): jamming effect of EmuBee / Wi-Fi / ZigBee vs distance
# ---------------------------------------------------------------------------

#: Offered application throughput of the unjammed ZigBee network, kbit/s
#: (the Fig. 2(b) y-axis tops out near 60 kbps).
FIG2B_OFFERED_KBPS = 60.0


@dataclass(frozen=True)
class JammingEffectRow:
    """One distance point of Fig. 2(b)."""

    distance_m: float
    per: dict[str, float]  # signal name -> packet error rate (%)
    throughput_kbps: dict[str, float]


def fig2b_jamming_effect(
    distances=tuple(range(1, 16)),
    *,
    link_distance_m: float = 3.0,
    packet_octets: int = 60,
) -> list[JammingEffectRow]:
    """PER and throughput vs jamming distance for the three signals."""
    # The memoised table shares Gauss–Hermite quadrature points across the
    # three signal curves (bit-identical to calling the budget directly).
    table = LinkTable()
    signals = {
        "EmuBee": (JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM),
        "WiFi": (JammerSignalType.WIFI, WIFI_TX_POWER_DBM),
        "ZigBee": (JammerSignalType.ZIGBEE, ZIGBEE_TX_POWER_DBM),
    }
    rows = []
    for d in distances:
        per = {}
        tput = {}
        for name, (sig, tx) in signals.items():
            p = table.jamming_per(
                link_distance_m=link_distance_m,
                jammer_distance_m=float(d),
                signal_type=sig,
                victim_tx_dbm=ZIGBEE_TX_POWER_DBM,
                jammer_tx_dbm=tx,
                packet_octets=packet_octets,
            )
            per[name] = 100.0 * p
            tput[name] = FIG2B_OFFERED_KBPS * (1.0 - p)
        rows.append(
            JammingEffectRow(distance_m=float(d), per=per, throughput_kbps=tput)
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 2(b) waveform validation: analytic model vs batched trial engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WaveformValidationRow:
    """One jam-margin point comparing analytic and waveform-level truth."""

    jam_to_signal_db: float
    measured: dict[str, float]  # signal name -> empirical chip flip rate
    predicted: dict[str, float]  # analytic model (correlated jammers only)


def fig2b_waveform_validation(
    margins=(-6.0, -3.0, 0.0, 3.0, 6.0),
    *,
    trials: int = 32,
    seed: int = 0,
    runner: ParallelRunner | None = None,
    trial_batch: int | str | None = None,
) -> list[WaveformValidationRow]:
    """Validate the Fig. 2(b) chip-flip model against waveform ground truth.

    Each point runs ``trials`` full waveform-level jamming trials per
    signal type through the batched engine
    (:func:`repro.channel.trials.run_chip_flip_trials`) and reports the
    measured chip error rate next to the analytic
    :func:`~repro.channel.link.chip_flip_probability` prediction (ZigBee
    at face-value margin, EmuBee with the fidelity penalty subtracted;
    Wi-Fi is noise-like, so the correlated model does not apply). The
    per-point base seed depends only on ``(seed, signal, margin)``, so
    results are identical for every runner/worker/batch configuration.
    """
    from repro.channel.link import EMULATION_LOSS_DB, chip_flip_probability
    from repro.channel.trials import run_chip_flip_trials

    signals = {
        "EmuBee": JammerSignalType.EMUBEE,
        "WiFi": JammerSignalType.WIFI,
        "ZigBee": JammerSignalType.ZIGBEE,
    }
    rows = []
    for margin in margins:
        measured = {}
        for name, sig in signals.items():
            measured[name] = run_chip_flip_trials(
                sig,
                float(margin),
                trials=trials,
                rng=derive(seed, f"fig2b-wf/{name}/{float(margin)}"),
                runner=runner,
                trial_batch=trial_batch,
            )
        predicted = {
            "ZigBee": chip_flip_probability(float(margin)),
            "EmuBee": chip_flip_probability(float(margin) - EMULATION_LOSS_DB),
        }
        rows.append(
            WaveformValidationRow(
                jam_to_signal_db=float(margin),
                measured=measured,
                predicted=predicted,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figs. 6-8: the parameter sweeps (shared computation)
# ---------------------------------------------------------------------------

#: Default x-axes matching the paper's plots.
LJ_VALUES = tuple(range(10, 101, 10))
SWEEP_CYCLE_VALUES = tuple(range(3, 16))
LH_VALUES = tuple(range(0, 101, 10))
LP_LOWER_VALUES = tuple(range(6, 16))


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a parameter sweep."""

    x: float
    metrics: MetricSummary


def _evaluate_config(config: MDPConfig, slots: int, seed: int) -> MetricSummary:
    solution = value_iteration(AntiJammingMDP(config))
    policy = policy_from_solution_map(solution.policy_map())
    # stable_hash (not hash()) so the stream tag is identical in every
    # pool worker and across interpreter runs.
    env = SweepJammingEnv(config, seed=derive(seed, f"sweep-{stable_hash(config)}"))
    return evaluate_policy(env, policy, slots=slots)


def _sweep_point_task(spec: tuple) -> MetricSummary:
    """One sweep point — an independent (config, slots, seed) experiment."""
    config, slots, seed = spec
    return _evaluate_config(config, slots, seed)


@lru_cache(maxsize=8)
def parameter_sweeps(
    jammer_mode: str,
    slots: int = 20_000,
    seed: int = 0,
    lj_values: tuple = LJ_VALUES,
    cycle_values: tuple = SWEEP_CYCLE_VALUES,
    lh_values: tuple = LH_VALUES,
    lp_lower_values: tuple = LP_LOWER_VALUES,
) -> dict[str, tuple[SweepPoint, ...]]:
    """All four parameter sweeps of Figs. 6-8 for one jammer mode.

    Returns ``{"loss_jam" | "sweep_cycle" | "loss_hop" | "power_floor":
    (SweepPoint, ...)}``. Cached: Figs. 6, 7 and 8 read different metric
    fields off the same evaluations.

    Every point is an independent seeded experiment, so the whole grid is
    dispatched through :class:`repro.exec.ParallelRunner` — set
    ``REPRO_WORKERS`` to fan it out; results are identical for any worker
    count.
    """
    if jammer_mode not in JammerMode.ALL:
        raise ConfigurationError(f"unknown jammer mode {jammer_mode!r}")
    axes: list[tuple[str, float, MDPConfig]] = []
    for lj in lj_values:
        axes.append(
            ("loss_jam", float(lj), MDPConfig(loss_jam=float(lj), jammer_mode=jammer_mode))
        )
    for c in cycle_values:
        axes.append(
            (
                "sweep_cycle",
                float(c),
                MDPConfig(jammer_mode=jammer_mode, sweep_cycle_override=int(c)),
            )
        )
    for lh in lh_values:
        axes.append(
            ("loss_hop", float(lh), MDPConfig(loss_hop=float(lh), jammer_mode=jammer_mode))
        )
    for lb in lp_lower_values:
        axes.append(
            (
                "power_floor",
                float(lb),
                MDPConfig(
                    tx_power_levels=tuple(range(int(lb), int(lb) + 10)),
                    jammer_mode=jammer_mode,
                ),
            )
        )
    runner = ParallelRunner(name="parameter_sweeps.map")
    metrics = runner.map(
        _sweep_point_task, [(config, slots, seed) for _, _, config in axes]
    )
    out: dict[str, list[SweepPoint]] = {
        "loss_jam": [], "sweep_cycle": [], "loss_hop": [], "power_floor": []
    }
    for (sweep_name, x, _), summary in zip(axes, metrics):
        # Under on_error="skip" a crashed point comes back as a TaskFailure
        # sentinel: salvage the sweep with that point missing (the loss is
        # recorded in the timing registry / BENCH artifact).
        if isinstance(summary, TaskFailure):
            continue
        out[sweep_name].append(SweepPoint(x, summary))
    return {name: tuple(points) for name, points in out.items()}


def _select(sweeps, metric: str):
    return {
        name: [(p.x, getattr(p.metrics, metric)) for p in points]
        for name, points in sweeps.items()
    }


def fig6_success_rate(jammer_mode: str, *, slots: int = 20_000, seed: int = 0):
    """S_T vs L_J / sweep cycle / L_H / power floor (Fig. 6(a)-(d))."""
    return _select(parameter_sweeps(jammer_mode, slots, seed), "success_rate")


def fig7_adoption_rates(jammer_mode: str, *, slots: int = 20_000, seed: int = 0):
    """A_H and A_P for the four sweeps (Fig. 7(a)-(h))."""
    sweeps = parameter_sweeps(jammer_mode, slots, seed)
    return {
        "A_H": _select(sweeps, "fh_adoption_rate"),
        "A_P": _select(sweeps, "pc_adoption_rate"),
    }


def fig8_action_success_rates(jammer_mode: str, *, slots: int = 20_000, seed: int = 0):
    """S_H and S_P for the four sweeps (Fig. 8(a)-(h))."""
    sweeps = parameter_sweeps(jammer_mode, slots, seed)
    return {
        "S_H": _select(sweeps, "fh_success_rate"),
        "S_P": _select(sweeps, "pc_success_rate"),
    }


# ---------------------------------------------------------------------------
# Fig. 9: time consumption
# ---------------------------------------------------------------------------


def fig9a_time_consumption(*, trials: int = 100, seed: int = 0) -> dict[str, np.ndarray]:
    """Latency samples (seconds) of the four hub functions, 100 trials each."""
    timing = TimingModel()
    rng = derive(seed, "fig9a")
    return {
        "DQN": timing.dqn_inference(rng, size=trials),
        "ACK": timing.round_trip(rng, size=trials),
        "Proc": timing.processing(rng, size=trials),
        "Polling": timing.polling(rng, size=trials),
    }


def fig9b_negotiation_time(
    *, max_nodes: int = 10, trials: int = 60, seed: int = 0
) -> list[tuple[int, float, float, float]]:
    """(nodes, mean, min, max) FH negotiation time vs network size."""
    rows = []
    for n in range(1, max_nodes + 1):
        samples = []
        for t in range(trials):
            net = StarNetwork(n, seed=derive(seed, f"fig9b-{n}-{t}"))
            samples.append(net.negotiate(channel=0, power_index=0).duration_s)
        arr = np.array(samples)
        rows.append((n, float(arr.mean()), float(arr.min()), float(arr.max())))
    return rows


# ---------------------------------------------------------------------------
# Fig. 10: goodput & utilisation vs Tx slot duration (no jammer)
# ---------------------------------------------------------------------------


def fig10_goodput_vs_duration(
    durations=(1.0, 2.0, 3.0, 4.0, 5.0), *, slots: int = 40, seed: int = 0
) -> list[tuple[float, float, float, float]]:
    """(duration, goodput pkts/slot, utilisation, effective Tx time)."""
    model = GoodputModel()
    rows = []
    for d in durations:
        goodput, utilization = model.average_goodput(
            float(d), slots=slots, rng=derive(seed, f"fig10-{d}")
        )
        rows.append((float(d), goodput, utilization, utilization * float(d)))
    return rows


# ---------------------------------------------------------------------------
# Fig. 11: scheme comparison and jammer-cadence sensitivity
# ---------------------------------------------------------------------------


def train_fig11_agent(
    *, episodes: int = 100, steps_per_episode: int = 400, seed: int = 0
) -> DQNAgent:
    """Train the RL FH agent with the paper's field parameters."""
    defaults = paper_defaults()
    result = train_dqn(
        defaults.mdp,
        trainer=TrainerConfig(episodes=episodes, steps_per_episode=steps_per_episode),
        seed=seed,
    )
    return result.agent


def _fig11a_task(spec: tuple) -> tuple[str, dict[str, float]]:
    """One Fig. 11(a) scheme — an independent field experiment."""
    scheme, slots, seed, agent, sweep_strategy = spec
    defaults = paper_defaults()
    jammer_cfg = (
        field_jammer_config(defaults, sweep_strategy=sweep_strategy)
        if scheme != "nojx"
        else None
    )
    if scheme in ("psv", "rand"):
        name = {"psv": "PSV FH", "rand": "Rand FH"}[scheme]
        policy = scheme_policy(scheme, defaults.mdp, seed=derive(seed, f"pol-{scheme}"))
        adapter = StatePolicyAdapter(
            policy, defaults.mdp, seed=derive(seed, f"ad-{scheme}")
        )
    elif scheme == "rl":
        name = "RL FH"
        adapter = DQNPolicyAdapter(agent, defaults.mdp, seed=derive(seed, "ad-rl"))
    elif scheme == "opt":
        name = "RL FH (optimal)"
        policy = scheme_policy("optimal", defaults.mdp)
        adapter = StatePolicyAdapter(policy, defaults.mdp, seed=derive(seed, "ad-opt"))
    else:  # nojx
        name = "w/o Jx"
        policy = scheme_policy("optimal", defaults.mdp)
        adapter = StatePolicyAdapter(policy, defaults.mdp, seed=derive(seed, "ad-nojx"))
    cfg = FieldConfig(mdp=defaults.mdp, jammer=jammer_cfg)
    exp = FieldExperiment(cfg, adapter, seed=derive(seed, f"fig11a-{name}"))
    res = exp.run_experiment(slots)
    return name, {
        "goodput": res.goodput_pkts_per_slot,
        "success_rate": res.metrics.success_rate,
        "utilization": res.utilization,
    }


def fig11a_scheme_comparison(
    *,
    agent: DQNAgent | None = None,
    slots: int = 500,
    seed: int = 0,
    sweep_strategy: str = "random",
) -> dict[str, dict[str, float]]:
    """Goodput of PSV FH / Rand FH / RL FH / no-jammer (Fig. 11(a)).

    When ``agent`` is None the RL scheme falls back to the exact MDP
    optimum (labelled ``RL FH (optimal)``); pass a trained agent to measure
    the deployed DQN. ``sweep_strategy`` changes the jammer's search order
    (the paper's jammer is ``"random"``). The four schemes are independent
    experiments and run through :class:`repro.exec.ParallelRunner`
    (``REPRO_WORKERS``).
    """
    schemes = ("psv", "rand", "rl" if agent is not None else "opt", "nojx")
    runner = ParallelRunner(name="fig11a_scheme_comparison.map")
    rows = runner.map(
        _fig11a_task,
        [(scheme, slots, seed, agent, sweep_strategy) for scheme in schemes],
    )
    return dict(row for row in rows if not isinstance(row, TaskFailure))


#: Hop set used in the Fig. 11(b) study: embedded FH cycles a small channel
#: list, so a slowly-camping jammer's stale channel keeps being revisited.
FIG11B_HOP_SET = (1, 5, 9, 13)


def fig11b_jammer_timeslot(
    durations=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    *,
    agent: DQNAgent | None = None,
    slots: int = 400,
    seed: int = 0,
    sweep_strategy: str = "random",
) -> list[tuple[float, float]]:
    """(jammer slot duration, goodput) with the Tx slot fixed at 3 s.

    The victim hops within :data:`FIG11B_HOP_SET`; a faster jammer detects
    and jams quicker, a slower one camps on stale hop-set channels the
    victim keeps returning to — both degrade goodput relative to the
    matched-cadence point (paper §IV-D-4).
    """
    runner = ParallelRunner(name="fig11b_jammer_timeslot.map")
    rows = runner.map(
        _fig11b_task,
        [(float(d), slots, seed, agent, sweep_strategy) for d in durations],
    )
    return [row for row in rows if not isinstance(row, TaskFailure)]


def _fig11b_task(spec: tuple) -> tuple[float, float]:
    """One jammer-cadence point — an independent field experiment."""
    d, slots, seed, agent, sweep_strategy = spec
    defaults = paper_defaults()
    jammer_cfg = field_jammer_config(
        defaults, slot_duration_s=d, sweep_strategy=sweep_strategy
    )
    cfg = FieldConfig(mdp=defaults.mdp, jammer=jammer_cfg)
    if agent is not None:
        adapter = DQNPolicyAdapter(agent, defaults.mdp, seed=derive(seed, f"ad11b-{d}"))
    else:
        policy = scheme_policy("optimal", defaults.mdp)
        adapter = StatePolicyAdapter(
            policy,
            defaults.mdp,
            hop_channels=FIG11B_HOP_SET,
            seed=derive(seed, f"ad11b-{d}"),
        )
    exp = FieldExperiment(cfg, adapter, seed=derive(seed, f"fig11b-{d}"))
    res = exp.run_experiment(slots)
    return d, res.goodput_pkts_per_slot


# ---------------------------------------------------------------------------
# Adversary study: the fig11(a) scheme comparison against harder jammers
# ---------------------------------------------------------------------------

#: Defence schemes the adversary study compares (fig11(a) set + deception).
ADV_STUDY_SCHEMES = ("psv", "rand", "opt", "deception")


def study_reactive_config() -> ReactiveJammerConfig:
    """The non-ideal reactive jammer the adversary study runs.

    A constrained attacker — 70% duty cycle, 0.2 s turnaround, 75% chance
    of falling for a decoy per sense — so the study shows the knobs doing
    work. The *ideal* config (all defaults) is pinned separately by the
    equivalence tests as bit-identical to the proactive jammer.
    """
    return ReactiveJammerConfig(
        duty_cycle=0.7, response_latency_s=0.2, decoy_discrimination=0.25
    )


def study_follower_config() -> FollowerJammerConfig:
    """The follower the adversary study runs: one decision slot of lag."""
    return FollowerJammerConfig(lag_slots=1)


def train_adversary_jammer(
    *, pairs: int = 2, episodes: int = 8, steps_per_episode: int = 150,
    seed: int = 0,
):
    """Self-play-train the learning jammer the adversary study deploys."""
    from repro.core.selfplay import SelfPlayConfig, train_selfplay

    defaults = paper_defaults()
    result = train_selfplay(
        SelfPlayConfig(
            env=defaults.mdp,
            pairs=pairs,
            episodes=episodes,
            steps_per_episode=steps_per_episode,
        ),
        seed=derive(seed, "adv-selfplay"),
    )
    return result.best_jammer


def _adv_task(spec: tuple) -> tuple[tuple[str, str], dict[str, float]]:
    """One (adversary, scheme) cell — an independent field experiment."""
    adversary, scheme, slots, seed, jammer_agent, sweep_strategy = spec
    defaults = paper_defaults()
    jammer_cfg = field_jammer_config(
        defaults,
        adversary=adversary,
        sweep_strategy=sweep_strategy,
        reactive=study_reactive_config() if adversary == "reactive" else None,
        follower=study_follower_config() if adversary == "follower" else None,
        learning_agent=jammer_agent if adversary == "learning" else None,
    )
    if scheme in ("psv", "rand"):
        policy = scheme_policy(
            scheme, defaults.mdp, seed=derive(seed, f"pol-{adversary}-{scheme}")
        )
    else:  # opt / deception both run the exact optimum underneath
        policy = scheme_policy("optimal", defaults.mdp)
    adapter = StatePolicyAdapter(
        policy, defaults.mdp, seed=derive(seed, f"ad-{adversary}-{scheme}")
    )
    if scheme == "deception":
        adapter = DeceptionAdapter(
            adapter,
            defaults.mdp,
            jam_width=defaults.mdp.jam_width,
            seed=derive(seed, f"decoy-{adversary}"),
        )
    cfg = FieldConfig(mdp=defaults.mdp, jammer=jammer_cfg)
    exp = FieldExperiment(cfg, adapter, seed=derive(seed, f"adv-{adversary}-{scheme}"))
    res = exp.run_experiment(slots)
    return (adversary, scheme), {
        "goodput": res.goodput_pkts_per_slot,
        "success_rate": res.metrics.success_rate,
        "utilization": res.utilization,
    }


def adversary_scheme_comparison(
    *,
    adversaries: tuple[str, ...] = ADVERSARIES,
    schemes: tuple[str, ...] = ADV_STUDY_SCHEMES,
    slots: int = 300,
    seed: int = 0,
    jammer_agent=None,
    selfplay_episodes: int = 8,
    sweep_strategy: str = "random",
) -> dict[str, dict[str, dict[str, float]]]:
    """Every defence scheme against every adversary (fig11(a) extended).

    Returns ``{adversary: {scheme: {goodput, success_rate, utilization}}}``.
    The learning adversary deploys ``jammer_agent`` if given, else
    self-play-trains one (``selfplay_episodes`` bounds the budget). Cells
    are independent experiments dispatched through
    :class:`repro.exec.ParallelRunner` (``REPRO_WORKERS``).
    """
    for adversary in adversaries:
        if adversary not in ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary {adversary!r}; expected one of {ADVERSARIES}"
            )
    for scheme in schemes:
        if scheme not in ADV_STUDY_SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {scheme!r}; expected one of {ADV_STUDY_SCHEMES}"
            )
    if "learning" in adversaries and jammer_agent is None:
        jammer_agent = train_adversary_jammer(
            episodes=selfplay_episodes, seed=seed
        )
    runner = ParallelRunner(name="adversary_scheme_comparison.map")
    cells = runner.map(
        _adv_task,
        [
            (adversary, scheme, slots, seed, jammer_agent, sweep_strategy)
            for adversary in adversaries
            for scheme in schemes
        ],
    )
    out: dict[str, dict[str, dict[str, float]]] = {}
    for cell in cells:
        if isinstance(cell, TaskFailure):
            continue
        (adversary, scheme), metrics = cell
        out.setdefault(adversary, {})[scheme] = metrics
    return out


__all__ = [
    "FIG2B_OFFERED_KBPS",
    "JammingEffectRow",
    "fig2b_jamming_effect",
    "WaveformValidationRow",
    "fig2b_waveform_validation",
    "LJ_VALUES",
    "SWEEP_CYCLE_VALUES",
    "LH_VALUES",
    "LP_LOWER_VALUES",
    "SweepPoint",
    "parameter_sweeps",
    "fig6_success_rate",
    "fig7_adoption_rates",
    "fig8_action_success_rates",
    "fig9a_time_consumption",
    "fig9b_negotiation_time",
    "fig10_goodput_vs_duration",
    "train_fig11_agent",
    "fig11a_scheme_comparison",
    "fig11b_jammer_timeslot",
    "ADV_STUDY_SCHEMES",
    "study_reactive_config",
    "study_follower_config",
    "train_adversary_jammer",
    "adversary_scheme_comparison",
]
