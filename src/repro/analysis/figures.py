"""Figure-data generators — one entry point per data-bearing paper figure.

Every generator returns plain data structures (lists of rows) so the
benchmark harness can print them, tests can assert on their shape, and the
CLI can dump them as tables. The heavy parameter sweeps of Figs. 6–8 share
one cached computation.

Policy choice for the sweeps: each point evaluates the *exact* value-
iteration optimum of the configured MDP on the mechanistic sweep-jammer
environment (see DESIGN.md, "Sweep-figure policy choice"); Fig. 11 uses the
actually-trained DQN.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.channel.link import JammerSignalType, LinkBudget
from repro.constants import WIFI_TX_POWER_DBM, ZIGBEE_TX_POWER_DBM
from repro.core.dqn import DQNAgent
from repro.core.envs import SweepJammingEnv
from repro.core.mdp import AntiJammingMDP, JammerMode, MDPConfig
from repro.core.metrics import MetricSummary, evaluate_policy
from repro.core.policy import policy_from_solution_map
from repro.core.solver import value_iteration
from repro.core.trainer import TrainerConfig, train_dqn
from repro.errors import ConfigurationError
from repro.net.goodput import GoodputModel
from repro.net.network import StarNetwork
from repro.net.timing import TimingModel
from repro.rng import derive
from repro.sim.field import (
    DQNPolicyAdapter,
    FieldConfig,
    FieldExperiment,
    StatePolicyAdapter,
)
from repro.sim.scenario import field_jammer_config, paper_defaults, scheme_policy

# ---------------------------------------------------------------------------
# Fig. 2(b): jamming effect of EmuBee / Wi-Fi / ZigBee vs distance
# ---------------------------------------------------------------------------

#: Offered application throughput of the unjammed ZigBee network, kbit/s
#: (the Fig. 2(b) y-axis tops out near 60 kbps).
FIG2B_OFFERED_KBPS = 60.0


@dataclass(frozen=True)
class JammingEffectRow:
    """One distance point of Fig. 2(b)."""

    distance_m: float
    per: dict[str, float]  # signal name -> packet error rate (%)
    throughput_kbps: dict[str, float]


def fig2b_jamming_effect(
    distances=tuple(range(1, 16)),
    *,
    link_distance_m: float = 3.0,
    packet_octets: int = 60,
) -> list[JammingEffectRow]:
    """PER and throughput vs jamming distance for the three signals."""
    budget = LinkBudget()
    signals = {
        "EmuBee": (JammerSignalType.EMUBEE, WIFI_TX_POWER_DBM),
        "WiFi": (JammerSignalType.WIFI, WIFI_TX_POWER_DBM),
        "ZigBee": (JammerSignalType.ZIGBEE, ZIGBEE_TX_POWER_DBM),
    }
    rows = []
    for d in distances:
        per = {}
        tput = {}
        for name, (sig, tx) in signals.items():
            p = budget.jamming_per(
                link_distance_m=link_distance_m,
                jammer_distance_m=float(d),
                signal_type=sig,
                victim_tx_dbm=ZIGBEE_TX_POWER_DBM,
                jammer_tx_dbm=tx,
                packet_octets=packet_octets,
            )
            per[name] = 100.0 * p
            tput[name] = FIG2B_OFFERED_KBPS * (1.0 - p)
        rows.append(
            JammingEffectRow(distance_m=float(d), per=per, throughput_kbps=tput)
        )
    return rows


# ---------------------------------------------------------------------------
# Figs. 6-8: the parameter sweeps (shared computation)
# ---------------------------------------------------------------------------

#: Default x-axes matching the paper's plots.
LJ_VALUES = tuple(range(10, 101, 10))
SWEEP_CYCLE_VALUES = tuple(range(3, 16))
LH_VALUES = tuple(range(0, 101, 10))
LP_LOWER_VALUES = tuple(range(6, 16))


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a parameter sweep."""

    x: float
    metrics: MetricSummary


def _evaluate_config(config: MDPConfig, slots: int, seed: int) -> MetricSummary:
    solution = value_iteration(AntiJammingMDP(config))
    policy = policy_from_solution_map(solution.policy_map())
    env = SweepJammingEnv(config, seed=derive(seed, f"sweep-{hash(config)}"))
    return evaluate_policy(env, policy, slots=slots)


@lru_cache(maxsize=8)
def parameter_sweeps(
    jammer_mode: str,
    slots: int = 20_000,
    seed: int = 0,
    lj_values: tuple = LJ_VALUES,
    cycle_values: tuple = SWEEP_CYCLE_VALUES,
    lh_values: tuple = LH_VALUES,
    lp_lower_values: tuple = LP_LOWER_VALUES,
) -> dict[str, tuple[SweepPoint, ...]]:
    """All four parameter sweeps of Figs. 6-8 for one jammer mode.

    Returns ``{"loss_jam" | "sweep_cycle" | "loss_hop" | "power_floor":
    (SweepPoint, ...)}``. Cached: Figs. 6, 7 and 8 read different metric
    fields off the same evaluations.
    """
    if jammer_mode not in JammerMode.ALL:
        raise ConfigurationError(f"unknown jammer mode {jammer_mode!r}")
    out: dict[str, tuple[SweepPoint, ...]] = {}
    out["loss_jam"] = tuple(
        SweepPoint(
            float(lj),
            _evaluate_config(
                MDPConfig(loss_jam=float(lj), jammer_mode=jammer_mode), slots, seed
            ),
        )
        for lj in lj_values
    )
    out["sweep_cycle"] = tuple(
        SweepPoint(
            float(c),
            _evaluate_config(
                MDPConfig(jammer_mode=jammer_mode, sweep_cycle_override=int(c)),
                slots,
                seed,
            ),
        )
        for c in cycle_values
    )
    out["loss_hop"] = tuple(
        SweepPoint(
            float(lh),
            _evaluate_config(
                MDPConfig(loss_hop=float(lh), jammer_mode=jammer_mode), slots, seed
            ),
        )
        for lh in lh_values
    )
    out["power_floor"] = tuple(
        SweepPoint(
            float(lb),
            _evaluate_config(
                MDPConfig(
                    tx_power_levels=tuple(range(int(lb), int(lb) + 10)),
                    jammer_mode=jammer_mode,
                ),
                slots,
                seed,
            ),
        )
        for lb in lp_lower_values
    )
    return out


def _select(sweeps, metric: str):
    return {
        name: [(p.x, getattr(p.metrics, metric)) for p in points]
        for name, points in sweeps.items()
    }


def fig6_success_rate(jammer_mode: str, *, slots: int = 20_000, seed: int = 0):
    """S_T vs L_J / sweep cycle / L_H / power floor (Fig. 6(a)-(d))."""
    return _select(parameter_sweeps(jammer_mode, slots, seed), "success_rate")


def fig7_adoption_rates(jammer_mode: str, *, slots: int = 20_000, seed: int = 0):
    """A_H and A_P for the four sweeps (Fig. 7(a)-(h))."""
    sweeps = parameter_sweeps(jammer_mode, slots, seed)
    return {
        "A_H": _select(sweeps, "fh_adoption_rate"),
        "A_P": _select(sweeps, "pc_adoption_rate"),
    }


def fig8_action_success_rates(jammer_mode: str, *, slots: int = 20_000, seed: int = 0):
    """S_H and S_P for the four sweeps (Fig. 8(a)-(h))."""
    sweeps = parameter_sweeps(jammer_mode, slots, seed)
    return {
        "S_H": _select(sweeps, "fh_success_rate"),
        "S_P": _select(sweeps, "pc_success_rate"),
    }


# ---------------------------------------------------------------------------
# Fig. 9: time consumption
# ---------------------------------------------------------------------------


def fig9a_time_consumption(*, trials: int = 100, seed: int = 0) -> dict[str, np.ndarray]:
    """Latency samples (seconds) of the four hub functions, 100 trials each."""
    timing = TimingModel()
    rng = derive(seed, "fig9a")
    return {
        "DQN": timing.dqn_inference(rng, size=trials),
        "ACK": timing.round_trip(rng, size=trials),
        "Proc": timing.processing(rng, size=trials),
        "Polling": timing.polling(rng, size=trials),
    }


def fig9b_negotiation_time(
    *, max_nodes: int = 10, trials: int = 60, seed: int = 0
) -> list[tuple[int, float, float, float]]:
    """(nodes, mean, min, max) FH negotiation time vs network size."""
    rows = []
    for n in range(1, max_nodes + 1):
        samples = []
        for t in range(trials):
            net = StarNetwork(n, seed=derive(seed, f"fig9b-{n}-{t}"))
            samples.append(net.negotiate(channel=0, power_index=0).duration_s)
        arr = np.array(samples)
        rows.append((n, float(arr.mean()), float(arr.min()), float(arr.max())))
    return rows


# ---------------------------------------------------------------------------
# Fig. 10: goodput & utilisation vs Tx slot duration (no jammer)
# ---------------------------------------------------------------------------


def fig10_goodput_vs_duration(
    durations=(1.0, 2.0, 3.0, 4.0, 5.0), *, slots: int = 40, seed: int = 0
) -> list[tuple[float, float, float, float]]:
    """(duration, goodput pkts/slot, utilisation, effective Tx time)."""
    model = GoodputModel()
    rows = []
    for d in durations:
        goodput, utilization = model.average_goodput(
            float(d), slots=slots, rng=derive(seed, f"fig10-{d}")
        )
        rows.append((float(d), goodput, utilization, utilization * float(d)))
    return rows


# ---------------------------------------------------------------------------
# Fig. 11: scheme comparison and jammer-cadence sensitivity
# ---------------------------------------------------------------------------


def train_fig11_agent(
    *, episodes: int = 100, steps_per_episode: int = 400, seed: int = 0
) -> DQNAgent:
    """Train the RL FH agent with the paper's field parameters."""
    defaults = paper_defaults()
    result = train_dqn(
        defaults.mdp,
        trainer=TrainerConfig(episodes=episodes, steps_per_episode=steps_per_episode),
        seed=seed,
    )
    return result.agent


def fig11a_scheme_comparison(
    *,
    agent: DQNAgent | None = None,
    slots: int = 500,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Goodput of PSV FH / Rand FH / RL FH / no-jammer (Fig. 11(a)).

    When ``agent`` is None the RL scheme falls back to the exact MDP
    optimum (labelled ``RL FH (optimal)``); pass a trained agent to measure
    the deployed DQN.
    """
    defaults = paper_defaults()
    results: dict[str, dict[str, float]] = {}

    def run(name, adapter, jammer_cfg):
        cfg = FieldConfig(mdp=defaults.mdp, jammer=jammer_cfg)
        exp = FieldExperiment(cfg, adapter, seed=derive(seed, f"fig11a-{name}"))
        res = exp.run_experiment(slots)
        results[name] = {
            "goodput": res.goodput_pkts_per_slot,
            "success_rate": res.metrics.success_rate,
            "utilization": res.utilization,
        }

    jammer_cfg = field_jammer_config(defaults)
    for name in ("psv", "rand"):
        policy = scheme_policy(name, defaults.mdp, seed=derive(seed, f"pol-{name}"))
        run(
            {"psv": "PSV FH", "rand": "Rand FH"}[name],
            StatePolicyAdapter(policy, defaults.mdp, seed=derive(seed, f"ad-{name}")),
            jammer_cfg,
        )
    if agent is not None:
        run(
            "RL FH",
            DQNPolicyAdapter(agent, defaults.mdp, seed=derive(seed, "ad-rl")),
            jammer_cfg,
        )
    else:
        policy = scheme_policy("optimal", defaults.mdp)
        run(
            "RL FH (optimal)",
            StatePolicyAdapter(policy, defaults.mdp, seed=derive(seed, "ad-opt")),
            jammer_cfg,
        )
    policy = scheme_policy("optimal", defaults.mdp)
    run(
        "w/o Jx",
        StatePolicyAdapter(policy, defaults.mdp, seed=derive(seed, "ad-nojx")),
        None,
    )
    return results


#: Hop set used in the Fig. 11(b) study: embedded FH cycles a small channel
#: list, so a slowly-camping jammer's stale channel keeps being revisited.
FIG11B_HOP_SET = (1, 5, 9, 13)


def fig11b_jammer_timeslot(
    durations=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    *,
    agent: DQNAgent | None = None,
    slots: int = 400,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """(jammer slot duration, goodput) with the Tx slot fixed at 3 s.

    The victim hops within :data:`FIG11B_HOP_SET`; a faster jammer detects
    and jams quicker, a slower one camps on stale hop-set channels the
    victim keeps returning to — both degrade goodput relative to the
    matched-cadence point (paper §IV-D-4).
    """
    defaults = paper_defaults()
    rows = []
    for d in durations:
        jammer_cfg = field_jammer_config(defaults, slot_duration_s=float(d))
        cfg = FieldConfig(mdp=defaults.mdp, jammer=jammer_cfg)
        if agent is not None:
            adapter = DQNPolicyAdapter(
                agent, defaults.mdp, seed=derive(seed, f"ad11b-{d}")
            )
        else:
            policy = scheme_policy("optimal", defaults.mdp)
            adapter = StatePolicyAdapter(
                policy,
                defaults.mdp,
                hop_channels=FIG11B_HOP_SET,
                seed=derive(seed, f"ad11b-{d}"),
            )
        exp = FieldExperiment(cfg, adapter, seed=derive(seed, f"fig11b-{d}"))
        res = exp.run_experiment(slots)
        rows.append((float(d), res.goodput_pkts_per_slot))
    return rows


__all__ = [
    "FIG2B_OFFERED_KBPS",
    "JammingEffectRow",
    "fig2b_jamming_effect",
    "LJ_VALUES",
    "SWEEP_CYCLE_VALUES",
    "LH_VALUES",
    "LP_LOWER_VALUES",
    "SweepPoint",
    "parameter_sweeps",
    "fig6_success_rate",
    "fig7_adoption_rates",
    "fig8_action_success_rates",
    "fig9a_time_consumption",
    "fig9b_negotiation_time",
    "fig10_goodput_vs_duration",
    "train_fig11_agent",
    "fig11a_scheme_comparison",
    "fig11b_jammer_timeslot",
]
