"""Analysis utilities: statistics, table rendering, figure-data generators.

:mod:`repro.analysis.figures` holds one function per data-bearing figure of
the paper; the benchmark harness, the CLI and EXPERIMENTS.md all draw from
these single sources of truth.
"""

from repro.analysis.stats import SeriesSummary, mean_confidence_interval, summarize
from repro.analysis.tables import format_float, render_table

__all__ = [
    "SeriesSummary",
    "mean_confidence_interval",
    "summarize",
    "format_float",
    "render_table",
]
