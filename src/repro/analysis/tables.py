"""ASCII table rendering shared by benchmarks, CLI and examples."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import SimulationError


def format_float(value: Any, digits: int = 3) -> str:
    """Render numbers compactly; pass strings through."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    digits: int = 3,
) -> str:
    """Render a fixed-width ASCII table."""
    if not headers:
        raise SimulationError("a table needs headers")
    str_rows = [[format_float(cell, digits) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise SimulationError(
                f"row of width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


__all__ = ["format_float", "render_table"]
