"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class ExecutionError(ReproError):
    """A dispatched task failed permanently (timeout or exhausted retries)."""


class PhyError(ReproError):
    """Base class for physical-layer errors."""


class EncodingError(PhyError):
    """A transmit chain was given input it cannot encode."""


class DecodingError(PhyError):
    """A receive chain could not decode its input.

    Raised, for example, when a ZigBee frame fails its CRC, is missing the
    start-of-frame delimiter, or declares an out-of-range length.
    """


class EmulationError(PhyError):
    """The cross-technology emulation pipeline failed."""


class ChannelError(ReproError):
    """Invalid channel index, frequency, or spectrum geometry."""


class ProtocolError(ReproError):
    """A MAC/network protocol invariant was violated."""


class SimulationError(ReproError):
    """A simulation engine was driven into an invalid state."""


class SolverError(ReproError):
    """An MDP solver failed to converge or was misconfigured."""


class TrainingError(ReproError):
    """DQN training failed (divergence, empty replay buffer, ...)."""
