"""ZigBee star-network substrate.

Models the paper's testbed network: one hub and several peripheral nodes in
a time-slotted regime. At each slot boundary the hub runs its anti-jamming
policy, announces (channel, power) to every peripheral by polling, and the
peripherals then stream data packets under Listen-Before-Talk for the rest
of the slot. The timing model is calibrated to the hardware latencies of
paper Fig. 9 (DQN 9 ms, RTT 0.9 ms, processing 0.6 ms, polling 13.1 ms per
node).
"""

from repro.net.energy import EnergyModel, EnergyReport, energy_of_run
from repro.net.goodput import GoodputModel, GoodputReport
from repro.net.mac import CsmaConfig, CsmaMac, MacStats
from repro.net.network import NegotiationReport, StarNetwork
from repro.net.node import Hub, Peripheral
from repro.net.timing import TimingModel

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "energy_of_run",
    "GoodputModel",
    "GoodputReport",
    "CsmaConfig",
    "CsmaMac",
    "MacStats",
    "NegotiationReport",
    "StarNetwork",
    "Hub",
    "Peripheral",
    "TimingModel",
]
