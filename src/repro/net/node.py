"""Hub and peripheral node state machines of the star network."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtocolError


@dataclass
class Peripheral:
    """A ZigBee end device that streams data packets to the hub.

    Tracks where the node believes the network currently lives; a node that
    missed the announcement drifts to the control channel and must be
    recovered (the slow path of Fig. 9(b)).
    """

    node_id: str
    channel: int = 0
    power_index: int = 0
    on_control_channel: bool = False
    packets_sent: int = 0
    packets_delivered: int = 0

    def apply_announcement(self, channel: int, power_index: int) -> None:
        """Adopt the hub's (channel, power) decision for the coming slot."""
        self.channel = channel
        self.power_index = power_index
        self.on_control_channel = False

    def miss_announcement(self) -> None:
        """The announcement never arrived; fall back to the control channel."""
        self.on_control_channel = True

    def record_transmission(self, delivered: bool) -> None:
        self.packets_sent += 1
        if delivered:
            self.packets_delivered += 1

    @property
    def delivery_ratio(self) -> float:
        if self.packets_sent == 0:
            return 0.0
        return self.packets_delivered / self.packets_sent


@dataclass
class Hub:
    """The network coordinator: runs the policy and polls the peripherals."""

    node_id: str = "hub"
    channel: int = 0
    power_index: int = 0
    peripherals: list[Peripheral] = field(default_factory=list)
    slots_run: int = 0

    def add_peripheral(self, peripheral: Peripheral) -> None:
        if any(p.node_id == peripheral.node_id for p in self.peripherals):
            raise ProtocolError(f"duplicate node id {peripheral.node_id!r}")
        self.peripherals.append(peripheral)

    def announce(self, channel: int, power_index: int) -> None:
        """Publish the slot's (channel, power) to every reachable node."""
        self.channel = channel
        self.power_index = power_index
        for p in self.peripherals:
            p.apply_announcement(channel, power_index)

    @property
    def network_size(self) -> int:
        return len(self.peripherals)

    def total_delivered(self) -> int:
        return sum(p.packets_delivered for p in self.peripherals)

    def total_sent(self) -> int:
        return sum(p.packets_sent for p in self.peripherals)


__all__ = ["Peripheral", "Hub"]
