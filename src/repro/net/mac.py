"""Listen-Before-Talk MAC (CSMA/CA) used inside a data phase.

Implements the unslotted CSMA/CA of IEEE 802.15.4 at the fidelity the
goodput experiments need: clear-channel assessment against the shared
medium, binary-exponential backoff, ACK timeout and bounded retries. Time
is accounted in seconds so the data phase of a Tx slot can be filled
packet by packet (Fig. 10's goodput-vs-slot-duration experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng

#: Base backoff unit of 802.15.4 (20 symbols at 62.5 ksym/s).
BACKOFF_UNIT_S = 320e-6


@dataclass(frozen=True)
class CsmaConfig:
    """CSMA/CA parameters (802.15.4 defaults)."""

    min_backoff_exponent: int = 3
    max_backoff_exponent: int = 5
    max_backoffs: int = 4
    max_retries: int = 3
    ack_timeout_s: float = 2.8e-3

    def __post_init__(self) -> None:
        if not 0 <= self.min_backoff_exponent <= self.max_backoff_exponent:
            raise ConfigurationError("backoff exponents out of order")
        if self.max_backoffs < 0 or self.max_retries < 0:
            raise ConfigurationError("retry limits must be non-negative")
        if self.ack_timeout_s <= 0:
            raise ConfigurationError("ACK timeout must be positive")


@dataclass
class MacStats:
    """Counters accumulated by one MAC instance."""

    attempts: int = 0
    delivered: int = 0
    channel_access_failures: int = 0
    retry_exhaustions: int = 0
    busy_time_s: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.delivered / self.attempts


class CsmaMac:
    """One node's CSMA/CA engine.

    The medium is abstracted as two callables so the MAC composes with both
    the full :class:`~repro.channel.medium.Medium` and lightweight
    closures in tests:

    ``channel_busy()``
        CCA result at the instant of the check.
    ``transmit()``
        Attempts the frame; returns True when the ACK came back.
    """

    def __init__(self, config: CsmaConfig | None = None, *, seed: SeedLike = None) -> None:
        self.config = config or CsmaConfig()
        self._rng = make_rng(seed)
        self.stats = MacStats()

    def _backoff_duration(self, exponent: int) -> float:
        slots = int(self._rng.integers(0, (1 << exponent)))
        return slots * BACKOFF_UNIT_S

    def send(
        self,
        channel_busy,
        transmit,
        frame_airtime_s: float,
    ) -> tuple[bool, float]:
        """Run one frame through CSMA/CA.

        Returns ``(delivered, elapsed_seconds)``. ``elapsed_seconds`` covers
        backoffs, the transmission(s) and ACK waits — the caller subtracts
        it from the remaining data-phase budget.
        """
        if frame_airtime_s <= 0:
            raise ConfigurationError("frame airtime must be positive")
        cfg = self.config
        self.stats.attempts += 1
        elapsed = 0.0
        for _retry in range(cfg.max_retries + 1):
            exponent = cfg.min_backoff_exponent
            accessed = False
            for _backoff in range(cfg.max_backoffs + 1):
                wait = self._backoff_duration(exponent)
                elapsed += wait
                if not channel_busy():
                    accessed = True
                    break
                exponent = min(exponent + 1, cfg.max_backoff_exponent)
            if not accessed:
                self.stats.channel_access_failures += 1
                self.stats.busy_time_s += elapsed
                return False, elapsed
            elapsed += frame_airtime_s
            if transmit():
                elapsed += cfg.ack_timeout_s / 4  # ACK turnaround
                self.stats.delivered += 1
                self.stats.busy_time_s += elapsed
                return True, elapsed
            elapsed += cfg.ack_timeout_s  # waited the full timeout
        self.stats.retry_exhaustions += 1
        self.stats.busy_time_s += elapsed
        return False, elapsed


__all__ = ["BACKOFF_UNIT_S", "CsmaConfig", "MacStats", "CsmaMac"]
