"""Energy accounting for the victim nodes — paper §IV-C-2.

ZigBee exists because of energy budgets ("ZigBee concerns more about
energy efficiency, whose RF power can be as low as 1mW"), and the paper
closes its adoption-rate analysis with advice for energy-constrained
users: the power-control behaviour learned by the agent directly sets the
radio's consumption. This module turns a recorded slot history into
millijoules, so defences can be compared by energy per delivered slot, not
just success rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.envs import StepInfo
from repro.errors import ConfigurationError

#: Default transmit powers (mW) for the ten victim power levels: log-spaced
#: from the 1 mW energy-saver floor to a 10 mW ceiling (CC26x2-class PAs).
DEFAULT_LEVEL_POWERS_MW = tuple(
    float(p) for p in np.logspace(0.0, 1.0, 10)
)


@dataclass(frozen=True)
class EnergyModel:
    """Per-slot energy calculator for a peripheral node."""

    #: Transmit power (mW) per policy power-level index.
    level_powers_mw: tuple[float, ...] = DEFAULT_LEVEL_POWERS_MW
    #: Fraction of a slot spent actually transmitting.
    tx_duty_cycle: float = 0.3
    #: Receiver/MCU draw while the radio is awake, mW.
    idle_power_mw: float = 6.0
    #: Extra radio-on time cost of a hop (control-channel negotiation), in
    #: equivalent seconds of idle draw per slot.
    hop_overhead_s: float = 0.07
    #: Slot duration in seconds.
    slot_duration_s: float = 3.0

    def __post_init__(self) -> None:
        if not self.level_powers_mw or any(p <= 0 for p in self.level_powers_mw):
            raise ConfigurationError("level powers must be positive")
        if list(self.level_powers_mw) != sorted(self.level_powers_mw):
            raise ConfigurationError("level powers must be sorted ascending")
        if not 0.0 < self.tx_duty_cycle <= 1.0:
            raise ConfigurationError("tx duty cycle must lie in (0, 1]")
        if self.idle_power_mw < 0 or self.hop_overhead_s < 0:
            raise ConfigurationError("idle power and hop overhead must be >= 0")
        if self.slot_duration_s <= 0:
            raise ConfigurationError("slot duration must be positive")

    def slot_energy_mj(self, power_index: int, hopped: bool) -> float:
        """Energy (mJ) one slot costs at a given power level."""
        if not 0 <= power_index < len(self.level_powers_mw):
            raise ConfigurationError(
                f"power index {power_index} out of range"
            )
        tx_time = self.tx_duty_cycle * self.slot_duration_s
        energy = self.level_powers_mw[power_index] * tx_time
        energy += self.idle_power_mw * self.slot_duration_s
        if hopped:
            energy += self.idle_power_mw * self.hop_overhead_s
        return energy  # mW * s = mJ


@dataclass(frozen=True)
class EnergyReport:
    """Energy summary of an evaluation run."""

    slots: int
    total_mj: float
    successful_slots: int
    slot_duration_s: float = 3.0

    @property
    def mean_mj_per_slot(self) -> float:
        return self.total_mj / self.slots

    @property
    def mj_per_successful_slot(self) -> float:
        """Energy per unit of useful communication — the efficiency metric."""
        if self.successful_slots == 0:
            return float("inf")
        return self.total_mj / self.successful_slots

    def lifetime_days(self, battery_mah: float = 220.0, voltage: float = 3.0) -> float:
        """Projected lifetime on a coin-cell battery at this burn rate."""
        if battery_mah <= 0 or voltage <= 0:
            raise ConfigurationError("battery capacity and voltage must be positive")
        budget_mj = battery_mah * 3.6 * voltage * 1000.0  # mAh -> mJ
        per_second = self.mean_mj_per_slot / self.slot_duration_s
        return budget_mj / per_second / 86_400.0


def energy_of_run(
    history: list[StepInfo], model: EnergyModel | None = None
) -> EnergyReport:
    """Total energy of a recorded slot history (``SlotLog(keep_history=True)``)."""
    if not history:
        raise ConfigurationError("history is empty")
    model = model or EnergyModel()
    total = 0.0
    successes = 0
    for info in history:
        total += model.slot_energy_mj(info.power_index, info.hopped)
        successes += info.success
    return EnergyReport(
        slots=len(history),
        total_mj=total,
        successful_slots=successes,
        slot_duration_s=model.slot_duration_s,
    )


__all__ = [
    "DEFAULT_LEVEL_POWERS_MW",
    "EnergyModel",
    "EnergyReport",
    "energy_of_run",
]
