"""Star-network orchestration: polling announcements and FH negotiation.

Implements the coordination protocol of paper §IV-D-1: at the start of a
slot the hub decides (channel, power), then polls every peripheral in turn
("polling mode") to deliver the decision; once all nodes have confirmed it
triggers the simultaneous frequency change. Nodes that were off-channel
(e.g. the previous channel was jammed mid-slot) are recovered through the
dedicated control channel, which can stretch negotiation to seconds
(Fig. 9(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.node import Hub, Peripheral
from repro.net.timing import TimingModel, _gamma_sample
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class NegotiationReport:
    """Cost breakdown of one announcement round."""

    duration_s: float
    polled_nodes: int
    recovered_nodes: int


class StarNetwork:
    """One hub plus ``num_peripherals`` end devices."""

    def __init__(
        self,
        num_peripherals: int,
        *,
        timing: TimingModel | None = None,
        seed: SeedLike = None,
    ) -> None:
        if num_peripherals < 1:
            raise ConfigurationError("a star network needs at least one peripheral")
        self.timing = timing or TimingModel()
        self._rng = make_rng(seed)
        self.hub = Hub()
        for i in range(num_peripherals):
            self.hub.add_peripheral(Peripheral(node_id=f"node{i + 1}"))

    @property
    def peripherals(self) -> list[Peripheral]:
        return self.hub.peripherals

    @property
    def size(self) -> int:
        return self.hub.network_size

    def negotiate(self, channel: int, power_index: int) -> NegotiationReport:
        """Run one polling round announcing (channel, power) to every node.

        Nodes currently stranded on the control channel must first be
        waited for; every recovery adds its control-channel wait to the
        negotiation time.
        """
        t = self.timing
        duration = float(t.dqn_inference(self._rng))
        recovered = 0
        for node in self.peripherals:
            duration += float(t.polling(self._rng))
            stranded = node.on_control_channel or (
                self._rng.random() < t.off_channel_probability
            )
            if stranded:
                recovered += 1
                duration += float(
                    _gamma_sample(self._rng, t.off_channel_recovery_mean_s, 0.6)
                )
            node.apply_announcement(channel, power_index)
        self.hub.announce(channel, power_index)
        self.hub.slots_run += 1
        return NegotiationReport(
            duration_s=duration,
            polled_nodes=self.size,
            recovered_nodes=recovered,
        )

    def strand_nodes(self, count: int) -> None:
        """Force ``count`` peripherals onto the control channel (jam fallout)."""
        if not 0 <= count <= self.size:
            raise ConfigurationError(
                f"cannot strand {count} of {self.size} nodes"
            )
        for node in self.peripherals[:count]:
            node.miss_announcement()


__all__ = ["NegotiationReport", "StarNetwork"]
