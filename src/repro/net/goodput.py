"""Goodput and slot-utilisation accounting — paper §IV-D-2, Fig. 10.

Goodput is "the useful information (payload data instead of ACKs or other
control frames) delivered to the hub per unit of time", reported in
packets per Tx time slot. Each slot splits into a negotiation phase (DQN +
polling, ~0.07 s) and a data phase that drains packets at the hardware's
per-packet service time; utilisation is the data-phase fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.net.timing import TimingModel, normal_from_uniform
from repro.rng import SeedLike, make_rng

#: Uniforms :meth:`GoodputModel.run_slot_aggregate` consumes per slot
#: (one normal draw for the attempted count, one for the delivered count).
AGGREGATE_DRAWS_PER_SLOT = 2


@dataclass(frozen=True)
class GoodputReport:
    """Per-slot goodput accounting."""

    slot_duration_s: float
    negotiation_s: float
    effective_tx_s: float
    packets_delivered: int
    packets_attempted: int

    @property
    def utilization(self) -> float:
        """Fraction of the slot available for data (Fig. 10(b))."""
        return self.effective_tx_s / self.slot_duration_s

    @property
    def goodput_pkts_per_slot(self) -> int:
        return self.packets_delivered


@dataclass(frozen=True)
class GoodputModel:
    """Packets-per-slot calculator for one network configuration."""

    timing: TimingModel = field(default_factory=TimingModel)
    num_nodes: int = 3
    #: Fixed per-slot guard/synchronisation overhead on top of polling.
    slot_guard_s: float = 0.030

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("network needs at least one peripheral")
        if self.slot_guard_s < 0:
            raise ConfigurationError("slot guard must be non-negative")

    def negotiation_overhead(self, rng: SeedLike = None) -> float:
        """Typical per-slot announcement cost (nodes already synchronised)."""
        return self.slot_guard_s + self.timing.negotiation_time(
            self.num_nodes, rng, include_recovery=False
        )

    def run_slot(
        self,
        slot_duration_s: float,
        *,
        success_probability: float = 1.0,
        negotiation_s: float | None = None,
        rng: SeedLike = None,
    ) -> GoodputReport:
        """Fill one slot with packets; each delivery succeeds independently.

        ``success_probability`` folds in jamming: a jammed slot has 0, a
        clean slot 1, and partial interference anything between. Passing
        ``negotiation_s`` overrides the sampled announcement cost (the field
        simulator supplies it when stranded nodes made negotiation slow).
        """
        if slot_duration_s <= 0:
            raise ConfigurationError("slot duration must be positive")
        if not 0.0 <= success_probability <= 1.0:
            raise ConfigurationError("success probability must be in [0, 1]")
        if negotiation_s is not None and negotiation_s < 0:
            raise ConfigurationError("negotiation time must be non-negative")
        r = make_rng(rng)
        negotiation = (
            self.negotiation_overhead(r) if negotiation_s is None else negotiation_s
        )
        budget = slot_duration_s - negotiation
        if budget <= 0:
            return GoodputReport(
                slot_duration_s=slot_duration_s,
                negotiation_s=slot_duration_s,
                effective_tx_s=0.0,
                packets_delivered=0,
                packets_attempted=0,
            )
        attempted = 0
        delivered = 0
        elapsed = 0.0
        while True:
            service = self.timing.packet_service_time(r)
            if elapsed + service > budget:
                break
            elapsed += service
            attempted += 1
            if r.random() < success_probability:
                delivered += 1
        return GoodputReport(
            slot_duration_s=slot_duration_s,
            negotiation_s=negotiation,
            effective_tx_s=budget,
            packets_delivered=delivered,
            packets_attempted=attempted,
        )

    def run_slot_aggregate(
        self,
        slot_duration_s: float,
        *,
        success_probability,
        negotiation_s,
        uniforms,
    ):
        """Vectorised closed-form counterpart of :meth:`run_slot`.

        Instead of drawing per-packet service times, the data phase is
        summarised by its renewal-process normal approximation: the
        attempted count is ``budget/mean`` plus CLT jitter, and deliveries
        are a normal-approximated binomial thinning. Each slot spends
        exactly :data:`AGGREGATE_DRAWS_PER_SLOT` uniforms (the last axis of
        ``uniforms``), making the draw budget fixed and batchable.

        All arguments broadcast; returns ``(negotiation_s, effective_tx_s,
        packets_attempted, packets_delivered)`` arrays. A slot whose
        negotiation exceeds the duration mirrors the exact path: the whole
        slot is charged to negotiation and nothing is attempted.
        """
        if slot_duration_s <= 0:
            raise ConfigurationError("slot duration must be positive")
        p = np.asarray(success_probability, dtype=np.float64)
        if np.any(p < 0.0) or np.any(p > 1.0):
            raise ConfigurationError("success probability must be in [0, 1]")
        neg = np.asarray(negotiation_s, dtype=np.float64)
        if np.any(neg < 0.0):
            raise ConfigurationError("negotiation time must be non-negative")
        u = np.asarray(uniforms, dtype=np.float64)
        if u.shape[-1] != AGGREGATE_DRAWS_PER_SLOT:
            raise ConfigurationError(
                f"expected {AGGREGATE_DRAWS_PER_SLOT} uniforms along the "
                f"last axis, got {u.shape[-1]}"
            )
        mean = self.timing.packet_service_mean_s
        std = self.timing.packet_service_std_s
        budget = slot_duration_s - neg
        live = budget > 0.0
        safe = np.where(live, budget, 0.0)
        z1 = normal_from_uniform(u[..., 0])
        attempted = np.where(
            live,
            np.maximum(
                np.rint(safe / mean + z1 * np.sqrt(safe * std * std / mean**3)),
                0.0,
            ),
            0.0,
        )
        z2 = normal_from_uniform(u[..., 1])
        delivered = np.clip(
            np.rint(attempted * p + z2 * np.sqrt(attempted * p * (1.0 - p))),
            0.0,
            attempted,
        )
        return (
            np.where(live, neg, slot_duration_s),
            safe,
            attempted.astype(np.int64),
            delivered.astype(np.int64),
        )

    def average_goodput(
        self,
        slot_duration_s: float,
        *,
        slots: int = 50,
        success_probability: float = 1.0,
        rng: SeedLike = None,
    ) -> tuple[float, float]:
        """Mean (goodput pkts/slot, utilisation) over ``slots`` runs."""
        if slots < 1:
            raise ConfigurationError("need at least one slot")
        r = make_rng(rng)
        reports = [
            self.run_slot(
                slot_duration_s, success_probability=success_probability, rng=r
            )
            for _ in range(slots)
        ]
        goodput = sum(rep.packets_delivered for rep in reports) / slots
        utilization = sum(rep.utilization for rep in reports) / slots
        return goodput, utilization


__all__ = ["GoodputReport", "GoodputModel", "AGGREGATE_DRAWS_PER_SLOT"]
