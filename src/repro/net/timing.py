"""Hardware timing model — paper §IV-D-1, Fig. 9.

The paper measures four latencies on the CC26X2R1/USRP testbed (100 trials
each): running the DQN (~9 ms), the data/ACK round trip (~0.9 ms), hub-side
data processing (~0.6 ms), and the per-node polling announcement
(~13.1 ms). We model each as a gamma-distributed positive random variable
with the measured mean and a realistic coefficient of variation, plus the
off-channel recovery behaviour that makes FH negotiation occasionally take
seconds (Fig. 9(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.special import gammaincinv, ndtri

from repro.constants import (
    TIME_DATA_PROCESSING_S,
    TIME_DQN_INFERENCE_S,
    TIME_POLLING_PER_NODE_S,
    TIME_ROUND_TRIP_S,
)
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng

#: CSMA turnaround mean folded into the per-packet service time; calibrated
#: so the no-jamming goodput of Fig. 10(a) lands near the paper's curve.
TURNAROUND_MEAN_S = 4.6e-3

#: Coefficient of variation of the off-channel recovery wait (Fig. 9(b) tail).
OFF_CHANNEL_RECOVERY_CV = 0.6

#: Uniforms are clipped into this open interval before quantile inversion.
_QUANTILE_EPS = 1e-9


def _gamma_sample(
    rng: np.random.Generator, mean: float, cv: float, size: int | None = None
):
    """Gamma samples with the given mean and coefficient of variation."""
    shape = 1.0 / (cv * cv)
    scale = mean / shape
    return rng.gamma(shape, scale, size=size)


@lru_cache(maxsize=32)
def _gamma_quantile_table(shape: float) -> tuple[np.ndarray, np.ndarray]:
    """Dense quantile grid of the unit-scale gamma with the given shape."""
    grid = np.linspace(0.0, 1.0, 4097)
    table = gammaincinv(shape, np.clip(grid, _QUANTILE_EPS, 1.0 - _QUANTILE_EPS))
    return grid, table


def gamma_from_uniform(u, mean: float, cv: float):
    """Map uniforms in [0, 1) through the gamma(mean, cv) quantile function.

    Interpolated from a cached 4097-point table — the aggregate sampling
    path trades exact inverse-CDF evaluation for speed. Elementwise, so a
    row of a batched input maps exactly as the same row alone would.
    """
    shape = 1.0 / (cv * cv)
    grid, table = _gamma_quantile_table(shape)
    return np.interp(u, grid, table) * (mean / shape)


def normal_from_uniform(u):
    """Standard-normal quantile of uniforms in [0, 1) (elementwise)."""
    return ndtri(np.clip(u, _QUANTILE_EPS, 1.0 - _QUANTILE_EPS))


@dataclass(frozen=True)
class TimingModel:
    """Stochastic latencies of the hub/peripheral hardware."""

    dqn_inference_mean_s: float = TIME_DQN_INFERENCE_S
    round_trip_mean_s: float = TIME_ROUND_TRIP_S
    processing_mean_s: float = TIME_DATA_PROCESSING_S
    polling_per_node_mean_s: float = TIME_POLLING_PER_NODE_S
    #: Relative jitter of each latency.
    jitter_cv: float = 0.12
    #: Probability a peripheral is off-channel when polled and must be
    #: awaited on the control channel (the seconds-long tail of Fig. 9(b)).
    off_channel_probability: float = 0.12
    #: Mean wait for an off-channel node to return to the control channel.
    off_channel_recovery_mean_s: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "dqn_inference_mean_s",
            "round_trip_mean_s",
            "processing_mean_s",
            "polling_per_node_mean_s",
            "off_channel_recovery_mean_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0 < self.jitter_cv < 1:
            raise ConfigurationError("jitter_cv must lie in (0, 1)")
        if not 0.0 <= self.off_channel_probability <= 1.0:
            raise ConfigurationError("off_channel_probability must be in [0, 1]")

    # -- individual latencies (Fig. 9(a)) ------------------------------------

    def dqn_inference(self, rng: SeedLike = None, size: int | None = None):
        """Time for the hub to run the DQN forward pass."""
        return _gamma_sample(make_rng(rng), self.dqn_inference_mean_s, self.jitter_cv, size)

    def round_trip(self, rng: SeedLike = None, size: int | None = None):
        """Data + ACK round-trip time of one packet."""
        return _gamma_sample(make_rng(rng), self.round_trip_mean_s, self.jitter_cv, size)

    def processing(self, rng: SeedLike = None, size: int | None = None):
        """Hub-side processing time after receiving one packet."""
        return _gamma_sample(make_rng(rng), self.processing_mean_s, self.jitter_cv, size)

    def polling(self, rng: SeedLike = None, size: int | None = None):
        """Per-node polling announcement time."""
        return _gamma_sample(
            make_rng(rng), self.polling_per_node_mean_s, self.jitter_cv, size
        )

    # -- composite costs ---------------------------------------------------------

    def packet_service_time(self, rng: SeedLike = None) -> float:
        """Air + processing time consumed by one delivered data packet.

        RTT + hub processing + a CSMA turnaround of the same order as the
        RTT; calibrated so the no-jamming goodput of Fig. 10(a) lands near
        the paper's 148..806 packets/slot over 1..5 s slots.
        """
        r = make_rng(rng)
        turnaround = _gamma_sample(r, TURNAROUND_MEAN_S, self.jitter_cv)
        return float(
            self.round_trip(r) + self.processing(r) + turnaround
        )

    @property
    def packet_service_mean_s(self) -> float:
        """Mean of :meth:`packet_service_time`."""
        return (
            TURNAROUND_MEAN_S + self.round_trip_mean_s + self.processing_mean_s
        )

    @property
    def packet_service_std_s(self) -> float:
        """Standard deviation of :meth:`packet_service_time`.

        The three gamma components are independent with relative jitter
        ``jitter_cv``, so variances add.
        """
        return self.jitter_cv * float(
            np.sqrt(
                TURNAROUND_MEAN_S**2
                + self.round_trip_mean_s**2
                + self.processing_mean_s**2
            )
        )

    def negotiation_time(
        self,
        num_nodes: int,
        rng: SeedLike = None,
        *,
        include_recovery: bool = True,
    ) -> float:
        """FH negotiation time for a network of ``num_nodes`` peripherals.

        The hub polls every node (13.1 ms each) and, when a node is not on
        the expected channel, waits for it to reappear on the control
        channel — this is what stretches negotiation to seconds for larger
        networks (Fig. 9(b)). ``include_recovery=False`` gives the typical
        per-slot announcement cost (all nodes already synchronised), the
        ~0.07 s overhead of Fig. 10(b).
        """
        if num_nodes < 1:
            raise ConfigurationError(f"need at least one node, got {num_nodes}")
        r = make_rng(rng)
        total = float(self.dqn_inference(r))
        for _ in range(num_nodes):
            total += float(self.polling(r))
            if include_recovery and r.random() < self.off_channel_probability:
                total += float(
                    _gamma_sample(
                        r,
                        self.off_channel_recovery_mean_s,
                        OFF_CHANNEL_RECOVERY_CV,
                    )
                )
        return total

    # -- fixed-draw (aggregate) sampling ------------------------------------

    def negotiation_uniform_count(self, num_nodes: int) -> int:
        """Uniforms :meth:`negotiation_time_from_uniforms` consumes per slot.

        One DQN-inference draw plus, per node: polling, an off-channel
        indicator, and a recovery draw. The recovery draw is *always*
        consumed (and conditionally applied), which is what keeps the
        per-slot draw budget fixed.
        """
        if num_nodes < 1:
            raise ConfigurationError(f"need at least one node, got {num_nodes}")
        return 3 * num_nodes + 1

    def negotiation_time_from_uniforms(
        self,
        num_nodes: int,
        uniforms,
        *,
        include_recovery=True,
    ):
        """Negotiation time computed from pre-drawn uniforms (vectorisable).

        ``uniforms`` has ``negotiation_uniform_count(num_nodes)`` entries
        along its last axis — layout: ``[dqn, polling x n, off-channel
        indicator x n, recovery x n]``. ``include_recovery`` may be a bool
        array broadcast against the leading axes. Elementwise in the
        uniforms, so each batch row matches the same row computed solo.
        """
        n = int(num_nodes)
        count = self.negotiation_uniform_count(n)
        u = np.asarray(uniforms, dtype=np.float64)
        if u.shape[-1] != count:
            raise ConfigurationError(
                f"expected {count} uniforms along the last axis, got {u.shape[-1]}"
            )
        dqn = gamma_from_uniform(
            u[..., 0], self.dqn_inference_mean_s, self.jitter_cv
        )
        polling = gamma_from_uniform(
            u[..., 1 : 1 + n], self.polling_per_node_mean_s, self.jitter_cv
        ).sum(axis=-1)
        off = u[..., 1 + n : 1 + 2 * n] < self.off_channel_probability
        recovery = (
            gamma_from_uniform(
                u[..., 1 + 2 * n :],
                self.off_channel_recovery_mean_s,
                OFF_CHANNEL_RECOVERY_CV,
            )
            * off
        ).sum(axis=-1)
        return dqn + polling + np.where(include_recovery, recovery, 0.0)


__all__ = [
    "TimingModel",
    "TURNAROUND_MEAN_S",
    "OFF_CHANNEL_RECOVERY_CV",
    "gamma_from_uniform",
    "normal_from_uniform",
]
