"""Execution layer: parallel Monte-Carlo dispatch and stage timing.

``ParallelRunner`` fans independent seeded experiments out over a process
pool (``REPRO_WORKERS``); :mod:`repro.exec.timing` accumulates per-stage
wall-clock totals and snapshots them as ``BENCH_<name>.json`` artifacts.
"""

from repro.exec.runner import ParallelRunner, WORKERS_ENV, parallel_map, resolve_workers
from repro.exec.timing import (
    BENCH_DIR_ENV,
    REGISTRY,
    StageStats,
    TimingRegistry,
    bench_dir,
    record,
    stage,
    write_bench,
)

__all__ = [
    "ParallelRunner",
    "WORKERS_ENV",
    "parallel_map",
    "resolve_workers",
    "BENCH_DIR_ENV",
    "REGISTRY",
    "StageStats",
    "TimingRegistry",
    "bench_dir",
    "record",
    "stage",
    "write_bench",
]
