"""Execution layer: parallel Monte-Carlo dispatch, fault tolerance, timing.

``ParallelRunner`` fans independent seeded experiments out over a process
pool (``REPRO_WORKERS``); :mod:`repro.exec.faults` supplies per-task
retry/timeout/skip semantics (``REPRO_ON_ERROR``, ``REPRO_MAX_RETRIES``,
``REPRO_TASK_TIMEOUT``) plus a deterministic fault injector
(``REPRO_FAULT_RATE``); :mod:`repro.exec.timing` accumulates per-stage
wall-clock and fault counts and snapshots them as ``BENCH_<name>.json``
artifacts.
"""

from repro.exec.faults import (
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    MAX_RETRIES_ENV,
    ON_ERROR_ENV,
    ON_ERROR_MODES,
    TIMEOUT_ENV,
    FaultCounters,
    FaultPolicy,
    InjectedFault,
    TaskFailure,
    maybe_inject_fault,
    run_with_faults,
)
from repro.exec.runner import (
    WORKERS_ENV,
    ParallelRunner,
    parallel_map,
    resolve_workers,
)
from repro.exec.timing import (
    BENCH_DIR_ENV,
    REGISTRY,
    StageStats,
    TimingRegistry,
    bench_dir,
    record,
    stage,
    write_bench,
)

__all__ = [
    "ParallelRunner",
    "WORKERS_ENV",
    "parallel_map",
    "resolve_workers",
    "FAULT_RATE_ENV",
    "FAULT_SEED_ENV",
    "MAX_RETRIES_ENV",
    "ON_ERROR_ENV",
    "ON_ERROR_MODES",
    "TIMEOUT_ENV",
    "FaultCounters",
    "FaultPolicy",
    "InjectedFault",
    "TaskFailure",
    "maybe_inject_fault",
    "run_with_faults",
    "BENCH_DIR_ENV",
    "REGISTRY",
    "StageStats",
    "TimingRegistry",
    "bench_dir",
    "record",
    "stage",
    "write_bench",
]
