"""Lightweight wall-clock timing registry for the execution layer.

Every heavy pipeline stage (a parameter sweep, a DQN training run, a
figure regeneration) records its elapsed wall-clock here under a stage
name. Totals accumulate per process; :func:`write_bench` snapshots the
registry into a ``BENCH_<name>.json`` artifact so successive PRs can
track the performance trajectory of each benchmark.

Artifacts land in ``$REPRO_BENCH_DIR`` when set, else in
``benchmarks/results/`` next to the figure tables.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator

from repro.obs.metrics import METRICS
from repro.obs.paths import BENCH_DIR_ENV, DEFAULT_ARTIFACT_DIR, artifact_dir
from repro.obs.profile import maybe_profile

#: Default artifact directory (benchmarks/results at the repo root).
DEFAULT_BENCH_DIR = DEFAULT_ARTIFACT_DIR


def bench_dir() -> Path:
    """Directory BENCH artifacts are written to (env-overridable)."""
    return artifact_dir()


@dataclass
class StageStats:
    """Accumulated wall-clock and fault counts of one named stage."""

    seconds: float = 0.0
    calls: int = 0
    #: Task count processed by the stage (e.g. sweep points), when known.
    items: int = 0
    #: Task re-dispatches performed by the fault layer.
    retries: int = 0
    #: Tasks that failed permanently (raised or skipped as sentinels).
    failures: int = 0
    #: Per-task timeout events (each one also counts as a failed attempt).
    timeouts: int = 0

    def as_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "calls": self.calls,
            "items": self.items,
            "retries": self.retries,
            "failures": self.failures,
            "timeouts": self.timeouts,
        }


@dataclass
class TimingRegistry:
    """Per-stage wall-clock accumulator.

    Thread-unsafe by design: the runner times stages from the dispatching
    (parent) process only, never from pool workers.
    """

    stages: dict[str, StageStats] = field(default_factory=dict)

    def record(
        self,
        name: str,
        seconds: float,
        *,
        items: int = 0,
        retries: int = 0,
        failures: int = 0,
        timeouts: int = 0,
    ) -> None:
        """Add ``seconds`` (and optional task/fault counts) to a stage."""
        stats = self.stages.setdefault(name, StageStats())
        stats.seconds += float(seconds)
        stats.calls += 1
        stats.items += int(items)
        stats.retries += int(retries)
        stats.failures += int(failures)
        stats.timeouts += int(timeouts)

    @contextmanager
    def stage(self, name: str, *, items: int = 0) -> Iterator[None]:
        """Time a ``with`` block under ``name``.

        With ``REPRO_PROFILE`` set, the block also runs under cProfile
        and dumps ``PROF_<name>.pstats`` next to the BENCH artifacts.
        """
        start = time.perf_counter()
        try:
            with maybe_profile(name):
                yield
        finally:
            self.record(name, time.perf_counter() - start, items=items)

    def total_seconds(self, name: str) -> float:
        """Accumulated wall-clock of ``name`` (0.0 if never recorded)."""
        stats = self.stages.get(name)
        return stats.seconds if stats else 0.0

    def reset(self) -> None:
        self.stages.clear()

    def as_dict(self) -> dict:
        return {name: stats.as_dict() for name, stats in self.stages.items()}

    def write_bench(
        self,
        name: str,
        *,
        directory: Path | str | None = None,
        extra: dict | None = None,
    ) -> Path:
        """Write the registry snapshot as ``BENCH_<name>.json``.

        Returns the path written. ``extra`` entries are merged into the
        top-level document (e.g. slot budgets, worker counts). The
        ``metrics`` section carries the :data:`repro.obs.metrics.METRICS`
        snapshot (counters, gauges, histograms) of this process; the
        timestamp is UTC ISO-8601 so artifacts sort and diff reliably
        across platforms.
        """
        out_dir = Path(directory) if directory is not None else bench_dir()
        out_dir.mkdir(parents=True, exist_ok=True)
        doc = {
            "name": name,
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "workers_env": os.environ.get("REPRO_WORKERS"),
            "stages": self.as_dict(),
            "metrics": METRICS.snapshot(),
        }
        if extra:
            doc.update(extra)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path


#: Process-global registry the library's pipeline stages record into.
REGISTRY = TimingRegistry()


def record(
    name: str,
    seconds: float,
    *,
    items: int = 0,
    retries: int = 0,
    failures: int = 0,
    timeouts: int = 0,
) -> None:
    """Record into the global registry."""
    REGISTRY.record(
        name,
        seconds,
        items=items,
        retries=retries,
        failures=failures,
        timeouts=timeouts,
    )


@contextmanager
def stage(name: str, *, items: int = 0) -> Iterator[None]:
    """Time a block into the global registry."""
    with REGISTRY.stage(name, items=items):
        yield


def write_bench(
    name: str, *, directory: Path | str | None = None, extra: dict | None = None
) -> Path:
    """Snapshot the global registry to ``BENCH_<name>.json``."""
    return REGISTRY.write_bench(name, directory=directory, extra=extra)


__all__ = [
    "BENCH_DIR_ENV",
    "DEFAULT_BENCH_DIR",
    "bench_dir",
    "StageStats",
    "TimingRegistry",
    "REGISTRY",
    "record",
    "stage",
    "write_bench",
]
