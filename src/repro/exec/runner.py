"""Process-pool Monte-Carlo runner with deterministic per-task seeding.

Paper-figure workloads are fan-outs of *independent* seeded experiments
(one task per sweep point, per scheme, per training seed). The runner maps
a picklable task function over a spec list, dispatching chunks to a
process pool and reassembling results in spec order. With one worker it
degenerates to a plain in-process loop — no pool, no pickling — so the
serial path is bit-identical to calling ``task_fn`` yourself; and because
every task derives its own random stream from ``(seed, tag)`` rather than
sharing parent state, the aggregate results are identical for any worker
count.

Worker-count resolution (first match wins):

1. an explicit ``workers=`` argument,
2. the ``REPRO_WORKERS`` environment variable (``auto`` or ``0`` means
   one worker per CPU),
3. serial (1 worker).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.exec.timing import REGISTRY, TimingRegistry
from repro.rng import SeedLike, derive

#: Environment variable selecting the default pool size.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | str | None = None) -> int:
    """Resolve a worker count from an argument or the environment."""
    if workers is None:
        workers = os.environ.get(WORKERS_ENV, 1)
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            workers = 0
        else:
            try:
                workers = int(text)
            except ValueError:
                raise ConfigurationError(
                    f"workers must be an integer or 'auto', got {workers!r}"
                ) from None
    workers = int(workers)
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def _seeded_task(payload: tuple) -> Any:
    """Pool trampoline: run ``task_fn(spec, rng)`` with a derived stream."""
    task_fn, spec, seed, tag = payload
    return task_fn(spec, derive(seed, tag))


class ParallelRunner:
    """Map a task function over independent specs, serially or via a pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` defers to ``REPRO_WORKERS`` (default serial).
    chunk_size:
        Specs per pool dispatch; ``None`` picks ``ceil(n / (4 * workers))``
        so each worker sees ~4 chunks (amortises pickling without
        starving the tail).
    name:
        Stage name recorded in the timing registry for each ``map`` call.
    registry:
        Timing registry to record into (the global one by default).
    """

    def __init__(
        self,
        workers: int | str | None = None,
        *,
        chunk_size: int | None = None,
        name: str = "map",
        registry: TimingRegistry | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.name = name
        self.registry = registry if registry is not None else REGISTRY

    def _chunksize(self, n_specs: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-n_specs // (4 * workers)))

    def map(self, task_fn: Callable[[Any], Any], specs: Iterable[Any]) -> list:
        """Apply ``task_fn`` to every spec; results come back in spec order.

        ``task_fn`` must be a module-level callable and specs picklable
        when more than one worker is in play; the serial path has no such
        constraint.
        """
        spec_list = list(specs)
        with self.registry.stage(self.name, items=len(spec_list)):
            return self._dispatch(task_fn, spec_list)

    def map_seeded(
        self,
        task_fn: Callable[[Any, Any], Any],
        specs: Iterable[Any],
        *,
        seed: SeedLike = None,
        stream: str = "task",
    ) -> list:
        """Like :meth:`map` but hands each task its own derived RNG.

        Task ``i`` receives ``derive(seed, f"{stream}[{i}]")`` — a stream
        that depends only on ``(seed, stream, i)``, never on worker count
        or dispatch order, so aggregates are reproducible by construction.
        """
        spec_list = list(specs)
        payloads = [
            (task_fn, spec, seed, f"{stream}[{i}]")
            for i, spec in enumerate(spec_list)
        ]
        with self.registry.stage(self.name, items=len(spec_list)):
            return self._dispatch(_seeded_task, payloads)

    def _dispatch(self, task_fn: Callable[[Any], Any], specs: Sequence[Any]) -> list:
        workers = min(self.workers, len(specs))
        if workers <= 1:
            # Serial fallback: same function, same order, same process.
            return [task_fn(spec) for spec in specs]
        chunksize = self._chunksize(len(specs), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(task_fn, specs, chunksize=chunksize))


def parallel_map(
    task_fn: Callable[[Any], Any],
    specs: Iterable[Any],
    *,
    workers: int | str | None = None,
    name: str = "map",
) -> list:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(workers, name=name).map(task_fn, specs)


__all__ = ["WORKERS_ENV", "resolve_workers", "ParallelRunner", "parallel_map"]
