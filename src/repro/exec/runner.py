"""Process-pool Monte-Carlo runner with deterministic per-task seeding.

Paper-figure workloads are fan-outs of *independent* seeded experiments
(one task per sweep point, per scheme, per training seed). The runner maps
a picklable task function over a spec list, dispatching chunks to a
process pool and reassembling results in spec order. With one worker it
degenerates to a plain in-process loop — no pool, no pickling — so the
serial path is bit-identical to calling ``task_fn`` yourself; and because
every task derives its own random stream from ``(seed, tag)`` rather than
sharing parent state, the aggregate results are identical for any worker
count.

Worker-count resolution (first match wins):

1. an explicit ``workers=`` argument,
2. the ``REPRO_WORKERS`` environment variable (``auto`` or ``0`` means
   one worker per CPU; empty/whitespace-only counts as unset),
3. serial (1 worker).

Failure semantics are governed by a :class:`repro.exec.faults.FaultPolicy`
(``policy=`` argument, defaulting to the ``REPRO_ON_ERROR`` /
``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT`` / ``REPRO_FAULT_RATE``
environment): per-task retries re-dispatch the identical payload (so
retried results are bit-identical), ``on_error="skip"`` salvages partial
sweeps as :class:`repro.exec.faults.TaskFailure` sentinels, and a broken
pool degrades to serial execution instead of discarding completed work.
Retry/failure/timeout counts land in the timing registry and hence in the
``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.exec.faults import FaultCounters, FaultPolicy, run_with_faults
from repro.exec.timing import REGISTRY, TimingRegistry
from repro.obs import telemetry as obs_telemetry
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.obs.profile import maybe_profile
from repro.rng import SeedLike, derive

#: Environment variable selecting the default pool size.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | str | None = None) -> int:
    """Resolve a worker count from an argument or the environment."""
    if workers is None:
        workers = os.environ.get(WORKERS_ENV, 1)
    if isinstance(workers, str):
        text = workers.strip().lower()
        if not text:
            # Empty/whitespace-only REPRO_WORKERS counts as unset (serial),
            # not as a malformed integer.
            workers = 1
        elif text == "auto":
            workers = 0
        else:
            try:
                workers = int(text)
            except ValueError:
                raise ConfigurationError(
                    f"workers must be an integer or 'auto', got {workers!r}"
                ) from None
    workers = int(workers)
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def _seeded_task(payload: tuple) -> Any:
    """Pool trampoline: run ``task_fn(spec, rng)`` with a derived stream."""
    task_fn, spec, seed, tag = payload
    return task_fn(spec, derive(seed, tag))


def _traced_task(payload: tuple) -> Any:
    """Pool trampoline carrying the parent's trace context.

    In a pool worker: adopt the shipped context (same trace id, spans
    parented under the dispatch span), buffer everything the task
    records, and return a :class:`repro.obs.trace.TracedResult` envelope
    so the parent can merge the telemetry and unwrap the raw result. On
    the serial/rescue path (same process as the dispatcher) the ambient
    context is already live, so the task runs under a plain span and the
    result passes through unwrapped.
    """
    task_fn, spec, ctx = payload
    if obs_trace.in_origin(ctx):
        with obs_trace.span("exec/task"):
            return task_fn(spec)
    obs_trace.activate_worker(ctx)
    with obs_trace.span("exec/task"):
        result = task_fn(spec)
    return obs_trace.TracedResult(
        result=result,
        records=obs_trace.drain_worker(),
        metrics=METRICS.snapshot(),
        telemetry=obs_telemetry.drain_worker(),
    )


def _absorb_traced(result: Any) -> Any:
    """Unwrap a :class:`TracedResult`: merge telemetry, return the payload."""
    if isinstance(result, obs_trace.TracedResult):
        obs_trace.absorb(result.records)
        obs_telemetry.absorb(result.telemetry)
        METRICS.merge(result.metrics)
        return result.result
    return result  # TaskFailure sentinels and serial-path results


class ParallelRunner:
    """Map a task function over independent specs, serially or via a pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` defers to ``REPRO_WORKERS`` (default serial).
    chunk_size:
        Specs per pool dispatch; ``None`` picks ``ceil(n / (4 * workers))``
        so each worker sees ~4 chunks (amortises pickling without
        starving the tail). Only the fault-intolerant fast path chunks;
        an active fault policy dispatches per task so each task can be
        retried, timed out, or skipped independently.
    name:
        Stage name recorded in the timing registry for each ``map`` call.
    registry:
        Timing registry to record into (the global one by default).
    policy:
        Fault policy; ``None`` defers to the ``REPRO_ON_ERROR`` /
        ``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT`` /
        ``REPRO_FAULT_RATE`` environment (default: fail fast).
    """

    def __init__(
        self,
        workers: int | str | None = None,
        *,
        chunk_size: int | None = None,
        name: str = "map",
        registry: TimingRegistry | None = None,
        policy: FaultPolicy | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.name = name
        self.registry = registry if registry is not None else REGISTRY
        self.policy = policy if policy is not None else FaultPolicy.from_env()

    def _chunksize(self, n_specs: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-n_specs // (4 * workers)))

    def map(self, task_fn: Callable[[Any], Any], specs: Iterable[Any]) -> list:
        """Apply ``task_fn`` to every spec; results come back in spec order.

        ``task_fn`` must be a module-level callable and specs picklable
        when more than one worker is in play; the serial path has no such
        constraint. Under ``policy.on_error == "skip"``, failed specs
        yield :class:`repro.exec.faults.TaskFailure` sentinels in place.
        """
        return self._timed_dispatch(task_fn, list(specs))

    def map_seeded(
        self,
        task_fn: Callable[[Any, Any], Any],
        specs: Iterable[Any],
        *,
        seed: SeedLike = None,
        stream: str = "task",
    ) -> list:
        """Like :meth:`map` but hands each task its own derived RNG.

        Task ``i`` receives ``derive(seed, f"{stream}[{i}]")`` — a stream
        that depends only on ``(seed, stream, i)``, never on worker count,
        dispatch order, or retry attempt, so aggregates are reproducible
        by construction and a retried task is bit-identical to one that
        succeeded first try.
        """
        payloads = [
            (task_fn, spec, seed, f"{stream}[{i}]") for i, spec in enumerate(specs)
        ]
        return self._timed_dispatch(_seeded_task, payloads)

    def _timed_dispatch(self, task_fn: Callable[[Any], Any], specs: list) -> list:
        counters = FaultCounters()
        METRICS.inc("exec.dispatches")
        METRICS.inc("exec.tasks", len(specs))
        start = time.perf_counter()
        try:
            with obs_trace.span(
                "exec/dispatch",
                stage=self.name,
                specs=len(specs),
                workers=min(self.workers, max(len(specs), 1)),
            ):
                with maybe_profile(self.name):
                    return self._dispatch(task_fn, specs, counters)
        finally:
            seconds = time.perf_counter() - start
            self.registry.record(
                self.name,
                seconds,
                items=len(specs),
                retries=counters.retries,
                failures=counters.failures,
                timeouts=counters.timeouts,
            )
            METRICS.observe("exec.dispatch_seconds", seconds)
            for key, value in (
                ("exec.retries", counters.retries),
                ("exec.failures", counters.failures),
                ("exec.timeouts", counters.timeouts),
                ("exec.pool_breaks", counters.pool_breaks),
            ):
                if value:
                    METRICS.inc(key, value)

    def _dispatch(
        self,
        task_fn: Callable[[Any], Any],
        specs: Sequence[Any],
        counters: FaultCounters,
    ) -> list:
        workers = min(self.workers, len(specs))
        # With tracing or telemetry active and a pool in play, ship the
        # ambient context inside every payload so worker-side spans,
        # events, metrics, and telemetry frames come back with the
        # results and merge into the parent's sinks. With both off the
        # payloads are untouched.
        ctx = obs_trace.worker_context() if workers > 1 else None
        if ctx is not None:
            specs = [(task_fn, spec, ctx) for spec in specs]
            task_fn = _traced_task
        results = self._raw_dispatch(task_fn, specs, workers, counters)
        if ctx is not None:
            results = [_absorb_traced(result) for result in results]
        return results

    def _raw_dispatch(
        self,
        task_fn: Callable[[Any], Any],
        specs: Sequence[Any],
        workers: int,
        counters: FaultCounters,
    ) -> list:
        if self.policy.is_passthrough:
            if workers <= 1:
                # Serial fallback: same function, same order, same process.
                return [task_fn(spec) for spec in specs]
            chunksize = self._chunksize(len(specs), workers)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(task_fn, specs, chunksize=chunksize))
        return run_with_faults(
            task_fn, specs, workers=workers, policy=self.policy, counters=counters
        )


def parallel_map(
    task_fn: Callable[[Any], Any],
    specs: Iterable[Any],
    *,
    workers: int | str | None = None,
    name: str = "map",
    policy: FaultPolicy | None = None,
) -> list:
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(workers, name=name, policy=policy).map(task_fn, specs)


__all__ = ["WORKERS_ENV", "resolve_workers", "ParallelRunner", "parallel_map"]
