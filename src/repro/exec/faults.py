"""Fault tolerance for the execution layer.

A multi-hour Monte-Carlo sweep must not lose every completed task to one
worker crash. This module gives :class:`repro.exec.ParallelRunner` a
:class:`FaultPolicy`: bounded per-task retries with exponential backoff,
per-task result timeouts, and an ``on_error`` mode deciding what happens
when a task exhausts its attempts —

``"raise"``
    fail fast (the pre-fault-layer behaviour): the first task exception
    propagates unchanged and the sweep aborts;
``"retry"``
    re-dispatch the task up to ``max_retries`` times, then re-raise;
``"skip"``
    re-dispatch likewise, then salvage the sweep by substituting a typed
    :class:`TaskFailure` sentinel (spec index, remote traceback, attempt
    count) for the lost result while every completed result is preserved.

Retries are **seed-stable**: a task's random stream is derived from its
payload alone (see :meth:`ParallelRunner.map_seeded`), never from worker
or attempt state, so a task that succeeds on its third attempt returns a
result bit-identical to one that succeeds immediately, and a retried
sweep is bit-identical to a fault-free serial run.

When the pool itself breaks (``BrokenProcessPool`` — an OOM-killed or
crashed worker), the dispatcher salvages every already-completed result
and degrades to in-process serial execution for the remainder instead of
discarding the run.

Failure paths are exercised deterministically through a seeded fault
injector: with ``fault_rate`` > 0 (or ``REPRO_FAULT_RATE`` in the
environment) each (task, attempt) pair raises :class:`InjectedFault`
with that probability, from a stream keyed by ``(fault_seed, index,
attempt)`` — so which attempts fail is reproducible, and an attempt that
failed will succeed on retry exactly when the keyed stream says so.

Caveats, stated honestly: ``concurrent.futures`` cannot kill a running
task, so ``timeout_s`` bounds the wall-clock the dispatcher *waits* for
each result (a hung worker keeps its pool slot until the task ends), and
on the serial path the timeout is enforced post-hoc — an overlong task
runs to completion but its result is discarded as timed out.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.obs import trace as obs_trace
from repro.rng import derive

#: Environment variables configuring the default :class:`FaultPolicy`.
ON_ERROR_ENV = "REPRO_ON_ERROR"
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
FAULT_RATE_ENV = "REPRO_FAULT_RATE"
FAULT_SEED_ENV = "REPRO_FAULT_SEED"

#: Valid ``on_error`` modes.
ON_ERROR_MODES = ("raise", "retry", "skip")

#: Result slot not yet filled (module-level so it pickles by reference).
_PENDING = object()


class InjectedFault(RuntimeError):
    """Deterministic fault raised by the injector.

    Deliberately *not* a :class:`ReproError`: injected faults must travel
    the same generic-crash path as a real worker exception.
    """


@dataclass(frozen=True)
class TaskFailure:
    """Typed sentinel standing in for a task lost under ``on_error="skip"``."""

    #: Position of the failed spec in the dispatched spec list.
    index: int
    #: Exception class name (e.g. ``"ValueError"``, ``"TimeoutError"``).
    error_type: str
    #: ``str(exception)`` of the final failed attempt.
    message: str
    #: Full formatted traceback, including the remote (worker) frames.
    traceback: str
    #: Attempts consumed (1 = failed on the first try with no retries).
    attempts: int
    #: True when the final failure was a timeout rather than an exception.
    timed_out: bool = False


@dataclass
class FaultCounters:
    """Per-dispatch fault accounting, surfaced into the timing registry."""

    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    pool_breaks: int = 0


def _env_value(name: str) -> str | None:
    """Environment lookup treating empty/whitespace-only values as unset."""
    value = os.environ.get(name)
    if value is None or not value.strip():
        return None
    return value.strip()


@dataclass(frozen=True)
class FaultPolicy:
    """What the dispatcher does when a task fails.

    The default policy is fault-intolerant (``on_error="raise"``, no
    timeout, no injection) and keeps the pre-fault-layer semantics: the
    first task exception propagates unchanged.
    """

    on_error: str = "raise"
    #: Re-dispatches allowed per task beyond the first attempt. Ignored
    #: under ``on_error="raise"`` (fail fast).
    max_retries: int = 2
    #: Per-task result-wait budget in seconds; ``None`` waits forever.
    timeout_s: float | None = None
    #: First-retry backoff; doubles (``backoff_factor``) per further retry.
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    #: Probability each (task, attempt) raises :class:`InjectedFault`.
    fault_rate: float = 0.0
    #: Seed of the injector's random stream.
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ConfigurationError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_s < 0 or self.backoff_factor < 1:
            raise ConfigurationError("backoff_s must be >= 0 and backoff_factor >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigurationError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a task may consume under this policy."""
        return 1 if self.on_error == "raise" else 1 + self.max_retries

    @property
    def is_passthrough(self) -> bool:
        """True when the policy changes nothing about plain dispatch."""
        return (
            self.on_error == "raise"
            and self.timeout_s is None
            and self.fault_rate == 0.0
        )

    def backoff_for(self, failed_attempts: int) -> float:
        """Backoff before re-dispatching after ``failed_attempts`` failures."""
        return self.backoff_s * self.backoff_factor ** max(0, failed_attempts - 1)

    @classmethod
    def from_env(
        cls,
        *,
        on_error: str | None = None,
        max_retries: int | None = None,
        timeout_s: float | None = None,
    ) -> "FaultPolicy":
        """Build a policy from ``REPRO_*`` env vars, with explicit overrides.

        Explicit arguments beat the environment; unset (or empty) env vars
        fall back to the dataclass defaults.
        """
        fields: dict[str, Any] = {}
        if on_error is None:
            on_error = _env_value(ON_ERROR_ENV)
        if on_error is not None:
            fields["on_error"] = on_error
        if max_retries is None:
            text = _env_value(MAX_RETRIES_ENV)
            if text is not None:
                try:
                    max_retries = int(text)
                except ValueError:
                    raise ConfigurationError(
                        f"{MAX_RETRIES_ENV} must be an integer, got {text!r}"
                    ) from None
        if max_retries is not None:
            fields["max_retries"] = max_retries
        if timeout_s is None:
            text = _env_value(TIMEOUT_ENV)
            if text is not None:
                try:
                    timeout_s = float(text)
                except ValueError:
                    raise ConfigurationError(
                        f"{TIMEOUT_ENV} must be a number, got {text!r}"
                    ) from None
        if timeout_s is not None:
            fields["timeout_s"] = timeout_s
        rate_text = _env_value(FAULT_RATE_ENV)
        if rate_text is not None:
            try:
                fields["fault_rate"] = float(rate_text)
            except ValueError:
                raise ConfigurationError(
                    f"{FAULT_RATE_ENV} must be a number, got {rate_text!r}"
                ) from None
        seed_text = _env_value(FAULT_SEED_ENV)
        if seed_text is not None:
            try:
                fields["fault_seed"] = int(seed_text)
            except ValueError:
                raise ConfigurationError(
                    f"{FAULT_SEED_ENV} must be an integer, got {seed_text!r}"
                ) from None
        return cls(**fields)


def maybe_inject_fault(index: int, attempt: int, rate: float, seed: int) -> None:
    """Raise :class:`InjectedFault` with probability ``rate``.

    The draw comes from a stream keyed by ``(seed, index, attempt)`` so the
    injection pattern is identical in every worker and on every re-run,
    and a failed attempt's retry re-rolls a *different* (but equally
    deterministic) draw.
    """
    if rate <= 0.0:
        return
    rng = derive(seed, f"fault[{index}]@{attempt}")
    if rng.random() < rate:
        raise InjectedFault(f"injected fault in task {index} (attempt {attempt})")


def _guarded_task(payload: tuple) -> Any:
    """Pool trampoline: run the fault injector, then the task itself."""
    task_fn, spec, index, attempt, rate, seed = payload
    maybe_inject_fault(index, attempt, rate, seed)
    return task_fn(spec)


def _failure_from(
    index: int, exc: BaseException, attempts: int, *, timed_out: bool = False
) -> TaskFailure:
    """Snapshot an exception (with remote frames, if any) as a sentinel."""
    tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    return TaskFailure(
        index=index,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback=tb,
        attempts=attempts,
        timed_out=timed_out,
    )


def _settle_failure(
    index: int,
    exc: BaseException,
    attempts: int,
    policy: FaultPolicy,
    counters: FaultCounters,
    results: list,
    *,
    timed_out: bool = False,
) -> bool:
    """Decide a failed attempt's fate: True = retry, False = settled.

    Settling means either recording a :class:`TaskFailure` sentinel
    (``on_error="skip"``) or raising (``"raise"``/``"retry"`` exhausted).
    """
    if attempts < policy.max_attempts:
        counters.retries += 1
        obs_trace.event(
            "exec.retry",
            task=index,
            attempt=attempts,
            error=type(exc).__name__,
            timed_out=timed_out,
        )
        return True
    counters.failures += 1
    obs_trace.event(
        "exec.task_failed",
        task=index,
        attempts=attempts,
        error=type(exc).__name__,
        timed_out=timed_out,
        settled=policy.on_error == "skip",
    )
    if policy.on_error == "skip":
        results[index] = _failure_from(index, exc, attempts, timed_out=timed_out)
        return False
    if timed_out:
        raise ExecutionError(
            f"task {index} timed out after {attempts} attempt(s) "
            f"(budget {policy.timeout_s}s)"
        ) from exc
    raise exc


def _serial_phase(
    task_fn: Callable[[Any], Any],
    specs: Sequence[Any],
    results: list,
    attempts: list[int],
    todo: Sequence[int],
    policy: FaultPolicy,
    counters: FaultCounters,
) -> None:
    """Run ``todo`` in-process, honouring retry/timeout/skip semantics."""
    rate, fault_seed = policy.fault_rate, policy.fault_seed
    for i in todo:
        while results[i] is _PENDING:
            attempt = attempts[i] + 1
            if attempt > 1:
                time.sleep(policy.backoff_for(attempt - 1))
            start = time.monotonic()
            try:
                value = _guarded_task((task_fn, specs[i], i, attempt, rate, fault_seed))
            except Exception as exc:
                attempts[i] = attempt
                if not _settle_failure(i, exc, attempt, policy, counters, results):
                    break
                continue
            elapsed = time.monotonic() - start
            attempts[i] = attempt
            if policy.timeout_s is not None and elapsed > policy.timeout_s:
                # Post-hoc enforcement: the task cannot be pre-empted
                # in-process, so the overrun result is discarded instead.
                counters.timeouts += 1
                obs_trace.event(
                    "exec.timeout", task=i, elapsed=elapsed, budget=policy.timeout_s
                )
                err = TimeoutError(
                    f"task {i} ran {elapsed:.3f}s, budget {policy.timeout_s}s"
                )
                if not _settle_failure(
                    i, err, attempt, policy, counters, results, timed_out=True
                ):
                    break
                continue
            results[i] = value


def _pool_phase(
    task_fn: Callable[[Any], Any],
    specs: Sequence[Any],
    results: list,
    attempts: list[int],
    todo: list[int],
    workers: int,
    policy: FaultPolicy,
    counters: FaultCounters,
) -> list[int]:
    """Dispatch ``todo`` over a pool; returns indices left for serial rescue.

    The return value is non-empty only when the pool broke: completed
    results have already been collected, and the unresolved remainder is
    handed to :func:`_serial_phase` by the caller.
    """
    rate, fault_seed = policy.fault_rate, policy.fault_seed
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        while todo:
            futures: dict[int, Any] = {}
            broken = False
            try:
                for i in todo:
                    futures[i] = pool.submit(
                        _guarded_task,
                        (task_fn, specs[i], i, attempts[i] + 1, rate, fault_seed),
                    )
            except BrokenProcessPool:
                # A worker died while this round was still being
                # submitted; salvage whatever already finished below and
                # hand the rest to the serial rescue.
                broken = True
            retry: list[int] = []
            for i, fut in futures.items():
                if broken:
                    # The pool already broke; salvage futures that finished
                    # before the break, leave the rest pending.
                    if fut.done() and not fut.cancelled():
                        try:
                            results[i] = fut.result(timeout=0)
                            attempts[i] += 1
                        except Exception:
                            pass
                    continue
                try:
                    value = fut.result(timeout=policy.timeout_s)
                except FuturesTimeoutError:
                    fut.cancel()
                    counters.timeouts += 1
                    attempts[i] += 1
                    obs_trace.event(
                        "exec.timeout", task=i, budget=policy.timeout_s
                    )
                    err = TimeoutError(
                        f"task {i}: no result within {policy.timeout_s}s"
                    )
                    if _settle_failure(
                        i, err, attempts[i], policy, counters, results, timed_out=True
                    ):
                        retry.append(i)
                except BrokenProcessPool:
                    # Worker death is not charged as a task attempt: the
                    # victim task is usually innocent (another task's OOM).
                    broken = True
                except Exception as exc:
                    attempts[i] += 1
                    if _settle_failure(i, exc, attempts[i], policy, counters, results):
                        retry.append(i)
                else:
                    attempts[i] += 1
                    results[i] = value
            if broken:
                counters.pool_breaks += 1
                rescue = [i for i in range(len(specs)) if results[i] is _PENDING]
                obs_trace.event(
                    "exec.degrade",
                    reason="broken-pool",
                    rescued=len(rescue),
                    completed=len(specs) - len(rescue),
                )
                return rescue
            todo = retry
            if todo:
                time.sleep(max(policy.backoff_for(attempts[i]) for i in todo))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return []


def run_with_faults(
    task_fn: Callable[[Any], Any],
    specs: Sequence[Any],
    *,
    workers: int,
    policy: FaultPolicy,
    counters: FaultCounters,
) -> list:
    """Map ``task_fn`` over ``specs`` under ``policy``; results in spec order.

    Failed tasks come back as :class:`TaskFailure` sentinels under
    ``on_error="skip"``; otherwise a permanent failure raises (the
    original exception for crashes, :class:`ExecutionError` for
    timeouts). A broken pool degrades to serial execution of whatever is
    unresolved, keeping every completed result.
    """
    spec_list = list(specs)
    results: list = [_PENDING] * len(spec_list)
    attempts = [0] * len(spec_list)
    todo = list(range(len(spec_list)))
    if workers > 1 and len(spec_list) > 1:
        todo = _pool_phase(
            task_fn, spec_list, results, attempts, todo, workers, policy, counters
        )
    _serial_phase(task_fn, spec_list, results, attempts, todo, policy, counters)
    return results


__all__ = [
    "ON_ERROR_ENV",
    "MAX_RETRIES_ENV",
    "TIMEOUT_ENV",
    "FAULT_RATE_ENV",
    "FAULT_SEED_ENV",
    "ON_ERROR_MODES",
    "InjectedFault",
    "TaskFailure",
    "FaultCounters",
    "FaultPolicy",
    "maybe_inject_fault",
    "run_with_faults",
]
