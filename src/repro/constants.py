"""Shared physical and protocol constants.

Numbers that appear in the paper (sweep cycle, power-level ranges, loss
weights, hardware timings) live here with a pointer to where the paper states
them, so every module and benchmark draws from a single source of truth.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# 2.4 GHz ISM band geometry (paper §II-B, §II-C-2)
# ---------------------------------------------------------------------------

#: Number of IEEE 802.15.4 channels on the 2.4 GHz band (channels 11..26).
NUM_ZIGBEE_CHANNELS = 16

#: First 2.4 GHz ZigBee channel number.
FIRST_ZIGBEE_CHANNEL = 11

#: Centre frequency of ZigBee channel 11 in MHz; channel k is 2405 + 5(k-11).
ZIGBEE_BASE_FREQ_MHZ = 2405.0

#: Spacing between adjacent ZigBee channel centres in MHz.
ZIGBEE_CHANNEL_SPACING_MHZ = 5.0

#: Occupied bandwidth of one ZigBee channel in MHz.
ZIGBEE_BANDWIDTH_MHZ = 2.0

#: Occupied bandwidth of one Wi-Fi (802.11g) channel in MHz.
WIFI_BANDWIDTH_MHZ = 20.0

#: Centre frequency of Wi-Fi channel 1 in MHz; channel k is 2412 + 5(k-1).
WIFI_BASE_FREQ_MHZ = 2412.0

#: Number of consecutive ZigBee channels a single Wi-Fi transmission covers
#: (paper: "a WiFi jammer can scan and jam up to 4 ZigBee channels at a time").
ZIGBEE_CHANNELS_PER_WIFI = 4

#: Jammer sweep cycle with the default geometry: ceil(16 / 4) = 4 time slots.
DEFAULT_SWEEP_CYCLE = 4

# ---------------------------------------------------------------------------
# Transmit powers (paper §II-B)
# ---------------------------------------------------------------------------

#: Wi-Fi RF power in dBm ("can be up to 100mW").
WIFI_TX_POWER_DBM = 20.0

#: ZigBee RF power in dBm ("can be as low as 1mW").
ZIGBEE_TX_POWER_DBM = 0.0

# ---------------------------------------------------------------------------
# MDP / DQN defaults (paper §IV-A-1)
# ---------------------------------------------------------------------------

#: Victim power-level losses L^T_p: ten levels spanning [6, 15].
DEFAULT_TX_POWER_LEVELS = tuple(range(6, 16))

#: Jammer power-level losses L^J_p: ten levels spanning [11, 20].
DEFAULT_JAMMER_POWER_LEVELS = tuple(range(11, 21))

#: Loss of a frequency hop, L_H (negotiation cost).
DEFAULT_LOSS_HOP = 50.0

#: Loss of a successful jam, L_J.
DEFAULT_LOSS_JAM = 100.0

#: Discount factor used to solve the MDP and train the DQN.
DEFAULT_DISCOUNT = 0.95

#: History length I: the DQN observes state/channel/power of the past I slots
#: (paper §III-C: "The input layer has 3 x I neurons").
DEFAULT_HISTORY_LENGTH = 5

#: Hidden layer width; two hidden layers of 48 give 10 960 parameters with
#: I = 5, C = 16, P_L = 10 — the paper reports "10664 float numbers with
#: 42.7KB memory" for its trained artifact.
DEFAULT_HIDDEN_WIDTH = 48

#: Number of time slots the paper averages each simulated experiment over.
DEFAULT_EVAL_SLOTS = 20_000

# ---------------------------------------------------------------------------
# Hardware timing model (paper §IV-D-1, Fig. 9)
# ---------------------------------------------------------------------------

#: Mean time to run the DQN forward pass on the hub, seconds ("takes 9ms").
TIME_DQN_INFERENCE_S = 9.0e-3

#: Mean data/ACK round-trip time, seconds ("wait 0.9ms to get the ACK").
TIME_ROUND_TRIP_S = 0.9e-3

#: Mean hub-side per-packet processing time, seconds ("takes 0.6ms").
TIME_DATA_PROCESSING_S = 0.6e-3

#: Mean per-node polling announcement time, seconds ("takes 13.1ms for each
#: node").
TIME_POLLING_PER_NODE_S = 13.1e-3

#: Per-slot FH negotiation overhead observed in Fig. 10(b) ("about 0.07s").
TIME_FH_NEGOTIATION_S = 0.07

# ---------------------------------------------------------------------------
# Link-budget defaults (used to reproduce Fig. 2(b))
# ---------------------------------------------------------------------------

#: Reference path loss at 1 m, dB (2.4 GHz free space is ~40 dB).
PATH_LOSS_REF_DB = 40.0

#: Log-distance path-loss exponent for the indoor lab scenario.
PATH_LOSS_EXPONENT = 2.7

#: Receiver noise figure in dB.
NOISE_FIGURE_DB = 10.0

#: DSSS processing gain of the 32-chip / 4-bit 802.15.4 spreading, dB.
#: 10*log10(32/4) ~ 9 dB; applies only to noise-like interference.
DSSS_PROCESSING_GAIN_DB = 9.0

# ---------------------------------------------------------------------------
# ZigBee packet format (paper Fig. 3)
# ---------------------------------------------------------------------------

#: Preamble: four zero octets.
ZIGBEE_PREAMBLE = bytes(4)

#: Start-of-frame delimiter.
ZIGBEE_SFD = 0x7A

#: Maximum PSDU length in octets.
ZIGBEE_MAX_PSDU = 127
