"""OpenMetrics text exposition for metrics snapshots and telemetry files.

Turns the labelled :class:`repro.obs.metrics.MetricsRegistry` snapshot
format (flat ``name{k=v,...}`` keys) into the OpenMetrics text format
that Prometheus-compatible scrapers ingest: dotted names become
underscored families, counters gain the ``_total`` suffix, histograms
expand into cumulative ``_bucket{le="..."}`` samples plus ``_sum`` and
``_count``, and label values are quoted/escaped per the spec.

:func:`export_telemetry` is the ``repro obs export`` backend: it reads a
``TELEM_*.jsonl`` file, writes the final metrics record as a ``.prom``
exposition (augmented with fleet-level gauges recomputed from the merged
field series), and writes the merged windowed series as one JSON line
per ``(series, window)`` for downstream plotting.

Zero-dependency on purpose — exporting never drags in numpy.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Mapping

from repro.errors import ReproError
from repro.obs.metrics import label_key, parse_metric_key
from repro.obs.telemetry import TelemetryDoc, load_telemetry, merge_frames

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitise a dotted registry name into an OpenMetrics family name."""
    name = _NAME_BAD.sub("_", str(name))
    if not name:
        raise ReproError("metric name is empty after sanitisation")
    if name[0].isdigit():
        name = "_" + name
    return name


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: Mapping[str, str], extra: str | None = None) -> str:
    parts = [f'{metric_name(k)}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _families(section: Mapping[str, object]) -> dict[str, list[tuple[str, object]]]:
    """Group flat ``name{labels}`` keys by sanitised family name."""
    families: dict[str, list[tuple[str, object]]] = {}
    for key in sorted(section):
        base, _ = parse_metric_key(key)
        families.setdefault(metric_name(base), []).append((key, section[key]))
    return families


def render_openmetrics(snapshot: Mapping[str, Mapping]) -> str:
    """Render a registry snapshot dict as OpenMetrics text (ends ``# EOF``)."""
    lines: list[str] = []

    for family, entries in sorted(_families(snapshot.get("counters", {})).items()):
        lines.append(f"# TYPE {family} counter")
        for key, value in entries:
            _, labels = parse_metric_key(key)
            lines.append(f"{family}_total{_labels_text(labels)} {_num(value)}")

    for family, entries in sorted(_families(snapshot.get("gauges", {})).items()):
        lines.append(f"# TYPE {family} gauge")
        for key, value in entries:
            _, labels = parse_metric_key(key)
            lines.append(f"{family}{_labels_text(labels)} {_num(value)}")

    for family, entries in sorted(_families(snapshot.get("histograms", {})).items()):
        lines.append(f"# TYPE {family} histogram")
        for key, doc in entries:
            _, labels = parse_metric_key(key)
            buckets = list(doc["buckets"])
            counts = list(doc["counts"])
            cum = 0
            for bound, count in zip(buckets, counts):
                cum += int(count)
                le = _labels_text(labels, extra=f'le="{_num(bound)}"')
                lines.append(f"{family}_bucket{le} {cum}")
            cum += int(counts[len(buckets)]) if len(counts) > len(buckets) else 0
            le = _labels_text(labels, extra='le="+Inf"')
            lines.append(f"{family}_bucket{le} {cum}")
            lines.append(f"{family}_sum{_labels_text(labels)} {_num(doc['sum'])}")
            lines.append(
                f"{family}_count{_labels_text(labels)} {_num(doc['count'])}"
            )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _fleet_gauges(merged: Mapping[str, list[dict]]) -> dict[str, float]:
    """Fleet-level gauges recomputed from the last merged field window."""
    windows = merged.get("field") or []
    if not windows:
        return {}
    last = windows[-1]
    labels = dict(last.get("labels", {}))
    gauges = {
        label_key("fleet.networks", labels): float(len(last["networks"])),
        label_key("fleet.jam_rate", labels): float(last["jam_rate"]),
        label_key("fleet.goodput", labels): float(last["goodput"]),
    }
    tokens = last.get("tokens")
    if tokens:
        gauges[label_key("fleet.duty_tokens", labels)] = sum(tokens) / len(tokens)
    return gauges


def export_telemetry(
    path: Path | str,
    *,
    out: Path | str | None = None,
    series_out: Path | str | None = None,
) -> tuple[Path, Path]:
    """Export a telemetry file: OpenMetrics ``.prom`` + merged series JSONL.

    Returns ``(prom_path, series_path)``. The exposition holds the final
    labelled registry snapshot (empty sections when the run was killed
    before :func:`repro.obs.telemetry.finish_run`) plus ``fleet_*``
    gauges recomputed from the merged field series; the series file holds
    one JSON object per merged ``(series, window)``, already
    deduplicated and shard-merged so it is bit-identical for any
    ``REPRO_SHARDS``/``REPRO_WORKERS`` decomposition.
    """
    doc: TelemetryDoc = load_telemetry(path)
    merged = merge_frames(doc)
    src = Path(path)

    snapshot = {
        section: dict((doc.metrics or {}).get(section, {}))
        for section in ("counters", "gauges", "histograms")
    }
    snapshot["gauges"].update(_fleet_gauges(merged))

    prom_path = Path(out) if out is not None else src.with_suffix(".prom")
    prom_path.parent.mkdir(parents=True, exist_ok=True)
    prom_path.write_text(render_openmetrics(snapshot), encoding="utf-8")

    series_path = (
        Path(series_out)
        if series_out is not None
        else src.with_name(src.stem + "_series.jsonl")
    )
    series_path.parent.mkdir(parents=True, exist_ok=True)
    with series_path.open("w", encoding="utf-8") as handle:
        for series in sorted(merged):
            for window in merged[series]:
                handle.write(json.dumps({"series": series, **window}) + "\n")
    return prom_path, series_path


__all__ = [
    "metric_name",
    "render_openmetrics",
    "export_telemetry",
]
