"""Where observability artifacts land on disk.

``RUN_*.jsonl`` traces, ``PROF_*.pstats`` profiles and ``BENCH_*.json``
timing snapshots all share one artifact directory: ``$REPRO_BENCH_DIR``
when set, else ``benchmarks/results/`` at the repo root. This module owns
that resolution so :mod:`repro.obs` never has to import the execution
layer (which imports :mod:`repro.obs` for its metrics hooks).
"""

from __future__ import annotations

import os
from pathlib import Path

#: Environment variable overriding where observability artifacts are written.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Default artifact directory (benchmarks/results at the repo root).
DEFAULT_ARTIFACT_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def artifact_dir() -> Path:
    """Directory RUN/PROF/BENCH artifacts are written to (env-overridable)."""
    override = os.environ.get(BENCH_DIR_ENV)
    if override is not None and override.strip():
        return Path(override)
    return DEFAULT_ARTIFACT_DIR


__all__ = ["BENCH_DIR_ENV", "DEFAULT_ARTIFACT_DIR", "artifact_dir"]
