"""Opt-in per-stage cProfile hook.

``REPRO_PROFILE=1`` makes every timed stage (anything under
:meth:`repro.exec.timing.TimingRegistry.stage`, including the CLI command
wrapper and each ``ParallelRunner`` dispatch) dump a
``PROF_<stage>.pstats`` file next to the BENCH artifacts. Inspect with::

    python -m pstats benchmarks/results/PROF_parameter_sweeps.pstats

Profiles do not nest — an inner stage inside an already-profiled outer
stage is skipped, because :mod:`cProfile` cannot run two profilers at
once. The hook costs one env lookup when off.
"""

from __future__ import annotations

import cProfile
import os
import re
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs.paths import artifact_dir

#: Environment variable enabling the profile hook.
PROFILE_ENV = "REPRO_PROFILE"

_FALSY = {"", "0", "false", "no", "off"}

_ACTIVE = False


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` is set to a truthy value."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() not in _FALSY


def _safe_name(stage: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", stage)


@contextmanager
def maybe_profile(
    stage: str, *, directory: Path | str | None = None
) -> Iterator[cProfile.Profile | None]:
    """Profile the block into ``PROF_<stage>.pstats`` when enabled."""
    global _ACTIVE
    if _ACTIVE or not profiling_enabled():
        yield None
        return
    profile = cProfile.Profile()
    _ACTIVE = True
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        _ACTIVE = False
        out_dir = Path(directory) if directory is not None else artifact_dir()
        out_dir.mkdir(parents=True, exist_ok=True)
        profile.dump_stats(out_dir / f"PROF_{_safe_name(stage)}.pstats")


__all__ = ["PROFILE_ENV", "profiling_enabled", "maybe_profile"]
