"""Live TTY dashboard over a ``TELEM_*.jsonl`` telemetry stream.

``repro obs watch TELEM_run.jsonl`` re-reads the file every refresh and
renders the merged fleet view as plain text: unicode sparklines of the
per-window jam rate / goodput, the negotiation-latency quantiles from
the merged bucket counts, the hottest (most-jammed) networks, and
per-adversary hit rates. Because the renderer consumes the *merged*
series (:func:`repro.obs.telemetry.merge_frames`), the dashboard shows
the same numbers regardless of how many shards or pool workers produced
the file.

Pure python on purpose (no numpy): the dashboard must be able to watch a
grid run from a second terminal without paying the engine's import bill.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import TextIO

from repro.errors import ReproError
from repro.obs.metrics import parse_metric_key, quantile_from_buckets
from repro.obs.telemetry import (
    LATENCY_BUCKETS,
    TelemetryDoc,
    load_telemetry,
    merge_frames,
)

#: Eight-level block characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    vals = [float(v) for v in values][-int(width):]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return SPARK_CHARS[0] * len(vals)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((v - lo) / (hi - lo) * top + 0.5))] for v in vals
    )


def _fmt(value: float) -> str:
    return f"{float(value):.4g}"


def _series_line(name: str, values: list[float], width: int) -> str:
    spark = sparkline(values, width)
    last = values[-1]
    return (
        f"  {name:<12} {spark:<{width}} last={_fmt(last)} "
        f"min={_fmt(min(values))} max={_fmt(max(values))}"
    )


def _render_field(windows: list[dict], lines: list[str], *, top: int, width: int) -> None:
    last = windows[-1]
    networks = last["networks"]
    lines.append(
        f"field fleet  ({len(networks)} networks, {len(windows)} windows, "
        f"{last['slots']} slots/window)"
    )
    lines.append(_series_line("jam rate", [w["jam_rate"] for w in windows], width))
    lines.append(_series_line("goodput", [w["goodput"] for w in windows], width))
    if last.get("tokens"):
        per_window = [
            sum(w["tokens"]) / len(w["tokens"]) for w in windows if w.get("tokens")
        ]
        lines.append(_series_line("duty tokens", per_window, width))

    lat_counts = [0] * (len(LATENCY_BUCKETS) + 1)
    lat_min, lat_max = None, None
    for w in windows:
        for i, count in enumerate(w.get("lat_counts", ())):
            lat_counts[i] += int(count)
        if w.get("lat_min") is not None:
            lat_min = w["lat_min"] if lat_min is None else min(lat_min, w["lat_min"])
        if w.get("lat_max") is not None:
            lat_max = w["lat_max"] if lat_max is None else max(lat_max, w["lat_max"])
    if sum(lat_counts) and lat_min is not None:
        quantiles = {
            q: quantile_from_buckets(
                LATENCY_BUCKETS, lat_counts, q, minimum=lat_min, maximum=lat_max
            )
            for q in (0.5, 0.9, 0.99)
        }
        lines.append(
            "  negotiation  "
            + "  ".join(f"p{int(q * 100)}={_fmt(v)}s" for q, v in quantiles.items())
            + f"  max={_fmt(lat_max)}s"
        )

    jam_totals: dict[int, int] = {}
    slot_totals = 0
    for w in windows:
        slot_totals += int(w["slots"])
        for net, jammed in zip(w["networks"], w["jammed"]):
            jam_totals[int(net)] = jam_totals.get(int(net), 0) + int(jammed)
    hottest = sorted(jam_totals.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    if hottest and slot_totals:
        described = "  ".join(
            f"#{net}:{count / slot_totals:.0%}" for net, count in hottest
        )
        lines.append(f"  hottest networks  {described}")

    by_adversary: dict[str, list[int]] = {}
    for w in windows:
        adversary = (w.get("labels") or {}).get("adversary", "none")
        row = by_adversary.setdefault(adversary, [0, 0])
        row[0] += sum(int(j) for j in w["jammed"])
        row[1] += sum(int(a) for a in w["attempts"])
    hits = [
        f"{adversary}:{jam / att:.0%} ({jam}/{att})"
        for adversary, (jam, att) in sorted(by_adversary.items())
        if att
    ]
    if hits:
        lines.append("  adversary hit rate  " + "  ".join(hits))


def _render_generic(
    series: str, windows: list[dict], lines: list[str], *, width: int
) -> None:
    last = windows[-1]
    lines.append(
        f"{series}  ({len(windows)} windows, {last.get('ticks', 1)} ticks/window)"
    )
    keys = sorted(last.get("values") or {})
    for key in keys:
        per_tick = [
            w["values"].get(key, 0.0) / max(1, w.get("ticks", 1))
            for w in windows
            if key in (w.get("values") or {})
        ]
        if per_tick:
            lines.append(_series_line(key, per_tick, width))


def _render_adversary_counters(doc: TelemetryDoc, lines: list[str], *, top: int) -> None:
    """Aggregate final jam.*/defense.* labelled counters over networks."""
    counters = (doc.metrics or {}).get("counters", {})
    rollup: dict[tuple[str, str], float] = {}
    for key, value in counters.items():
        name, labels = parse_metric_key(key)
        if not name.startswith(("jam.", "defense.")):
            continue
        who = labels.get("adversary") or labels.get("scheme") or "?"
        rollup[(name, who)] = rollup.get((name, who), 0.0) + float(value)
    if not rollup:
        return
    lines.append("")
    lines.append(f"adversary/defence counters (fleet totals, top {top})")
    ranked = sorted(rollup.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    for (name, who), value in ranked:
        lines.append(f"  {name:<28} {who:<12} {value:>12g}")


def render_dashboard(
    path: Path | str, *, top: int = 5, width: int = 60
) -> str:
    """One full dashboard frame for a telemetry file, as plain text."""
    doc = load_telemetry(path)
    merged = merge_frames(doc)
    lines: list[str] = []

    header = doc.header or {}
    lines.append(f"telemetry {doc.path}")
    described = "  ".join(
        f"{k}={v}"
        for k, v in (
            ("run", header.get("run")),
            ("time", header.get("time")),
            ("interval", header.get("interval")),
            ("frames", len(doc.frames)),
        )
        if v is not None
    )
    if described:
        lines.append(described)
    if doc.malformed:
        lines.append(f"warning: skipped {doc.malformed} malformed line(s)")
    lines.append("")

    if not merged:
        lines.append("(no frames yet)")
    for series in sorted(merged):
        windows = merged[series]
        if not windows:
            continue
        if series == "field":
            _render_field(windows, lines, top=top, width=width)
        else:
            _render_generic(series, windows, lines, width=width)
        lines.append("")
    while lines and not lines[-1]:
        lines.pop()

    _render_adversary_counters(doc, lines, top=top)
    return "\n".join(lines)


def watch(
    path: Path | str,
    *,
    interval: float = 2.0,
    iterations: int | None = None,
    top: int = 5,
    width: int = 60,
    stream: TextIO | None = None,
) -> int:
    """Render the dashboard every ``interval`` seconds until interrupted.

    ``iterations=1`` (the CLI's ``--once``) renders a single frame with
    no screen-clear escapes — the transcript-friendly mode tests and
    docs use. Returns a process exit code.
    """
    out = stream if stream is not None else sys.stdout
    clearing = iterations != 1
    rendered = 0
    while True:
        try:
            frame = render_dashboard(path, top=top, width=width)
        except ReproError as exc:
            frame = f"waiting for telemetry: {exc}"
        if clearing:
            out.write("\x1b[2J\x1b[H")
        out.write(frame + "\n")
        out.flush()
        rendered += 1
        if iterations is not None and rendered >= iterations:
            return 0
        try:
            time.sleep(max(0.0, float(interval)))
        except KeyboardInterrupt:
            return 0


__all__ = ["SPARK_CHARS", "sparkline", "render_dashboard", "watch"]
