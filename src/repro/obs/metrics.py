"""Named counters, gauges, and fixed-bucket histograms.

The registry is the always-on half of the observability layer: increments
are plain dict lookups plus float adds, cheap enough for per-frame hot
paths, and the whole registry snapshots into the ``metrics`` section of
every ``BENCH_*.json`` artifact (see
:meth:`repro.exec.timing.TimingRegistry.write_bench`) and into the final
``metrics`` record of a ``RUN_*.jsonl`` trace.

Conventions: metric names are dotted lowercase (``phy.crc_failures``,
``sim.cca_backoffs``, ``dqn.td_error``, ``exec.retries``). Counters only
go up within a run; gauges hold the last written value; histograms bin
observations into fixed upper-bound buckets so quantiles can be estimated
after the fact without storing samples.

Metrics optionally carry a **label set** (``labels={"adversary":
"reactive", "scheme": "deception"}``): each distinct label combination is
its own time series, stored under the serialised key
``name{k=v,...}`` with label keys sorted — so snapshots stay
deterministic, cross-process merging needs no special casing, and
exporters (:mod:`repro.obs.openmetrics`) can parse the labels back out
with :func:`parse_metric_key`.

Pool workers accumulate into their own process-local registry; when
tracing or telemetry is active the :class:`repro.exec.ParallelRunner`
envelope carries each worker's snapshot back and merges it here (see
:func:`MetricsRegistry.merge`).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds — a coarse log scale wide enough
#: for both sub-millisecond timings and triple-digit losses. Observations
#: above the last bound land in the implicit overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
)

#: Linear buckets for ratio-valued observations (PER, occupancy, ...).
RATIO_BUCKETS: tuple[float, ...] = tuple(round(i * 0.05, 2) for i in range(1, 21))

#: Characters that would make a serialised ``name{k=v}`` key ambiguous.
_KEY_FORBIDDEN = frozenset('{}",=')


def _check_token(token: str, what: str) -> str:
    token = str(token)
    if not token or any(c in _KEY_FORBIDDEN for c in token):
        raise ConfigurationError(
            f"{what} must be non-empty and free of {{}}\"=, characters, "
            f"got {token!r}"
        )
    return token


def label_key(name: str, labels: Mapping[str, object] | None = None) -> str:
    """Serialise ``(name, labels)`` into the registry's flat key.

    Labels sort by key, so any two call sites naming the same label set
    produce the same key — snapshots and merges stay deterministic. With
    no labels the key is the bare name (backwards compatible).
    """
    name = _check_token(name, "metric name")
    if not labels:
        return name
    parts = ",".join(
        f"{_check_token(k, 'label key')}={_check_token(v, 'label value')}"
        for k, v in sorted(labels.items())
    )
    return f"{name}{{{parts}}}"


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`label_key`: ``'a{x=1,y=2}'`` -> ``('a', {'x': '1', ...})``.

    Bare names parse to an empty label dict. Raises
    :class:`~repro.errors.ConfigurationError` on malformed keys.
    """
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    if not name or not rest.endswith("}"):
        raise ConfigurationError(f"malformed metric key {key!r}")
    labels: dict[str, str] = {}
    body = rest[:-1]
    if body:
        for pair in body.split(","):
            k, sep, v = pair.partition("=")
            if not sep or not k or not v:
                raise ConfigurationError(f"malformed metric key {key!r}")
            labels[k] = v
    return name, labels


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (e.g. the current exploration rate)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def quantile_from_buckets(
    buckets: tuple[float, ...],
    counts: list[int],
    q: float,
    *,
    minimum: float,
    maximum: float,
) -> float:
    """Estimate the ``q``-quantile from fixed-bucket counts.

    The boundary interpolation contract, pinned by tests:

    * an **empty** histogram (all counts zero) returns ``NaN`` for every
      ``q`` — there is no observation to report;
    * the winning bucket is the first non-empty bucket whose cumulative
      count reaches ``q * total``; the estimate interpolates linearly
      between that bucket's bounds (the lower bound of bucket 0 is the
      observed minimum);
    * every interpolated estimate is **clamped into the observed
      ``[minimum, maximum]`` range** (when those are finite), so a
      single-bucket histogram or a ``q`` of 0/1 can never report a value
      outside what was actually observed;
    * observations above the last bound live in the implicit overflow
      bucket, which reports the observed maximum.

    The trailing ``return maximum`` is defensive only: with a non-zero
    total the winning-bucket scan always terminates at the last non-empty
    bucket (its cumulative count equals ``total >= q * total``).
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    target = q * total
    cum = 0.0
    for i, count in enumerate(counts):
        cum += count
        if cum >= target and count:
            if i >= len(buckets):  # overflow bucket
                return maximum
            lo = buckets[i - 1] if i > 0 else min(minimum, buckets[i])
            hi = buckets[i]
            frac = (target - (cum - count)) / count
            value = lo + (hi - lo) * max(0.0, min(1.0, frac))
            if math.isfinite(minimum):
                value = max(value, minimum)
            if math.isfinite(maximum):
                value = min(value, maximum)
            return value
    return maximum


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def __post_init__(self) -> None:
        if not self.buckets or list(self.buckets) != sorted(self.buckets):
            raise ConfigurationError("histogram buckets must be sorted and non-empty")
        if not self.counts:
            # One slot per bound plus the overflow bucket.
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def observe_many(self, values) -> None:
        """Fold a whole array of samples in at once.

        One vectorised ``searchsorted`` instead of a Python-level
        ``observe`` per sample — the serving layer records a latency per
        decision, so hot paths fold each batch in with a single call.
        Bucket placement matches :meth:`observe` exactly
        (``bisect_left`` == ``searchsorted(side="left")``).
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64).reshape(-1)
        values = values[~np.isnan(values)]
        if values.size == 0:
            return
        slots = np.searchsorted(self.buckets, values, side="left")
        for slot, count in zip(*np.unique(slots, return_counts=True)):
            self.counts[int(slot)] += int(count)
        self.count += int(values.size)
        self.total += float(values.sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        return quantile_from_buckets(
            self.buckets, self.counts, q, minimum=self.minimum, maximum=self.maximum
        )

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class MetricsRegistry:
    """Process-local registry of named counters, gauges, and histograms.

    Every accessor takes an optional ``labels`` mapping; each distinct
    label combination is an independent metric stored under the
    :func:`label_key` serialisation, so a labelled registry is just a
    registry whose keys happen to contain ``{k=v,...}`` suffixes —
    snapshots, merges, and BENCH artifacts need no schema change.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------------------

    def counter(
        self, name: str, *, labels: Mapping[str, object] | None = None
    ) -> Counter:
        key = label_key(name, labels) if labels else name
        metric = self.counters.get(key)
        if metric is None:
            metric = self.counters[key] = Counter()
        return metric

    def gauge(
        self, name: str, *, labels: Mapping[str, object] | None = None
    ) -> Gauge:
        key = label_key(name, labels) if labels else name
        metric = self.gauges.get(key)
        if metric is None:
            metric = self.gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] | None = None,
        labels: Mapping[str, object] | None = None,
    ) -> Histogram:
        key = label_key(name, labels) if labels else name
        metric = self.histograms.get(key)
        if metric is None:
            metric = self.histograms[key] = Histogram(
                buckets=buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return metric

    # -- recording shorthands --------------------------------------------------------

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        *,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self.counter(name, labels=labels).inc(amount)

    def set(
        self,
        name: str,
        value: float,
        *,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self.gauge(name, labels=labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: tuple[float, ...] | None = None,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self.histogram(name, buckets=buckets, labels=labels).observe(value)

    def observe_many(
        self,
        name: str,
        values,
        *,
        buckets: tuple[float, ...] | None = None,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        self.histogram(name, buckets=buckets, labels=labels).observe_many(
            values
        )

    # -- snapshots -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {k: v.as_dict() for k, v in sorted(self.histograms.items())},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters add, gauges take the incoming value, histograms add
        bucket counts (bucket bounds must match — they do, because both
        sides run the same instrumentation code).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set(name, value)
        for name, doc in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, buckets=tuple(doc["buckets"]))
            if list(hist.buckets) != list(doc["buckets"]):
                raise ConfigurationError(
                    f"histogram {name!r} bucket mismatch during merge"
                )
            for i, count in enumerate(doc["counts"]):
                hist.counts[i] += count
            hist.count += doc["count"]
            hist.total += doc["sum"]
            if doc["min"] is not None:
                hist.minimum = min(hist.minimum, doc["min"])
            if doc["max"] is not None:
                hist.maximum = max(hist.maximum, doc["max"])

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


#: Process-global registry the library's instrumented paths record into.
METRICS = MetricsRegistry()


def drain_labelled_counters(
    obj: object,
    prefix: str,
    labels: Mapping[str, object],
    *,
    registry: MetricsRegistry | None = None,
) -> None:
    """Flush an object's local instrumentation counters into the registry.

    Duck-typed: ``obj`` exposes ``drain_counters() -> dict[str, float]``
    (return-and-clear), the way the jammer suite accumulates adversary
    events without touching the global registry from per-slot hot paths.
    Each drained ``key`` lands as ``<prefix>.<key>{labels...}``. Objects
    without the hook (or ``None``) are ignored, so call sites don't need
    isinstance checks.
    """
    drain = getattr(obj, "drain_counters", None)
    if drain is None:
        return
    registry = registry if registry is not None else METRICS
    for key, value in sorted(drain().items()):
        if value:
            registry.inc(f"{prefix}.{key}", value, labels=labels)


__all__ = [
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "drain_labelled_counters",
    "label_key",
    "parse_metric_key",
    "quantile_from_buckets",
]
