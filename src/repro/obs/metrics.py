"""Named counters, gauges, and fixed-bucket histograms.

The registry is the always-on half of the observability layer: increments
are plain dict lookups plus float adds, cheap enough for per-frame hot
paths, and the whole registry snapshots into the ``metrics`` section of
every ``BENCH_*.json`` artifact (see
:meth:`repro.exec.timing.TimingRegistry.write_bench`) and into the final
``metrics`` record of a ``RUN_*.jsonl`` trace.

Conventions: metric names are dotted lowercase (``phy.crc_failures``,
``sim.cca_backoffs``, ``dqn.td_error``, ``exec.retries``). Counters only
go up within a run; gauges hold the last written value; histograms bin
observations into fixed upper-bound buckets so quantiles can be estimated
after the fact without storing samples.

Pool workers accumulate into their own process-local registry; when
tracing is active the :class:`repro.exec.ParallelRunner` envelope carries
each worker's snapshot back and merges it here (see
:func:`MetricsRegistry.merge`).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds — a coarse log scale wide enough
#: for both sub-millisecond timings and triple-digit losses. Observations
#: above the last bound land in the implicit overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
)

#: Linear buckets for ratio-valued observations (PER, occupancy, ...).
RATIO_BUCKETS: tuple[float, ...] = tuple(round(i * 0.05, 2) for i in range(1, 21))


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (e.g. the current exploration rate)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def quantile_from_buckets(
    buckets: tuple[float, ...],
    counts: list[int],
    q: float,
    *,
    minimum: float,
    maximum: float,
) -> float:
    """Estimate the ``q``-quantile from fixed-bucket counts.

    Linear interpolation inside the winning bucket; the overflow bucket
    (observations above the last bound) reports the observed maximum.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    target = q * total
    cum = 0.0
    for i, count in enumerate(counts):
        cum += count
        if cum >= target and count:
            if i >= len(buckets):  # overflow bucket
                return maximum
            lo = buckets[i - 1] if i > 0 else min(minimum, buckets[i])
            hi = buckets[i]
            frac = (target - (cum - count)) / count
            return lo + (hi - lo) * max(0.0, min(1.0, frac))
    return maximum


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def __post_init__(self) -> None:
        if not self.buckets or list(self.buckets) != sorted(self.buckets):
            raise ConfigurationError("histogram buckets must be sorted and non-empty")
        if not self.counts:
            # One slot per bound plus the overflow bucket.
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        return quantile_from_buckets(
            self.buckets, self.counts, q, minimum=self.minimum, maximum=self.maximum
        )

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class MetricsRegistry:
    """Process-local registry of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(
                buckets=buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return metric

    # -- recording shorthands --------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, *, buckets: tuple[float, ...] | None = None
    ) -> None:
        self.histogram(name, buckets=buckets).observe(value)

    # -- snapshots -------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {k: v.as_dict() for k, v in sorted(self.histograms.items())},
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters add, gauges take the incoming value, histograms add
        bucket counts (bucket bounds must match — they do, because both
        sides run the same instrumentation code).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set(name, value)
        for name, doc in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, buckets=tuple(doc["buckets"]))
            if list(hist.buckets) != list(doc["buckets"]):
                raise ConfigurationError(
                    f"histogram {name!r} bucket mismatch during merge"
                )
            for i, count in enumerate(doc["counts"]):
                hist.counts[i] += count
            hist.count += doc["count"]
            hist.total += doc["sum"]
            if doc["min"] is not None:
                hist.minimum = min(hist.minimum, doc["min"])
            if doc["max"] is not None:
                hist.maximum = max(hist.maximum, doc["max"])

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


#: Process-global registry the library's instrumented paths record into.
METRICS = MetricsRegistry()


__all__ = [
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "quantile_from_buckets",
]
