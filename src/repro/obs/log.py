"""Structured logging for CLI and benchmark narration.

A thin ``key=value`` layer over stdlib :mod:`logging`: status lines go to
stderr (tables and figures keep stdout to themselves), the global
``--quiet``/``-q`` CLI flag drops everything below WARNING, and — when
tracing is active — every log line is mirrored into the trace as a
``log`` event, so the RUN artifact carries the narration too.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

from repro.obs import trace

#: Root logger name every :func:`get_logger` child hangs under.
ROOT_LOGGER = "repro"


def configure(
    *,
    quiet: bool = False,
    level: int | None = None,
    stream: TextIO | None = None,
) -> logging.Logger:
    """(Re)install the ``repro`` handler; idempotent, returns the root logger.

    ``quiet`` caps output at WARNING; otherwise ``level`` (default INFO)
    applies. ``stream`` defaults to stderr so stdout stays machine-readable.
    """
    root = logging.getLogger(ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s", datefmt="%H:%M:%S"
        )
    )
    root.handlers[:] = [handler]
    root.propagate = False
    root.setLevel(logging.WARNING if quiet else (level or logging.INFO))
    return root


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return repr(text) if " " in text else text


class StructuredLogger:
    """``logger.info("msg", key=value, ...)`` -> ``msg key=value ...``."""

    def __init__(self, name: str = "") -> None:
        full = f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER
        self._logger = logging.getLogger(full)

    @property
    def stdlib(self) -> logging.Logger:
        return self._logger

    def _log(self, level: int, message: str, fields: dict[str, Any]) -> None:
        if fields:
            suffix = " ".join(f"{k}={_format_value(v)}" for k, v in fields.items())
            message = f"{message} {suffix}"
        self._logger.log(level, message)
        if trace.enabled():
            trace.event(
                "log",
                level=logging.getLevelName(level),
                logger=self._logger.name,
                message=message,
            )

    def debug(self, message: str, **fields: Any) -> None:
        self._log(logging.DEBUG, message, fields)

    def info(self, message: str, **fields: Any) -> None:
        self._log(logging.INFO, message, fields)

    def warning(self, message: str, **fields: Any) -> None:
        self._log(logging.WARNING, message, fields)

    def error(self, message: str, **fields: Any) -> None:
        self._log(logging.ERROR, message, fields)


def get_logger(name: str = "") -> StructuredLogger:
    """Structured logger under the ``repro`` hierarchy."""
    return StructuredLogger(name)


__all__ = ["ROOT_LOGGER", "configure", "get_logger", "StructuredLogger"]
