"""Observability: spans, events, metrics, telemetry, logs, profiles.

Four pillars, all zero-dependency and off-by-default (metrics excepted):

* :mod:`repro.obs.trace` — hierarchical spans and structured events,
  streamed to a ``RUN_<name>.jsonl`` artifact when ``REPRO_TRACE`` is
  set (sampled by ``REPRO_TRACE_SAMPLE``), with cross-process
  propagation through :class:`repro.exec.ParallelRunner` pool workers.
* :mod:`repro.obs.metrics` — an always-on registry of named counters,
  gauges, and fixed-bucket histograms — optionally **labelled**
  (``labels={"adversary": ..., "scheme": ...}``) — snapshotted into
  every ``BENCH_*.json`` and into the trace's final ``metrics`` record.
* :mod:`repro.obs.telemetry` — windowed time series (``REPRO_TELEM``):
  per-slot fleet frames from the field engines and
  :class:`~repro.obs.telemetry.FlightRecorder` episode series from the
  training loops, streamed to ``TELEM_<name>.jsonl`` and merged across
  shard workers bit-identically (see
  :func:`~repro.obs.telemetry.merge_frames`).
* :mod:`repro.obs.log` — structured ``key=value`` logging over stdlib
  :mod:`logging` (stderr; the CLI's ``--quiet`` caps it at WARNING).

Plus :mod:`repro.obs.profile` (``REPRO_PROFILE=1`` dumps per-stage
``PROF_<stage>.pstats``) and the ``repro obs`` readers —
:mod:`repro.obs.summary` (trace renderer), :mod:`repro.obs.openmetrics`
(``repro obs export``), :mod:`repro.obs.watch` (``repro obs watch``) —
which are intentionally not re-exported here to keep library imports
light.
"""

from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    drain_labelled_counters,
    label_key,
    parse_metric_key,
)
from repro.obs.paths import artifact_dir
from repro.obs.profile import PROFILE_ENV, maybe_profile, profiling_enabled
from repro.obs.telemetry import (
    TELEM_ENV,
    TELEM_INTERVAL_ENV,
    TELEM_WINDOW_ENV,
    FlightRecorder,
    load_telemetry,
    merge_frames,
)
from repro.obs.trace import (
    SAMPLE_ENV,
    TRACE_ENV,
    enabled,
    event,
    finish_run,
    span,
    start_run,
)

__all__ = [
    "configure",
    "get_logger",
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "drain_labelled_counters",
    "label_key",
    "parse_metric_key",
    "artifact_dir",
    "PROFILE_ENV",
    "maybe_profile",
    "profiling_enabled",
    "TELEM_ENV",
    "TELEM_INTERVAL_ENV",
    "TELEM_WINDOW_ENV",
    "FlightRecorder",
    "load_telemetry",
    "merge_frames",
    "TRACE_ENV",
    "SAMPLE_ENV",
    "enabled",
    "event",
    "span",
    "start_run",
    "finish_run",
]
