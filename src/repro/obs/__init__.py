"""Observability: spans, events, metrics, structured logs, profiles.

Three pillars, all zero-dependency and off-by-default:

* :mod:`repro.obs.trace` — hierarchical spans and structured events,
  streamed to a ``RUN_<name>.jsonl`` artifact when ``REPRO_TRACE`` is
  set (sampled by ``REPRO_TRACE_SAMPLE``), with cross-process
  propagation through :class:`repro.exec.ParallelRunner` pool workers.
* :mod:`repro.obs.metrics` — an always-on registry of named counters,
  gauges, and fixed-bucket histograms, snapshotted into every
  ``BENCH_*.json`` and into the trace's final ``metrics`` record.
* :mod:`repro.obs.log` — structured ``key=value`` logging over stdlib
  :mod:`logging` (stderr; the CLI's ``--quiet`` caps it at WARNING).

Plus :mod:`repro.obs.profile` (``REPRO_PROFILE=1`` dumps per-stage
``PROF_<stage>.pstats``) and :mod:`repro.obs.summary` (the ``repro obs``
trace renderer — import it directly; it is intentionally not re-exported
here to keep library imports light).
"""

from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.paths import artifact_dir
from repro.obs.profile import PROFILE_ENV, maybe_profile, profiling_enabled
from repro.obs.trace import (
    SAMPLE_ENV,
    TRACE_ENV,
    enabled,
    event,
    finish_run,
    span,
    start_run,
)

__all__ = [
    "configure",
    "get_logger",
    "DEFAULT_BUCKETS",
    "RATIO_BUCKETS",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "artifact_dir",
    "PROFILE_ENV",
    "maybe_profile",
    "profiling_enabled",
    "TRACE_ENV",
    "SAMPLE_ENV",
    "enabled",
    "event",
    "span",
    "start_run",
    "finish_run",
]
