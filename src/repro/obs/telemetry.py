"""Windowed time-series telemetry, streamed as ``TELEM_*.jsonl``.

The trace layer (:mod:`repro.obs.trace`) answers "what happened, in what
order"; the metrics registry answers "how much, in total". This module is
the third leg: **how did it evolve** — bounded, windowed time series of
the quantities the paper plots per slot/episode (jam rate, goodput,
negotiation latency, duty-cycle tokens), cheap enough to leave on during
multi-thousand-network grid runs and mergeable across shard workers
without breaking bit-identity.

Telemetry is **off by default** and costs one attribute check when off.
``REPRO_TELEM`` switches it on with the same target grammar as
``REPRO_TRACE``:

* ``REPRO_TELEM=smoke`` writes ``TELEM_smoke.jsonl`` next to the BENCH
  artifacts (``$REPRO_BENCH_DIR``, default ``benchmarks/results/``);
* ``REPRO_TELEM=/tmp/t.jsonl`` (a path separator or ``.jsonl`` suffix)
  writes to that exact path;
* ``REPRO_TELEM=1`` uses the default name ``run``.

``REPRO_TELEM_INTERVAL`` sets the window length in slots/episodes
(default 20); ``REPRO_TELEM_WINDOW`` bounds the in-memory ring of a
:class:`FlightRecorder` (default 256 frames).

Record types, one JSON object per line:

``header``
    first line: run name, UTC time, interval, the ``REPRO_*`` env.
``frame``
    one completed window. Generic frames (training loops) carry a
    ``values`` dict of sums over the window's ticks. Field frames
    (``series == "field"``) carry **per-network integer arrays** plus
    per-network float sums — see :func:`field_frame` — so merging across
    shards is pure placement and integer addition, which is
    order-independent: the merged series is bit-identical for any
    ``REPRO_SHARDS``/``REPRO_WORKERS`` setting even though the raw line
    order in the file differs.
``metrics``
    the final labelled :data:`repro.obs.metrics.METRICS` snapshot,
    written by :func:`finish_run`.

Cross-process: the :class:`repro.exec.ParallelRunner` envelope carries a
``telem_interval`` next to the trace context; the pool trampoline calls
:func:`activate_worker`, frames buffer in the worker, return inside the
:class:`~repro.obs.trace.TracedResult`, and the parent appends them via
:func:`absorb`. A retried task's failed attempt never returns an
envelope, and :func:`merge_frames` additionally dedupes on
``(series, window, shard)`` last-wins, so fault-policy retries cannot
double-count a window. Telemetry never touches a simulation random
stream: engine results are bit-identical with telemetry on or off.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Mapping, TextIO

from repro.errors import ConfigurationError, ReproError
from repro.obs.metrics import DEFAULT_BUCKETS, METRICS
from repro.obs.paths import artifact_dir

#: Environment variable enabling telemetry (run name, path, or truthy flag).
TELEM_ENV = "REPRO_TELEM"

#: Environment variable setting the window length in slots/episodes.
TELEM_INTERVAL_ENV = "REPRO_TELEM_INTERVAL"

#: Environment variable bounding the FlightRecorder in-memory ring.
TELEM_WINDOW_ENV = "REPRO_TELEM_WINDOW"

#: Default window length (slots or episodes per frame).
DEFAULT_INTERVAL = 20

#: Default ring capacity (frames kept in memory per recorder).
DEFAULT_RING = 256

#: Bucket bounds of the per-window negotiation-latency histogram carried
#: by field frames. Fixed globally so shard-side bucket counts (integers)
#: merge by plain addition.
LATENCY_BUCKETS: tuple[float, ...] = DEFAULT_BUCKETS

_TRUTHY = {"1", "true", "yes", "on"}


def telem_target() -> Path | None:
    """Telemetry file selected by ``REPRO_TELEM``, or ``None`` when off."""
    value = os.environ.get(TELEM_ENV, "").strip()
    if not value:
        return None
    if value.lower() in _TRUTHY:
        return artifact_dir() / "TELEM_run.jsonl"
    if os.sep in value or value.endswith(".jsonl"):
        return Path(value)
    return artifact_dir() / f"TELEM_{value}.jsonl"


def _positive_int_env(env: str, default: int) -> int:
    text = os.environ.get(env, "").strip()
    if not text:
        return default
    try:
        value = int(text)
    except ValueError:
        raise ConfigurationError(
            f"{env} must be a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(f"{env} must be >= 1, got {value}")
    return value


def telem_interval() -> int:
    """Window length from ``REPRO_TELEM_INTERVAL`` (default 20)."""
    return _positive_int_env(TELEM_INTERVAL_ENV, DEFAULT_INTERVAL)


def telem_window() -> int:
    """Ring capacity from ``REPRO_TELEM_WINDOW`` (default 256)."""
    return _positive_int_env(TELEM_WINDOW_ENV, DEFAULT_RING)


class _TelemState:
    """Per-process telemetry state (file sink in the parent, buffer in workers)."""

    __slots__ = ("enabled", "pid", "interval", "path", "file", "buffer")

    def __init__(
        self,
        *,
        enabled: bool,
        pid: int,
        interval: int = DEFAULT_INTERVAL,
        path: Path | None = None,
        buffer: list[dict] | None = None,
    ) -> None:
        self.enabled = enabled
        self.pid = pid
        self.interval = interval
        self.path = path
        self.file: TextIO | None = None
        self.buffer = buffer


_STATE: _TelemState | None = None


def _fresh_state() -> _TelemState:
    target = telem_target()
    if target is None:
        return _TelemState(enabled=False, pid=os.getpid())
    return _TelemState(
        enabled=True, pid=os.getpid(), interval=telem_interval(), path=target
    )


def _state() -> _TelemState:
    global _STATE
    if _STATE is None:
        _STATE = _fresh_state()
    elif _STATE.pid != os.getpid():
        # A forked pool worker inherited the parent's state. Frames stay
        # off until the runner's trampoline calls activate_worker().
        _STATE = _TelemState(enabled=False, pid=os.getpid())
    return _STATE


def enabled() -> bool:
    """True when this process is currently recording telemetry frames."""
    return _state().enabled


def interval() -> int:
    """The active window length (parent: env; worker: shipped context)."""
    return _state().interval


def _header_record(state: _TelemState) -> dict:
    name = state.path.stem if state.path is not None else "run"
    if name.startswith("TELEM_"):
        name = name[6:]
    return {
        "type": "header",
        "run": name,
        "time": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "interval": state.interval,
        "latency_buckets": list(LATENCY_BUCKETS),
        "env": {
            k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")
        },
    }


def _open_sink(state: _TelemState) -> None:
    assert state.path is not None
    state.path.parent.mkdir(parents=True, exist_ok=True)
    state.file = state.path.open("a", encoding="utf-8")
    state.file.write(json.dumps(_header_record(state)) + "\n")
    state.file.flush()


def record_frame(frame: Mapping[str, Any]) -> None:
    """Append one frame (parent: to the file; worker: to the task buffer)."""
    state = _state()
    if not state.enabled:
        return
    if state.buffer is not None:
        state.buffer.append(dict(frame))
        return
    if state.file is None:
        _open_sink(state)
    state.file.write(json.dumps(dict(frame)) + "\n")
    state.file.flush()


# -- run lifecycle -------------------------------------------------------------------


def finish_run() -> Path | None:
    """Write the final labelled metrics snapshot and close the file.

    Returns the telemetry path when a file was written, else ``None``.
    Telemetry stays disabled afterwards (tests re-arm with :func:`reset`).
    """
    global _STATE
    state = _state()
    path: Path | None = None
    if state.enabled and state.file is not None:
        record_frame(
            {
                "type": "metrics",
                "t": round(time.time(), 6),
                **METRICS.snapshot(),
            }
        )
        state.file.close()
        state.file = None
        path = state.path
    _STATE = _TelemState(enabled=False, pid=os.getpid())
    return path


def disable() -> None:
    """Turn telemetry off for this process regardless of ``REPRO_TELEM``."""
    global _STATE
    if _STATE is not None and _STATE.file is not None:
        _STATE.file.close()
    _STATE = _TelemState(enabled=False, pid=os.getpid())


def reset() -> None:
    """Drop telemetry state without writing (tests re-read the env lazily)."""
    global _STATE
    if _STATE is not None and _STATE.file is not None:
        _STATE.file.close()
    _STATE = None


@atexit.register
def _close_at_exit() -> None:
    state = _STATE
    if state is not None and state.file is not None:
        try:
            finish_run()
        except (OSError, ValueError):
            pass


# -- cross-process propagation -------------------------------------------------------


def activate_worker(interval: int) -> None:
    """Adopt the parent's telemetry context in a pool worker.

    ``interval <= 0`` means the parent had telemetry off: the worker
    stays disabled. Each activation starts a fresh buffer, so a worker
    serving several tasks (or retrying one) never leaks frames from a
    previous attempt into the next envelope.
    """
    global _STATE
    if interval <= 0:
        _STATE = _TelemState(enabled=False, pid=os.getpid())
        return
    _STATE = _TelemState(
        enabled=True, pid=os.getpid(), interval=int(interval), buffer=[]
    )


def worker_interval() -> int:
    """The interval to ship inside pool payloads (0 when telemetry is off)."""
    state = _state()
    return state.interval if state.enabled else 0


def drain_worker() -> tuple[dict, ...]:
    """Take (and clear) the frames buffered since :func:`activate_worker`."""
    state = _state()
    frames = tuple(state.buffer or ())
    if state.buffer is not None:
        state.buffer = []
    return frames


def absorb(frames: Iterable[Mapping[str, Any]]) -> None:
    """Write worker-buffered frames into this process's sink."""
    state = _state()
    if not state.enabled:
        return
    for frame in frames:
        record_frame(frame)


# -- frame builders ------------------------------------------------------------------


def _int_list(values: Iterable[Any]) -> list[int]:
    return [int(v) for v in values]


def _float_list(values: Iterable[Any]) -> list[float]:
    return [float(v) for v in values]


def field_frame(
    *,
    window: int,
    slot0: int,
    slots: int,
    shard: int,
    labels: Mapping[str, str],
    networks: Iterable[int],
    jammed: Iterable[int],
    attempts: Iterable[int],
    delivered: Iterable[int],
    attempted: Iterable[int],
    hops: Iterable[int],
    neg_sum: Iterable[float],
    lat_counts: Iterable[int],
    lat_min: float | None,
    lat_max: float | None,
    tokens: Iterable[float] | None = None,
) -> dict:
    """One shard's view of one field window, in merge-exact form.

    Per-network outcomes stay as arrays (restricted to the shard's *own*
    networks — halo replicas are never emitted), so the parent's merge is
    placement by global index, no floating-point accumulation across
    shards. The latency histogram ships as integer bucket counts over
    :data:`LATENCY_BUCKETS` plus the window min/max.
    """
    frame = {
        "type": "frame",
        "series": "field",
        "window": int(window),
        "slot0": int(slot0),
        "slots": int(slots),
        "shard": int(shard),
        "labels": {str(k): str(v) for k, v in sorted(labels.items())},
        "networks": _int_list(networks),
        "jammed": _int_list(jammed),
        "attempts": _int_list(attempts),
        "delivered": _int_list(delivered),
        "attempted": _int_list(attempted),
        "hops": _int_list(hops),
        "neg_sum": _float_list(neg_sum),
        "lat_counts": _int_list(lat_counts),
        "lat_min": float(lat_min) if lat_min is not None else None,
        "lat_max": float(lat_max) if lat_max is not None else None,
    }
    if tokens is not None:
        frame["tokens"] = _float_list(tokens)
    return frame


class FlightRecorder:
    """Bounded ring of windowed registry/series deltas.

    Call :meth:`tick` once per slot/episode with the quantities to sum
    over the window; every ``interval`` ticks a frame is emitted to the
    telemetry sink and appended to the in-memory ring (``maxlen`` =
    ``REPRO_TELEM_WINDOW``, so a million-episode run holds O(ring)
    state). ``counters=`` names :data:`~repro.obs.metrics.METRICS`
    counters whose per-window deltas (e.g. the PER-cache hit/miss pair)
    ride along in each frame's ``values``.

    Recorders are inert when telemetry is disabled: ``tick`` returns
    immediately after one boolean check and nothing is buffered.
    """

    def __init__(
        self,
        series: str,
        *,
        labels: Mapping[str, str] | None = None,
        interval: int | None = None,
        ring: int | None = None,
        counters: tuple[str, ...] = (),
    ) -> None:
        self.series = str(series)
        self.labels = {str(k): str(v) for k, v in sorted((labels or {}).items())}
        self.enabled = enabled()
        self.interval = int(interval) if interval is not None else _state().interval
        if self.interval < 1:
            raise ConfigurationError(
                f"recorder interval must be >= 1, got {self.interval}"
            )
        self.frames: deque[dict] = deque(maxlen=ring or telem_window())
        self._counters = tuple(counters)
        self._baseline = self._counter_values()
        self._window = 0
        self._ticks = 0
        self._acc: dict[str, float] = {}

    def _counter_values(self) -> dict[str, float]:
        if not self._counters or not self.enabled:
            return {}
        return {
            name: METRICS.counters[name].value
            for name in self._counters
            if name in METRICS.counters
        }

    def tick(self, **values: float) -> dict | None:
        """Accumulate one slot/episode; emits a frame at window edges."""
        if not self.enabled:
            return None
        for key, value in values.items():
            self._acc[key] = self._acc.get(key, 0.0) + float(value)
        self._ticks += 1
        if self._ticks >= self.interval:
            return self.flush()
        return None

    def flush(self) -> dict | None:
        """Emit the current (possibly partial) window; no-op when empty."""
        if not self.enabled or self._ticks == 0:
            return None
        values = {k: self._acc[k] for k in sorted(self._acc)}
        current = self._counter_values()
        for name in self._counters:
            delta = current.get(name, 0.0) - self._baseline.get(name, 0.0)
            values[f"delta.{name}"] = delta
        self._baseline = current
        frame = {
            "type": "frame",
            "series": self.series,
            "window": self._window,
            "ticks": self._ticks,
            "labels": dict(self.labels),
            "values": values,
        }
        self.frames.append(frame)
        record_frame(frame)
        self._window += 1
        self._ticks = 0
        self._acc = {}
        return frame


# -- the read side -------------------------------------------------------------------


@dataclass
class TelemetryDoc:
    """Parsed ``TELEM_*.jsonl``: records bucketed by type."""

    path: Path
    header: dict | None = None
    frames: list[dict] = field(default_factory=list)
    metrics: dict | None = None  # last metrics record wins
    malformed: int = 0


def is_telemetry_file(path: Path | str) -> bool:
    """True when the file's first JSON record is a telemetry header/frame.

    Lets ``repro obs summary`` route ``TELEM_*.jsonl`` files to the
    dashboard renderer while ``RUN_*.jsonl`` traces keep the span tree.
    """
    path = Path(path)
    if not path.is_file():
        return False
    try:
        with path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    return False
                return record.get("type") in {"header", "frame"}
    except OSError:
        return False
    return False


def load_telemetry(path: Path | str) -> TelemetryDoc:
    """Parse a telemetry file, tolerating truncated/garbled lines."""
    path = Path(path)
    if not path.is_file():
        raise ReproError(f"telemetry file not found: {path}")
    doc = TelemetryDoc(path=path)
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                doc.malformed += 1
                continue
            kind = record.get("type")
            if kind == "header" and doc.header is None:
                doc.header = record
            elif kind == "frame":
                doc.frames.append(record)
            elif kind == "metrics":
                doc.metrics = record
            else:
                doc.malformed += 1
    if doc.header is None and not doc.frames:
        raise ReproError(f"no telemetry records in {path}")
    return doc


def _merge_field_windows(frames: list[dict]) -> list[dict]:
    """Merge per-shard field frames into one fleet view per window.

    Deterministic by construction: per-network arrays are *placed* by
    global network index (each network is owned by exactly one shard),
    latency bucket counts are integers added across shards, and the
    fleet-level rates are recomputed from the merged integer totals — so
    the result is bit-identical for any shard/worker decomposition and
    independent of the raw frame order in the file.
    """
    # Dedupe retried shards: last (series, window, shard) wins.
    latest: dict[tuple[int, int], dict] = {}
    for frame in frames:
        latest[(int(frame["window"]), int(frame.get("shard", 0)))] = frame
    by_window: dict[int, list[dict]] = {}
    for (window, _), frame in sorted(latest.items()):
        by_window.setdefault(window, []).append(frame)

    merged: list[dict] = []
    for window in sorted(by_window):
        shards = by_window[window]
        per_net: dict[int, dict[str, float]] = {}
        lat_counts = [0] * (len(LATENCY_BUCKETS) + 1)
        lat_min: float | None = None
        lat_max: float | None = None
        slots = 0
        slot0 = None
        labels: dict = {}
        has_tokens = False
        for frame in shards:
            slots = max(slots, int(frame["slots"]))
            slot0 = (
                int(frame["slot0"])
                if slot0 is None
                else min(slot0, int(frame["slot0"]))
            )
            labels = frame.get("labels", labels) or labels
            counts = frame.get("lat_counts", ())
            for i, count in enumerate(counts):
                lat_counts[i] += int(count)
            if frame.get("lat_min") is not None:
                lat_min = (
                    frame["lat_min"]
                    if lat_min is None
                    else min(lat_min, frame["lat_min"])
                )
            if frame.get("lat_max") is not None:
                lat_max = (
                    frame["lat_max"]
                    if lat_max is None
                    else max(lat_max, frame["lat_max"])
                )
            tokens = frame.get("tokens")
            has_tokens = has_tokens or tokens is not None
            for k, net in enumerate(frame["networks"]):
                row = per_net[int(net)] = {
                    "jammed": int(frame["jammed"][k]),
                    "attempts": int(frame["attempts"][k]),
                    "delivered": int(frame["delivered"][k]),
                    "attempted": int(frame["attempted"][k]),
                    "hops": int(frame["hops"][k]),
                    "neg_sum": float(frame["neg_sum"][k]),
                }
                if tokens is not None:
                    row["tokens"] = float(tokens[k])
        networks = sorted(per_net)
        jammed = [per_net[g]["jammed"] for g in networks]
        delivered = [per_net[g]["delivered"] for g in networks]
        total_slots = slots * len(networks)
        row = {
            "window": window,
            "slot0": slot0,
            "slots": slots,
            "labels": labels,
            "networks": networks,
            "jammed": jammed,
            "attempts": [per_net[g]["attempts"] for g in networks],
            "delivered": delivered,
            "attempted": [per_net[g]["attempted"] for g in networks],
            "hops": [per_net[g]["hops"] for g in networks],
            "neg_sum": [per_net[g]["neg_sum"] for g in networks],
            "lat_counts": lat_counts,
            "lat_min": lat_min,
            "lat_max": lat_max,
            "jam_rate": sum(jammed) / total_slots if total_slots else 0.0,
            "goodput": sum(delivered) / total_slots if total_slots else 0.0,
        }
        if has_tokens:
            row["tokens"] = [per_net[g].get("tokens", 0.0) for g in networks]
        merged.append(row)
    return merged


def _merge_generic_windows(frames: list[dict]) -> list[dict]:
    """Order generic frames by window, deduping repeats last-wins."""
    latest: dict[int, dict] = {}
    for frame in frames:
        latest[int(frame["window"])] = frame
    return [latest[w] for w in sorted(latest)]


def merge_frames(doc: TelemetryDoc) -> dict[str, list[dict]]:
    """Canonical merged view: series name -> merged window list.

    The ``"field"`` series merges shard-wise (see
    :func:`_merge_field_windows`); any other series merges by window with
    last-wins dedupe. The output depends only on the set of frames, never
    on their order in the file.
    """
    by_series: dict[str, list[dict]] = {}
    for frame in doc.frames:
        by_series.setdefault(str(frame.get("series", "?")), []).append(frame)
    merged: dict[str, list[dict]] = {}
    for series in sorted(by_series):
        if series == "field":
            merged[series] = _merge_field_windows(by_series[series])
        else:
            merged[series] = _merge_generic_windows(by_series[series])
    return merged


__all__ = [
    "TELEM_ENV",
    "TELEM_INTERVAL_ENV",
    "TELEM_WINDOW_ENV",
    "DEFAULT_INTERVAL",
    "LATENCY_BUCKETS",
    "telem_target",
    "telem_interval",
    "telem_window",
    "enabled",
    "interval",
    "record_frame",
    "finish_run",
    "disable",
    "reset",
    "activate_worker",
    "worker_interval",
    "drain_worker",
    "absorb",
    "field_frame",
    "FlightRecorder",
    "TelemetryDoc",
    "is_telemetry_file",
    "load_telemetry",
    "merge_frames",
]
