"""Offline trace summarisation behind the ``repro obs`` CLI subcommand.

Reads a ``RUN_*.jsonl`` trace and renders, as plain text: the manifest
header, the span tree with per-name wall-clock rollups (spans sharing a
name under the same parent aggregate into one line — 4 pool tasks under
one dispatch show as ``exec/task 4x``), event counts, top counters, and
histogram quantiles estimated from the final metrics snapshot.

Deliberately free of imports from the analysis/execution layers so the
summariser can read a trace without dragging in numpy-heavy modules.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.obs.metrics import quantile_from_buckets


@dataclass
class TraceDoc:
    """Parsed trace: records bucketed by type."""

    path: Path
    manifest: dict | None = None
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    metrics: dict | None = None  # last metrics record wins
    malformed: int = 0


def load_trace(path: Path | str) -> TraceDoc:
    """Parse a JSONL trace file, tolerating truncated/garbled lines."""
    path = Path(path)
    if not path.is_file():
        raise ReproError(f"trace file not found: {path}")
    doc = TraceDoc(path=path)
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                doc.malformed += 1
                continue
            kind = record.get("type")
            if kind == "manifest" and doc.manifest is None:
                doc.manifest = record
            elif kind == "span":
                doc.spans.append(record)
            elif kind == "event":
                doc.events.append(record)
            elif kind == "metrics":
                doc.metrics = record
            else:
                doc.malformed += 1
    if doc.manifest is None and not doc.spans and not doc.events:
        raise ReproError(f"no trace records in {path}")
    return doc


# -- span tree ----------------------------------------------------------------------


def _aggregate(spans: list[dict], children_of: dict[str | None, list[dict]]) -> list:
    """Group sibling spans by name; recurse over their pooled children."""
    groups: dict[str, dict] = {}
    for span in spans:
        group = groups.setdefault(
            span.get("name", "?"), {"count": 0, "dur": 0.0, "children": []}
        )
        group["count"] += 1
        group["dur"] += float(span.get("dur") or 0.0)
        group["children"].extend(children_of.get(span.get("id"), ()))
    rows = []
    for name, group in groups.items():
        rows.append(
            (
                name,
                group["count"],
                group["dur"],
                _aggregate(group["children"], children_of),
            )
        )
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows


def span_tree(doc: TraceDoc) -> list:
    """Aggregated span forest: ``[(name, count, total_dur, children), ...]``."""
    known = {span.get("id") for span in doc.spans}
    children_of: dict[str | None, list[dict]] = {}
    roots: list[dict] = []
    for span in doc.spans:
        parent = span.get("parent")
        if parent is None or parent not in known:
            roots.append(span)  # orphaned parents (crash/kill) become roots
        else:
            children_of.setdefault(parent, []).append(span)
    return _aggregate(roots, children_of)


def _render_tree(rows: list, lines: list[str], indent: int) -> None:
    for name, count, dur, children in rows:
        label = f"{'  ' * indent}{name}"
        lines.append(f"  {label:<44} {count:>5}x {_fmt_seconds(dur):>10}")
        _render_tree(children, lines, indent + 1)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


# -- rendering ----------------------------------------------------------------------


def render_summary(path: Path | str, *, top: int = 10) -> str:
    """Human-readable summary of one trace file."""
    doc = load_trace(path)
    lines: list[str] = []

    manifest = doc.manifest or {}
    lines.append(f"trace {doc.path}")
    header = [
        ("run", manifest.get("run")),
        ("trace id", manifest.get("trace")),
        ("time", manifest.get("time")),
        ("git", (manifest.get("git_sha") or "")[:12] or None),
        ("python", manifest.get("python")),
        ("sample", manifest.get("sample")),
    ]
    described = "  ".join(f"{k}={v}" for k, v in header if v is not None)
    if described:
        lines.append(described)
    if doc.malformed:
        lines.append(f"warning: skipped {doc.malformed} malformed line(s)")
    lines.append("")

    tree = span_tree(doc)
    lines.append(f"spans ({len(doc.spans)} recorded)")
    if tree:
        _render_tree(tree, lines, 0)
    else:
        lines.append("  (none)")
    lines.append("")

    lines.append(f"events ({len(doc.events)} recorded)")
    by_name: dict[str, int] = {}
    for evt in doc.events:
        by_name[evt.get("name", "?")] = by_name.get(evt.get("name", "?"), 0) + 1
    for name, count in sorted(by_name.items(), key=lambda kv: -kv[1])[:top]:
        lines.append(f"  {name:<44} {count:>6}x")
    if not by_name:
        lines.append("  (none)")
    lines.append("")

    metrics = doc.metrics or {}
    counters = metrics.get("counters", {})
    lines.append(f"counters ({len(counters)})")
    for name, value in sorted(counters.items(), key=lambda kv: -kv[1])[:top]:
        lines.append(f"  {name:<44} {value:>12g}")
    if not counters:
        lines.append("  (none)")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append(f"gauges ({len(gauges)})")
        for name, value in sorted(gauges.items())[:top]:
            lines.append(f"  {name:<44} {value:>12g}")

    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(f"histograms ({len(histograms)})")
        lines.append(
            f"  {'name':<32} {'count':>7} {'mean':>10} {'p50':>10} "
            f"{'p90':>10} {'p99':>10} {'max':>10}"
        )
        for name, doc_h in sorted(histograms.items()):
            count = doc_h.get("count", 0)
            if not count:
                continue
            buckets = tuple(doc_h["buckets"])
            counts = list(doc_h["counts"])
            minimum = doc_h.get("min") or 0.0
            maximum = doc_h.get("max") or 0.0
            quantiles = [
                quantile_from_buckets(
                    buckets, counts, q, minimum=minimum, maximum=maximum
                )
                for q in (0.5, 0.9, 0.99)
            ]
            mean = doc_h.get("sum", 0.0) / count
            lines.append(
                f"  {name:<32} {count:>7} {mean:>10.4g} "
                + " ".join(f"{q:>10.4g}" for q in quantiles)
                + f" {maximum:>10.4g}"
            )
    return "\n".join(lines)


__all__ = ["TraceDoc", "load_trace", "span_tree", "render_summary"]
