"""Hierarchical spans and structured events, streamed as ``RUN_*.jsonl``.

Tracing is **off by default** and costs one attribute check per call when
off, so instrumented hot paths stay within noise of their uninstrumented
selves. Setting ``REPRO_TRACE`` turns it on:

* ``REPRO_TRACE=smoke`` writes ``RUN_smoke.jsonl`` next to the BENCH
  artifacts (``$REPRO_BENCH_DIR``, default ``benchmarks/results/``);
* ``REPRO_TRACE=/tmp/t.jsonl`` (any value containing a path separator or
  ending in ``.jsonl``) writes to that exact path;
* ``REPRO_TRACE=1`` uses the default run name ``run``.

``REPRO_TRACE_SAMPLE`` (a float in ``(0, 1]``, default 1) keeps that
fraction of *event* records — spans, the manifest, and the final metrics
snapshot are always written. Sampling decisions hash the trace id and a
per-process sequence number; they never touch a simulation random stream,
so tracing (at any sample rate) cannot alter experiment results.

Record types, one JSON object per line:

``manifest``
    first line of every trace: run name, trace id, UTC time, git SHA,
    platform/python, argv, the ``REPRO_*`` environment, and anything the
    entry point passed to :func:`start_run` (config, seeds, ...).
``span``
    one closed span: ``id``, ``parent`` (id or null), ``name``, ``t0``
    (epoch seconds), ``dur`` (seconds), free-form ``attrs``. Written on
    exit, so children precede parents in the file.
``event``
    a point-in-time observation attached to the enclosing span
    (``span`` field), with free-form ``fields`` and a ``seq`` number.
``metrics``
    the final :data:`repro.obs.metrics.METRICS` snapshot, written by
    :func:`finish_run` (or at interpreter exit).

Cross-process propagation: :class:`repro.exec.ParallelRunner` snapshots
the ambient context (:func:`worker_context`), ships it inside each task
payload, and the pool-side trampoline activates a *buffering* state
(:func:`activate_worker`) whose records return with the result and are
merged into the parent's file (:func:`absorb`) — one trace file per run,
worker spans parented under the dispatch span, same trace id throughout.
A forked worker that was never activated keeps tracing disabled rather
than corrupting the parent's file.
"""

from __future__ import annotations

import atexit
import json
import math
import os
import platform
import subprocess
import sys
import time
import uuid
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator, TextIO

from repro.errors import ConfigurationError
from repro.obs import telemetry as obs_telemetry
from repro.obs.metrics import METRICS
from repro.obs.paths import artifact_dir

#: Environment variable enabling tracing (run name, path, or truthy flag).
TRACE_ENV = "REPRO_TRACE"

#: Environment variable setting the event sampling rate (float in (0, 1]).
SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

_TRUTHY = {"1", "true", "yes", "on"}


def trace_target() -> Path | None:
    """Trace file selected by ``REPRO_TRACE``, or ``None`` when disabled."""
    value = os.environ.get(TRACE_ENV, "").strip()
    if not value:
        return None
    if value.lower() in _TRUTHY:
        return artifact_dir() / "RUN_run.jsonl"
    if os.sep in value or value.endswith(".jsonl"):
        return Path(value)
    return artifact_dir() / f"RUN_{value}.jsonl"


def sample_rate() -> float:
    """Event sampling rate from ``REPRO_TRACE_SAMPLE`` (default: keep all)."""
    text = os.environ.get(SAMPLE_ENV, "").strip()
    if not text:
        return 1.0
    try:
        rate = float(text)
    except ValueError:
        raise ConfigurationError(
            f"{SAMPLE_ENV} must be a float in (0, 1], got {text!r}"
        ) from None
    if not 0.0 < rate <= 1.0:
        raise ConfigurationError(f"{SAMPLE_ENV} must be in (0, 1], got {rate}")
    return rate


class _TraceState:
    """Per-process trace state (file sink in the parent, buffer in workers)."""

    __slots__ = (
        "enabled",
        "pid",
        "trace_id",
        "sample",
        "path",
        "file",
        "buffer",
        "parent",
        "seq",
        "extra",
    )

    def __init__(
        self,
        *,
        enabled: bool,
        pid: int,
        trace_id: str = "",
        sample: float = 1.0,
        path: Path | None = None,
        buffer: list[dict] | None = None,
        parent: str | None = None,
    ) -> None:
        self.enabled = enabled
        self.pid = pid
        self.trace_id = trace_id
        self.sample = sample
        self.path = path
        self.file: TextIO | None = None
        self.buffer = buffer
        self.parent = parent
        self.seq = 0
        self.extra: dict = {}


_STATE: _TraceState | None = None


def _fresh_state() -> _TraceState:
    target = trace_target()
    if target is None:
        return _TraceState(enabled=False, pid=os.getpid())
    return _TraceState(
        enabled=True,
        pid=os.getpid(),
        trace_id=uuid.uuid4().hex[:16],
        sample=sample_rate(),
        path=target,
    )


def _state() -> _TraceState:
    global _STATE
    if _STATE is None:
        _STATE = _fresh_state()
    elif _STATE.pid != os.getpid():
        # A forked pool worker inherited the parent's state. Never write
        # to the parent's file from here: tracing stays off until the
        # runner's trampoline calls activate_worker() with an envelope.
        _STATE = _TraceState(enabled=False, pid=os.getpid())
    return _STATE


def enabled() -> bool:
    """True when this process is currently recording trace data."""
    return _state().enabled


def current_trace_id() -> str | None:
    state = _state()
    return state.trace_id if state.enabled else None


# -- serialisation ------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Coerce attribute/field values to JSON-safe types (NaN/inf -> null)."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def _git_sha() -> str | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _manifest_record(state: _TraceState) -> dict:
    name = state.path.stem if state.path is not None else "run"
    if name.startswith("RUN_"):
        name = name[4:]
    return {
        "type": "manifest",
        "run": name,
        "trace": state.trace_id,
        "time": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "argv": list(sys.argv),
        "pid": state.pid,
        "sample": state.sample,
        "env": {
            k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")
        },
        **_jsonable(state.extra),
    }


def _metrics_record(state: _TraceState) -> dict:
    return {
        "type": "metrics",
        "trace": state.trace_id,
        "t": round(time.time(), 6),
        **METRICS.snapshot(),
    }


def _open_sink(state: _TraceState) -> None:
    assert state.path is not None
    state.path.parent.mkdir(parents=True, exist_ok=True)
    state.file = state.path.open("a", encoding="utf-8")
    state.file.write(json.dumps(_manifest_record(state)) + "\n")
    state.file.flush()


def _emit(state: _TraceState, record: dict) -> None:
    if state.buffer is not None:
        state.buffer.append(record)
        return
    if state.file is None:
        _open_sink(state)
    state.file.write(json.dumps(record) + "\n")
    state.file.flush()


# -- the recording API ---------------------------------------------------------------


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[str | None]:
    """Record a hierarchical span around a ``with`` block.

    Yields the span id (or ``None`` when tracing is off). Nested spans
    parent automatically; events fired inside attach to the innermost
    open span.
    """
    state = _state()
    if not state.enabled:
        yield None
        return
    state.seq += 1
    sid = f"{state.pid:x}.{state.seq:x}"
    parent = state.parent
    state.parent = sid
    t0 = time.time()
    start = time.perf_counter()
    try:
        yield sid
    finally:
        state.parent = parent
        _emit(
            state,
            {
                "type": "span",
                "trace": state.trace_id,
                "id": sid,
                "parent": parent,
                "name": name,
                "t0": round(t0, 6),
                "dur": round(time.perf_counter() - start, 9),
                "attrs": _jsonable(attrs),
            },
        )


def _keep(trace_id: str, seq: int, rate: float) -> bool:
    digest = zlib.crc32(f"{trace_id}:{seq}".encode("ascii"))
    return digest / 0xFFFFFFFF < rate


def event(name: str, **fields: Any) -> None:
    """Record a point-in-time event (subject to ``REPRO_TRACE_SAMPLE``)."""
    state = _state()
    if not state.enabled:
        return
    state.seq += 1
    if state.sample < 1.0 and not _keep(state.trace_id, state.seq, state.sample):
        return
    _emit(
        state,
        {
            "type": "event",
            "trace": state.trace_id,
            "span": state.parent,
            "name": name,
            "t": round(time.time(), 6),
            "seq": state.seq,
            "fields": _jsonable(fields),
        },
    )


# -- run lifecycle -------------------------------------------------------------------


def start_run(**extra: Any) -> bool:
    """Attach manifest context (config, seeds, ...) to the current run.

    Returns True when tracing is enabled. The manifest itself is written
    lazily with the first record, so a traced process that never records
    anything leaves no file behind.
    """
    state = _state()
    if not state.enabled:
        return False
    state.extra.update(extra)
    return True


def finish_run() -> Path | None:
    """Write the final metrics snapshot and close the trace file.

    Returns the trace path when a file was written, else ``None``.
    Tracing stays *disabled* for the rest of the process afterwards —
    late stragglers (exit-path log lines, atexit hooks) must not start a
    second trace in the same file. Tests use :func:`reset` to re-arm.
    """
    global _STATE
    state = _state()
    path: Path | None = None
    if state.enabled and state.file is not None:
        _emit(state, _metrics_record(state))
        state.file.close()
        path = state.path
    _STATE = _TraceState(enabled=False, pid=os.getpid())
    return path


def disable() -> None:
    """Turn tracing off for this process regardless of ``REPRO_TRACE``.

    Trace *readers* (``repro obs``) call this first thing so their own
    spans and log mirrors can never append to the file under inspection.
    """
    global _STATE
    if _STATE is not None and _STATE.file is not None:
        _STATE.file.close()
    _STATE = _TraceState(enabled=False, pid=os.getpid())


def reset() -> None:
    """Drop trace state without writing (tests re-read the env lazily)."""
    global _STATE
    if _STATE is not None and _STATE.file is not None:
        _STATE.file.close()
    _STATE = None


@atexit.register
def _close_at_exit() -> None:
    state = _STATE
    if state is not None and state.file is not None:
        try:
            _emit(state, _metrics_record(state))
            state.file.close()
        except (OSError, ValueError):
            pass


# -- cross-process propagation -------------------------------------------------------


@dataclass(frozen=True)
class WorkerContext:
    """Ambient observability context, snapshotted into pool-task payloads.

    ``trace_id`` is empty when only telemetry (not tracing) is active;
    ``telem_interval`` is 0 when telemetry is off in the parent.
    """

    trace_id: str
    parent: str | None
    sample: float
    origin_pid: int
    telem_interval: int = 0


@dataclass(frozen=True)
class TracedResult:
    """Envelope a traced pool task returns: result + buffered telemetry."""

    result: Any
    records: tuple[dict, ...]
    metrics: dict
    telemetry: tuple = ()


def worker_context() -> WorkerContext | None:
    """Snapshot of the current context, or ``None`` when fully off.

    Returns a context when tracing **or** telemetry is active — either
    one needs the pool envelope (buffered records / frames plus the
    worker metrics snapshot) shipped back to the parent.
    """
    state = _state()
    telem_interval = obs_telemetry.worker_interval()
    if not state.enabled and telem_interval == 0:
        return None
    return WorkerContext(
        trace_id=state.trace_id if state.enabled else "",
        parent=state.parent if state.enabled else None,
        sample=state.sample,
        origin_pid=state.pid,
        telem_interval=telem_interval,
    )


def in_origin(ctx: WorkerContext) -> bool:
    """True when running in the process that created ``ctx`` (serial path)."""
    return os.getpid() == ctx.origin_pid


def activate_worker(ctx: WorkerContext) -> None:
    """Adopt ``ctx`` in a pool worker: buffer records, reset worker metrics.

    An empty ``ctx.trace_id`` (telemetry-only run) leaves tracing off in
    the worker while still resetting the metrics registry and arming the
    telemetry frame buffer, so the envelope's metrics snapshot covers
    exactly this task.
    """
    global _STATE
    METRICS.reset()
    obs_telemetry.activate_worker(ctx.telem_interval)
    # Span ids are ``pid.seq``; a worker serving several tasks must keep
    # counting across activations or its spans would collide in the file.
    prev = _state()
    state = _TraceState(
        enabled=bool(ctx.trace_id),
        pid=os.getpid(),
        trace_id=ctx.trace_id,
        sample=ctx.sample,
        buffer=[] if ctx.trace_id else None,
        parent=ctx.parent,
    )
    state.seq = prev.seq
    _STATE = state


def drain_worker() -> tuple[dict, ...]:
    """Take (and clear) the records buffered since :func:`activate_worker`."""
    state = _state()
    records = tuple(state.buffer or ())
    if state.buffer is not None:
        state.buffer = []
    return records


def absorb(records: tuple[dict, ...] | list[dict]) -> None:
    """Write worker-buffered records into this process's sink."""
    state = _state()
    if not state.enabled:
        return
    for record in records:
        _emit(state, record)


__all__ = [
    "TRACE_ENV",
    "SAMPLE_ENV",
    "trace_target",
    "sample_rate",
    "enabled",
    "current_trace_id",
    "span",
    "event",
    "start_run",
    "finish_run",
    "disable",
    "reset",
    "WorkerContext",
    "TracedResult",
    "worker_context",
    "in_origin",
    "activate_worker",
    "drain_worker",
    "absorb",
]
